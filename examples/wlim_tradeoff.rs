//! The volume/balance dial of Algorithm 1 — what ε actually buys.
//!
//! Algorithm 1 flips off-diagonal blocks to the column owner only while
//! the destination stays under `W_lim = (1+ε)·nnz/K`. Small ε keeps
//! balance and refuses flips (volume stays near 1D); large ε approaches
//! the DM-optimal volume at the price of imbalance. This example prints
//! the whole frontier for one dense-row matrix, with the DM optimum and
//! plain 1D as the two anchors.
//!
//! ```text
//! cargo run --release --example wlim_tradeoff
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::comm::comm_requirements;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::core::heuristic2::{s2d_generalized, Heuristic2Config};
use s2d::core::optimal::s2d_optimal;
use s2d::gen::denserow::{dense_row_matrix, DenseRowConfig};

fn main() {
    // A dense-row matrix: the structure where the dial matters most.
    let a = dense_row_matrix(
        &DenseRowConfig { n: 6000, nnz: 48_000, dmax: 900, tail_decay: 0.5, mirror_cols: true },
        42,
    );
    println!("matrix: {} x {}, nnz {}", a.nrows(), a.ncols(), a.nnz());

    let k = 32;
    let oned = partition_1d_rowwise(&a, k, 0.03, 42);
    let v_1d = comm_requirements(&a, &oned.partition).total_volume();
    let opt = s2d_optimal(&a, &oned.row_part, &oned.col_part, k);
    let v_opt = comm_requirements(&a, &opt).total_volume();
    println!(
        "anchors: 1D volume {v_1d} (LI {:.1}%), DM-optimal volume {v_opt} (LI {:.1}%)\n",
        oned.partition.load_imbalance() * 100.0,
        opt.load_imbalance() * 100.0
    );

    println!(
        "{:>6} | {:>9} {:>7} | {:>9} {:>7}",
        "eps", "alg1-vol", "alg1-LI", "alg2-vol", "alg2-LI"
    );
    for eps in [0.0, 0.01, 0.03, 0.05, 0.1, 0.2, 0.5, 1.0, 5.0] {
        let alg1 = s2d_from_vector_partition(
            &a,
            &oned.row_part,
            &oned.col_part,
            &HeuristicConfig { epsilon: eps, ..Default::default() },
        );
        let alg2 = s2d_generalized(
            &a,
            &oned.row_part,
            &oned.col_part,
            k,
            &Heuristic2Config { epsilon: eps, ..Default::default() },
        );
        println!(
            "{:>6.2} | {:>9} {:>6.1}% | {:>9} {:>6.1}%",
            eps,
            comm_requirements(&a, &alg1).total_volume(),
            alg1.load_imbalance() * 100.0,
            comm_requirements(&a, &alg2).total_volume(),
            alg2.load_imbalance() * 100.0,
        );
    }
    println!("\nReading: as eps grows, volume falls from the 1D anchor toward the");
    println!("DM optimum; Algorithm 2 (A4 upgrades + balance pass) holds imbalance");
    println!("lower than Algorithm 1 at the same eps without giving volume back.");
}
