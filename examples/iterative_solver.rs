//! Power iteration on a distributed SpMV plan — the realistic usage
//! pattern: partition once, compile the plan once, run SpMV hundreds of
//! times.
//!
//! Estimates the dominant eigenvalue of a symmetric FEM matrix with the
//! fused single-phase s2D SpMV and cross-checks against serial execution.
//!
//! ```text
//! cargo run --release --example iterative_solver
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::gen::fem::fem_like;
use s2d::spmv::SpmvPlan;

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

fn power_iteration(mut spmv: impl FnMut(&[f64]) -> Vec<f64>, n: usize, iters: usize) -> f64 {
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut w = spmv(&v);
        lambda = normalize(&mut w);
        v = w;
    }
    lambda
}

fn main() {
    let a = fem_like(8_000, 27.0, 27, 3);
    println!("matrix: {} x {}, nnz {}", a.nrows(), a.ncols(), a.nnz());

    // Partition once, plan once.
    let k = 16;
    let oned = partition_1d_rowwise(&a, k, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    let plan = SpmvPlan::single_phase(&a, &s2d);
    println!(
        "plan: K = {k}, comm volume {} words/iteration, max {} msgs",
        plan.comm_stats().total_volume,
        plan.comm_stats().max_send_msgs()
    );

    let iters = 30;
    let lambda_par = power_iteration(|x| plan.execute_mailbox(x), a.nrows(), iters);
    let lambda_ser = power_iteration(
        |x| {
            let mut y = vec![0.0; a.nrows()];
            a.spmv(x, &mut y);
            y
        },
        a.nrows(),
        iters,
    );
    println!("dominant eigenvalue after {iters} iterations:");
    println!("  distributed single-phase: {lambda_par:.10}");
    println!("  serial reference:         {lambda_ser:.10}");
    let rel = ((lambda_par - lambda_ser) / lambda_ser).abs();
    println!("  relative difference:      {rel:.2e}");
    assert!(rel < 1e-9, "distributed iteration diverged from serial");
}
