//! Power iteration on a distributed SpMV plan — the realistic usage
//! pattern: partition once, compile the plan once, run SpMV hundreds of
//! times.
//!
//! Estimates the dominant eigenvalue of a symmetric FEM matrix with the
//! fused single-phase s2D SpMV and cross-checks against serial execution.
//!
//! ```text
//! cargo run --release --example iterative_solver
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::gen::fem::fem_like;
use s2d::{Backend, PlanKind, Session, SpmvOperator};

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

fn power_iteration(op: &mut impl SpmvOperator, iters: usize) -> f64 {
    let n = op.ncols();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    normalize(&mut v);
    let mut w = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        op.apply(&v, &mut w);
        lambda = normalize(&mut w);
        std::mem::swap(&mut v, &mut w);
    }
    lambda
}

fn main() {
    let a = fem_like(8_000, 27.0, 27, 3);
    println!("matrix: {} x {}, nnz {}", a.nrows(), a.ncols(), a.nnz());

    // Partition once, build the session once: the plan construction
    // and the backend's compilation are paid here, not per iteration.
    let k = 16;
    let oned = partition_1d_rowwise(&a, k, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    let mut session = Session::builder(&a)
        .partition(&s2d)
        .plan_kind(PlanKind::SinglePhase)
        .backend(Backend::CompiledSeq)
        .build();
    println!(
        "plan: K = {k}, comm volume {} words/iteration, max {} msgs",
        session.stats().total_volume,
        session.stats().max_send_msgs()
    );

    /// The serial oracle as a custom operator — anything with an
    /// `apply` plugs into the same iteration loop.
    struct SerialCsr<'a>(&'a s2d::sparse::Csr);
    impl SpmvOperator for SerialCsr<'_> {
        fn nrows(&self) -> usize {
            self.0.nrows()
        }
        fn ncols(&self) -> usize {
            self.0.ncols()
        }
        fn apply(&mut self, x: &[f64], y: &mut [f64]) {
            self.0.spmv(x, y)
        }
    }

    let iters = 30;
    let lambda_par = power_iteration(&mut session, iters);
    let lambda_ser = power_iteration(&mut SerialCsr(&a), iters);
    println!("dominant eigenvalue after {iters} iterations:");
    println!("  distributed single-phase: {lambda_par:.10}");
    println!("  serial reference:         {lambda_ser:.10}");
    let rel = ((lambda_par - lambda_ser) / lambda_ser).abs();
    println!("  relative difference:      {rel:.2e}");
    assert!(rel < 1e-9, "distributed iteration diverged from serial");
}
