//! The paper's motivating scenario: a matrix with a few very dense rows
//! (like ins2 / ASIC_680k) wrecks 1D partitioning — one row's nonzeros
//! cannot be split, so one processor drowns in work and messages.
//! s2D splits those rows' nonzeros across their columns' owners, and
//! s2D-b additionally bounds the message count by routing over a mesh.
//!
//! ```text
//! cargo run --release --example dense_row_rescue
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::gen::denserow::{dense_row_matrix, DenseRowConfig};
use s2d::spmv::SpmvPlan;

fn main() {
    // 20k rows, background degree ~4, densest row covers 20% of columns.
    let a = dense_row_matrix(
        &DenseRowConfig {
            n: 20_000,
            nnz: 120_000,
            dmax: 4_000,
            tail_decay: 0.5,
            mirror_cols: true,
        },
        7,
    );
    let k = 64;
    println!(
        "matrix: n = {}, nnz = {}, densest row = {} nonzeros",
        a.nrows(),
        a.nnz(),
        (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap()
    );
    println!("K = {k} processors; perfect share would be {} nonzeros\n", a.nnz() / k);

    let oned = partition_1d_rowwise(&a, k, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());

    let plan_1d = SpmvPlan::single_phase(&a, &oned.partition);
    let plan_s2d = SpmvPlan::single_phase(&a, &s2d);
    let plan_s2db = SpmvPlan::mesh_default(&a, &s2d);

    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10}",
        "method", "LI%", "volume", "avg msgs", "max msgs"
    );
    for (name, plan, li) in [
        ("1D", &plan_1d, oned.partition.load_imbalance()),
        ("s2D", &plan_s2d, s2d.load_imbalance()),
        ("s2D-b", &plan_s2db, s2d.load_imbalance()),
    ] {
        let st = plan.comm_stats();
        println!(
            "{:<6} {:>9.1}% {:>12} {:>10.1} {:>10}",
            name,
            li * 100.0,
            st.total_volume,
            st.avg_send_msgs(),
            st.max_send_msgs()
        );
    }

    // The punchlines the paper's Tables V and VI make:
    let li_1d = oned.partition.load_imbalance();
    let li_s2d = s2d.load_imbalance();
    assert!(li_s2d < li_1d, "s2D must relieve the dense-row overload");
    let (pr, pc) = s2d::core::mesh_dims(k);
    let max_b = plan_s2db.comm_stats().max_send_msgs();
    assert!(max_b as usize <= (pr - 1) + (pc - 1), "s2D-b exceeds the mesh latency bound");
    println!(
        "\ns2D-b max msgs {} <= (Pr-1)+(Pc-1) = {} on a {}x{} mesh",
        max_b,
        (pr - 1) + (pc - 1),
        pr,
        pc
    );

    // And the result is still just y = Ax:
    let x: Vec<f64> = (0..a.ncols()).map(|j| (j % 97) as f64 * 0.01).collect();
    let y = plan_s2db.execute_mailbox(&x);
    let y_ref = a.spmv_alloc(&x);
    let max_err = y.iter().zip(&y_ref).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
    println!("s2D-b SpMV max |error| vs serial: {max_err:.2e}");
}
