//! A small command-line partitioner for Matrix Market files, driven by
//! the unified [`Strategy`] enum.
//!
//! ```text
//! cargo run --release --example mm_partition -- <matrix.mtx> [K] [method]
//! ```
//!
//! `method` is any strategy name (`s2d` default, `1d`, `1d-col`, `2d`,
//! `2d-b`, `s2d-gen`, `s2d-opt`, `s2d-it`, `s2d-mg`, `1d-b`, `hg-kway`,
//! `auto` — see `s2d::partition::Strategy`). Without arguments a demo
//! matrix is generated and partitioned. Prints the partition-quality
//! report and per-processor loads; writes `<matrix>.part.<K>` with one
//! owner id per nonzero (CSR order).

use std::io::Write;

use s2d::partition::{quality, PartitionQuality, Partitioner, Strategy};
use s2d::sparse::io::read_matrix_market_file;
use s2d::sparse::Csr;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (a, name): (Csr, String) = match args.get(1) {
        Some(path) => {
            let coo = read_matrix_market_file(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            });
            (coo.to_csr(), path.clone())
        }
        None => {
            println!("no input file given; generating a demo R-MAT matrix\n");
            let a = s2d::gen::rmat::rmat(&s2d::gen::rmat::RmatConfig::graph500(11, 8), 1).to_csr();
            (a, "demo-rmat11".to_string())
        }
    };
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let method = args.get(3).map(String::as_str).unwrap_or("s2d");

    println!("matrix {name}: {} x {}, nnz {}", a.nrows(), a.ncols(), a.nnz());
    println!("partitioning into K = {k} parts with method `{method}`\n");

    let strategy: Strategy = method.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let p = strategy.partition(&a, k);
    let q = PartitionQuality::measure(&a, &p, strategy.to_string());

    println!("{}", quality::quality_header());
    println!("{}\n", quality::fmt_quality_row(&q));
    println!(
        "s2D property: {}",
        if q.s2d { "satisfied (fused single-phase plan)" } else { "not satisfied (general 2D)" }
    );
    println!("\nper-processor loads (nonzeros):");
    let loads = p.loads();
    for (proc_id, load) in loads.iter().enumerate() {
        println!("  P{proc_id:<3} {load:>10}");
        if proc_id >= 15 && loads.len() > 17 {
            println!("  ... ({} more)", loads.len() - proc_id - 1);
            break;
        }
    }

    let base = name.rsplit('/').next().unwrap_or(&name);
    let out = format!("{base}.part.{k}");
    let mut f = std::fs::File::create(&out).expect("create partition file");
    for owner in &p.nz_owner {
        writeln!(f, "{owner}").expect("write partition file");
    }
    println!("\nwrote nonzero owners to {out}");
}
