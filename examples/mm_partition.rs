//! A small command-line partitioner for Matrix Market files.
//!
//! ```text
//! cargo run --release --example mm_partition -- <matrix.mtx> [K] [method]
//! ```
//!
//! `method` is one of `1d`, `2d`, `s2d` (default), `s2d-opt`, `mg`, `cb`.
//! Without arguments a demo matrix is generated and partitioned. Prints
//! per-processor loads and communication statistics; writes
//! `<matrix>.part.<K>` with one owner id per nonzero (CSR order).

use std::io::Write;

use s2d::baselines::{
    partition_1d_rowwise, partition_2d_fine_grain, partition_checkerboard, partition_s2d_mg,
};
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::core::optimal::s2d_optimal;
use s2d::core::partition::SpmvPartition;
use s2d::sparse::io::read_matrix_market_file;
use s2d::sparse::Csr;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (a, name): (Csr, String) = match args.get(1) {
        Some(path) => {
            let coo = read_matrix_market_file(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            });
            (coo.to_csr(), path.clone())
        }
        None => {
            println!("no input file given; generating a demo R-MAT matrix\n");
            let a = s2d::gen::rmat::rmat(&s2d::gen::rmat::RmatConfig::graph500(11, 8), 1).to_csr();
            (a, "demo-rmat11".to_string())
        }
    };
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let method = args.get(3).map(String::as_str).unwrap_or("s2d");

    println!("matrix {name}: {} x {}, nnz {}", a.nrows(), a.ncols(), a.nnz());
    println!("partitioning into K = {k} parts with method `{method}`\n");

    let p: SpmvPartition = match method {
        "1d" => partition_1d_rowwise(&a, k, 0.03, 1).partition,
        "2d" => partition_2d_fine_grain(&a, k, 0.03, 1),
        "s2d" => {
            let oned = partition_1d_rowwise(&a, k, 0.03, 1);
            s2d_from_vector_partition(
                &a,
                &oned.row_part,
                &oned.col_part,
                &HeuristicConfig::default(),
            )
        }
        "s2d-opt" => {
            let oned = partition_1d_rowwise(&a, k, 0.03, 1);
            s2d_optimal(&a, &oned.row_part, &oned.col_part, k)
        }
        "mg" => partition_s2d_mg(&a, k, 0.03, 1),
        "cb" => partition_checkerboard(&a, k, 0.03, 1).partition,
        other => {
            eprintln!("unknown method {other:?} (use 1d|2d|s2d|s2d-opt|mg|cb)");
            std::process::exit(2);
        }
    };

    let loads = p.loads();
    let stats = s2d::core::comm::two_phase_comm_stats(&a, &p);
    println!("load imbalance: {:.1}%", p.load_imbalance() * 100.0);
    println!("total comm volume: {} words", stats.total_volume);
    println!(
        "messages: avg {:.1} / max {} per processor",
        stats.avg_send_msgs(),
        stats.max_send_msgs()
    );
    println!(
        "s2D property: {}",
        if p.is_s2d(&a) { "satisfied" } else { "not satisfied (general 2D)" }
    );
    println!("\nper-processor loads (nonzeros):");
    for (proc_id, load) in loads.iter().enumerate() {
        println!("  P{proc_id:<3} {load:>10}");
        if proc_id >= 15 && loads.len() > 17 {
            println!("  ... ({} more)", loads.len() - proc_id - 1);
            break;
        }
    }

    let base = name.rsplit('/').next().unwrap_or(&name);
    let out = format!("{base}.part.{k}");
    let mut f = std::fs::File::create(&out).expect("create partition file");
    for owner in &p.nz_owner {
        writeln!(f, "{owner}").expect("write partition file");
    }
    println!("\nwrote nonzero owners to {out}");
}
