//! Distributed conjugate gradients on the SPMD runtime — the workload
//! partition quality exists for: one partition, one plan, hundreds of
//! SpMVs plus dot products.
//!
//! Solves a 2D Poisson problem with the `s2d-solver` CG on top of the
//! fused single-phase s2D plan, and shows the per-iteration
//! communication bill the partition bought us.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::solver::{cg_solve, cg_solve_with, CgOptions};
use s2d::sparse::{Coo, Csr};
use s2d::spmv::SpmvPlan;
use s2d::{Backend, Session};

/// 5-point Laplacian on an `s × s` grid.
fn laplacian2d(s: usize) -> Csr {
    let n = s * s;
    let mut m = Coo::new(n, n);
    let id = |r: usize, c: usize| r * s + c;
    for r in 0..s {
        for c in 0..s {
            m.push(id(r, c), id(r, c), 4.0);
            if r + 1 < s {
                m.push(id(r, c), id(r + 1, c), -1.0);
                m.push(id(r + 1, c), id(r, c), -1.0);
            }
            if c + 1 < s {
                m.push(id(r, c), id(r, c + 1), -1.0);
                m.push(id(r, c + 1), id(r, c), -1.0);
            }
        }
    }
    m.compress();
    m.to_csr()
}

fn main() {
    let s = 64;
    let a = laplacian2d(s);
    println!("Poisson {s}x{s}: n = {}, nnz = {}", a.nrows(), a.nnz());

    let k = 8;
    let oned = partition_1d_rowwise(&a, k, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    let plan = SpmvPlan::single_phase(&a, &s2d);
    let stats = plan.comm_stats();
    println!(
        "partition: K = {k}, LI {:.1}%, {} words / {} messages per SpMV",
        s2d.load_imbalance() * 100.0,
        stats.total_volume,
        stats.total_messages
    );

    // Manufactured solution: x* = sin profile, b = A x*.
    let x_star: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.37).sin()).collect();
    let b = a.spmv_alloc(&x_star);

    let res = cg_solve(&a, &s2d, &plan, &b, &CgOptions { tol: 1e-10, max_iters: 2000 });
    println!(
        "CG: {} iterations, converged = {}, relative residual {:.2e}",
        res.iterations, res.converged, res.relative_residual
    );
    let err = res.x.iter().zip(&x_star).map(|(g, w)| (g - w).abs()).fold(0.0f64, f64::max);
    println!("max |x - x*| = {err:.2e}");
    println!(
        "communication bill for the whole solve: {} words in {} messages",
        stats.total_volume * res.iterations as u64,
        stats.total_messages * res.iterations as u64
    );
    assert!(res.converged && err < 1e-6);

    // The same solver by operator injection: every backend runs the
    // identical CG core through a Session-built operator.
    println!("\nCG by operator injection, every backend:");
    for backend in Backend::all() {
        let mut session = Session::builder(&a).partition(&s2d).backend(backend).build();
        let t = std::time::Instant::now();
        let inj = cg_solve_with(&mut session, &b, &CgOptions { tol: 1e-10, max_iters: 2000 });
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {backend:<14} {} iterations, residual {:.2e}, {ms:.1} ms",
            inj.iterations, inj.relative_residual
        );
        assert!(inj.converged, "{backend}: CG must converge");
    }
}
