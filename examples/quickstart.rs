//! Quickstart: generate a matrix, build 1D and s2D partitions, compare
//! communication statistics, and run the fused single-phase SpMV.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::comm::s2d_comm_stats;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::gen::rmat::{rmat, RmatConfig};
use s2d::sim::MachineModel;
use s2d::spmv::simulate_plan;
use s2d::{Backend, PlanKind, Session};

fn main() {
    // A scale-free R-MAT graph: the degree skew that motivates s2D.
    let a = rmat(&RmatConfig::graph500(12, 8), 42).to_csr();
    let k = 16;
    println!("matrix: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    // Step 1: a 1D rowwise partition via column-net hypergraph partitioning.
    let oned = partition_1d_rowwise(&a, k, 0.03, 1);
    let stats_1d = s2d_comm_stats(&a, &oned.partition);
    println!(
        "1D : volume {:>6} words, max msgs {:>3}, load imbalance {:.1}%",
        stats_1d.total_volume,
        stats_1d.max_send_msgs(),
        oned.partition.load_imbalance() * 100.0
    );

    // Step 2: Algorithm 1 refines the nonzero assignment on the same
    // vector partition — identical communication pattern, less volume.
    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    let stats_s2d = s2d_comm_stats(&a, &s2d);
    println!(
        "s2D: volume {:>6} words, max msgs {:>3}, load imbalance {:.1}%",
        stats_s2d.total_volume,
        stats_s2d.max_send_msgs(),
        s2d.load_imbalance() * 100.0
    );
    assert!(stats_s2d.total_volume <= stats_1d.total_volume);

    // Step 3: one Session ties it together — single-phase plan on the
    // compiled sequential backend, setup paid once, then apply into
    // caller-owned buffers.
    let mut session = Session::builder(&a)
        .partition(&s2d)
        .plan_kind(PlanKind::SinglePhase)
        .backend(Backend::CompiledSeq)
        .build();
    let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 + (j % 10) as f64).collect();
    let mut y = vec![0.0; a.nrows()];
    session.apply(&x, &mut y);
    let y_ref = a.spmv_alloc(&x);
    let max_err = y.iter().zip(&y_ref).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
    println!("single-phase SpMV max |error| vs serial: {max_err:.2e}");

    // Step 4: what would it cost on an XE6-like machine?
    let report = simulate_plan(session.plan(), &MachineModel::cray_xe6());
    println!(
        "modelled parallel time {:.1} us, speedup {:.1} on {k} processors",
        report.parallel_time * 1e6,
        report.speedup()
    );
}
