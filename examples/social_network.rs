//! PageRank on a scale-free social graph with bounded-latency s2D-b —
//! the workload class ([12], [19], [20] in the paper) that breaks 1D
//! partitioning.
//!
//! An R-MAT graph (Graph500 parameters, like the paper's `rmat_20`) has
//! hub vertices whose rows pin thousands of nonzeros to one processor
//! under 1D. This example shows the pathology in numbers, fixes it with
//! s2D, bounds the message count with the s2D-b mesh, and then actually
//! runs distributed PageRank on the partition.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use s2d::baselines::partition_1d_rowwise;
use s2d::core::comm::s2d_comm_stats;
use s2d::core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d::gen::rmat::{rmat, RmatConfig};
use s2d::sparse::MatrixStats;
use s2d::spmv::SpmvPlan;
use s2d_solver::{pagerank, to_column_stochastic, PagerankOptions};

fn main() {
    // A scale-free graph: 2^13 vertices, edge factor 8.
    let a = rmat(&RmatConfig::graph500(13, 8), 7).to_csr();
    let stats = MatrixStats::of(&a);
    println!(
        "R-MAT graph: n = {}, nnz = {}, davg = {:.1}, dmax = {} (skew {:.0}x)",
        stats.nrows,
        stats.nnz,
        stats.row_davg,
        stats.row_dmax,
        stats.row_dmax as f64 / stats.row_davg
    );

    let k = 16;
    let oned = partition_1d_rowwise(&a, k, 0.03, 7);
    let s1d = s2d_comm_stats(&a, &oned.partition);
    println!(
        "\n1D rowwise : LI {:>6.1}%, volume {:>6}, max msgs {:>3}",
        oned.partition.load_imbalance() * 100.0,
        s1d.total_volume,
        s1d.max_send_msgs()
    );

    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    let ss = s2d_comm_stats(&a, &s2d);
    println!(
        "s2D        : LI {:>6.1}%, volume {:>6}, max msgs {:>3}  (same pattern as 1D)",
        s2d.load_imbalance() * 100.0,
        ss.total_volume,
        ss.max_send_msgs()
    );

    let mesh_plan = SpmvPlan::mesh_default(&a, &s2d);
    let sb = mesh_plan.comm_stats();
    println!(
        "s2D-b      : LI {:>6.1}%, volume {:>6}, max msgs {:>3}  (mesh-bounded)",
        s2d.load_imbalance() * 100.0,
        sb.total_volume,
        sb.max_send_msgs()
    );

    // PageRank on the column-stochastic link matrix, partitioned the
    // same way (the structure is identical).
    let (m, dangling) = to_column_stochastic(&a);
    let oned_m = partition_1d_rowwise(&m, k, 0.03, 7);
    let s2d_m = s2d_from_vector_partition(
        &m,
        &oned_m.row_part,
        &oned_m.col_part,
        &HeuristicConfig::default(),
    );
    let plan_m = SpmvPlan::single_phase(&m, &s2d_m);
    let pr = pagerank(&m, &s2d_m, &plan_m, &dangling, &PagerankOptions::default());
    let mass: f64 = pr.ranks.iter().sum();
    let mut top: Vec<(usize, f64)> = pr.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nPageRank: {} iterations, converged = {}, total mass {:.6}",
        pr.iterations, pr.converged, mass
    );
    println!("top pages: {:?}", &top[..5.min(top.len())]);
    assert!(pr.converged);
    assert!((mass - 1.0).abs() < 1e-6);
}
