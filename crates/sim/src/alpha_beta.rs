//! Distributed-machine cost model.
//!
//! The paper measures SpMV on a Cray XE6 (one core per node, Gemini 3D
//! torus). Offline we substitute the classic α–β–γ model: a phase costs
//!
//! ```text
//! T_phase = γ·max_p(flops_p) + α·max_p(msgs_p) + β·max_p(words_p)
//! ```
//!
//! where `msgs_p`/`words_p` take the larger of the send and receive side
//! of processor `p` (the bottleneck direction), and phases are separated
//! by barriers (no overlap), matching the bulk-synchronous structure of
//! all SpMV algorithms in the paper. Speedups are reported against
//! `T_serial = γ · ops`.
//!
//! The defaults are XE6-flavoured (≈2 µs MPI latency, ≈4 GB/s effective
//! per-link bandwidth, ≈1 G multiply-add/s effective scalar SpMV rate);
//! the *shape* of every comparison (who wins, where latency dominates) is
//! what the reproduction relies on, not the absolute times.

/// Machine cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Per-message latency in seconds (α).
    pub alpha: f64,
    /// Per-word (8-byte value) transfer time in seconds (β).
    pub beta: f64,
    /// Per fused multiply-add time in seconds (γ).
    pub gamma: f64,
}

impl MachineModel {
    /// Cray-XE6-flavoured defaults.
    pub fn cray_xe6() -> Self {
        MachineModel { alpha: 2.0e-6, beta: 2.0e-9, gamma: 1.0e-9 }
    }

    /// A latency-free machine — useful to isolate bandwidth effects.
    pub fn zero_latency() -> Self {
        MachineModel { alpha: 0.0, ..Self::cray_xe6() }
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::cray_xe6()
    }
}

/// One bulk-synchronous phase: per-processor compute work and the
/// messages exchanged at its end.
#[derive(Clone, Debug, Default)]
pub struct PhaseSpec {
    /// Per-processor multiply-add counts.
    pub compute: Vec<u64>,
    /// Messages `(src, dst, words)`.
    pub messages: Vec<(u32, u32, u64)>,
}

impl PhaseSpec {
    /// A pure compute phase.
    pub fn compute_only(compute: Vec<u64>) -> Self {
        PhaseSpec { compute, messages: Vec::new() }
    }

    /// A pure communication phase on `k` processors.
    pub fn comm_only(k: usize, messages: Vec<(u32, u32, u64)>) -> Self {
        PhaseSpec { compute: vec![0; k], messages }
    }
}

/// Timing report of a simulated parallel SpMV.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Number of processors.
    pub k: usize,
    /// Serial reference time (γ · serial ops).
    pub serial_time: f64,
    /// Modelled parallel time (sum of phase times).
    pub parallel_time: f64,
    /// Per-phase times, in order.
    pub phase_times: Vec<f64>,
}

impl SimReport {
    /// Speedup over the serial reference — the paper's `Sp` columns.
    pub fn speedup(&self) -> f64 {
        if self.parallel_time > 0.0 {
            self.serial_time / self.parallel_time
        } else {
            self.k as f64
        }
    }
}

/// Simulates `phases` on `k` processors; `serial_ops` is the multiply-add
/// count of the serial SpMV (= nnz).
pub fn simulate(k: usize, phases: &[PhaseSpec], serial_ops: u64, m: &MachineModel) -> SimReport {
    let mut phase_times = Vec::with_capacity(phases.len());
    for phase in phases {
        assert_eq!(phase.compute.len(), k, "compute vector must cover all processors");
        let max_flops = phase.compute.iter().copied().max().unwrap_or(0);
        let mut send_msgs = vec![0u64; k];
        let mut recv_msgs = vec![0u64; k];
        let mut send_words = vec![0u64; k];
        let mut recv_words = vec![0u64; k];
        for &(src, dst, words) in &phase.messages {
            assert!((src as usize) < k && (dst as usize) < k, "message endpoint out of range");
            send_msgs[src as usize] += 1;
            recv_msgs[dst as usize] += 1;
            send_words[src as usize] += words;
            recv_words[dst as usize] += words;
        }
        let max_msgs = (0..k).map(|p| send_msgs[p].max(recv_msgs[p])).max().unwrap_or(0);
        let max_words = (0..k).map(|p| send_words[p].max(recv_words[p])).max().unwrap_or(0);
        phase_times.push(
            m.gamma * max_flops as f64 + m.alpha * max_msgs as f64 + m.beta * max_words as f64,
        );
    }
    SimReport {
        k,
        serial_time: m.gamma * serial_ops as f64,
        parallel_time: phase_times.iter().sum(),
        phase_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_parallelism_without_comm() {
        let m = MachineModel::cray_xe6();
        let phases = vec![PhaseSpec::compute_only(vec![250, 250, 250, 250])];
        let r = simulate(4, &phases, 1000, &m);
        assert!((r.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn load_imbalance_caps_speedup() {
        let m = MachineModel::cray_xe6();
        let phases = vec![PhaseSpec::compute_only(vec![700, 100, 100, 100])];
        let r = simulate(4, &phases, 1000, &m);
        assert!((r.speedup() - 1000.0 / 700.0).abs() < 1e-9);
    }

    #[test]
    fn latency_dominates_many_small_messages() {
        let m = MachineModel::cray_xe6();
        // One processor sends 100 single-word messages: the α term alone
        // is 200 µs, dwarfing the 0.25 µs of compute.
        let messages: Vec<(u32, u32, u64)> = (0..100u32).map(|i| (0, 1 + i % 3, 1)).collect();
        let phases = vec![PhaseSpec { compute: vec![250, 250, 250, 250], messages }];
        let r = simulate(4, &phases, 1000, &m);
        assert!(r.parallel_time >= 100.0 * m.alpha);
        assert!(r.speedup() < 0.1);
    }

    #[test]
    fn receive_side_can_be_the_bottleneck() {
        let m = MachineModel { alpha: 1.0, beta: 0.0, gamma: 0.0 };
        let phases = vec![PhaseSpec::comm_only(4, vec![(1, 0, 1), (2, 0, 1), (3, 0, 1)])];
        let r = simulate(4, &phases, 0, &m);
        assert!((r.parallel_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phases_are_additive() {
        let m = MachineModel { alpha: 0.0, beta: 0.0, gamma: 1.0 };
        let phases =
            vec![PhaseSpec::compute_only(vec![10, 20]), PhaseSpec::compute_only(vec![30, 5])];
        let r = simulate(2, &phases, 100, &m);
        assert_eq!(r.phase_times, vec![20.0, 30.0]);
        assert!((r.parallel_time - 50.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_term_scales_with_words() {
        let m = MachineModel { alpha: 0.0, beta: 2.0, gamma: 0.0 };
        let phases = vec![PhaseSpec::comm_only(2, vec![(0, 1, 50)])];
        let r = simulate(2, &phases, 0, &m);
        assert!((r.parallel_time - 100.0).abs() < 1e-12);
    }
}
