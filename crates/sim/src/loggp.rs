//! Simplified LogGP cost model.
//!
//! LogGP decomposes message cost into network latency `L`, per-message
//! CPU overhead `o` (paid on *both* endpoints), per-message gap `g` and
//! per-byte gap `G`. We use the common bulk-synchronous simplification:
//! a phase costs each processor `o·(sends + recvs) + g·max(0, msgs − 1)
//! + G·words`, and the phase ends `L` after the busiest processor
//! finishes. Unlike α–β, overhead here is charged on both sides — a
//! processor receiving hundreds of messages (the paper's dense-row 1D
//! pathology) is penalized twice over, so if the method ranking holds
//! under LogGP too, it is robust to how message cost is attributed.

use crate::alpha_beta::{PhaseSpec, SimReport};

/// LogGP machine parameters.
#[derive(Clone, Copy, Debug)]
pub struct LogGpModel {
    /// Network latency per phase (seconds).
    pub l: f64,
    /// Per-message CPU overhead, each endpoint (seconds).
    pub o: f64,
    /// Inter-message gap (seconds).
    pub g: f64,
    /// Per-word gap (seconds; 8-byte words).
    pub big_g: f64,
    /// Per multiply-add compute time (seconds).
    pub gamma: f64,
}

impl LogGpModel {
    /// XE6-flavoured defaults: o ≈ 1 µs, g ≈ 0.5 µs, G ≈ 2 ns/word.
    pub fn cray_xe6() -> Self {
        LogGpModel { l: 1.0e-6, o: 1.0e-6, g: 5.0e-7, big_g: 2.0e-9, gamma: 1.0e-9 }
    }
}

/// Simulates `phases` under the simplified LogGP model.
///
/// # Panics
/// Panics on malformed phases (wrong compute length, endpoint range).
pub fn simulate_loggp(
    k: usize,
    phases: &[PhaseSpec],
    serial_ops: u64,
    m: &LogGpModel,
) -> SimReport {
    let mut phase_times = Vec::with_capacity(phases.len());
    for phase in phases {
        assert_eq!(phase.compute.len(), k, "compute vector must cover all processors");
        let max_flops = phase.compute.iter().copied().max().unwrap_or(0);
        let mut msgs = vec![0u64; k]; // sends + recvs per proc
        let mut words = vec![0u64; k];
        for &(src, dst, w) in &phase.messages {
            assert!((src as usize) < k && (dst as usize) < k, "message endpoint out of range");
            msgs[src as usize] += 1;
            msgs[dst as usize] += 1;
            words[src as usize] += w;
            words[dst as usize] += w;
        }
        let busiest = (0..k)
            .map(|p| {
                m.o * msgs[p] as f64
                    + m.g * msgs[p].saturating_sub(1) as f64
                    + m.big_g * words[p] as f64
            })
            .fold(0.0f64, f64::max);
        let latency = if phase.messages.is_empty() { 0.0 } else { m.l };
        phase_times.push(m.gamma * max_flops as f64 + busiest + latency);
    }
    SimReport {
        k,
        serial_time: m.gamma * serial_ops as f64,
        parallel_time: phase_times.iter().sum(),
        phase_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_charged_on_both_endpoints() {
        let m = LogGpModel { l: 0.0, o: 1.0, g: 0.0, big_g: 0.0, gamma: 0.0 };
        // One message: sender pays o, receiver pays o; busiest proc = 1.
        let r = simulate_loggp(2, &[PhaseSpec::comm_only(2, vec![(0, 1, 4)])], 0, &m);
        assert!((r.parallel_time - 1.0).abs() < 1e-12);
        // A hub receiving from 3 peers pays 3o — worse than any sender.
        let hub = simulate_loggp(
            4,
            &[PhaseSpec::comm_only(4, vec![(1, 0, 1), (2, 0, 1), (3, 0, 1)])],
            0,
            &m,
        );
        assert!((hub.parallel_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gap_applies_between_messages() {
        let m = LogGpModel { l: 0.0, o: 0.0, g: 2.0, big_g: 0.0, gamma: 0.0 };
        let r = simulate_loggp(3, &[PhaseSpec::comm_only(3, vec![(0, 1, 1), (0, 2, 1)])], 0, &m);
        // Proc 0 sends 2 messages: one gap.
        assert!((r.parallel_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_comm_pays_no_latency() {
        let m = LogGpModel::cray_xe6();
        let r = simulate_loggp(2, &[PhaseSpec::compute_only(vec![1000, 1000])], 2000, &m);
        assert!((r.parallel_time - 1000.0 * m.gamma).abs() < 1e-15);
        assert!((r.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dense_receiver_dominates_under_loggp() {
        // The same traffic under α–β (send-side max) vs LogGP: LogGP makes
        // the fan-in receiver the bottleneck.
        let msgs: Vec<(u32, u32, u64)> = (1..64u32).map(|s| (s, 0, 1)).collect();
        let phases = vec![PhaseSpec::comm_only(64, msgs)];
        let lg = simulate_loggp(64, &phases, 0, &LogGpModel::cray_xe6());
        // 63 messages * (o + g) ≈ 94.5 µs plus L.
        assert!(lg.parallel_time > 9.0e-5, "fan-in must dominate: {}", lg.parallel_time);
    }
}
