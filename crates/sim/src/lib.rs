//! Distributed-machine cost models for phase-structured parallel SpMV.
//!
//! The paper's timings come from a Cray XE6 (one core per node, Gemini
//! 3D torus). Offline we substitute analytic models:
//!
//! * [`alpha_beta`] — the classic α–β–γ bulk-synchronous model used by
//!   every headline table;
//! * [`topology`] — a torus-aware variant charging per-hop latency
//!   (XE6-flavoured ablation: does rank ordering survive placement?);
//! * [`loggp`] — a simplified LogGP model charging per-message overhead
//!   on both endpoints (ablation: does it survive a different cost
//!   decomposition?).
//!
//! All models consume the same [`PhaseSpec`] streams, so one plan
//! evaluates under all of them — the machine-model ablation bench
//! (`cargo bench -p s2d-bench --bench ablation_machine`) relies on this.

pub mod alpha_beta;
pub mod loggp;
pub mod topology;

pub use alpha_beta::{simulate, MachineModel, PhaseSpec, SimReport};
pub use loggp::{simulate_loggp, LogGpModel};
pub use topology::{simulate_on_torus, TorusModel};
