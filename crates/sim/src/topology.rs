//! Torus-aware cost model.
//!
//! The α–β–γ model charges every message the same latency. On the real
//! XE6 the Gemini network is a 3D torus with cut-through routing: a
//! message crossing `h` hops pays the injection latency once plus a
//! small per-hop routing delay. This module maps ranks onto a torus
//! (row-major) and charges `α + h·t_hop` per message — an ablation
//! showing the paper's method ranking is not an artifact of the
//! zero-diameter assumption.

use s2d_runtime::Torus3d;

use crate::alpha_beta::{MachineModel, PhaseSpec, SimReport};

/// Torus machine: the flat α–β–γ parameters plus a per-hop delay.
#[derive(Clone, Copy, Debug)]
pub struct TorusModel {
    /// Base machine parameters (α charged at injection).
    pub base: MachineModel,
    /// Extra latency per network hop (seconds). Gemini-flavoured default
    /// ≈ 100 ns.
    pub t_hop: f64,
    /// The torus shape; ranks map row-major onto it.
    pub torus: Torus3d,
}

impl TorusModel {
    /// An XE6/Gemini-flavoured torus for `k` ranks.
    pub fn xe6_for(k: usize) -> Self {
        TorusModel { base: MachineModel::cray_xe6(), t_hop: 1.0e-7, torus: Torus3d::cubic_for(k) }
    }
}

/// Simulates `phases` on the torus machine. Per phase:
///
/// ```text
/// T = γ·max_p flops_p
///   + max_p [ α·msgs_p + t_hop·hops_p + β·words_p ]
/// ```
///
/// where `msgs_p`, `hops_p` and `words_p` take the larger of the send
/// and receive direction of `p` (hops accumulate over its messages).
///
/// # Panics
/// Panics if the torus is smaller than `k` or a message endpoint is out
/// of range.
pub fn simulate_on_torus(
    k: usize,
    phases: &[PhaseSpec],
    serial_ops: u64,
    m: &TorusModel,
) -> SimReport {
    assert!(m.torus.size() >= k, "torus smaller than the rank count");
    let mut phase_times = Vec::with_capacity(phases.len());
    for phase in phases {
        assert_eq!(phase.compute.len(), k, "compute vector must cover all processors");
        let max_flops = phase.compute.iter().copied().max().unwrap_or(0);
        let mut send = vec![(0u64, 0u64, 0u64); k]; // (msgs, hops, words)
        let mut recv = vec![(0u64, 0u64, 0u64); k];
        for &(src, dst, words) in &phase.messages {
            assert!((src as usize) < k && (dst as usize) < k, "message endpoint out of range");
            let hops = u64::from(m.torus.hops(src, dst));
            let s = &mut send[src as usize];
            s.0 += 1;
            s.1 += hops;
            s.2 += words;
            let r = &mut recv[dst as usize];
            r.0 += 1;
            r.1 += hops;
            r.2 += words;
        }
        let comm = (0..k)
            .map(|p| {
                let cost = |(msgs, hops, words): (u64, u64, u64)| {
                    m.base.alpha * msgs as f64 + m.t_hop * hops as f64 + m.base.beta * words as f64
                };
                cost(send[p]).max(cost(recv[p]))
            })
            .fold(0.0f64, f64::max);
        phase_times.push(m.base.gamma * max_flops as f64 + comm);
    }
    SimReport {
        k,
        serial_time: m.base.gamma * serial_ops as f64,
        parallel_time: phase_times.iter().sum(),
        phase_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hop_delay_reduces_to_alpha_beta() {
        let phases = vec![PhaseSpec {
            compute: vec![100, 100, 100, 100],
            messages: vec![(0, 3, 5), (1, 2, 7)],
        }];
        let base = MachineModel::cray_xe6();
        let torus = TorusModel { base, t_hop: 0.0, torus: Torus3d::cubic_for(4) };
        let flat = crate::alpha_beta::simulate(4, &phases, 400, &base);
        let t = simulate_on_torus(4, &phases, 400, &torus);
        // With t_hop = 0 the only difference is max-of-max vs max-of-sum
        // decomposition: on this single-message-per-proc phase they agree.
        assert!((flat.parallel_time - t.parallel_time).abs() < 1e-12);
    }

    #[test]
    fn distant_messages_cost_more() {
        let near = vec![PhaseSpec::comm_only(8, vec![(0, 1, 1)])];
        // On a 2x2x2 torus rank 7 = (1,1,1) is 3 hops from rank 0.
        let far = vec![PhaseSpec::comm_only(8, vec![(0, 7, 1)])];
        let m = TorusModel::xe6_for(8);
        let t_near = simulate_on_torus(8, &near, 0, &m);
        let t_far = simulate_on_torus(8, &far, 0, &m);
        assert!(t_far.parallel_time > t_near.parallel_time);
    }

    #[test]
    fn wraparound_shortens_paths() {
        // 4x1x1 torus: 0 -> 3 wraps in one hop, 0 -> 2 needs two.
        let m = TorusModel {
            base: MachineModel { alpha: 0.0, beta: 0.0, gamma: 0.0 },
            t_hop: 1.0,
            torus: Torus3d::new(4, 1, 1),
        };
        let wrap = simulate_on_torus(4, &[PhaseSpec::comm_only(4, vec![(0, 3, 1)])], 0, &m);
        let mid = simulate_on_torus(4, &[PhaseSpec::comm_only(4, vec![(0, 2, 1)])], 0, &m);
        assert!((wrap.parallel_time - 1.0).abs() < 1e-12);
        assert!((mid.parallel_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_definition_matches_flat_model() {
        let phases = vec![PhaseSpec::compute_only(vec![250; 4])];
        let m = TorusModel::xe6_for(4);
        let r = simulate_on_torus(4, &phases, 1000, &m);
        assert!((r.speedup() - 4.0).abs() < 1e-9);
    }
}
