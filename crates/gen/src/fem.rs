//! FEM-like 3D stencil matrices.
//!
//! Structural-engineering matrices (crystk02, trdheim, 3dtube, pkustk12,
//! turon_m) are symmetric with near-regular row degrees in the tens —
//! the profile of 3D finite-element discretizations. We reproduce that
//! with a 3D grid whose stencil takes the `davg` nearest neighbour
//! offsets (by Chebyshev-then-Euclidean distance), giving interior
//! degrees ≈ `davg` and boundary degrees below it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2d_sparse::{Coo, Csr};

/// Generates a symmetric 3D stencil matrix with about `n_target` rows and
/// interior row degree ≈ `davg`. If `dmax > 2·davg`, a small geometric
/// tail of denser rows is added (3dtube/pkustk12 have such rows), mirrored
/// to keep the pattern symmetric.
pub fn fem_like(n_target: usize, davg: f64, dmax: usize, seed: u64) -> Csr {
    assert!(n_target >= 8, "grid too small");
    let side = (n_target as f64).cbrt().round().max(2.0) as usize;
    let (nx, ny, nz) = (side, side, n_target.div_ceil(side * side).max(1));
    let n = nx * ny * nz;
    let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;

    // Deterministic list of stencil offsets sorted by distance; take the
    // davg closest (including the origin).
    let want = (davg.round() as usize).max(1);
    let radius = 1 + (want as f64).cbrt().ceil() as i64 / 2;
    let mut offsets: Vec<(i64, i64, i64)> = Vec::new();
    for dz in -radius..=radius {
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                offsets.push((dx, dy, dz));
            }
        }
    }
    offsets.sort_by(|a, b| {
        let da = a.0 * a.0 + a.1 * a.1 + a.2 * a.2;
        let db = b.0 * b.0 + b.1 * b.1 + b.2 * b.2;
        da.cmp(&db).then(a.cmp(b))
    });
    // Keep a symmetric offset set: origin first, then pairs (o, -o).
    let mut chosen: Vec<(i64, i64, i64)> = vec![(0, 0, 0)];
    let mut idx = 1;
    while chosen.len() < want && idx < offsets.len() {
        let o = offsets[idx];
        idx += 1;
        if chosen.contains(&o) {
            continue;
        }
        chosen.push(o);
        let neg = (-o.0, -o.1, -o.2);
        if chosen.len() < want && !chosen.contains(&neg) {
            chosen.push(neg);
        }
    }

    let mut m = Coo::with_capacity(n, n, n * chosen.len());
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = id(x, y, z);
                for &(dx, dy, dz) in &chosen {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx >= 0
                        && yy >= 0
                        && zz >= 0
                        && (xx as usize) < nx
                        && (yy as usize) < ny
                        && (zz as usize) < nz
                    {
                        m.push(i, id(xx as usize, yy as usize, zz as usize), 1.0);
                    }
                }
            }
        }
    }

    // Dense-row tail for the FEM matrices that have one.
    if dmax > 2 * want {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut deg = dmax.min(n - 1);
        let mut count = 0usize;
        while deg > 2 * want && count < 8 {
            let r = rng.random_range(0..n);
            for _ in 0..deg {
                let c = rng.random_range(0..n);
                m.push(r, c, 1.0);
                m.push(c, r, 1.0);
            }
            deg /= 2;
            count += 1;
        }
    }
    m.compress();
    m.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_sparse::MatrixStats;

    #[test]
    fn interior_degree_near_target() {
        let a = fem_like(4096, 27.0, 27, 1);
        let s = MatrixStats::of(&a);
        assert!((s.row_davg - 27.0).abs() < 8.0, "davg {} too far from 27", s.row_davg);
        assert!(s.row_dmax <= 32, "dmax {}", s.row_dmax);
    }

    #[test]
    fn pattern_is_symmetric() {
        let a = fem_like(1000, 27.0, 27, 2);
        assert!(a.is_pattern_symmetric());
        let b = fem_like(1000, 27.0, 500, 3); // with dense tail
        assert!(b.is_pattern_symmetric());
    }

    #[test]
    fn dense_tail_raises_dmax() {
        let a = fem_like(2048, 27.0, 800, 4);
        let s = MatrixStats::of(&a);
        assert!(s.row_dmax >= 400, "dmax {} should reflect the tail", s.row_dmax);
    }

    #[test]
    fn deterministic() {
        let a = fem_like(512, 27.0, 300, 9);
        let b = fem_like(512, 27.0, 300, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_stencil_for_high_davg() {
        let a = fem_like(4096, 69.0, 81, 5);
        let s = MatrixStats::of(&a);
        assert!(s.row_davg > 45.0, "davg {}", s.row_davg);
        assert!((s.row_dmax as f64) < 1.5 * 81.0);
    }
}
