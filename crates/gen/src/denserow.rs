//! Background-sparse matrices with dense rows (and optionally columns).
//!
//! Optimization and circuit-simulation matrices (c-big, ASIC_680k, boyd2,
//! lp1, ins2, rajat30, pattern1) combine a low-degree background with a
//! geometric tail of very dense rows — `dmax` reaching a large fraction
//! of `n`. That tail is exactly what breaks 1D partitioning in the paper
//! (a row's nonzeros cannot be split), so reproducing it faithfully is
//! what makes Tables IV–VII meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2d_sparse::{Coo, Csr};

/// Configuration for [`dense_row_matrix`].
#[derive(Clone, Debug)]
pub struct DenseRowConfig {
    /// Matrix order.
    pub n: usize,
    /// Target nonzero count (approximate; duplicates are summed away).
    pub nnz: usize,
    /// Maximum row degree — the densest row.
    pub dmax: usize,
    /// Ratio between consecutive tail-row degrees (e.g. 0.5 halves).
    pub tail_decay: f64,
    /// Also mirror each dense row into a dense column (circuit matrices
    /// have both).
    pub mirror_cols: bool,
}

/// Generates the matrix: a diagonal, a uniform background filling the
/// budget left by the tail, and dense rows of degrees
/// `dmax, dmax·decay, dmax·decay², …` while budget remains.
pub fn dense_row_matrix(cfg: &DenseRowConfig, seed: u64) -> Csr {
    let DenseRowConfig { n, nnz, dmax, tail_decay, mirror_cols } = *cfg;
    assert!(n >= 4 && nnz >= n, "need at least a diagonal");
    assert!(dmax < n, "a row cannot exceed n-1 off-diagonal entries");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Coo::with_capacity(n, n, nnz + n);

    // Diagonal (keeps every row/column nonempty; typical for these
    // application classes).
    for i in 0..n {
        m.push(i, i, 1.0);
    }

    // Dense tail: spend at most half the budget on it. Columns of a dense
    // row are sampled *without* replacement (partial Fisher–Yates) so the
    // densest row really has `dmax` distinct entries.
    let tail_budget = (nnz - n) / 2;
    let mut deck: Vec<u32> = (0..n as u32).collect();
    let mut deg = dmax;
    let mut tail_nnz = 0usize;
    while deg >= 16 && tail_nnz + deg <= tail_budget.max(dmax) {
        let r = rng.random_range(0..n);
        for t in 0..deg {
            let pick = rng.random_range(t..n);
            deck.swap(t, pick);
            let c = deck[t] as usize;
            m.push(r, c, 1.0);
            if mirror_cols {
                m.push(c, r, 1.0);
            }
        }
        tail_nnz += if mirror_cols { 2 * deg } else { deg };
        if tail_nnz >= tail_budget {
            break;
        }
        let next = (deg as f64 * tail_decay) as usize;
        if next == deg {
            break;
        }
        deg = next;
    }

    // Background: fill the remaining budget uniformly.
    let remaining = nnz.saturating_sub(n + tail_nnz);
    for _ in 0..remaining {
        let r = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        m.push(r, c, 1.0);
    }
    m.compress();
    m.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_sparse::MatrixStats;

    fn cfg(n: usize, nnz: usize, dmax: usize) -> DenseRowConfig {
        DenseRowConfig { n, nnz, dmax, tail_decay: 0.5, mirror_cols: false }
    }

    #[test]
    fn hits_dmax_and_nnz_targets() {
        let c = cfg(10_000, 60_000, 5_000);
        let a = dense_row_matrix(&c, 1);
        let s = MatrixStats::of(&a);
        // Duplicates shrink both a little.
        assert!(s.row_dmax > 4_000, "dmax {}", s.row_dmax);
        assert!(s.nnz > 50_000 && s.nnz <= 61_000, "nnz {}", s.nnz);
    }

    #[test]
    fn background_keeps_low_average() {
        let c = cfg(10_000, 40_000, 3_000);
        let a = dense_row_matrix(&c, 2);
        let s = MatrixStats::of(&a);
        assert!(s.row_davg < 6.0, "davg {}", s.row_davg);
        assert!((s.row_dmax as f64) > 100.0 * 1.0, "skew expected");
    }

    #[test]
    fn mirrored_columns_create_dense_columns() {
        let c = DenseRowConfig { mirror_cols: true, ..cfg(5_000, 30_000, 2_000) };
        let a = dense_row_matrix(&c, 3);
        let s = MatrixStats::of(&a);
        assert!(s.col_dmax > 1_500, "col dmax {}", s.col_dmax);
    }

    #[test]
    fn deterministic() {
        let c = cfg(2_000, 10_000, 500);
        assert_eq!(dense_row_matrix(&c, 7), dense_row_matrix(&c, 7));
    }

    #[test]
    fn no_empty_rows_or_cols() {
        let c = cfg(1_000, 5_000, 300);
        let a = dense_row_matrix(&c, 4);
        assert_eq!(s2d_sparse::stats::nonempty_rows(&a), 1_000);
        assert_eq!(s2d_sparse::stats::nonempty_cols(&a), 1_000);
    }
}
