//! The paper's two test suites, reproduced as synthetic doubles.
//!
//! Suite A is Table I (comparison with 1D and 2D methods); suite B is
//! Table IV (matrices with dense rows, for the bounded-latency methods).
//! Every spec records the paper's `n / nnz / davg / dmax` so the bench
//! harnesses can print reference and generated statistics side by side.
//!
//! The `S2D_SCALE` environment variable selects the size: `tiny` (~1/128,
//! CI smoke), `small` (~1/16, the default), `paper` (full size).

use s2d_sparse::Csr;

use crate::denserow::{dense_row_matrix, DenseRowConfig};
use crate::fem::fem_like;
use crate::powerlaw::power_law;
use crate::rmat::{rmat, RmatConfig};

/// Experiment scale: a divisor applied to the paper's matrix sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~1/128 of the paper's nonzeros — CI smoke tests.
    Tiny,
    /// ~1/16 — the default for `cargo bench`.
    Small,
    /// Full size.
    Paper,
}

impl Scale {
    /// Reads `S2D_SCALE` (`tiny` | `small` | `paper`); defaults to
    /// [`Scale::Small`].
    pub fn from_env() -> Self {
        match std::env::var("S2D_SCALE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "tiny" => Scale::Tiny,
            "paper" => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// The size divisor.
    pub fn divisor(self) -> usize {
        match self {
            Scale::Tiny => 128,
            Scale::Small => 16,
            Scale::Paper => 1,
        }
    }

    /// Processor counts for suite-A experiments (Table II uses
    /// K ∈ {16, 64, 256}).
    pub fn ks_suite_a(self) -> Vec<usize> {
        match self {
            Scale::Tiny => vec![16, 64],
            _ => vec![16, 64, 256],
        }
    }

    /// Processor counts for suite-B experiments (Tables V–VII use
    /// K ∈ {256, 1024, 4096}).
    pub fn ks_suite_b(self) -> Vec<usize> {
        match self {
            Scale::Tiny => vec![64, 256],
            Scale::Small => vec![256, 1024],
            Scale::Paper => vec![256, 1024, 4096],
        }
    }
}

/// The paper's reported statistics for a matrix.
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Order.
    pub n: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Average row degree.
    pub davg: f64,
    /// Maximum row degree.
    pub dmax: usize,
}

/// Generator class of a matrix double.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// 3D stencil (structural/FEM).
    Fem,
    /// Sparse background + dense-row tail; `mirror` adds dense columns.
    DenseRows { mirror: bool },
    /// Chung–Lu scale-free graph.
    PowerLaw { gamma: f64 },
    /// R-MAT with the paper's Graph500 parameters.
    Rmat,
}

/// A matrix of one of the paper's suites.
#[derive(Clone, Copy, Debug)]
pub struct MatrixSpec {
    /// UFL/SNAP name as printed in the paper.
    pub name: &'static str,
    /// The paper's application column.
    pub application: &'static str,
    /// The paper's Table I/IV statistics.
    pub paper: PaperStats,
    kind: Kind,
}

impl MatrixSpec {
    /// Scaled generation targets `(n, nnz, dmax)` for `scale`.
    ///
    /// `dmax` is divided like `n` (the dense row keeps covering the same
    /// fraction of the columns), but for skewed matrices it is floored at
    /// `min(n/2, 5·davg)` so the skew that drives the paper's comparisons
    /// survives even the tiny scale.
    pub fn targets(&self, scale: Scale) -> (usize, usize, usize) {
        let d = scale.divisor();
        let n = (self.paper.n / d).max(256);
        let nnz = (self.paper.nnz / d).max(4 * n);
        let skewed = self.paper.dmax as f64 > 10.0 * self.paper.davg;
        let floor = if skewed { (n / 2).min((5.0 * self.paper.davg) as usize).max(8) } else { 8 };
        let dmax = (self.paper.dmax / d).clamp(floor, n - 1);
        (n, nnz, dmax)
    }

    /// Generates the double at `scale`. Deterministic in `(self, scale,
    /// seed)`.
    pub fn generate(&self, scale: Scale, seed: u64) -> Csr {
        let (n, nnz, dmax) = self.targets(scale);
        let seed = seed ^ fnv(self.name);
        match self.kind {
            Kind::Fem => fem_like(n, self.paper.davg, dmax, seed),
            Kind::DenseRows { mirror } => dense_row_matrix(
                &DenseRowConfig { n, nnz, dmax, tail_decay: 0.5, mirror_cols: mirror },
                seed,
            ),
            Kind::PowerLaw { gamma } => power_law(n, nnz, gamma, dmax, seed),
            Kind::Rmat => {
                let scale_log = (n as f64).log2().round() as u32;
                let ef = (self.paper.davg / 2.0).round().max(1.0) as usize;
                rmat(&RmatConfig::graph500(scale_log, ef), seed).to_csr()
            }
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Suite A — Table I: the eight matrices compared against 1D and 2D.
pub fn suite_a() -> Vec<MatrixSpec> {
    vec![
        MatrixSpec {
            name: "crystk02",
            application: "materials problem",
            paper: PaperStats { n: 13_965, nnz: 968_583, davg: 69.4, dmax: 81 },
            kind: Kind::Fem,
        },
        MatrixSpec {
            name: "turon_m",
            application: "structural engineering",
            paper: PaperStats { n: 189_924, nnz: 1_690_876, davg: 8.9, dmax: 11 },
            kind: Kind::Fem,
        },
        MatrixSpec {
            name: "trdheim",
            application: "structural engineering",
            paper: PaperStats { n: 22_098, nnz: 1_935_324, davg: 87.6, dmax: 150 },
            kind: Kind::Fem,
        },
        MatrixSpec {
            name: "c-big",
            application: "non-linear optimization",
            paper: PaperStats { n: 345_241, nnz: 2_340_859, davg: 6.8, dmax: 19_578 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "ASIC_680k",
            application: "circuit simulation",
            paper: PaperStats { n: 682_862, nnz: 2_638_997, davg: 3.9, dmax: 388_488 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "3dtube",
            application: "structural engineering",
            paper: PaperStats { n: 45_330, nnz: 3_213_618, davg: 70.9, dmax: 2_364 },
            kind: Kind::Fem,
        },
        MatrixSpec {
            name: "pkustk12",
            application: "structural engineering",
            paper: PaperStats { n: 94_653, nnz: 7_512_317, davg: 79.4, dmax: 4_146 },
            kind: Kind::Fem,
        },
        MatrixSpec {
            name: "pattern1",
            application: "optimization problem",
            paper: PaperStats { n: 19_242, nnz: 9_323_432, davg: 484.5, dmax: 6_028 },
            kind: Kind::DenseRows { mirror: false },
        },
    ]
}

/// Suite B — Table IV: the eight dense-row matrices for the
/// bounded-latency comparison.
pub fn suite_b() -> Vec<MatrixSpec> {
    vec![
        MatrixSpec {
            name: "boyd2",
            application: "optimization",
            paper: PaperStats { n: 466_316, nnz: 1_500_397, davg: 3.2, dmax: 93_263 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "lp1",
            application: "optimization",
            paper: PaperStats { n: 534_388, nnz: 1_643_420, davg: 3.1, dmax: 249_644 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "c-big",
            application: "non-linear opt.",
            paper: PaperStats { n: 345_241, nnz: 2_340_859, davg: 6.8, dmax: 19_579 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "ASIC_680k",
            application: "optimization",
            paper: PaperStats { n: 682_862, nnz: 2_638_997, davg: 3.9, dmax: 388_489 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "ins2",
            application: "circuit sim.",
            paper: PaperStats { n: 309_412, nnz: 2_751_484, davg: 8.9, dmax: 309_413 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "com-Youtube",
            application: "Youtube social",
            paper: PaperStats { n: 1_157_827, nnz: 5_975_248, davg: 5.2, dmax: 28_755 },
            kind: Kind::PowerLaw { gamma: 2.2 },
        },
        MatrixSpec {
            name: "rajat30",
            application: "circuit sim.",
            paper: PaperStats { n: 643_994, nnz: 6_175_244, davg: 9.6, dmax: 454_747 },
            kind: Kind::DenseRows { mirror: true },
        },
        MatrixSpec {
            name: "rmat_20",
            application: "Graph500 ben.",
            paper: PaperStats { n: 1_048_576, nnz: 8_174_570, davg: 7.8, dmax: 23_716 },
            kind: Kind::Rmat,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_sparse::MatrixStats;

    #[test]
    fn suites_have_eight_matrices_each() {
        assert_eq!(suite_a().len(), 8);
        assert_eq!(suite_b().len(), 8);
    }

    #[test]
    fn tiny_doubles_track_paper_statistics() {
        for spec in suite_a() {
            let a = spec.generate(Scale::Tiny, 1);
            let s = MatrixStats::of(&a);
            let (n, _, dmax) = spec.targets(Scale::Tiny);
            assert!(s.nrows >= n / 2 && s.nrows <= 2 * n, "{}: n {}", spec.name, s.nrows);
            assert!(
                s.row_davg > spec.paper.davg * 0.3 && s.row_davg < spec.paper.davg * 3.0,
                "{}: davg {} vs paper {}",
                spec.name,
                s.row_davg,
                spec.paper.davg
            );
            // Skewed matrices must stay skewed: strongly for the true
            // dense-row classes, mildly for the FEM matrices with a tail.
            // Exception: when scaling forces the matrix dense (davg close
            // to n, e.g. pattern1 at 1/128), the paper-level skew cannot
            // exist at this size — documented limitation of the doubles.
            let (n_scaled, _, _) = spec.targets(Scale::Tiny);
            if spec.paper.davg > n_scaled as f64 / 8.0 {
                continue;
            }
            let paper_skew = spec.paper.dmax as f64 / spec.paper.davg;
            if paper_skew > 50.0 {
                assert!(
                    s.row_dmax as f64 > 5.0 * s.row_davg,
                    "{}: dmax {} davg {}",
                    spec.name,
                    s.row_dmax,
                    s.row_davg
                );
            } else if paper_skew > 10.0 {
                assert!(
                    s.row_dmax as f64 > 2.0 * s.row_davg,
                    "{}: dmax {} davg {}",
                    spec.name,
                    s.row_dmax,
                    s.row_davg
                );
            }
            let _ = dmax;
        }
    }

    #[test]
    fn suite_b_dense_rows_exist_at_tiny_scale() {
        for spec in suite_b() {
            let a = spec.generate(Scale::Tiny, 1);
            let s = MatrixStats::of(&a);
            assert!(
                (s.row_dmax as f64) > 4.0 * s.row_davg,
                "{}: dense-row tail missing (dmax {} davg {})",
                spec.name,
                s.row_dmax,
                s.row_davg
            );
        }
    }

    #[test]
    fn scaling_divides_sizes() {
        let spec = &suite_a()[3]; // c-big
        let (nt, _, _) = spec.targets(Scale::Tiny);
        let (ns, _, _) = spec.targets(Scale::Small);
        let (np, _, _) = spec.targets(Scale::Paper);
        assert!(nt < ns && ns < np);
        assert_eq!(np, spec.paper.n);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &suite_b()[0];
        assert_eq!(spec.generate(Scale::Tiny, 9), spec.generate(Scale::Tiny, 9));
    }

    #[test]
    fn scale_from_env_default_is_small() {
        // Do not set the variable; just exercise the parser default path.
        if std::env::var("S2D_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }
}
