//! R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos 2004).
//!
//! Used by the paper for `rmat_20`: a scale-20 graph with
//! `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`, edges made undirected —
//! Graph500-style parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2d_sparse::Coo;

/// R-MAT parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// `log2` of the vertex count.
    pub scale: u32,
    /// Directed edges to sample per vertex (before symmetrization and
    /// deduplication).
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Quadrant probabilities; must sum to 1.
    pub b: f64,
    /// Quadrant probabilities; must sum to 1.
    pub c: f64,
    /// Quadrant probabilities; must sum to 1.
    pub d: f64,
    /// Make the pattern symmetric (paper: "edges made undirected").
    pub symmetric: bool,
}

impl RmatConfig {
    /// The paper's parameters: `a=0.57, b=c=0.19, d=0.05`, undirected.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatConfig { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19, d: 0.05, symmetric: true }
    }
}

/// Generates an R-MAT matrix. Duplicate edges are summed away by the
/// triplet compression, so the nonzero count is slightly below
/// `edge_factor · 2^scale` (times 2 when symmetric).
pub fn rmat(cfg: &RmatConfig, seed: u64) -> Coo {
    let total = cfg.a + cfg.b + cfg.c + cfg.d;
    assert!((total - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1");
    let n = 1usize << cfg.scale;
    let nedges = cfg.edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Coo::with_capacity(n, n, if cfg.symmetric { 2 * nedges } else { nedges });
    for _ in 0..nedges {
        let (mut r, mut c) = (0usize, 0usize);
        for level in (0..cfg.scale).rev() {
            let p: f64 = rng.random();
            let bit = 1usize << level;
            if p < cfg.a {
                // top-left: nothing set
            } else if p < cfg.a + cfg.b {
                c |= bit;
            } else if p < cfg.a + cfg.b + cfg.c {
                r |= bit;
            } else {
                r |= bit;
                c |= bit;
            }
        }
        m.push(r, c, 1.0);
        if cfg.symmetric && r != c {
            m.push(c, r, 1.0);
        }
    }
    m.compress();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_sparse::MatrixStats;

    #[test]
    fn shape_and_determinism() {
        let cfg = RmatConfig::graph500(10, 8);
        let m1 = rmat(&cfg, 42);
        let m2 = rmat(&cfg, 42);
        assert_eq!(m1.nrows(), 1024);
        assert_eq!(
            m1.iter().collect::<Vec<_>>(),
            m2.iter().collect::<Vec<_>>(),
            "same seed must reproduce the same matrix"
        );
        let m3 = rmat(&cfg, 43);
        assert_ne!(m1.iter().collect::<Vec<_>>().len(), 0,);
        assert_ne!(
            m1.iter().collect::<Vec<_>>(),
            m3.iter().collect::<Vec<_>>(),
            "different seeds must differ"
        );
    }

    #[test]
    fn symmetric_output_is_symmetric() {
        let m = rmat(&RmatConfig::graph500(8, 8), 7).to_csr();
        assert!(m.is_pattern_symmetric());
    }

    #[test]
    fn skewed_parameters_produce_skewed_degrees() {
        // Graph500 parameters concentrate mass in the top-left quadrant:
        // the max degree should far exceed the average.
        let m = rmat(&RmatConfig::graph500(12, 8), 1).to_csr();
        let s = MatrixStats::of(&m);
        assert!(
            (s.row_dmax as f64) > 8.0 * s.row_davg,
            "dmax {} vs davg {}",
            s.row_dmax,
            s.row_davg
        );
    }

    #[test]
    fn uniform_parameters_are_not_skewed() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 8,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            symmetric: false,
        };
        let m = rmat(&cfg, 1).to_csr();
        let s = MatrixStats::of(&m);
        assert!((s.row_dmax as f64) < 6.0 * s.row_davg);
    }

    #[test]
    fn edge_count_near_target() {
        let cfg = RmatConfig { symmetric: false, ..RmatConfig::graph500(12, 8) };
        let m = rmat(&cfg, 3);
        let target = 8 * 4096;
        assert!(m.nnz() <= target);
        assert!(m.nnz() > target * 8 / 10, "{} of {target}", m.nnz());
    }
}
