//! Chung–Lu scale-free graphs (the com-Youtube double).
//!
//! Vertices get power-law weights capped at `dmax`; edges sample both
//! endpoints proportionally to weight, giving expected degrees close to
//! the weights. Symmetrized and deduplicated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2d_sparse::{Coo, Csr};

/// Generates an undirected scale-free graph with `n` vertices, about
/// `nnz` nonzeros, power-law exponent `gamma` (typically 2–3) and a
/// degree cap of `dmax`.
pub fn power_law(n: usize, nnz: usize, gamma: f64, dmax: usize, seed: u64) -> Csr {
    assert!(n >= 4);
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);

    // Weights w_i = c · (i + i0)^(-1/(gamma-1)), capped.
    let exponent = -1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 10) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    let target_sum = nnz as f64; // ~2 endpoints per (directed) sample below
    for w in &mut weights {
        *w = (*w / sum * target_sum).min(dmax as f64);
    }
    // Cumulative distribution for endpoint sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut StdRng| -> usize {
        let t: f64 = rng.random_range(0.0..total);
        cdf.partition_point(|&c| c < t).min(n - 1)
    };

    let m_edges = nnz / 2;
    let mut m = Coo::with_capacity(n, n, 2 * m_edges + n);
    for i in 0..n {
        m.push(i, i, 1.0); // diagonal keeps rows nonempty (adjacency+I)
    }
    for _ in 0..m_edges {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u != v {
            m.push(u, v, 1.0);
            m.push(v, u, 1.0);
        }
    }
    m.compress();
    m.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_sparse::MatrixStats;

    #[test]
    fn shape_and_symmetry() {
        let a = power_law(5_000, 40_000, 2.3, 1_000, 1);
        assert!(a.is_pattern_symmetric());
        let s = MatrixStats::of(&a);
        assert!(s.nnz > 25_000, "nnz {}", s.nnz);
    }

    #[test]
    fn heavy_tail_exists() {
        let a = power_law(10_000, 80_000, 2.2, 3_000, 2);
        let s = MatrixStats::of(&a);
        assert!((s.row_dmax as f64) > 10.0 * s.row_davg, "dmax {} davg {}", s.row_dmax, s.row_davg);
    }

    #[test]
    fn cap_limits_hub_degree() {
        let a = power_law(10_000, 80_000, 2.2, 200, 3);
        let s = MatrixStats::of(&a);
        // Cap plus symmetrization slack.
        assert!(s.row_dmax <= 450, "dmax {}", s.row_dmax);
    }

    #[test]
    fn deterministic() {
        assert_eq!(power_law(1_000, 8_000, 2.5, 300, 5), power_law(1_000, 8_000, 2.5, 300, 5));
    }
}
