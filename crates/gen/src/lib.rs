//! Synthetic sparse matrix generators.
//!
//! The paper evaluates on UFL/SNAP matrices that cannot be downloaded
//! offline. Each generator here reproduces the *shape statistics* that
//! drive the paper's comparisons — size, density, degree skew, dense
//! rows/columns, scale-free tails — as documented per matrix in
//! `DESIGN.md`:
//!
//! * [`fem`] — 3D stencil matrices (crystk02, turon_m, trdheim, 3dtube,
//!   pkustk12);
//! * [`denserow`] — background-sparse matrices with a geometric tail of
//!   dense rows and columns (c-big, ASIC_680k, boyd2, lp1, ins2, rajat30,
//!   pattern1);
//! * [`powerlaw`] — Chung–Lu scale-free graphs (com-Youtube);
//! * [`rmat`](mod@rmat) — the R-MAT generator with the paper's exact parameters
//!   (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) for rmat_20;
//! * [`suites`] — Table I ("suite A") and Table IV ("suite B") doubles,
//!   with a scale knob (`S2D_SCALE` = `tiny` | `small` | `paper`).

pub mod denserow;
pub mod fem;
pub mod powerlaw;
pub mod rmat;
pub mod suites;

pub use rmat::{rmat, RmatConfig};
pub use suites::{suite_a, suite_b, MatrixSpec, PaperStats, Scale};
