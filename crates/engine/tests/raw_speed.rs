//! Raw-speed acceptance: the explicit-SIMD kernels and the NNZ-chunked
//! intra-rank schedule are *pure speed* features — every test here pins
//! that down with exact (bitwise) equality, not tolerances.
//!
//! * ISA differential: scalar / AVX2 / auto produce byte-identical
//!   blocks for every kernel format and batch width, because the vector
//!   lanes map to the batch dimension (lane `q` is RHS `q`) and no FMA
//!   contraction is used — each column's accumulation chain is the
//!   scalar chain.
//! * Schedule differential: the chunked pool splits kernels only at row
//!   boundaries, so any worker count × chunk size × repetition yields
//!   the rank-split (and sequential) result exactly.
//! * The per-worker load accounting is conserved: planned multiply-adds
//!   sum to the plan's op count under both schedules.

use std::sync::Arc;

use s2d_core::optimal::s2d_optimal;
use s2d_core::partition::SpmvPartition;
use s2d_engine::{
    CompiledPlan, CompiledPoolOperator, CompiledSeqOperator, KernelFormat, KernelIsa,
    ParallelEngine, PoolOptions, PoolSchedule,
};
use s2d_gen::fem::fem_like;
use s2d_gen::powerlaw::power_law;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_sparse::Csr;
use s2d_spmv::{SpmvOperator, SpmvPlan};

const RS: [usize; 3] = [1, 4, 8];
const MAX_R: usize = 8;

/// The three matrix families the benches run: degree-skewed R-MAT,
/// heavy-tailed power-law, and a regular FEM-like stencil.
fn matrices() -> Vec<(&'static str, Csr)> {
    vec![
        ("rmat", rmat(&RmatConfig::graph500(6, 6), 7).to_csr()),
        ("powerlaw", power_law(96, 6 * 96, 2.5, 48, 11)),
        ("fem", fem_like(64, 7.0, 14, 13)),
    ]
}

fn plan_for(a: &Csr, k: usize) -> SpmvPlan {
    let n = a.nrows();
    let per = n.div_ceil(k);
    let parts: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
    let p: SpmvPartition = s2d_optimal(a, &parts, &parts, k);
    SpmvPlan::single_phase(a, &p)
}

/// Row-major `n × r` block with genuinely distinct columns.
fn block_for(n: usize, r: usize, seed: u64) -> Vec<f64> {
    (0..n * r)
        .map(|i| {
            let (g, q) = (i / r, i % r);
            ((g as u64).wrapping_mul(2654435761).wrapping_add(seed + q as u64) % 101) as f64 / 13.0
                - 3.0
        })
        .collect()
}

/// Every ISA worth testing on this machine: the portable reference,
/// the explicit AVX2 paths where the CPU has them, and the probe.
fn isas() -> Vec<KernelIsa> {
    let mut isas = vec![KernelIsa::Scalar, KernelIsa::Auto];
    if KernelIsa::avx2_available() {
        isas.push(KernelIsa::Avx2);
    }
    isas
}

/// Scalar vs AVX2 vs auto, across every kernel format and batch width,
/// on the sequential compiled path: exact equality, column by column
/// and word by word.
#[test]
fn isa_choice_is_bitwise_invisible_on_the_sequential_path() {
    for (name, a) in matrices() {
        let plan = Arc::new(plan_for(&a, 4));
        for format in KernelFormat::all() {
            let mut reference: Option<Vec<f64>> = None;
            for isa in isas() {
                let cp = CompiledPlan::compile_with_isa(&plan, format, isa);
                assert_eq!(cp.isa, isa, "{name}/{format}: compiled plan must carry its ISA");
                assert_eq!(
                    cp.total_ops(),
                    plan.total_ops(),
                    "{name}/{format}/{isa}: ISA must not change op accounting"
                );
                let mut op = CompiledSeqOperator::new(cp, MAX_R);
                let mut all = Vec::new();
                for r in RS {
                    let x = block_for(plan.ncols, r, 23);
                    let mut y = vec![0.0; plan.nrows * r];
                    op.apply_batch(&x, &mut y, r);
                    all.extend(y);
                }
                match &reference {
                    None => reference = Some(all),
                    Some(want) => {
                        assert_eq!(&all, want, "{name}/{format}/{isa}: ISA changed the bits")
                    }
                }
            }
        }
    }
}

/// The same exact-equality contract through the worker pool, where the
/// SIMD kernels run on chunk sub-ranges rather than whole kernels.
#[test]
fn isa_choice_is_bitwise_invisible_on_the_pool_path() {
    for (name, a) in matrices() {
        let plan = Arc::new(plan_for(&a, 4));
        let mut reference: Option<Vec<f64>> = None;
        for isa in isas() {
            let cp = CompiledPlan::compile_with_isa(&plan, KernelFormat::Auto, isa);
            let mut op = CompiledPoolOperator::with_config(cp, 3, MAX_R, false, None);
            let x = block_for(plan.ncols, MAX_R, 29);
            let mut y = vec![0.0; plan.nrows * MAX_R];
            op.apply_batch_iters(&x, &mut y, MAX_R, 3);
            match &reference {
                None => reference = Some(y),
                Some(want) => assert_eq!(&y, want, "{name}/{isa}: pool ISA changed the bits"),
            }
        }
    }
}

/// Chunked scheduling is bitwise-deterministic: every worker count ×
/// chunk granularity × repetition reproduces the rank-split result
/// exactly, on every matrix family and under chained iterations (which
/// exercise the seed/sync barrier structure, not just one pass).
#[test]
fn chunked_pool_is_bitwise_across_threads_chunks_and_repeats() {
    for (name, a) in matrices() {
        let plan = Arc::new(plan_for(&a, 4));
        let x = block_for(plan.ncols, 4, 31);
        let want = {
            let cp = CompiledPlan::compile_with(&plan, KernelFormat::Auto);
            let mut engine = ParallelEngine::with_options(
                cp,
                PoolOptions {
                    threads: 1,
                    width: 4,
                    schedule: PoolSchedule::RankSplit,
                    ..PoolOptions::default()
                },
            );
            let mut y = vec![0.0; plan.nrows * 4];
            engine.execute_batch_iters(&x, &mut y, 4, 3);
            y
        };
        for threads in [1, 2, 3, 4] {
            for chunk_ops in [0, 1, 7, 1 << 20] {
                let cp = CompiledPlan::compile_with(&plan, KernelFormat::Auto);
                let mut engine = ParallelEngine::with_options(
                    cp,
                    PoolOptions {
                        threads,
                        width: 4,
                        schedule: PoolSchedule::NnzChunked { chunk_ops },
                        ..PoolOptions::default()
                    },
                );
                assert_eq!(engine.schedule(), PoolSchedule::NnzChunked { chunk_ops });
                for rep in 0..2 {
                    let mut y = vec![0.0; plan.nrows * 4];
                    engine.execute_batch_iters(&x, &mut y, 4, 3);
                    assert_eq!(
                        y, want,
                        "{name}: t={threads} chunk={chunk_ops} rep={rep} diverged from rank-split"
                    );
                }
            }
        }
    }
}

/// The fixed chunk→worker map conserves work: planned per-worker
/// multiply-adds sum to the compiled plan's total under both schedules,
/// and the operator surfaces them through the `SpmvOperator` trait.
#[test]
fn worker_loads_are_conserved_and_surface_through_the_operator() {
    let (_, a) = &matrices()[1];
    let plan = Arc::new(plan_for(a, 4));
    let cp = CompiledPlan::compile_with(&plan, KernelFormat::CsrSlice);
    let total = cp.total_ops();
    for schedule in [PoolSchedule::RankSplit, PoolSchedule::NnzChunked { chunk_ops: 0 }] {
        let engine = ParallelEngine::with_options(
            cp.clone(),
            PoolOptions { threads: 3, width: 1, schedule, ..PoolOptions::default() },
        );
        assert_eq!(
            engine.worker_loads().iter().sum::<u64>(),
            total,
            "{}: planned loads must cover every multiply-add exactly once",
            schedule.label()
        );
        assert!(engine.load_imbalance() >= 1.0, "{}: max/mean is at least 1", schedule.label());
    }
    // And through the trait object, the way the profile report gets it.
    let op = CompiledPoolOperator::with_config(cp, 3, 1, false, None);
    let loads = (&op as &dyn SpmvOperator).worker_loads().expect("pool operators report loads");
    assert_eq!(loads.iter().sum::<u64>(), total);
    // The sequential path has no workers to report.
    let cp_seq = CompiledPlan::compile(&plan);
    let seq = CompiledSeqOperator::new(cp_seq, 1);
    assert!((&seq as &dyn SpmvOperator).worker_loads().is_none());
}

/// A pinned pool (core affinity + first-touch placement) is still
/// bitwise identical — placement must never change the numbers.
#[test]
fn pinned_pool_matches_unpinned_at_plan_level() {
    let (_, a) = &matrices()[0];
    let plan = Arc::new(plan_for(a, 4));
    let x = block_for(plan.ncols, 4, 37);
    let mut outs = Vec::new();
    for pin in [false, true] {
        let cp = CompiledPlan::compile_with(&plan, KernelFormat::Auto);
        let mut op = CompiledPoolOperator::with_config(cp, 2, 4, pin, None);
        let mut y = vec![0.0; plan.nrows * 4];
        op.apply_batch_iters(&x, &mut y, 4, 2);
        outs.push(y);
    }
    assert_eq!(outs[0], outs[1], "pinning changed the bits");
}
