//! Property tests: the compiled engine (sequential workspace executor
//! and the persistent worker pool) must reproduce `execute_mailbox` on
//! random R-MAT and power-law matrices, across all four plan kinds —
//! row-parallel 1D, two-phase 2D, single-phase s2D, mesh-routed s2D-b —
//! and processor counts K ∈ {1, 2, 4, 7, 16}.

use proptest::prelude::*;
use s2d_core::optimal::s2d_optimal;
use s2d_core::partition::SpmvPartition;
use s2d_engine::{CompiledPlan, ParallelEngine};
use s2d_gen::powerlaw::power_law;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_sparse::Csr;
use s2d_spmv::SpmvPlan;

const KS: [usize; 5] = [1, 2, 4, 7, 16];

/// Random small matrix: R-MAT (degree-skewed) or power-law (Chung–Lu
/// tail), selected and seeded by the strategy.
fn matrix_strategy() -> impl Strategy<Value = Csr> {
    (0u64..1_000_000, 0u8..2, 5u32..7).prop_map(|(seed, family, scale)| {
        if family == 0 {
            rmat(&RmatConfig::graph500(scale, 4), seed).to_csr()
        } else {
            let n = 1usize << scale;
            power_law(n, 6 * n, 2.5, n / 2, seed)
        }
    })
}

/// Symmetric block vector partition (valid for every plan kind).
fn block_parts(n: usize, k: usize) -> Vec<u32> {
    let per = n.div_ceil(k);
    (0..n).map(|i| (i / per) as u32).collect()
}

fn x_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|j| ((j as u64).wrapping_mul(2654435761).wrapping_add(seed) % 101) as f64 / 13.0 - 3.0)
        .collect()
}

fn assert_close(got: &[f64], want: &[f64], what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (g - w).abs() <= 1e-9 * w.abs().max(1.0),
            "{} y[{}]: {} vs {}",
            what,
            idx,
            g,
            w
        );
    }
    Ok(())
}

/// The four plan kinds over one matrix and processor count.
fn plans_for(a: &Csr, k: usize) -> Vec<(&'static str, SpmvPlan)> {
    let n = a.nrows();
    let parts = block_parts(n, k);
    // Row-parallel 1D: every nonzero with its row (a degenerate s2D).
    let p1d = SpmvPartition::rowwise(a, parts.clone(), parts.clone(), k);
    // Genuinely 2D nonzero distribution: the optimal s2D split.
    let ps2d = s2d_optimal(a, &parts, &parts, k);
    vec![
        ("1d/single_phase", SpmvPlan::single_phase(a, &p1d)),
        ("2d/two_phase", SpmvPlan::two_phase(a, &ps2d)),
        ("s2d/single_phase", SpmvPlan::single_phase(a, &ps2d)),
        ("s2d-b/mesh", SpmvPlan::mesh_default(a, &ps2d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential compiled execution matches the mailbox interpreter on
    /// every plan kind and every K.
    #[test]
    fn compiled_matches_mailbox(a in matrix_strategy(), xseed in 0u64..100) {
        let x = x_for(a.ncols(), xseed);
        for k in KS {
            if k > a.nrows() {
                continue;
            }
            for (kind, plan) in plans_for(&a, k) {
                let want = plan.execute_mailbox(&x);
                let cp = CompiledPlan::compile(&plan);
                prop_assert_eq!(cp.total_ops(), plan.total_ops());
                let mut ws = cp.workspace();
                let mut y = vec![0.0; a.nrows()];
                cp.execute(&mut ws, &x, &mut y);
                assert_close(&y, &want, kind)?;
                // Reuse the workspace: second run must be identical.
                let mut y2 = vec![0.0; a.nrows()];
                cp.execute(&mut ws, &x, &mut y2);
                prop_assert_eq!(&y, &y2);
            }
        }
    }

    /// The worker pool agrees with the mailbox interpreter too (and
    /// with any thread count).
    #[test]
    fn pool_matches_mailbox(a in matrix_strategy(), xseed in 0u64..100, threads in 1usize..5) {
        let x = x_for(a.ncols(), xseed);
        for k in [2usize, 7, 16] {
            if k > a.nrows() {
                continue;
            }
            for (kind, plan) in plans_for(&a, k) {
                let want = plan.execute_mailbox(&x);
                let cp = CompiledPlan::compile(&plan);
                let mut engine = ParallelEngine::with_threads(cp, threads);
                let mut y = vec![0.0; a.nrows()];
                engine.execute(&x, &mut y);
                assert_close(&y, &want, kind)?;
            }
        }
    }
}
