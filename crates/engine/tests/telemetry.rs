//! Telemetry acceptance: instrumentation must observe, never perturb.
//!
//! * telemetry-on results are **bitwise identical** to telemetry-off
//!   for every deterministic backend (tolerance-checked for the
//!   threaded executor, whose accumulation order is run-dependent);
//! * on the compiled sequential path, per-phase time sums approximate
//!   recorded wall time (phases partition the iteration loop);
//! * recorded counters match the plan's static work profile and scale
//!   with batch width and iteration count.

use std::sync::Arc;

use s2d_core::optimal::s2d_optimal;
use s2d_engine::{Backend, CompiledPlan, KernelFormat};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_obs::{Phase, TelemetrySink};
use s2d_sparse::Csr;
use s2d_spmv::{PlanKind, SpmvOperator};

const K: usize = 4;

fn matrix() -> Csr {
    rmat(&RmatConfig::graph500(7, 6), 11).to_csr()
}

fn plan_for(a: &Csr) -> Arc<s2d_spmv::SpmvPlan> {
    let n = a.nrows();
    let per = n.div_ceil(K);
    let parts: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
    let p = s2d_optimal(a, &parts, &parts, K);
    Arc::new(PlanKind::SinglePhase.build(a, &p))
}

fn input(n: usize, r: usize) -> Vec<f64> {
    (0..n * r).map(|i| ((i as u64).wrapping_mul(48271) % 101) as f64 / 13.0 - 3.5).collect()
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (idx, (u, v)) in a.iter().zip(b).enumerate() {
        assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "{what}: y[{idx}]: {u} vs {v}");
    }
}

/// Telemetry on vs off across every backend: identical results
/// (bitwise when the backend is deterministic), for plain, batched and
/// chained applications.
#[test]
fn telemetry_is_bitwise_invisible() {
    let a = matrix();
    let plan = plan_for(&a);
    let n = a.nrows();
    for backend in Backend::all() {
        let label = backend.label();
        let mut plain = backend.build(&plan, 4);
        let sink = Arc::new(TelemetrySink::new(K));
        let mut obs = backend.build_obs(&plan, 4, KernelFormat::Auto, Some(Arc::clone(&sink)));

        let x = input(n, 1);
        let (mut y0, mut y1) = (vec![0.0; n], vec![f64::NAN; n]);
        plain.apply(&x, &mut y0);
        obs.apply(&x, &mut y1);
        if obs.deterministic() {
            assert_eq!(y0, y1, "{label}: apply must be bitwise identical under telemetry");
        } else {
            assert_close(&y0, &y1, label);
        }

        let xb = input(n, 3);
        let (mut b0, mut b1) = (vec![0.0; n * 3], vec![f64::NAN; n * 3]);
        plain.apply_batch(&xb, &mut b0, 3);
        obs.apply_batch(&xb, &mut b1, 3);
        if obs.deterministic() {
            assert_eq!(b0, b1, "{label}: apply_batch must be bitwise identical under telemetry");
        } else {
            assert_close(&b0, &b1, label);
        }

        let (mut c0, mut c1) = (vec![0.0; n * 2], vec![f64::NAN; n * 2]);
        plain.apply_batch_iters(&input(n, 2), &mut c0, 2, 5);
        obs.apply_batch_iters(&input(n, 2), &mut c1, 2, 5);
        if obs.deterministic() {
            assert_eq!(
                c0, c1,
                "{label}: apply_batch_iters must be bitwise identical under telemetry"
            );
        } else {
            assert_close(&c0, &c1, label);
        }

        // Something was recorded: wall time and iteration counts moved.
        assert!(sink.wall_nanos() > 0, "{label}: no wall time recorded");
        assert!(sink.iterations() >= 7, "{label}: iterations undercounted");
    }
}

/// On the compiled sequential path, the per-phase spans partition the
/// iteration loop: their sum must land in a sane band around the
/// recorded wall time (below it, since wall also covers dispatch, but
/// not vanishingly below).
#[test]
fn phase_times_sum_to_wall_seq() {
    let a = matrix();
    let plan = plan_for(&a);
    let n = a.nrows();
    let sink = Arc::new(TelemetrySink::new(K));
    let mut op =
        Backend::CompiledSeq.build_obs(&plan, 1, KernelFormat::Auto, Some(Arc::clone(&sink)));
    let x = input(n, 1);
    let mut y = vec![0.0; n];
    op.apply_batch_iters(&x, &mut y, 1, 50);

    let wall = sink.wall_nanos();
    assert!(wall > 0);
    let phase_sum: u64 = (0..K).flat_map(|rk| Phase::all().map(|p| sink.rank(rk).nanos(p))).sum();
    assert!(phase_sum <= wall * 11 / 10, "phase sum {phase_sum} exceeds wall {wall} by >10%");
    assert!(
        phase_sum * 2 >= wall,
        "phase sum {phase_sum} is under half of wall {wall}: instrumentation gaps"
    );
    // The compute phase dominates a sequential in-core run's phases.
    let compute: u64 = (0..K).map(|rk| sink.rank(rk).nanos(Phase::Compute)).sum();
    assert!(compute > 0, "no compute time recorded");
}

/// Counters match the plan's static work profile, scaled by batch
/// width × iterations, on both compiled paths.
#[test]
fn counters_match_static_profile() {
    let a = matrix();
    let plan = plan_for(&a);
    let cp = CompiledPlan::compile(&plan);
    let want_madds: u64 = cp.total_ops() as u64;
    let n = a.nrows();
    for backend in [Backend::CompiledSeq, Backend::CompiledPool { threads: 2, pin: false }] {
        let sink = Arc::new(TelemetrySink::new(K));
        let mut op = backend.build_obs(&plan, 2, KernelFormat::CsrSlice, Some(Arc::clone(&sink)));
        let (r, iters) = (2usize, 3usize);
        let x = input(n, r);
        let mut y = vec![0.0; n * r];
        op.apply_batch_iters(&x, &mut y, r, iters);

        let scale = (r * iters) as u64;
        let madds: u64 = (0..K).map(|rk| sink.rank(rk).madds()).sum();
        assert_eq!(madds, want_madds * scale, "{}: madds", backend.label());
        // Rows: emitted rows per rank (rows with no contributions are
        // never emitted, so this can undershoot nrows).
        let want_rows: u64 = cp.ranks.iter().map(|rp| rp.y_emit.len() as u64).sum();
        let rows: u64 = (0..K).map(|rk| sink.rank(rk).rows()).sum();
        assert_eq!(rows, want_rows * scale, "{}: rows", backend.label());
        // Comm words: every rank's staged sends, summed, × scale.
        let want_words: u64 = (0..K)
            .map(|rk| {
                cp.ranks[rk]
                    .steps
                    .iter()
                    .map(|s| match s {
                        s2d_engine::RankStep::Comm { sends, .. } => {
                            sends.iter().map(|m| m.words() as u64).sum()
                        }
                        _ => 0u64,
                    })
                    .sum::<u64>()
            })
            .sum();
        let words: u64 = (0..K).map(|rk| sink.rank(rk).comm_words()).sum();
        assert_eq!(words, want_words * scale, "{}: comm words", backend.label());
        assert_eq!(sink.iterations(), iters as u64, "{}: iterations", backend.label());
    }
}

/// `TelemetrySink::reset` rearms a sink for reuse without rebuilding
/// the operator.
#[test]
fn sink_reset_between_runs() {
    let a = matrix();
    let plan = plan_for(&a);
    let n = a.nrows();
    let sink = Arc::new(TelemetrySink::new(K));
    let mut op =
        Backend::CompiledSeq.build_obs(&plan, 1, KernelFormat::Auto, Some(Arc::clone(&sink)));
    let x = input(n, 1);
    let mut y = vec![0.0; n];
    op.apply(&x, &mut y);
    let first = sink.iterations();
    assert_eq!(first, 1);
    sink.reset();
    assert_eq!(sink.iterations(), 0);
    assert_eq!(sink.wall_nanos(), 0);
    op.apply(&x, &mut y);
    assert_eq!(sink.iterations(), 1);
}
