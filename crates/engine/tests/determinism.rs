//! Regression tests for [`ParallelEngine`] determinism and failure
//! reporting.
//!
//! The pool's schedule is fixed per rank (contiguous rank blocks, one
//! sequential walk per rank, barriers between comm halves), so its
//! results must be **bitwise** reproducible — across thread counts,
//! across repeated jobs on one engine instance, and across batch
//! widths. And when a worker dies, the engine must *say so* on the
//! control thread instead of deadlocking on a barrier.

use s2d_core::optimal::s2d_optimal;
use s2d_engine::{CompiledPlan, Kernel, KernelFormat, ParallelEngine, RankStep};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_spmv::SpmvPlan;

/// A mesh-routed s2D plan on a skewed matrix — the plan kind with the
/// most comm phases, i.e. the most barrier crossings per iteration.
fn mesh_setup() -> (usize, SpmvPlan) {
    let a = rmat(&RmatConfig::graph500(7, 6), 42).to_csr();
    let n = a.nrows();
    let k = 8;
    let per = n.div_ceil(k);
    let parts: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
    let p = s2d_optimal(&a, &parts, &parts, k);
    (n, SpmvPlan::mesh_default(&a, &p))
}

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|j| ((j * 37) % 19) as f64 / 3.0 - 2.5).collect()
}

#[test]
fn identical_results_across_thread_counts() {
    let (n, plan) = mesh_setup();
    let x = x_for(n);
    let cp = CompiledPlan::compile(&plan);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut reference: Option<Vec<f64>> = None;
    for threads in [1usize, 2, 4, cores] {
        let mut engine = ParallelEngine::with_threads(cp.clone(), threads);
        let mut y = vec![0.0; n];
        engine.execute_iters(&x, &mut y, 3);
        match &reference {
            None => reference = Some(y),
            Some(want) => {
                assert_eq!(&y, want, "thread count {threads} changed the result bitwise");
            }
        }
    }
}

#[test]
fn repeated_jobs_on_one_engine_are_bitwise_stable() {
    let (n, plan) = mesh_setup();
    let x = x_for(n);
    let mut engine = ParallelEngine::from_plan(&plan);
    let mut first = vec![0.0; n];
    engine.execute_iters(&x, &mut first, 4);
    for round in 0..10 {
        let mut again = vec![0.0; n];
        engine.execute_iters(&x, &mut again, 4);
        assert_eq!(again, first, "round {round}: fixed schedule must be bitwise deterministic");
    }
}

#[test]
fn batch_width_does_not_change_a_column() {
    // The same input run as width-1 and as column 0 of a width-8 batch
    // must match bitwise (the batched kernel accumulates each column
    // independently, in the same order).
    let (n, plan) = mesh_setup();
    let x = x_for(n);
    let cp = CompiledPlan::compile(&plan);
    let mut engine = ParallelEngine::new_batch(cp, 8);
    let mut narrow = vec![0.0; n];
    engine.execute(&x, &mut narrow);
    let r = 8;
    let mut block = vec![0.0; n * r];
    for g in 0..n {
        block[g * r] = x[g];
        for q in 1..r {
            block[g * r + q] = x[g] * (q as f64 + 0.5);
        }
    }
    let mut y = vec![0.0; n * r];
    engine.execute_batch(&block, &mut y, r);
    let col0: Vec<f64> = (0..n).map(|g| y[g * r]).collect();
    assert_eq!(col0, narrow, "column 0 of the batch must equal the single-RHS result bitwise");
}

#[test]
fn every_kernel_format_is_bitwise_deterministic_and_reproduces_csr() {
    // Two pins at once: (1) `CompiledPlan::compile` (the CSR default)
    // reproduces `compile_with(_, CsrSlice)` exactly — today's results
    // are bitwise-preserved; (2) every format's pool result is bitwise
    // stable across thread counts AND bitwise equal to the CSR result
    // on finite inputs (the formats-module contract).
    let (n, plan) = mesh_setup();
    let x = x_for(n);
    let mut want = vec![0.0; n];
    ParallelEngine::new(CompiledPlan::compile(&plan)).execute_iters(&x, &mut want, 3);
    for format in KernelFormat::all() {
        let cp = CompiledPlan::compile_with(&plan, format);
        for threads in [1usize, 3, 8] {
            let mut engine = ParallelEngine::with_threads(cp.clone(), threads);
            let mut y = vec![0.0; n];
            engine.execute_iters(&x, &mut y, 3);
            assert_eq!(y, want, "{format} x{threads} threads must match the CSR default bitwise");
        }
    }
}

#[test]
fn poisoned_pool_reports_the_panic_instead_of_hanging() {
    // Corrupt one kernel so a worker panics mid-job (the row_ptr end is
    // bounds-checked at run time, not validated at construction): the
    // control thread must observe a panic on the *same* call, fail fast
    // on every later call, and Drop must still join the workers.
    let (n, plan) = mesh_setup();
    let mut cp = CompiledPlan::compile(&plan);
    let kernel = cp
        .ranks
        .iter_mut()
        .flat_map(|rp| &mut rp.steps)
        .find_map(|s| match s {
            RankStep::Compute(Kernel::Csr(k)) if !k.rows.is_empty() => Some(k),
            _ => None,
        })
        .expect("plan has a nonempty kernel");
    *kernel.row_ptr.last_mut().unwrap() = u32::MAX >> 8;
    let mut engine = ParallelEngine::with_threads(cp, 4);
    let x = x_for(n);
    let mut y = vec![0.0; n];
    let first =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.execute(&x, &mut y)));
    assert!(first.is_err(), "worker panic must surface on the control thread");
    let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.execute_iters(&x, &mut y, 2)
    }));
    assert!(second.is_err(), "poisoned engine must fail fast on reuse");
    drop(engine); // must join, not hang
}
