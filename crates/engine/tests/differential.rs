//! Differential harness: **every** execution backend, one plan,
//! pairwise agreement.
//!
//! One driver builds every [`Backend`] operator over the same plan
//! (via `Backend::all()` — mailbox interpreter, threaded executor,
//! compiled sequential workspace, compiled worker pool) and asserts
//! that every pair agrees on `apply`, and that every backend's
//! `apply_batch` columns agree with the mailbox oracle — property-
//! tested over all four plan kinds, K ∈ {1, 2, 4, 7, 16} and batch
//! widths r ∈ {1, 2, 3, 8} on R-MAT, power-law and FEM-stencil
//! matrices, plus deterministic edge shapes (empty ranks, dense rows,
//! n = 1). On top of the backend set, every non-default `KernelFormat`
//! (SELL-C-σ, dense-split, auto) joins the pairwise matrix through the
//! compiled paths, so a format bug diverges against every backend at
//! once.
//!
//! Any future execution path becomes a `Backend` variant and is
//! differentially tested against every existing path for free — no
//! hand-wired dispatch here to extend.

use std::sync::Arc;

use proptest::prelude::*;
use s2d_core::optimal::s2d_optimal;
use s2d_core::partition::SpmvPartition;
use s2d_engine::{Backend, CompiledPlan, KernelFormat};
use s2d_gen::fem::fem_like;
use s2d_gen::powerlaw::power_law;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_sparse::{Coo, Csr};
use s2d_spmv::{SpmvOperator, SpmvPlan};

const KS: [usize; 5] = [1, 2, 4, 7, 16];
const RS: [usize; 4] = [1, 2, 3, 8];
/// Operator width able to serve every batch in `RS` from one build
/// (also exercises mixed-width reuse on the pool's shared buffers).
const MAX_R: usize = 8;

/// Random small matrix: R-MAT (degree-skewed), power-law (Chung–Lu
/// tail) or FEM-like 3D stencil, selected and seeded by the strategy.
fn matrix_strategy() -> impl Strategy<Value = Csr> {
    (0u64..1_000_000, 0u8..3, 5u32..7).prop_map(|(seed, family, scale)| {
        let n = 1usize << scale;
        match family {
            0 => rmat(&RmatConfig::graph500(scale, 4), seed).to_csr(),
            1 => power_law(n, 6 * n, 2.5, n / 2, seed),
            _ => fem_like(n.max(8), 7.0, 14, seed),
        }
    })
}

/// Symmetric block vector partition (valid for every plan kind).
fn block_parts(n: usize, k: usize) -> Vec<u32> {
    let per = n.div_ceil(k);
    (0..n).map(|i| (i / per) as u32).collect()
}

/// The four plan kinds over one matrix and processor count.
fn plans_for(a: &Csr, k: usize) -> Vec<(&'static str, SpmvPlan)> {
    let n = a.nrows();
    let parts = block_parts(n, k);
    let p1d = SpmvPartition::rowwise(a, parts.clone(), parts.clone(), k);
    let ps2d = s2d_optimal(a, &parts, &parts, k);
    vec![
        ("1d/single_phase", SpmvPlan::single_phase(a, &p1d)),
        ("2d/two_phase", SpmvPlan::two_phase(a, &ps2d)),
        ("s2d/single_phase", SpmvPlan::single_phase(a, &ps2d)),
        ("s2d-b/mesh", SpmvPlan::mesh_default(a, &ps2d)),
    ]
}

fn x_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|j| ((j as u64).wrapping_mul(2654435761).wrapping_add(seed) % 101) as f64 / 13.0 - 3.0)
        .collect()
}

/// Row-major `n × r` block whose column 0 is `x` and whose other
/// columns are distinct deterministic variants.
fn batch_block(x: &[f64], r: usize) -> Vec<f64> {
    let n = x.len();
    let mut block = vec![0.0; n * r];
    for g in 0..n {
        for q in 0..r {
            block[g * r + q] = x[g] * (1.0 + q as f64 * 0.5) - q as f64 * 0.25;
        }
    }
    block
}

/// Column `q` of a row-major `n × r` block.
fn column(block: &[f64], n: usize, r: usize, q: usize) -> Vec<f64> {
    (0..n).map(|g| block[g * r + q]).collect()
}

fn close(a: &[f64], b: &[f64]) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).position(|(u, v)| (u - v).abs() > 1e-9 * v.abs().max(1.0))
}

/// The harness: every backend on one plan, pairwise agreement on
/// `apply`, per-column agreement of every backend's `apply_batch`
/// against the mailbox oracle.
fn differential_check(
    plan: &SpmvPlan,
    kind: &str,
    x: &[f64],
    rs: &[usize],
) -> Result<(), TestCaseError> {
    let cp = CompiledPlan::compile(plan);
    prop_assert_eq!(cp.total_ops(), plan.total_ops(), "{}: op count drift", kind);
    let plan = Arc::new(plan.clone());
    let mut ops: Vec<(String, Box<dyn SpmvOperator + Send>)> =
        Backend::all().iter().map(|b| (b.to_string(), b.build(&plan, MAX_R))).collect();
    // Kernel-format sweep: every non-default format on the sequential
    // compiled path (the format implementations), plus `auto` on the
    // pool (format × shared-buffer execution). The CSR defaults are
    // already in `Backend::all()`, so every format ends up pairwise-
    // checked against every backend.
    for format in KernelFormat::all() {
        if format == KernelFormat::CsrSlice {
            continue;
        }
        // One compilation per format: checked for op-count invariance
        // (padding never counts), then wrapped as the operator.
        let cpf = CompiledPlan::compile_with(&plan, format);
        prop_assert_eq!(cpf.total_ops(), plan.total_ops(), "{}/{}: op count drift", kind, format);
        ops.push((
            format!("compiled-seq/{format}"),
            Box::new(s2d_engine::CompiledSeqOperator::new(cpf, MAX_R)),
        ));
    }
    ops.push((
        "compiled-pool/auto".to_string(),
        Backend::CompiledPool { threads: 0, pin: false }.build_with(
            &plan,
            MAX_R,
            KernelFormat::Auto,
        ),
    ));

    // Single-RHS apply on x: every pair of backends must agree.
    let singles: Vec<(String, Vec<f64>)> = ops
        .iter_mut()
        .map(|(label, op)| {
            let mut y = vec![0.0; plan.nrows];
            op.apply(x, &mut y);
            (label.clone(), y)
        })
        .collect();
    for i in 0..singles.len() {
        for j in i + 1..singles.len() {
            let (la, va) = &singles[i];
            let (lb, vb) = &singles[j];
            if let Some(at) = close(va, vb) {
                return Err(TestCaseError::fail(format!(
                    "{kind}: {la} vs {lb} disagree at y[{at}]: {} vs {}",
                    va[at], vb[at]
                )));
            }
        }
    }

    // Batched paths: every backend's apply_batch, per column, against
    // the mailbox backend's block (whose columns are bitwise the
    // mailbox single-RHS results — its batch fallback is columnwise).
    for &r in rs {
        let block = batch_block(x, r);
        let oracle = {
            let (_, mailbox) = &mut ops[0];
            let mut y = vec![0.0; plan.nrows * r];
            mailbox.apply_batch(&block, &mut y, r);
            y
        };
        for (label, op) in ops.iter_mut().skip(1) {
            let mut y = vec![0.0; plan.nrows * r];
            op.apply_batch(&block, &mut y, r);
            for q in 0..r {
                let got = column(&y, plan.nrows, r, q);
                let want = column(&oracle, plan.nrows, r, q);
                if let Some(at) = close(&got, &want) {
                    return Err(TestCaseError::fail(format!(
                        "{kind}: batch{r}-{label}/col{q} vs mailbox disagree at y[{at}]: {} vs {}",
                        got[at], want[at]
                    )));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All backends × all plan kinds × all K × all r on random matrices.
    #[test]
    fn all_paths_agree_on_random_matrices(a in matrix_strategy(), xseed in 0u64..100) {
        let x = x_for(a.ncols(), xseed);
        for k in KS {
            if k > a.nrows() {
                continue;
            }
            for (kind, plan) in plans_for(&a, k) {
                differential_check(&plan, kind, &x, &RS)?;
            }
        }
    }
}

#[test]
fn all_paths_agree_on_n1() {
    let a = Coo::from_pattern(1, 1, &[(0, 0)]).to_csr();
    let p = SpmvPartition::rowwise(&a, vec![0], vec![0], 1);
    let plan = SpmvPlan::single_phase(&a, &p);
    differential_check(&plan, "n1", &[1.5], &RS).expect("n=1 must agree on all paths");
}

#[test]
fn all_paths_agree_with_empty_ranks() {
    // K = 4 but every row/column lives on rank 0: ranks 1..3 have no
    // work, no footprint and no messages — programs must still align.
    let mut m = Coo::new(6, 6);
    for i in 0..6 {
        m.push(i, i, 1.0 + i as f64);
        m.push(i, (i + 2) % 6, -0.5);
    }
    m.compress();
    let a = m.to_csr();
    let p = SpmvPartition::rowwise(&a, vec![0; 6], vec![0; 6], 4);
    for (kind, plan) in
        [("single", SpmvPlan::single_phase(&a, &p)), ("two", SpmvPlan::two_phase(&a, &p))]
    {
        let x = x_for(6, 3);
        differential_check(&plan, kind, &x, &RS)
            .unwrap_or_else(|e| panic!("empty-rank {kind}: {e}"));
    }
}

#[test]
fn all_paths_agree_on_dense_rows_and_empty_rows() {
    // Row 0 is fully dense (touches every rank's x), rows 7/15 are
    // empty (assemble to zero through NO_SLOT on every path).
    let n = 24;
    let mut m = Coo::new(n, n);
    for j in 0..n {
        m.push(0, j, 1.0 + j as f64 * 0.25);
    }
    for i in 1..n {
        if i == 7 || i == 15 {
            continue;
        }
        m.push(i, i, 2.0);
        m.push(i, (i * 5) % n, -1.0);
    }
    m.compress();
    let a = m.to_csr();
    for (kind, plan) in plans_for(&a, 4) {
        let x = x_for(n, 17);
        differential_check(&plan, kind, &x, &RS)
            .unwrap_or_else(|e| panic!("dense-row {kind}: {e}"));
    }
}
