//! Backend conformance: one shared property set, every
//! `Backend::all()` entry × every plan kind.
//!
//! The `SpmvOperator` contract each backend must honor:
//!
//! 1. `apply` agrees with the reference CSR SpMV;
//! 2. `apply_batch` column `q` equals `apply` on column `q` — bitwise
//!    for deterministic backends, within floating-point tolerance for
//!    backends whose accumulation order is run-dependent (the threaded
//!    executor reports `deterministic() == false`);
//! 3. repeated `apply` calls are stable (bitwise for deterministic
//!    backends), i.e. an operator's internal state never leaks between
//!    calls;
//! 4. shapes are reported correctly and batch width growth works.

use std::sync::Arc;

use s2d_core::optimal::s2d_optimal;
use s2d_core::partition::SpmvPartition;
use s2d_engine::{Backend, KernelFormat};
use s2d_gen::fem::fem_like;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_sparse::{Coo, Csr};
use s2d_spmv::{PlanKind, SpmvOperator};

/// Batch widths swept per operator — width 5 exceeds the built width
/// (`MAX_R`), so every backend's on-demand growth path (workspace
/// reallocation, pool rebuild) runs under the full conformance matrix.
const WIDTHS: [usize; 4] = [1, 3, 4, 5];
const MAX_R: usize = 4;

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (idx, (u, v)) in a.iter().zip(b).enumerate() {
        assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "{what}: y[{idx}]: {u} vs {v}");
    }
}

/// Deterministic test input, distinct per column.
fn block_for(n: usize, r: usize, seed: u64) -> Vec<f64> {
    (0..n * r)
        .map(|i| {
            let (g, q) = (i / r, i % r);
            ((g as u64).wrapping_mul(2654435761).wrapping_add(q as u64 * 977 + seed) % 211) as f64
                / 17.0
                - 5.0
        })
        .collect()
}

fn column(block: &[f64], n: usize, r: usize, q: usize) -> Vec<f64> {
    (0..n).map(|g| block[g * r + q]).collect()
}

/// Matrices with different shapes: skewed R-MAT, FEM stencil, and an
/// edge matrix with a dense row plus empty rows.
fn matrices() -> Vec<(&'static str, Csr)> {
    let mut edge = Coo::new(16, 16);
    for j in 0..16 {
        edge.push(0, j, 1.0 + j as f64 * 0.25);
    }
    for i in 1..16 {
        if i == 5 || i == 11 {
            continue; // empty rows
        }
        edge.push(i, i, 2.0);
        edge.push(i, (i * 3) % 16, -1.0);
    }
    edge.compress();
    vec![
        ("rmat", rmat(&RmatConfig::graph500(6, 4), 7).to_csr()),
        ("fem", fem_like(48, 6.0, 9, 3)),
        ("edge", edge.to_csr()),
    ]
}

/// s2D partition over block rows (valid for every plan kind).
fn partition_for(a: &Csr, k: usize) -> SpmvPartition {
    let n = a.nrows();
    let per = n.div_ceil(k);
    let parts: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
    s2d_optimal(a, &parts, &parts, k)
}

/// Runs the shared property set over one operator.
fn check_operator(op: &mut (dyn SpmvOperator + Send), a: &Csr, label: &str) {
    assert_eq!((op.nrows(), op.ncols()), (a.nrows(), a.ncols()), "{label}: shape");
    let x = block_for(a.ncols(), 1, 1);
    let reference = a.spmv_alloc(&x);

    // Property 1: apply matches the reference CSR SpMV.
    let mut y = vec![0.0; a.nrows()];
    op.apply(&x, &mut y);
    assert_close(&y, &reference, label);

    // Property 3: repeated applications are stable — bitwise when the
    // backend is deterministic (the output buffer is pre-poisoned to
    // catch partial writes).
    let mut again = vec![f64::NAN; a.nrows()];
    op.apply(&x, &mut again);
    if op.deterministic() {
        assert_eq!(y, again, "{label}: repeated apply must be bitwise stable");
    } else {
        assert_close(&again, &y, label);
    }

    // Chained applications in one dispatch match manual chaining
    // (square matrices only — all conformance matrices are square).
    if a.nrows() == a.ncols() {
        let mut chained = vec![0.0; a.nrows()];
        op.apply_batch_iters(&x, &mut chained, 1, 3);
        let mut manual = x.clone();
        let mut step = vec![0.0; a.nrows()];
        for _ in 0..3 {
            op.apply(&manual, &mut step);
            std::mem::swap(&mut manual, &mut step);
        }
        if op.deterministic() {
            assert_eq!(chained, manual, "{label}: apply_batch_iters must match manual chaining");
        } else {
            assert_close(&chained, &manual, label);
        }
    }

    // Property 2: apply_batch column q equals apply on column q, at
    // every width up to (and at one point beyond) the built width.
    for r in WIDTHS {
        let xb = block_for(a.ncols(), r, 3);
        let mut yb = vec![0.0; a.nrows() * r];
        op.apply_batch(&xb, &mut yb, r);
        for q in 0..r {
            let xq = column(&xb, a.ncols(), r, q);
            let mut yq = vec![0.0; a.nrows()];
            op.apply(&xq, &mut yq);
            let got = column(&yb, a.nrows(), r, q);
            if op.deterministic() {
                assert_eq!(got, yq, "{label}: r={r} column {q} must match apply bitwise");
            } else {
                assert_close(&got, &yq, label);
            }
        }
    }
}

#[test]
fn every_backend_conforms_on_every_plan_kind() {
    for (mname, a) in matrices() {
        for k in [1usize, 3, 4] {
            if k > a.nrows() {
                continue;
            }
            let p = partition_for(&a, k);
            for kind in PlanKind::all() {
                let plan = Arc::new(kind.build(&a, &p));
                for backend in Backend::all() {
                    let mut op = backend.build(&plan, MAX_R);
                    check_operator(&mut *op, &a, &format!("{mname}/k{k}/{kind}/{backend}"));
                }
            }
        }
    }
}

#[test]
fn every_kernel_format_conforms_on_every_plan_kind() {
    // The full property set (reference agreement, per-column bitwise
    // batch equality at every width incl. on-demand growth, repeated-
    // apply stability, chained iters) for every KernelFormat on both
    // compiled backends — over the same matrix set, whose `edge` entry
    // carries a dense row plus empty rows, and at k = 1 (single rank)
    // and k = 4 (empty-rank programs on the edge matrix).
    for (mname, a) in matrices() {
        for k in [1usize, 4] {
            let p = partition_for(&a, k);
            for kind in PlanKind::all() {
                let plan = Arc::new(kind.build(&a, &p));
                for format in KernelFormat::all() {
                    for backend in
                        [Backend::CompiledSeq, Backend::CompiledPool { threads: 0, pin: false }]
                    {
                        let mut op = backend.build_with(&plan, MAX_R, format);
                        check_operator(
                            &mut *op,
                            &a,
                            &format!("{mname}/k{k}/{kind}/{backend}/{format}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn kernel_formats_agree_bitwise_with_csr() {
    // Formats preserve per-row entry order and single-chain
    // accumulation, so on finite inputs every format's result is the
    // CSR slice's result — identical floats, not just within tolerance
    // (the padded-SELL and dense-span contract from the formats docs).
    for (mname, a) in matrices() {
        let p = partition_for(&a, 3);
        for kind in PlanKind::all() {
            let plan = Arc::new(kind.build(&a, &p));
            let x = block_for(a.ncols(), 1, 21);
            let mut want = vec![0.0; a.nrows()];
            Backend::CompiledSeq.build(&plan, 1).apply(&x, &mut want);
            for format in KernelFormat::all() {
                let mut y = vec![0.0; a.nrows()];
                Backend::CompiledSeq.build_with(&plan, 1, format).apply(&x, &mut y);
                assert_eq!(y, want, "{mname}/{kind}/{format} must match CSR bitwise");
            }
        }
    }
}

#[test]
fn explicit_pool_thread_counts_conform() {
    let (_, a) = &matrices()[0];
    let p = partition_for(a, 4);
    let plan = Arc::new(PlanKind::SinglePhase.build(a, &p));
    for threads in 1..=4 {
        let mut op = Backend::CompiledPool { threads, pin: false }.build(&plan, MAX_R);
        check_operator(&mut *op, a, &format!("pool:{threads}"));
    }
}

#[test]
fn backends_agree_bitwise_where_promised() {
    // The two compiled paths and the mailbox interpreter share the
    // per-rank accumulation order — their apply results are identical
    // floats, not just within tolerance.
    let (_, a) = &matrices()[1];
    let p = partition_for(a, 3);
    let plan = Arc::new(PlanKind::SinglePhase.build(a, &p));
    let x = block_for(a.ncols(), 1, 9);
    let mut results = Vec::new();
    for backend in
        [Backend::Mailbox, Backend::CompiledSeq, Backend::CompiledPool { threads: 0, pin: false }]
    {
        let mut op = backend.build(&plan, 1);
        let mut y = vec![0.0; a.nrows()];
        op.apply(&x, &mut y);
        results.push((backend, y));
    }
    for (backend, y) in &results[1..] {
        assert_eq!(y, &results[0].1, "{backend} must match mailbox bitwise");
    }
}
