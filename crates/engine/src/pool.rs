//! The persistent worker-pool runtime for [`CompiledPlan`]s.
//!
//! A [`ParallelEngine`] owns long-lived OS threads (spawned once,
//! parked on a spin barrier between jobs) and the shared flat buffers a
//! compiled plan executes over. Running an iteration involves **no
//! channels, no hashing and no allocation**: the control thread
//! publishes a job descriptor, releases the workers through an atomic
//! gate, and the workers walk the phase list with sense-reversing
//! barriers separating the stage and apply halves of every
//! communication phase.
//!
//! # Sharing discipline (why the `unsafe` here is sound)
//!
//! All mutable state lives in per-element [`UnsafeCell`]s (`ShBuf`).
//! Soundness rests on two invariants:
//!
//! 1. **Spatial**: every shared element has exactly one writer at any
//!    program point. Under the legacy [`PoolSchedule::RankSplit`] the
//!    unit is the buffer: a rank's `x`/`y` buffers are touched only by
//!    the worker that owns the rank. Under the default
//!    [`PoolSchedule::NnzChunked`] the unit is the element: a compute
//!    phase is pre-split into kernel chunks whose `y` slots are
//!    pairwise disjoint (the schedule only splits
//!    [`Kernel::splittable`](crate::Kernel::splittable) kernels, whose
//!    units never share a row), `x` is read-only during compute, and
//!    seeding / staging / emitting stay with the owning worker.
//!    Staging regions are written only by the message's sender and
//!    read only by its receiver, and send regions are pairwise
//!    disjoint. The compiler produces plans with this shape, and
//!    because every `CompiledPlan` field is public (the solver
//!    consumes the per-rank programs directly),
//!    [`ParallelEngine::with_threads`] re-validates it instead of
//!    trusting the caller — a hand-built plan that overlaps send
//!    regions is rejected before any thread runs.
//! 2. **Temporal**: every writer→reader handoff (staging, the gathered
//!    global vector, the job descriptor, and — under the chunked
//!    schedule — the seed→compute and compute→drain transitions of
//!    every rank's buffers) crosses a barrier with release/acquire
//!    ordering, so there is no unsynchronized cross-thread access to
//!    the same element. If a worker panics, the barriers are
//!    *poisoned*: every waiter bails out immediately, no further
//!    shared-buffer access happens, and the control thread re-raises
//!    the failure instead of deadlocking.
//!
//! # NNZ-chunked scheduling
//!
//! Rank-split scheduling serializes on the heaviest rank — exactly the
//! skewed dense-row regime semi-2D partitions target. The default
//! schedule therefore splits every splittable compute kernel at unit
//! (row-segment / SELL-chunk) boundaries into chunks of at least a
//! target multiply-add count and packs the chunks onto workers with a
//! greedy LPT (heaviest-first, least-loaded-worker) pass at
//! construction time. The chunk→worker map is **fixed** — no work
//! stealing — so the hot loop stays allocation-free and results are
//! bitwise reproducible across runs *and across worker counts*: each
//! `y` slot is written by exactly one chunk, and a chunk's accumulation
//! order is the kernel's own unit order regardless of which worker
//! runs it.
//!
//! # NUMA placement
//!
//! Buffers are allocated zeroed (untouched pages) and each worker
//! **first-touches** the `x`/`y` buffers of the ranks it owns before
//! its first job, so on a first-touch NUMA system the pages land on
//! the node of the worker that seeds, stages and emits them. Optional
//! core pinning (`PoolOptions::pin`, CLI `pool:N@pin`) binds worker
//! `w` to CPU `w` via `sched_setaffinity` on Linux (a no-op
//! elsewhere), keeping those pages node-local for the pool's lifetime.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use s2d_obs::{Phase, TelemetrySink};
use s2d_spmv::SpmvPlan;

use crate::compile::{CompiledMsg, CompiledPlan, RankStep};
use crate::formats::KernelFormat;
use crate::telemetry::ExecTelemetry;

/// A flat `f64` buffer shareable across worker threads (see the module
/// docs for the access discipline that makes this sound). Indexing is
/// bounds-checked, so a corrupt slot panics safely instead of reading
/// out of bounds.
struct ShBuf(Box<[UnsafeCell<f64>]>);

// SAFETY: all access goes through `get`/`set` under the spatial and
// temporal invariants documented on the module.
unsafe impl Sync for ShBuf {}

impl ShBuf {
    fn new(len: usize) -> ShBuf {
        // `vec![0.0; n]` allocates through `alloc_zeroed`, leaving
        // fresh pages untouched until a worker first-touches them (the
        // NUMA placement lever); the obvious per-element
        // `UnsafeCell::new` collect would fault every page on the
        // control thread instead.
        let raw = Box::into_raw(vec![0.0f64; len].into_boxed_slice());
        // SAFETY: same allocation; UnsafeCell<f64> is repr(transparent)
        // over f64, so `[f64]` and `[UnsafeCell<f64>]` have identical
        // layout.
        ShBuf(unsafe { Box::from_raw(raw as *mut [UnsafeCell<f64>]) })
    }

    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn get(&self, i: usize) -> f64 {
        // SAFETY: module invariants — no concurrent writer to element i.
        unsafe { *self.0[i].get() }
    }

    #[inline]
    fn set(&self, i: usize, v: f64) {
        // SAFETY: module invariants — no concurrent access to element i.
        unsafe { *self.0[i].get() = v }
    }

    /// Whole-buffer shared view.
    ///
    /// # Safety
    /// The caller must guarantee no thread writes any element of this
    /// buffer for the lifetime of the returned slice (rank-ownership /
    /// barrier invariants, see the module docs).
    #[inline]
    unsafe fn as_slice(&self) -> &[f64] {
        // UnsafeCell<f64> is repr(transparent) over f64.
        std::slice::from_raw_parts(self.0.as_ptr() as *const f64, self.0.len())
    }

    /// Whole-buffer exclusive view.
    ///
    /// # Safety
    /// For every element the returned slice is actually used to access,
    /// the caller must be the unique accessor for the slice's lifetime.
    /// Under rank-split that holds buffer-wide (a worker and the
    /// `x`/`y` buffers of the ranks it owns); under the chunked
    /// schedule concurrent views of one `y` buffer exist, but each
    /// chunk reads and writes only its own units' row slots, which are
    /// pairwise disjoint across the phase's chunks (spatial invariant),
    /// with barriers ordering every cross-thread handoff.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn as_mut_slice(&self) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.as_ptr() as *mut f64, self.0.len())
    }
}

/// Sense-reversing spin barrier (falls back to `yield_now` so it stays
/// live when workers outnumber cores). `wait` takes the engine's poison
/// flag: once poisoned, every wait returns `true` immediately and the
/// barrier's counts stop meaning anything — the engine is dead and only
/// shuts down from there.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier { arrived: AtomicUsize::new(0), generation: AtomicUsize::new(0), total }
    }

    /// Blocks until all `total` participants arrive, or until `poison`
    /// is raised (returns `true` in that case). Release/acquire on the
    /// generation counter orders all pre-barrier writes before all
    /// post-barrier reads.
    #[must_use]
    fn wait(&self, poison: &AtomicBool) -> bool {
        if poison.load(Ordering::Acquire) {
            return true;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            false
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if poison.load(Ordering::Acquire) {
                    return true;
                }
                spins += 1;
                if spins < 1 << 14 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

/// How a pool distributes compute-phase work over its workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolSchedule {
    /// Contiguous rank blocks per worker (the pre-chunking behavior):
    /// compute phases need no barrier, but the phase serializes on the
    /// heaviest rank.
    RankSplit,
    /// NNZ-weighted greedy LPT packing of kernel chunks (see the module
    /// docs): splittable kernels are cut at unit boundaries into runs
    /// of at least `chunk_ops` stored multiply-adds and the runs are
    /// packed heaviest-first onto the least-loaded worker. Bitwise
    /// identical to rank-split at any worker count or chunk size.
    NnzChunked {
        /// Minimum stored multiply-adds per chunk; `0` picks a target
        /// from the phase's total work and the worker count.
        chunk_ops: usize,
    },
}

impl Default for PoolSchedule {
    fn default() -> PoolSchedule {
        PoolSchedule::NnzChunked { chunk_ops: 0 }
    }
}

impl PoolSchedule {
    /// Stable short label for bench and profile output.
    pub fn label(self) -> &'static str {
        match self {
            PoolSchedule::RankSplit => "rank-split",
            PoolSchedule::NnzChunked { .. } => "nnz-chunked",
        }
    }
}

/// Construction knobs for [`ParallelEngine::with_options`]. The
/// `Default` value reproduces [`ParallelEngine::new`]: default worker
/// sizing, width 1, the chunked schedule, no pinning, no telemetry.
#[derive(Clone, Default)]
pub struct PoolOptions {
    /// Worker count; `0` selects the default sizing
    /// (`min(plan.k, available CPUs)`).
    pub threads: usize,
    /// Batch capacity the shared buffers are sized for (`0` is treated
    /// as 1).
    pub width: usize,
    /// Compute-phase work distribution.
    pub schedule: PoolSchedule,
    /// Pin worker `w` to CPU `w` at startup (Linux `sched_setaffinity`;
    /// a silent no-op elsewhere or on failure — affinity is a
    /// performance hint, never a correctness requirement).
    pub pin: bool,
    /// Optional telemetry sink (see
    /// [`ParallelEngine::with_telemetry`]).
    pub sink: Option<Arc<TelemetrySink>>,
}

/// One contiguous run `lo..hi` of one compute kernel's units, executed
/// by a fixed worker every iteration.
#[derive(Clone, Copy, Debug)]
struct ChunkRun {
    rank: u32,
    lo: u32,
    hi: u32,
}

/// The baked chunk→worker map: for every phase index, per worker, the
/// chunk list it executes (empty at comm phase indices), plus the
/// per-worker planned stored multiply-adds per iteration.
struct ChunkSchedule {
    phases: Vec<Vec<Vec<ChunkRun>>>,
    planned: Vec<u64>,
}

/// Floor on the automatic chunk target: below this, barrier and
/// cache-line traffic beats any balance win from finer chunks.
const MIN_CHUNK_OPS: usize = 2048;

/// The automatic target aims for about this many chunks per worker per
/// phase — enough granularity for LPT to balance a skewed rank, few
/// enough to keep the per-chunk dispatch cost invisible.
const CHUNKS_PER_WORKER: usize = 4;

/// Builds the NNZ-chunked schedule for `plan` on `threads` workers.
/// Fully deterministic: chunk boundaries follow kernel unit order and
/// every LPT tie (equal weight, equal load) is broken by fixed
/// `(rank, lo)` / lowest-worker-index orderings.
fn chunk_schedule(plan: &CompiledPlan, threads: usize, chunk_ops: usize) -> ChunkSchedule {
    let num_phases = plan.ranks.first().map_or(0, |rp| rp.steps.len());
    let mut phases = Vec::with_capacity(num_phases);
    let mut planned = vec![0u64; threads];
    for p in 0..num_phases {
        let mut buckets: Vec<Vec<ChunkRun>> = vec![Vec::new(); threads];
        // Step kinds agree across ranks at a phase index (validated).
        if matches!(plan.ranks.first().map(|rp| &rp.steps[p]), Some(RankStep::Compute(_))) {
            let phase_ops: usize = plan
                .ranks
                .iter()
                .map(|rp| match &rp.steps[p] {
                    RankStep::Compute(k) => (0..k.units()).map(|u| k.unit_ops(u)).sum(),
                    RankStep::Comm { .. } => 0,
                })
                .sum();
            let target = if chunk_ops > 0 {
                chunk_ops
            } else {
                (phase_ops / (threads * CHUNKS_PER_WORKER).max(1)).max(MIN_CHUNK_OPS)
            };
            let mut chunks: Vec<(u64, ChunkRun)> = Vec::new();
            for (rk, rp) in plan.ranks.iter().enumerate() {
                let RankStep::Compute(kernel) = &rp.steps[p] else { continue };
                let units = kernel.units();
                if units == 0 {
                    continue;
                }
                if !kernel.splittable() {
                    // Duplicate-row kernels would put one row's
                    // accumulation chain in two chunks — keep them
                    // whole so the spatial invariant holds.
                    let ops: usize = (0..units).map(|u| kernel.unit_ops(u)).sum();
                    chunks
                        .push((ops as u64, ChunkRun { rank: rk as u32, lo: 0, hi: units as u32 }));
                    continue;
                }
                let (mut lo, mut acc) = (0usize, 0usize);
                for u in 0..units {
                    acc += kernel.unit_ops(u);
                    if acc >= target || u + 1 == units {
                        chunks.push((
                            acc as u64,
                            ChunkRun { rank: rk as u32, lo: lo as u32, hi: (u + 1) as u32 },
                        ));
                        lo = u + 1;
                        acc = 0;
                    }
                }
            }
            // Greedy LPT: heaviest chunk first onto the least-loaded
            // (lowest-index on ties) worker.
            chunks.sort_by(|a, b| {
                b.0.cmp(&a.0).then(a.1.rank.cmp(&b.1.rank)).then(a.1.lo.cmp(&b.1.lo))
            });
            let mut load = vec![0u64; threads];
            for &(ops, run) in &chunks {
                let w = (0..threads).min_by_key(|&w| (load[w], w)).expect("at least one worker");
                load[w] += ops;
                buckets[w].push(run);
            }
            // The map is what balances; each worker still walks its
            // chunks in storage order to stay cache-friendly.
            for b in &mut buckets {
                b.sort_unstable_by_key(|c| (c.rank, c.lo));
            }
            for (pl, ld) in planned.iter_mut().zip(&load) {
                *pl += ld;
            }
        }
        phases.push(buckets);
    }
    ChunkSchedule { phases, planned }
}

/// Best-effort bind of the calling thread to CPU `core` (modulo the
/// machine size). Direct `sched_setaffinity` syscall wrapper — std
/// already links libc, no new dependency.
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) {
    const MASK_WORDS: usize = 16; // covers 1024 CPUs
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get()).min(MASK_WORDS * 64);
    let core = core % cpus;
    let mut mask = [0u64; MASK_WORDS];
    mask[core / 64] |= 1u64 << (core % 64);
    // SAFETY: pid 0 is the calling thread; the mask buffer is live and
    // sized as declared. Failure (e.g. a restricted cpuset) is ignored.
    let _ = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

/// State shared between the control thread and the workers.
struct Shared {
    plan: CompiledPlan,
    /// Batch capacity the shared buffers were sized for.
    width: usize,
    /// Per-rank local vectors (`nx × width` / `ny × width` words).
    x: Vec<ShBuf>,
    y: Vec<ShBuf>,
    /// Per-communication-phase staging buffers (`words × width`).
    staging: Vec<ShBuf>,
    /// The assembled global block (gather target, reseed source).
    global: ShBuf,
    /// Per-rank owned rows that never materialize ([`NO_SLOT`]): their
    /// `global` words are zeroed by the owner's worker on every job's
    /// first gather, so jobs of different batch widths never read a
    /// stale word written at another stride.
    zero_rows: Vec<Vec<u32>>,
    /// Contiguous rank range per worker (ownership: seeding, staging,
    /// emitting — and all compute under rank-split).
    assign: Vec<std::ops::Range<usize>>,
    /// The schedule knob the pool was built with.
    schedule: PoolSchedule,
    /// Baked chunk→worker compute map; `None` under rank-split.
    chunks: Option<ChunkSchedule>,
    /// Planned compute multiply-adds per worker per iteration (the
    /// fixed map makes planned == achieved).
    loads: Vec<u64>,
    /// Pin worker `w` to CPU `w` at startup.
    pin: bool,
    /// Job descriptor: input pointer + chained iteration count + batch
    /// width. Written by the control thread before the gate, read by
    /// workers after it.
    job_x: AtomicPtr<f64>,
    job_iters: AtomicUsize,
    job_width: AtomicUsize,
    shutdown: AtomicBool,
    /// Raised when a worker panics; poisons both barriers.
    poisoned: AtomicBool,
    /// Control + workers: job start and job completion.
    gate: SpinBarrier,
    /// Workers only: phase-internal synchronization.
    sync: SpinBarrier,
    /// Optional telemetry (fixed at construction — `Shared` is
    /// immutable once workers spawn). `None` keeps the job loop free
    /// of clock reads.
    obs: Option<ExecTelemetry>,
}

/// A persistent pool of worker threads executing one compiled plan.
///
/// Construction validates the plan's sharing invariants, spawns the
/// threads and allocates every buffer;
/// [`ParallelEngine::execute`] and [`execute_iters`](ParallelEngine::execute_iters)
/// then run with zero heap allocation.
pub struct ParallelEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Checks the structural invariants the worker pool's unsafe sharing
/// relies on (every field of [`CompiledPlan`] is public, so the plan
/// cannot be trusted to come from the compiler).
///
/// # Panics
/// Panics with a description of the violated invariant.
fn validate_for_pool(plan: &CompiledPlan) {
    let num_phases = plan.ranks.first().map_or(0, |rp| rp.steps.len());
    assert_eq!(plan.y_part.len(), plan.nrows, "y_part length mismatch");
    let mut send_regions: Vec<Vec<(u32, u32)>> = vec![Vec::new(); plan.staging_words.len()];
    for (r, rp) in plan.ranks.iter().enumerate() {
        assert_eq!(rp.steps.len(), num_phases, "rank {r}: misaligned step count");
        // x_seed global indices are dereferenced through a raw pointer
        // into the caller's input slice — they MUST be validated here;
        // an out-of-range one would be an out-of-bounds read, not a
        // safe panic.
        assert!(
            rp.x_seed.iter().all(|&(g, s)| (g as usize) < plan.ncols && (s as usize) < rp.nx),
            "rank {r}: x_seed entry out of range"
        );
        // Ownership (y_part is a function of the row) makes y_emit rows
        // pairwise disjoint across ranks — two workers writing the same
        // `global` element concurrently would be a data race.
        assert!(
            rp.y_emit.iter().all(|&(g, s)| {
                (g as usize) < plan.nrows
                    && (s as usize) < rp.ny
                    && plan.y_part[g as usize] as usize == r
            }),
            "rank {r}: y_emit entry out of range or not owned"
        );
        for (p, step) in rp.steps.iter().enumerate() {
            match step {
                RankStep::Compute(kernel) => {
                    // Per-format structural checks (array shapes, slot
                    // ranges, chunk/span bounds) — see Kernel::validate.
                    if let Err(e) = kernel.validate(rp.nx, rp.ny) {
                        panic!("rank {r} phase {p}: {e}");
                    }
                }
                RankStep::Comm { phase, sends, recvs } => {
                    let ph = *phase as usize;
                    assert!(ph < plan.staging_words.len(), "rank {r} phase {p}: bad comm ordinal");
                    let limit = plan.staging_words[ph] as u32;
                    for m in sends.iter().chain(recvs) {
                        assert!(
                            m.x_idx.iter().all(|&s| (s as usize) < rp.nx)
                                && m.y_idx.iter().all(|&s| (s as usize) < rp.ny),
                            "rank {r} phase {p}: message slot out of range"
                        );
                        assert!(
                            m.offset.checked_add(m.words() as u32).is_some_and(|end| end <= limit),
                            "rank {r} phase {p}: staging region out of bounds"
                        );
                    }
                    for m in sends {
                        send_regions[ph].push((m.offset, m.words() as u32));
                    }
                }
            }
        }
    }
    // Kind/ordinal agreement across ranks per phase index (workers read
    // the step kind from their first rank only).
    if let Some(first) = plan.ranks.first() {
        for other in &plan.ranks[1..] {
            for (p, (a, b)) in first.steps.iter().zip(&other.steps).enumerate() {
                let agree = match (a, b) {
                    (RankStep::Compute(_), RankStep::Compute(_)) => true,
                    (RankStep::Comm { phase: pa, .. }, RankStep::Comm { phase: pb, .. }) => {
                        pa == pb
                    }
                    _ => false,
                };
                assert!(agree, "phase {p}: step kinds disagree across ranks");
            }
        }
    }
    // Send regions must be pairwise disjoint — concurrent writers would
    // otherwise race on the same staging elements.
    for (ph, mut regions) in send_regions.into_iter().enumerate() {
        regions.sort_unstable();
        for pair in regions.windows(2) {
            assert!(
                pair[0].0 + pair[0].1 <= pair[1].0,
                "comm phase {ph}: overlapping staging regions at offset {}",
                pair[1].0
            );
        }
    }
}

impl ParallelEngine {
    /// Pool over `plan` with one worker per rank, capped at the number
    /// of available CPUs.
    pub fn new(plan: CompiledPlan) -> ParallelEngine {
        ParallelEngine::new_batch(plan, 1)
    }

    /// Pool sized for batches of up to `width` right-hand sides, with
    /// the default worker count.
    pub fn new_batch(plan: CompiledPlan, width: usize) -> ParallelEngine {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = plan.k.min(cpus).max(1);
        ParallelEngine::with_threads_batch(plan, threads, width)
    }

    /// Compiles `plan` and builds the pool in one step.
    pub fn from_plan(plan: &SpmvPlan) -> ParallelEngine {
        ParallelEngine::new(CompiledPlan::compile(plan))
    }

    /// Pool with an explicit worker count (clamped to `1..=plan.k`;
    /// ranks are distributed over workers in contiguous blocks).
    ///
    /// # Panics
    /// Panics if `plan` violates the invariants the shared-buffer
    /// execution depends on (see `validate_for_pool` in the source) —
    /// plans produced by [`CompiledPlan::compile`] always satisfy them.
    pub fn with_threads(plan: CompiledPlan, threads: usize) -> ParallelEngine {
        ParallelEngine::with_threads_batch(plan, threads, 1)
    }

    /// [`ParallelEngine::with_threads`] with shared buffers sized for
    /// batches of up to `width` right-hand sides (row-major blocks, see
    /// the `exec` module docs for the layout).
    pub fn with_threads_batch(plan: CompiledPlan, threads: usize, width: usize) -> ParallelEngine {
        ParallelEngine::with_options(plan, PoolOptions { threads, width, ..PoolOptions::default() })
    }

    /// A telemetry-recording pool: workers time their compute / gather
    /// / scatter work per owned rank and their barrier waits (recorded
    /// under the first rank of each worker's range) into `sink`.
    /// `threads = 0` selects the default sizing. Results are bitwise
    /// identical to an uninstrumented pool.
    pub fn with_telemetry(
        plan: CompiledPlan,
        threads: usize,
        width: usize,
        sink: Arc<TelemetrySink>,
    ) -> ParallelEngine {
        ParallelEngine::with_options(
            plan,
            PoolOptions { threads, width, sink: Some(sink), ..PoolOptions::default() },
        )
    }

    /// The fully-general constructor: every knob (worker count,
    /// batch capacity, compute schedule, core pinning, telemetry) in
    /// one [`PoolOptions`]. All other constructors delegate here.
    pub fn with_options(plan: CompiledPlan, opts: PoolOptions) -> ParallelEngine {
        let threads = if opts.threads == 0 {
            let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
            plan.k.min(cpus).max(1)
        } else {
            opts.threads
        };
        let obs = opts.sink.map(|sink| ExecTelemetry::new(&plan, sink));
        ParallelEngine::build(plan, threads, opts.width.max(1), opts.schedule, opts.pin, obs)
    }

    fn build(
        plan: CompiledPlan,
        threads: usize,
        width: usize,
        schedule: PoolSchedule,
        pin: bool,
        obs: Option<ExecTelemetry>,
    ) -> ParallelEngine {
        validate_for_pool(&plan);
        assert!(width >= 1, "batch width must be at least 1");
        let k = plan.k;
        let threads = threads.clamp(1, k);
        // Balanced contiguous split; threads ≤ k keeps every range
        // non-empty (workers index `plan.ranks[my.start]` for the step
        // kind, so an empty range would be out of bounds).
        let base = k / threads;
        let extra = k % threads;
        let mut next = 0;
        let assign: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let range = next..next + len;
                next += len;
                range
            })
            .collect();
        let mut zero_rows: Vec<Vec<u32>> = vec![Vec::new(); k];
        for i in 0..plan.nrows {
            if plan.y_slot[i] == crate::compile::NO_SLOT {
                zero_rows[plan.y_part[i] as usize].push(i as u32);
            }
        }
        let chunks = match schedule {
            PoolSchedule::RankSplit => None,
            PoolSchedule::NnzChunked { chunk_ops } => {
                Some(chunk_schedule(&plan, threads, chunk_ops))
            }
        };
        let loads = match &chunks {
            Some(cs) => cs.planned.clone(),
            None => assign
                .iter()
                .map(|rg| {
                    plan.ranks[rg.clone()]
                        .iter()
                        .flat_map(|rp| &rp.steps)
                        .map(|s| match s {
                            RankStep::Compute(kernel) => kernel.ops() as u64,
                            RankStep::Comm { .. } => 0,
                        })
                        .sum()
                })
                .collect(),
        };
        let shared = Arc::new(Shared {
            width,
            zero_rows,
            x: plan.ranks.iter().map(|r| ShBuf::new(r.nx * width)).collect(),
            y: plan.ranks.iter().map(|r| ShBuf::new(r.ny * width)).collect(),
            staging: plan.staging_words.iter().map(|&w| ShBuf::new(w * width)).collect(),
            global: ShBuf::new(plan.nrows * width),
            assign,
            schedule,
            chunks,
            loads,
            pin,
            job_x: AtomicPtr::new(std::ptr::null_mut()),
            job_iters: AtomicUsize::new(0),
            job_width: AtomicUsize::new(1),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            gate: SpinBarrier::new(threads + 1),
            sync: SpinBarrier::new(threads),
            obs,
            plan,
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("s2d-engine-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn engine worker")
            })
            .collect();
        ParallelEngine { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Batch capacity this pool's buffers were sized for.
    pub fn width(&self) -> usize {
        self.shared.width
    }

    /// The compiled plan this pool executes.
    pub fn plan(&self) -> &CompiledPlan {
        &self.shared.plan
    }

    /// The [`KernelFormat`] policy the plan (and thus every job this
    /// pool runs) was compiled with — the format travels with the plan
    /// inside the job descriptor, workers never re-decide it.
    pub fn kernel_format(&self) -> KernelFormat {
        self.shared.plan.format
    }

    /// The compute schedule this pool was built with.
    pub fn schedule(&self) -> PoolSchedule {
        self.shared.schedule
    }

    /// Planned compute multiply-adds per worker per iteration. The
    /// chunk→worker map is fixed (no work stealing), so planned load is
    /// also the achieved per-iteration load — multiply by iterations ×
    /// batch width for executed madds.
    pub fn worker_loads(&self) -> &[u64] {
        &self.shared.loads
    }

    /// Compute imbalance: `max / mean` of
    /// [`worker_loads`](ParallelEngine::worker_loads) (1.0 = perfectly
    /// balanced; a pool with no compute work also reports 1.0).
    pub fn load_imbalance(&self) -> f64 {
        let loads = &self.shared.loads;
        let total: u64 = loads.iter().sum();
        if loads.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().expect("nonempty") as f64 / mean
    }

    /// One SpMV: `y = A·x` on the pool.
    pub fn execute(&mut self, x: &[f64], y: &mut [f64]) {
        self.execute_iters(x, y, 1);
    }

    /// `iters` chained applications: `y = A^iters · x` with one
    /// dispatch — workers stay hot across iterations, nothing
    /// allocates, and only the final assembled vector is copied out.
    ///
    /// # Panics
    /// Panics if a worker thread panicked (the engine is then poisoned
    /// and every later call fails fast).
    pub fn execute_iters(&mut self, x: &[f64], y: &mut [f64], iters: usize) {
        self.execute_batch_iters(x, y, 1, iters);
    }

    /// One batched SpMV: `Y = A·X` over `r` right-hand sides (row-major
    /// `ncols × r` input, `nrows × r` output).
    pub fn execute_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        self.execute_batch_iters(x, y, r, 1);
    }

    /// `iters` chained batched applications: `Y = A^iters · X` with one
    /// dispatch.
    ///
    /// # Panics
    /// Panics if `r` exceeds the width the pool was built with
    /// ([`ParallelEngine::new_batch`] / `with_threads_batch`), or if a
    /// worker thread panicked.
    pub fn execute_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        let plan = &self.shared.plan;
        assert!(iters >= 1, "at least one iteration");
        assert!(r >= 1, "batch width must be at least 1");
        assert!(
            r <= self.shared.width,
            "pool was built for batches of {} (got {r}); use new_batch/with_threads_batch",
            self.shared.width
        );
        assert_eq!(x.len(), plan.ncols * r, "input length mismatch");
        assert_eq!(y.len(), plan.nrows * r, "output length mismatch");
        if iters > 1 {
            assert_eq!(plan.nrows, plan.ncols, "chained SpMV needs a square plan");
        }
        assert!(
            !self.shared.poisoned.load(Ordering::Acquire),
            "engine poisoned: a worker thread panicked in an earlier call"
        );
        self.shared.job_x.store(x.as_ptr() as *mut f64, Ordering::Relaxed);
        self.shared.job_iters.store(iters, Ordering::Relaxed);
        self.shared.job_width.store(r, Ordering::Relaxed);
        let t = self.shared.obs.as_ref().map(|_| Instant::now());
        let _ = self.shared.gate.wait(&self.shared.poisoned); // release the workers
        let _ = self.shared.gate.wait(&self.shared.poisoned); // wait for completion
        assert!(
            !self.shared.poisoned.load(Ordering::Acquire),
            "engine poisoned: a worker thread panicked (see stderr for its message)"
        );
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.shared.global.get(i);
        }
        if let (Some(obs), Some(t)) = (&self.shared.obs, t) {
            obs.sink().add_wall(t.elapsed().as_nanos() as u64);
            obs.sink().add_iterations(iters as u64);
        }
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.shared.gate.wait(&self.shared.poisoned);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Sender half of a staged message (gather x, drain y), `r` words per
/// listed slot.
#[inline]
fn stage_send(m: &CompiledMsg, x: &ShBuf, y: &ShBuf, staging: &ShBuf, r: usize) {
    let mut w = m.offset as usize * r;
    for &slot in &m.x_idx {
        let s = slot as usize * r;
        for q in 0..r {
            staging.set(w + q, x.get(s + q));
        }
        w += r;
    }
    for &slot in &m.y_idx {
        let s = slot as usize * r;
        for q in 0..r {
            staging.set(w + q, y.get(s + q));
            y.set(s + q, 0.0); // moved, not copied
        }
        w += r;
    }
}

/// Receiver half of a staged message (scatter x, accumulate y).
#[inline]
fn apply_recv(m: &CompiledMsg, x: &ShBuf, y: &ShBuf, staging: &ShBuf, r: usize) {
    let mut w = m.offset as usize * r;
    for &slot in &m.x_idx {
        let s = slot as usize * r;
        for q in 0..r {
            x.set(s + q, staging.get(w + q));
        }
        w += r;
    }
    for &slot in &m.y_idx {
        let s = slot as usize * r;
        for q in 0..r {
            y.set(s + q, y.get(s + q) + staging.get(w + q));
        }
        w += r;
    }
}

/// Starts a span clock only when telemetry is attached — the `None`
/// path keeps the job loop free of clock reads.
#[inline]
fn obs_start(obs: &Option<ExecTelemetry>) -> Option<Instant> {
    obs.as_ref().map(|_| Instant::now())
}

/// Records a span started by [`obs_start`] under `(rank, phase)`.
#[inline]
fn obs_record(obs: &Option<ExecTelemetry>, rk: usize, ph: Phase, t: Option<Instant>) {
    if let (Some(o), Some(t)) = (obs.as_ref(), t) {
        o.rec(rk).record(ph, t.elapsed().as_nanos() as u64);
    }
}

/// One worker's share of one job at batch width `r`. Returns early
/// (without touching the shared buffers again) as soon as a poisoned
/// barrier reports that a peer died — see the module docs.
///
/// When `shared.obs` is attached, the worker also times its phase work
/// per owned rank (barrier waits under `my.start`) — clock reads only,
/// the numeric path is identical.
fn run_job(shared: &Shared, w: usize, iters: usize, xp: *const f64, r: usize) {
    let plan = &shared.plan;
    let obs = &shared.obs;
    let my = &shared.assign[w];
    let num_phases = plan.ranks.first().map_or(0, |rp| rp.steps.len());
    for it in 0..iters {
        // Seed owned x entries (iteration 0 from the caller's input,
        // later ones from the previous gathered result) and reset the
        // partial sums.
        for rk in my.clone() {
            let t = obs_start(obs);
            let rp = &plan.ranks[rk];
            for &(g, slot) in &rp.x_seed {
                for q in 0..r {
                    let v = if it == 0 {
                        // SAFETY: the control thread keeps the input
                        // slice alive until the completion gate;
                        // g*r + q < ncols*r == x.len() by the execute
                        // asserts.
                        unsafe { *xp.add(g as usize * r + q) }
                    } else {
                        shared.global.get(g as usize * r + q)
                    };
                    shared.x[rk].set(slot as usize * r + q, v);
                }
            }
            for i in 0..rp.ny * r {
                shared.y[rk].set(i, 0.0);
            }
            obs_record(obs, rk, Phase::Gather, t);
        }
        if shared.chunks.is_some() {
            // Chunked compute reads x and writes y that *other* workers
            // seeded — no chunk may start before every seed landed.
            let t = obs_start(obs);
            let poisoned = shared.sync.wait(&shared.poisoned);
            obs_record(obs, my.start, Phase::BarrierWait, t);
            if poisoned {
                return;
            }
        }
        for p in 0..num_phases {
            // Step kinds agree across ranks at a given phase index
            // (checked by validate_for_pool).
            let is_comm = matches!(plan.ranks[my.start].steps[p], RankStep::Comm { .. });
            if !is_comm {
                if let Some(cs) = &shared.chunks {
                    for run in &cs.phases[p][w] {
                        let rk = run.rank as usize;
                        let t = obs_start(obs);
                        let RankStep::Compute(kernel) = &plan.ranks[rk].steps[p] else {
                            unreachable!("chunk schedule points at a compute step")
                        };
                        // SAFETY: a chunk reads and writes only the y
                        // row slots of its own units, which are
                        // pairwise disjoint across the phase's chunks
                        // (only splittable kernels are split); x is
                        // read-only for the whole phase; and the seed
                        // barrier before / sync barrier after the
                        // phase order every cross-worker handoff — so
                        // per element these views are uniquely live,
                        // the same discipline ShBuf::get/set rely on.
                        let (x, y) =
                            unsafe { (shared.x[rk].as_slice(), shared.y[rk].as_mut_slice()) };
                        kernel.run_batch_range(x, y, r, run.lo as usize, run.hi as usize);
                        obs_record(obs, rk, Phase::Compute, t);
                    }
                    // Every chunk of the phase lands before any later
                    // reader (staging, a following phase, the emit)
                    // touches the y buffers.
                    let t = obs_start(obs);
                    let poisoned = shared.sync.wait(&shared.poisoned);
                    obs_record(obs, my.start, Phase::BarrierWait, t);
                    if poisoned {
                        return;
                    }
                } else {
                    for rk in my.clone() {
                        if let RankStep::Compute(kernel) = &plan.ranks[rk].steps[p] {
                            let t = obs_start(obs);
                            // SAFETY: rank rk belongs to this worker
                            // alone (spatial invariant), x and y are
                            // distinct buffers, and barriers order
                            // every handoff — so these are the only
                            // live views. Running through plain slices
                            // shares one kernel implementation (every
                            // KernelFormat) with the sequential
                            // executor instead of duplicating the
                            // format dispatch over UnsafeCell access.
                            let (x, y) =
                                unsafe { (shared.x[rk].as_slice(), shared.y[rk].as_mut_slice()) };
                            kernel.run_batch(x, y, r);
                            obs_record(obs, rk, Phase::Compute, t);
                        }
                    }
                }
                continue;
            }
            for rk in my.clone() {
                if let RankStep::Comm { phase, sends, .. } = &plan.ranks[rk].steps[p] {
                    let t = obs_start(obs);
                    let staging = &shared.staging[*phase as usize];
                    for m in sends {
                        stage_send(m, &shared.x[rk], &shared.y[rk], staging, r);
                    }
                    obs_record(obs, rk, Phase::Gather, t);
                }
            }
            {
                // Everyone staged (and drained) before anyone applies.
                let t = obs_start(obs);
                let poisoned = shared.sync.wait(&shared.poisoned);
                obs_record(obs, my.start, Phase::BarrierWait, t);
                if poisoned {
                    return;
                }
                for rk in my.clone() {
                    if let RankStep::Comm { phase, recvs, .. } = &plan.ranks[rk].steps[p] {
                        let t = obs_start(obs);
                        let staging = &shared.staging[*phase as usize];
                        for m in recvs {
                            apply_recv(m, &shared.x[rk], &shared.y[rk], staging, r);
                        }
                        obs_record(obs, rk, Phase::Scatter, t);
                    }
                }
                // Applies finish before the next writer reuses the
                // staging buffer (next iteration, same phase).
                let t = obs_start(obs);
                let poisoned = shared.sync.wait(&shared.poisoned);
                obs_record(obs, my.start, Phase::BarrierWait, t);
                if poisoned {
                    return;
                }
            }
        }
        // Before gathering: every worker's seeding for this iteration
        // must be done, since seeding reads `global` (it > 0) and the
        // gather below writes it. The chunked schedule's seed barrier
        // already orders this; under rank-split, a comm phase's
        // stage/apply barriers order it transitively, but a
        // (hand-built) plan without comm phases needs an explicit
        // barrier when iterations chain.
        if iters > 1
            && plan.staging_words.is_empty()
            && shared.chunks.is_none()
            && shared.sync.wait(&shared.poisoned)
        {
            return;
        }
        // Gather owned results into the global block. Rows no rank
        // materializes are zeroed at this job's stride on the first
        // iteration (a previous job of a different width may have left
        // stale words at these positions).
        for rk in my.clone() {
            let t = obs_start(obs);
            for &(g, slot) in &plan.ranks[rk].y_emit {
                for q in 0..r {
                    shared.global.set(g as usize * r + q, shared.y[rk].get(slot as usize * r + q));
                }
            }
            if it == 0 {
                for &g in &shared.zero_rows[rk] {
                    for q in 0..r {
                        shared.global.set(g as usize * r + q, 0.0);
                    }
                }
            }
            obs_record(obs, rk, Phase::Scatter, t);
        }
        if let Some(o) = obs {
            for rk in my.clone() {
                o.bump_iter(rk, r);
            }
        }
        if it + 1 < iters {
            // Reseeding reads the global block other workers wrote.
            let t = obs_start(obs);
            let poisoned = shared.sync.wait(&shared.poisoned);
            obs_record(obs, my.start, Phase::BarrierWait, t);
            if poisoned {
                return;
            }
        }
    }
}

/// The worker main loop: park at the gate, run the published job, park
/// again. Lives until the engine drops. A panic in the job body poisons
/// the engine instead of deadlocking it.
fn worker_loop(shared: &Shared, w: usize) {
    if shared.pin {
        pin_to_core(w);
    }
    // First-touch the buffers this worker owns: allocation left the
    // pages untouched (alloc_zeroed), so writing them here — strictly
    // before the first job gate, hence with no concurrent accessor —
    // places them on this worker's NUMA node under a first-touch
    // policy.
    let my = shared.assign[w].clone();
    for rk in my.clone() {
        for i in 0..shared.x[rk].len() {
            shared.x[rk].set(i, 0.0);
        }
        for i in 0..shared.y[rk].len() {
            shared.y[rk].set(i, 0.0);
        }
    }
    loop {
        if shared.gate.wait(&shared.poisoned) {
            // Poisoned: the gate no longer synchronizes anything. Idle
            // until the engine shuts down.
            while !shared.shutdown.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let iters = shared.job_iters.load(Ordering::Relaxed);
        let xp = shared.job_x.load(Ordering::Relaxed) as *const f64;
        let r = shared.job_width.load(Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, w, iters, xp, r)
        }));
        if outcome.is_err() {
            shared.poisoned.store(true, Ordering::Release);
        }
        let _ = shared.gate.wait(&shared.poisoned); // completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};
    use s2d_spmv::SpmvPlan;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    #[test]
    fn pool_matches_mailbox_on_all_plan_kinds() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh(&a, &p, 3, 1),
        ] {
            let want = plan.execute_mailbox(&x);
            let mut engine = ParallelEngine::from_plan(&plan);
            let mut y = vec![0.0; a.nrows()];
            engine.execute(&x, &mut y);
            assert_close(&y, &want);
        }
    }

    #[test]
    fn pool_is_reusable_and_deterministic() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        let mut engine = ParallelEngine::from_plan(&plan);
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 / (j + 1) as f64).collect();
        let mut first = vec![0.0; a.nrows()];
        engine.execute(&x, &mut first);
        for _ in 0..10 {
            let mut again = vec![0.0; a.nrows()];
            engine.execute(&x, &mut again);
            assert_eq!(first, again, "fixed schedule → bitwise deterministic");
        }
    }

    #[test]
    fn every_thread_count_gives_the_same_answer() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::mesh(&a, &p, 1, 3);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin() + 2.0).collect();
        let want = plan.execute_mailbox(&x);
        let cp = CompiledPlan::compile(&plan);
        for threads in 1..=4 {
            let mut engine = ParallelEngine::with_threads(cp.clone(), threads);
            let mut y = vec![0.0; a.nrows()];
            engine.execute(&x, &mut y);
            assert_close(&y, &want);
        }
    }

    #[test]
    fn execute_iters_matches_sequential_chaining() {
        let (a, plan) = crate::exec::tests::square_setup(14, 4);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).cos()).collect();
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut want = vec![0.0; a.nrows()];
        cp.execute_iters(&mut ws, &x, &mut want, 4);
        let mut engine = ParallelEngine::new(cp);
        let mut y = vec![0.0; a.nrows()];
        engine.execute_iters(&x, &mut y, 4);
        assert_close(&y, &want);
    }

    #[test]
    fn batched_pool_matches_per_column_sequential() {
        let a = fig1_matrix();
        let p = fig1_partition();
        for plan in [SpmvPlan::single_phase(&a, &p), SpmvPlan::mesh(&a, &p, 3, 1)] {
            let cp = CompiledPlan::compile(&plan);
            for r in [2usize, 3, 8] {
                let x = crate::exec::tests::batch_input(a.ncols(), r, 5);
                let mut engine = ParallelEngine::with_threads_batch(cp.clone(), 3, r);
                let mut y = vec![0.0; a.nrows() * r];
                engine.execute_batch(&x, &mut y, r);
                let mut ws = cp.workspace();
                for q in 0..r {
                    let xq = crate::exec::tests::column(&x, a.ncols(), r, q);
                    let mut yq = vec![0.0; a.nrows()];
                    cp.execute(&mut ws, &xq, &mut yq);
                    assert_eq!(
                        crate::exec::tests::column(&y, a.nrows(), r, q),
                        yq,
                        "r={r} column {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_iters_match_sequential_batched_iters() {
        let (a, plan) = crate::exec::tests::square_setup(16, 4);
        let cp = CompiledPlan::compile(&plan);
        let r = 4;
        let x = crate::exec::tests::batch_input(a.ncols(), r, 9);
        let mut ws = cp.workspace_batch(r);
        let mut want = vec![0.0; a.nrows() * r];
        cp.execute_batch_iters(&mut ws, &x, &mut want, r, 3);
        let mut engine = ParallelEngine::with_threads_batch(cp, 2, r);
        let mut y = vec![0.0; a.nrows() * r];
        engine.execute_batch_iters(&x, &mut y, r, 3);
        assert_eq!(y, want, "pool batch-iters must match the workspace executor bitwise");
    }

    #[test]
    fn mixed_width_jobs_do_not_leak_stale_words() {
        // A matrix with an empty row (never materialized, NO_SLOT): a
        // wide job writes global words at stride r; a later narrow job
        // must still see 0.0 for the empty row, not a stale word.
        use s2d_core::partition::SpmvPartition;
        use s2d_sparse::Coo;
        let mut m = Coo::new(4, 4);
        m.push(0, 0, 2.0);
        m.push(2, 1, 3.0);
        m.push(3, 3, 4.0); // row 1 is empty
        m.compress();
        let a = m.to_csr();
        let parts = vec![0, 0, 1, 1];
        let p = SpmvPartition::rowwise(&a, parts.clone(), parts, 2);
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut engine = ParallelEngine::with_threads_batch(cp, 2, 4);
        let x4 = crate::exec::tests::batch_input(4, 4, 1);
        let mut y4 = vec![0.0; 16];
        engine.execute_batch(&x4, &mut y4, 4);
        // Narrow job on the same engine: empty row must assemble to 0.
        let x1 = vec![1.0, 1.0, 1.0, 1.0];
        let mut y1 = vec![9.0; 4];
        engine.execute(&x1, &mut y1);
        assert_eq!(y1, vec![2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn every_kernel_format_agrees_on_the_pool() {
        // The pool shares one kernel implementation with the sequential
        // executor (slice views over the shared buffers), so every
        // format must agree bitwise with the CSR pool result.
        let (a, plan) = crate::exec::tests::square_setup(24, 4);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin() * 2.0).collect();
        let mut want = vec![0.0; a.nrows()];
        ParallelEngine::with_threads(CompiledPlan::compile(&plan), 3).execute(&x, &mut want);
        for format in KernelFormat::all() {
            let cp = CompiledPlan::compile_with(&plan, format);
            let mut engine = ParallelEngine::with_threads(cp, 3);
            assert_eq!(engine.kernel_format(), format);
            let mut y = vec![0.0; a.nrows()];
            engine.execute(&x, &mut y);
            assert_eq!(y, want, "{format}");
        }
    }

    #[test]
    fn chunked_schedule_matches_rank_split_bitwise() {
        // The acceptance bar for the NNZ-chunked schedule: bitwise
        // equality with rank-split at every worker count and chunk
        // size, including chained iterations.
        let (a, plan) = crate::exec::tests::square_setup(24, 4);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin() + 0.25).collect();
        let cp = CompiledPlan::compile(&plan);
        let mut want = vec![0.0; a.nrows()];
        ParallelEngine::with_options(
            cp.clone(),
            PoolOptions { threads: 1, schedule: PoolSchedule::RankSplit, ..PoolOptions::default() },
        )
        .execute_iters(&x, &mut want, 3);
        for threads in [1usize, 2, 3, 4] {
            for chunk_ops in [0usize, 1, 7, 1 << 20] {
                let mut engine = ParallelEngine::with_options(
                    cp.clone(),
                    PoolOptions {
                        threads,
                        schedule: PoolSchedule::NnzChunked { chunk_ops },
                        ..PoolOptions::default()
                    },
                );
                let mut y = vec![0.0; a.nrows()];
                engine.execute_iters(&x, &mut y, 3);
                assert_eq!(y, want, "threads={threads} chunk_ops={chunk_ops}");
            }
        }
    }

    #[test]
    fn worker_loads_cover_every_planned_madd() {
        let (_a, plan) = crate::exec::tests::square_setup(24, 4);
        let cp = CompiledPlan::compile(&plan);
        let total = cp.total_ops();
        assert!(total > 0, "test matrix must have work");
        for schedule in [PoolSchedule::RankSplit, PoolSchedule::NnzChunked { chunk_ops: 1 }] {
            let engine = ParallelEngine::with_options(
                cp.clone(),
                PoolOptions { threads: 3, schedule, ..PoolOptions::default() },
            );
            assert_eq!(engine.schedule(), schedule);
            assert_eq!(
                engine.worker_loads().iter().sum::<u64>(),
                total,
                "{}: every madd is scheduled exactly once",
                schedule.label()
            );
            assert!(engine.load_imbalance() >= 1.0);
        }
    }

    #[test]
    fn pinned_pool_matches_unpinned() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::mesh(&a, &p, 3, 1);
        let x: Vec<f64> = (0..a.ncols()).map(|j| 0.5 * j as f64 - 1.0).collect();
        let cp = CompiledPlan::compile(&plan);
        let mut want = vec![0.0; a.nrows()];
        ParallelEngine::with_threads(cp.clone(), 2).execute(&x, &mut want);
        let mut pinned = ParallelEngine::with_options(
            cp,
            PoolOptions { threads: 2, pin: true, ..PoolOptions::default() },
        );
        let mut y = vec![0.0; a.nrows()];
        pinned.execute(&x, &mut y);
        assert_eq!(y, want, "pinning is placement-only, never numeric");
    }

    #[test]
    #[should_panic(expected = "pool was built for batches of 1")]
    fn oversized_batch_is_rejected() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let mut engine = ParallelEngine::from_plan(&SpmvPlan::single_phase(&a, &p));
        let x = vec![0.0; a.ncols() * 2];
        let mut y = vec![0.0; a.nrows() * 2];
        engine.execute_batch(&x, &mut y, 2);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let engine = ParallelEngine::from_plan(&SpmvPlan::single_phase(&a, &p));
        assert!(engine.threads() >= 1);
        drop(engine); // must not hang
    }

    #[test]
    #[should_panic(expected = "overlapping staging regions")]
    fn overlapping_send_regions_are_rejected() {
        // Hand-built plan whose two sends share a staging region — the
        // exact shape that would race two writers on one cell.
        let (_a, plan) = crate::exec::tests::square_setup(8, 4);
        let mut cp = CompiledPlan::compile(&plan);
        let mut clobbered = false;
        for rp in &mut cp.ranks {
            for step in &mut rp.steps {
                if let RankStep::Comm { sends, .. } = step {
                    for m in sends {
                        m.offset = 0;
                        clobbered = true;
                    }
                }
            }
        }
        assert!(clobbered, "test needs a plan with at least two sends");
        let _ = ParallelEngine::with_threads(cp, 2);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn out_of_range_slots_are_rejected() {
        let (_a, plan) = crate::exec::tests::square_setup(8, 2);
        let mut cp = CompiledPlan::compile(&plan);
        let slot = cp
            .ranks
            .iter_mut()
            .flat_map(|rp| &mut rp.steps)
            .find_map(|s| match s {
                RankStep::Compute(crate::formats::Kernel::Csr(k)) => k.cols.first_mut(),
                _ => None,
            })
            .expect("plan has a nonempty kernel");
        *slot = u32::MAX;
        let _ = ParallelEngine::with_threads(cp, 1);
    }

    #[test]
    fn worker_panic_poisons_instead_of_hanging() {
        // Force a genuine panic inside a worker thread: `row_ptr`
        // segment bounds are not pre-validated (indexing `vals` is
        // bounds-checked at run time), so an oversized end pointer
        // panics mid-job. The engine must surface the failure on the
        // control thread and Drop must still join — not deadlock.
        let (a, plan) = crate::exec::tests::square_setup(12, 3);
        let mut cp = CompiledPlan::compile(&plan);
        let kernel = cp
            .ranks
            .iter_mut()
            .flat_map(|rp| &mut rp.steps)
            .find_map(|s| match s {
                RankStep::Compute(crate::formats::Kernel::Csr(k)) if !k.rows.is_empty() => Some(k),
                _ => None,
            })
            .expect("plan has a nonempty kernel");
        *kernel.row_ptr.last_mut().unwrap() = u32::MAX >> 8;
        let mut engine = ParallelEngine::with_threads(cp, 2);
        let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64).collect();
        let mut y = vec![0.0; a.nrows()];
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.execute(&x, &mut y)));
        assert!(result.is_err(), "worker panic must reach the control thread");
        let again =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.execute(&x, &mut y)));
        assert!(again.is_err(), "poisoned engine must fail fast on reuse");
        drop(engine); // and Drop must not hang
    }
}
