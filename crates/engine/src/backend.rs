//! The [`Backend`] selector and the compiled [`SpmvOperator`]
//! implementations.
//!
//! Every execution path in the workspace — the two interpreting
//! executors from `s2d-spmv` and the two compiled paths from this crate
//! — is constructible from the same [`SpmvPlan`] through
//! [`Backend::build`], which returns a boxed [`SpmvOperator`]. Consumers
//! (solvers, the CLI, benches, the differential and conformance
//! harnesses) select a backend by value or by name and stay otherwise
//! backend-agnostic; adding a new execution path means adding one enum
//! variant and one operator struct.
//!
//! # Choosing a backend
//!
//! * [`Backend::Mailbox`] — deterministic sequential interpreter.
//!   Slowest by far (hash maps everywhere); use it as the semantic
//!   oracle, never as a fast path.
//! * [`Backend::Threaded`] — one OS thread per virtual processor over
//!   the message-passing runtime. Spawns threads per call and its
//!   accumulation order varies between runs — the *concurrent
//!   validation* path.
//! * [`Backend::CompiledSeq`] — the flat-buffer compiled plan on a
//!   sequential [`Workspace`]. Zero allocation per
//!   iteration; the fastest choice whenever one iteration costs less
//!   than ~1 ms (pool barrier overhead dominates below that) and the
//!   right baseline for kernel work.
//! * [`Backend::CompiledPool`] — the same compiled plan on the
//!   persistent worker pool. Wins on matrices big enough that one
//!   iteration costs ≳ 1 ms; `threads = 0` sizes the pool to
//!   `min(K, available CPUs)`.
//!
//! Undecided? [`Backend::auto`] applies the crossover rule to a
//! compiled plan (`--engine auto` on the CLI). Kernel format: the
//! compiled backends accept a [`KernelFormat`] through
//! [`Backend::build_with`] — `auto` picks per rank × phase from
//! compile-time row statistics; see the `formats` module docs.
//!
//! Batch width: pass the widest `r` you will use to [`Backend::build`]
//! so buffers are sized once. Widths 1, 2, 4 and 8 run fixed-width
//! specialized inner loops — prefer them over odd widths; wider batches
//! amortize matrix traversal (r = 8 measures ~2–2.4× faster than 8
//! single applications on rmat14/K = 16) at the cost of `r×` vector
//! memory. Operators grow on demand if a wider batch shows up later
//! ([`CompiledPoolOperator`] rebuilds its pool to do so — pay that once,
//! up front, by building with the right width).

use std::sync::Arc;
use std::time::Instant;

use s2d_obs::{Phase, TelemetrySink};
use s2d_spmv::{MailboxOperator, SpmvOperator, SpmvPlan, ThreadedOperator};

use crate::compile::CompiledPlan;
use crate::exec::Workspace;
use crate::formats::{KernelFormat, KernelIsa};
use crate::pool::{ParallelEngine, PoolOptions};
use crate::telemetry::ExecTelemetry;

/// Selects one of the four SpMV execution backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Deterministic sequential interpreter (the semantic oracle).
    Mailbox,
    /// One OS thread per rank over message-passing channels.
    Threaded,
    /// Compiled plan, sequential zero-alloc workspace execution.
    CompiledSeq,
    /// Compiled plan on the persistent worker pool (`threads = 0` →
    /// one worker per rank, capped at the available CPUs), running the
    /// NNZ-chunked compute schedule.
    CompiledPool {
        /// Worker count; 0 selects the default sizing.
        threads: usize,
        /// Pin worker `w` to CPU `w` (CLI spelling `pool:N@pin`);
        /// Linux-only performance hint, a no-op elsewhere.
        pin: bool,
    },
}

impl Backend {
    /// Every backend, with default parameters — the iteration set for
    /// conformance and differential sweeps.
    pub fn all() -> [Backend; 4] {
        [
            Backend::Mailbox,
            Backend::Threaded,
            Backend::CompiledSeq,
            Backend::CompiledPool { threads: 0, pin: false },
        ]
    }

    /// Short stable label (bench ids, CLI output, test diagnostics).
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Mailbox => "mailbox",
            Backend::Threaded => "threaded",
            Backend::CompiledSeq => "compiled-seq",
            Backend::CompiledPool { .. } => "compiled-pool",
        }
    }

    /// Builds this backend's operator over `plan`, sized for batches of
    /// up to `width` right-hand sides, with the default
    /// [`KernelFormat::CsrSlice`] kernels.
    ///
    /// All setup happens here — plan compilation, buffer allocation,
    /// worker-thread spawn — so that `apply`/`apply_batch` run at
    /// steady-state cost. The interpreting backends keep a reference to
    /// the shared plan; the compiled backends drop it after compiling.
    pub fn build(&self, plan: &Arc<SpmvPlan>, width: usize) -> Box<dyn SpmvOperator + Send> {
        self.build_with(plan, width, KernelFormat::CsrSlice)
    }

    /// [`Backend::build`] with an explicit [`KernelFormat`] for the
    /// compiled backends (the interpreting backends have no kernels and
    /// ignore it).
    pub fn build_with(
        &self,
        plan: &Arc<SpmvPlan>,
        width: usize,
        format: KernelFormat,
    ) -> Box<dyn SpmvOperator + Send> {
        self.build_cfg(plan, width, format, KernelIsa::Auto, None)
    }

    /// [`Backend::build_with`] with optional telemetry. With a sink
    /// attached, the compiled backends record per-rank phase spans and
    /// work counters; the interpreting backends (which have no phase
    /// structure to hook) are wrapped in an [`ObservedOperator`] that
    /// accounts whole applications under rank 0. Results are bitwise
    /// identical to the sink-less build.
    ///
    /// # Panics
    /// Panics if the sink was sized for a rank count other than the
    /// plan's.
    pub fn build_obs(
        &self,
        plan: &Arc<SpmvPlan>,
        width: usize,
        format: KernelFormat,
        sink: Option<Arc<TelemetrySink>>,
    ) -> Box<dyn SpmvOperator + Send> {
        self.build_cfg(plan, width, format, KernelIsa::Auto, sink)
    }

    /// The fully-general builder: kernel format **and** instruction-set
    /// choice ([`KernelIsa`] — `Auto` probes the CPU once, `Scalar`
    /// pins the bitwise reference loops, `Avx2` demands the SIMD paths)
    /// plus optional telemetry. Every ISA produces bitwise-identical
    /// results (the vector lanes map to the batch dimension, never the
    /// accumulation chain); the knob exists for benchmarking and for
    /// the tuner's ISA axis. The interpreting backends have no kernels
    /// and ignore both knobs.
    pub fn build_cfg(
        &self,
        plan: &Arc<SpmvPlan>,
        width: usize,
        format: KernelFormat,
        isa: KernelIsa,
        sink: Option<Arc<TelemetrySink>>,
    ) -> Box<dyn SpmvOperator + Send> {
        assert!(width >= 1, "batch width must be at least 1");
        match *self {
            Backend::Mailbox => {
                let op = MailboxOperator::new(Arc::clone(plan));
                match sink {
                    Some(s) => Box::new(ObservedOperator::new(op, s)),
                    None => Box::new(op),
                }
            }
            Backend::Threaded => {
                let op = ThreadedOperator::new(Arc::clone(plan));
                match sink {
                    Some(s) => Box::new(ObservedOperator::new(op, s)),
                    None => Box::new(op),
                }
            }
            Backend::CompiledSeq => {
                let cp = CompiledPlan::compile_with_isa(plan, format, isa);
                match sink {
                    Some(s) => Box::new(CompiledSeqOperator::with_telemetry(cp, width, s)),
                    None => Box::new(CompiledSeqOperator::new(cp, width)),
                }
            }
            Backend::CompiledPool { threads, pin } => {
                let cp = CompiledPlan::compile_with_isa(plan, format, isa);
                Box::new(CompiledPoolOperator::with_config(cp, threads, width, pin, sink))
            }
        }
    }

    /// Builds this backend's operator from an **already-compiled** plan
    /// — the cache-hit path: a serving layer that cached the
    /// [`CompiledPlan`] of a (matrix, partition, format) combination
    /// skips recompilation entirely and pays only the buffer/worker
    /// setup. The compiled backends clone `cp` (flat-buffer memcpy);
    /// the interpreting backends take the shared plan as usual. Each
    /// call yields an independent operator, so several worker threads
    /// can each hold one over the same cached artifact.
    pub fn build_from_compiled(
        &self,
        plan: &Arc<SpmvPlan>,
        cp: &CompiledPlan,
        width: usize,
    ) -> Box<dyn SpmvOperator + Send> {
        assert!(width >= 1, "batch width must be at least 1");
        match *self {
            Backend::Mailbox => Box::new(MailboxOperator::new(Arc::clone(plan))),
            Backend::Threaded => Box::new(ThreadedOperator::new(Arc::clone(plan))),
            Backend::CompiledSeq => Box::new(CompiledSeqOperator::new(cp.clone(), width)),
            Backend::CompiledPool { threads, pin } => {
                Box::new(CompiledPoolOperator::with_config(cp.clone(), threads, width, pin, None))
            }
        }
    }

    /// Default seq-vs-pool crossover for [`Backend::auto`] on
    /// scalar-kernel plans, in multiply-adds per iteration. PR 1
    /// measured the pool's barrier round trips amortizing around
    /// ≈ 5·10⁵ madds; the NNZ-chunked schedule removes the
    /// serialize-on-the-heaviest-rank penalty that dominated that
    /// figure, pulling the break-even 4× lower. This is a *model*
    /// constant, measured on one machine — when an `s2d-tune`
    /// tuning-cache entry exists for a matrix, its measured backend
    /// pick takes precedence over this threshold.
    pub const POOL_OPS_CROSSOVER: u64 = 125_000;

    /// Crossover for SIMD-kernel plans: AVX2 speeds the *sequential*
    /// baseline roughly 2× at batched widths, so the pool needs about
    /// twice the per-iteration work before its barriers amortize.
    pub const POOL_OPS_CROSSOVER_SIMD: u64 = 250_000;

    /// Picks the compiled backend an already-compiled plan should run
    /// on: the persistent pool wins only when one iteration carries
    /// enough work to amortize its barrier round trips, and only when
    /// there is more than one rank to parallelize over. Everything
    /// smaller runs faster on the sequential workspace.
    ///
    /// ISA-aware: a plan whose kernels resolved to SIMD
    /// ([`CompiledPlan`]'s `isa`, `Auto` on an AVX2 machine) uses
    /// [`Backend::POOL_OPS_CROSSOVER_SIMD`], a scalar plan
    /// [`Backend::POOL_OPS_CROSSOVER`].
    ///
    /// This is the rule behind the CLI's `--engine auto`.
    pub fn auto(cp: &CompiledPlan) -> Backend {
        let crossover = if cp.isa.simd() {
            Backend::POOL_OPS_CROSSOVER_SIMD
        } else {
            Backend::POOL_OPS_CROSSOVER
        };
        Backend::auto_with_crossover(cp, crossover)
    }

    /// [`Backend::auto`] with an explicit crossover — for machines
    /// whose measured seq/pool break-even differs from the default
    /// (the tuner's measurements are the principled way to find it).
    pub fn auto_with_crossover(cp: &CompiledPlan, crossover_ops: u64) -> Backend {
        if cp.k > 1 && cp.total_ops() >= crossover_ops {
            Backend::CompiledPool { threads: 0, pin: false }
        } else {
            Backend::CompiledSeq
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    /// Parses the CLI spelling: `mailbox`, `threaded`, `compiled-seq`
    /// (alias `seq`), `compiled-pool` / `pool` with an optional worker
    /// count as `pool:N` and an optional `@pin` suffix for core
    /// pinning (`pool:4@pin`), and the legacy alias `compiled` for the
    /// pool.
    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "mailbox" => return Ok(Backend::Mailbox),
            "threaded" => return Ok(Backend::Threaded),
            "compiled-seq" | "seq" => return Ok(Backend::CompiledSeq),
            _ => {}
        }
        let (body, pin) = match s.strip_suffix("@pin") {
            Some(body) => (body, true),
            None => (s, false),
        };
        match body {
            "compiled" | "compiled-pool" | "pool" => Ok(Backend::CompiledPool { threads: 0, pin }),
            other => {
                if let Some(n) =
                    other.strip_prefix("pool:").or(other.strip_prefix("compiled-pool:"))
                {
                    let threads: usize = n
                        .parse()
                        .map_err(|_| format!("bad worker count in {s:?} (want pool:N[@pin])"))?;
                    return Ok(Backend::CompiledPool { threads, pin });
                }
                Err(format!(
                    "unknown engine {s:?} (mailbox|threaded|compiled-seq|compiled-pool[:N][@pin])"
                ))
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::CompiledPool { threads, pin } if *threads > 0 || *pin => {
                f.write_str("compiled-pool")?;
                if *threads > 0 {
                    write!(f, ":{threads}")?;
                }
                if *pin {
                    f.write_str("@pin")?;
                }
                Ok(())
            }
            other => f.write_str(other.label()),
        }
    }
}

/// [`Backend::CompiledSeq`] as an operator: one compiled plan plus its
/// sequential [`Workspace`], compiled once at construction.
pub struct CompiledSeqOperator {
    cp: CompiledPlan,
    ws: Workspace,
    obs: Option<ExecTelemetry>,
}

impl CompiledSeqOperator {
    /// Wraps an already-compiled plan with a workspace for batches of
    /// up to `width`.
    pub fn new(cp: CompiledPlan, width: usize) -> CompiledSeqOperator {
        let ws = cp.workspace_batch(width.max(1));
        CompiledSeqOperator { cp, ws, obs: None }
    }

    /// [`CompiledSeqOperator::new`] with a telemetry sink: every
    /// application records per-rank phase spans and work counters.
    /// Results stay bitwise identical to the sink-less operator.
    pub fn with_telemetry(
        cp: CompiledPlan,
        width: usize,
        sink: Arc<TelemetrySink>,
    ) -> CompiledSeqOperator {
        let obs = Some(ExecTelemetry::new(&cp, sink));
        CompiledSeqOperator { obs, ..CompiledSeqOperator::new(cp, width) }
    }

    /// The compiled plan this operator executes.
    pub fn compiled(&self) -> &CompiledPlan {
        &self.cp
    }
}

impl SpmvOperator for CompiledSeqOperator {
    fn nrows(&self) -> usize {
        self.cp.nrows
    }

    fn ncols(&self) -> usize {
        self.cp.ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.cp.execute_batch_iters_obs(&mut self.ws, x, y, 1, 1, self.obs.as_ref());
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        self.apply_batch_iters(x, y, r, 1);
    }

    fn apply_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        if r > self.ws.width() {
            // One-time growth; steady-state calls at a seen width do
            // not allocate.
            self.ws = self.cp.workspace_batch(r);
        }
        // Native chained path: the workspace's carrier ferries the
        // iterate, no caller-side copies.
        self.cp.execute_batch_iters_obs(&mut self.ws, x, y, r, iters, self.obs.as_ref());
    }
}

/// [`Backend::CompiledPool`] as an operator: the compiled plan running
/// on a persistent worker pool, spawned once at construction.
pub struct CompiledPoolOperator {
    engine: ParallelEngine,
    /// Requested worker count (0 = default sizing), kept so a
    /// width-growth rebuild preserves the choice.
    threads: usize,
    /// Core pinning, kept for the same rebuild reason.
    pin: bool,
    /// Telemetry sink, kept so a width-growth rebuild stays
    /// instrumented (the rebuilt pool records into the same sink).
    sink: Option<Arc<TelemetrySink>>,
}

impl CompiledPoolOperator {
    /// Builds the pool over an already-compiled plan (`threads = 0` →
    /// default sizing) with buffers for batches of up to `width`.
    pub fn new(cp: CompiledPlan, threads: usize, width: usize) -> CompiledPoolOperator {
        CompiledPoolOperator::with_config(cp, threads, width, false, None)
    }

    /// [`CompiledPoolOperator::new`] with a telemetry sink: workers
    /// record per-rank phase spans (including barrier waits) and work
    /// counters. Results stay bitwise identical to the sink-less pool.
    pub fn with_telemetry(
        cp: CompiledPlan,
        threads: usize,
        width: usize,
        sink: Arc<TelemetrySink>,
    ) -> CompiledPoolOperator {
        CompiledPoolOperator::with_config(cp, threads, width, false, Some(sink))
    }

    /// The fully-general constructor: worker count, batch capacity,
    /// core pinning and optional telemetry.
    pub fn with_config(
        cp: CompiledPlan,
        threads: usize,
        width: usize,
        pin: bool,
        sink: Option<Arc<TelemetrySink>>,
    ) -> CompiledPoolOperator {
        let engine = ParallelEngine::with_options(
            cp,
            PoolOptions {
                threads,
                width: width.max(1),
                pin,
                sink: sink.clone(),
                ..PoolOptions::default()
            },
        );
        CompiledPoolOperator { engine, threads, pin, sink }
    }

    /// The underlying pool (e.g. to query `threads()` or
    /// [`ParallelEngine::worker_loads`]).
    pub fn engine(&self) -> &ParallelEngine {
        &self.engine
    }
}

impl SpmvOperator for CompiledPoolOperator {
    fn nrows(&self) -> usize {
        self.engine.plan().nrows
    }

    fn ncols(&self) -> usize {
        self.engine.plan().ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.engine.execute(x, y);
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        self.apply_batch_iters(x, y, r, 1);
    }

    fn apply_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        if r > self.engine.width() {
            // Width growth requires re-sizing the shared buffers, which
            // means rebuilding the pool — expensive, so build with the
            // widest batch you plan to use.
            let cp = self.engine.plan().clone();
            *self =
                CompiledPoolOperator::with_config(cp, self.threads, r, self.pin, self.sink.take());
        }
        // Native chained path: one dispatch, workers stay hot across
        // iterations.
        self.engine.execute_batch_iters(x, y, r, iters);
    }

    fn worker_loads(&self) -> Option<Vec<u64>> {
        Some(self.engine.worker_loads().to_vec())
    }
}

/// Whole-application telemetry for operators with no internal phase
/// structure to hook (the interpreting backends): each apply is
/// recorded as one compute span under rank 0, plus run-level wall
/// time and iteration counts on the sink.
///
/// Purely additive — the wrapped operator's results (and its
/// [`SpmvOperator::deterministic`] contract) pass through untouched.
pub struct ObservedOperator<O> {
    inner: O,
    sink: Arc<TelemetrySink>,
}

impl<O: SpmvOperator> ObservedOperator<O> {
    /// Wraps `inner` so every application is accounted on `sink`.
    pub fn new(inner: O, sink: Arc<TelemetrySink>) -> ObservedOperator<O> {
        ObservedOperator { inner, sink }
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    fn observe(&mut self, iters: u64, body: impl FnOnce(&mut O)) {
        let t = Instant::now();
        body(&mut self.inner);
        let ns = t.elapsed().as_nanos() as u64;
        self.sink.rank(0).record(Phase::Compute, ns);
        self.sink.add_wall(ns);
        self.sink.add_iterations(iters);
    }
}

impl<O: SpmvOperator> SpmvOperator for ObservedOperator<O> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.observe(1, |op| op.apply(x, y));
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        self.observe(1, |op| op.apply_batch(x, y, r));
    }

    fn apply_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        self.observe(iters as u64, |op| op.apply_batch_iters(x, y, r, iters));
    }

    fn deterministic(&self) -> bool {
        self.inner.deterministic()
    }

    fn worker_loads(&self) -> Option<Vec<u64>> {
        self.inner.worker_loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    #[test]
    fn every_backend_builds_and_matches_serial() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::single_phase(&a, &p));
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        let want = a.spmv_alloc(&x);
        for backend in Backend::all() {
            let mut op = backend.build(&plan, 1);
            assert_eq!((op.nrows(), op.ncols()), (a.nrows(), a.ncols()));
            let mut y = vec![0.0; a.nrows()];
            op.apply(&x, &mut y);
            assert_close(&y, &want);
        }
    }

    #[test]
    fn backend_parse_roundtrip() {
        for (s, want) in [
            ("mailbox", Backend::Mailbox),
            ("threaded", Backend::Threaded),
            ("compiled-seq", Backend::CompiledSeq),
            ("seq", Backend::CompiledSeq),
            ("compiled", Backend::CompiledPool { threads: 0, pin: false }),
            ("compiled-pool", Backend::CompiledPool { threads: 0, pin: false }),
            ("pool", Backend::CompiledPool { threads: 0, pin: false }),
            ("pool:4", Backend::CompiledPool { threads: 4, pin: false }),
            ("compiled-pool:2", Backend::CompiledPool { threads: 2, pin: false }),
            ("pool@pin", Backend::CompiledPool { threads: 0, pin: true }),
            ("pool:4@pin", Backend::CompiledPool { threads: 4, pin: true }),
            ("compiled-pool:2@pin", Backend::CompiledPool { threads: 2, pin: true }),
        ] {
            assert_eq!(s.parse::<Backend>().unwrap(), want, "{s}");
        }
        assert!("warp".parse::<Backend>().is_err());
        assert!("pool:x".parse::<Backend>().is_err());
        assert!("mailbox@pin".parse::<Backend>().is_err(), "@pin is a pool-only suffix");
        assert!("seq@pin".parse::<Backend>().is_err());
        assert_eq!(Backend::CompiledPool { threads: 3, pin: false }.to_string(), "compiled-pool:3");
        assert_eq!(Backend::CompiledPool { threads: 0, pin: false }.to_string(), "compiled-pool");
        assert_eq!(
            Backend::CompiledPool { threads: 4, pin: true }.to_string(),
            "compiled-pool:4@pin"
        );
        assert_eq!(
            Backend::CompiledPool { threads: 0, pin: true }.to_string(),
            "compiled-pool@pin"
        );
        for backend in Backend::all() {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
    }

    #[test]
    fn build_with_runs_every_kernel_format() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::single_phase(&a, &p));
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        let mut want = vec![0.0; a.nrows()];
        Backend::CompiledSeq.build(&plan, 1).apply(&x, &mut want);
        for backend in [Backend::CompiledSeq, Backend::CompiledPool { threads: 2, pin: false }] {
            for format in KernelFormat::all() {
                let mut op = backend.build_with(&plan, 1, format);
                let mut y = vec![0.0; a.nrows()];
                op.apply(&x, &mut y);
                assert_eq!(y, want, "{backend}/{format} must match the CSR default bitwise");
            }
        }
    }

    #[test]
    fn build_from_compiled_matches_fresh_builds_bitwise() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::single_phase(&a, &p));
        let cp = CompiledPlan::compile_with(&plan, KernelFormat::CsrSlice);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        for backend in Backend::all() {
            let mut fresh = backend.build(&plan, 1);
            // Two operators over the same cached artifact, as serve
            // workers would hold them.
            let mut cached_a = backend.build_from_compiled(&plan, &cp, 1);
            let mut cached_b = backend.build_from_compiled(&plan, &cp, 1);
            let mut want = vec![0.0; a.nrows()];
            let mut got_a = vec![0.0; a.nrows()];
            let mut got_b = vec![0.0; a.nrows()];
            fresh.apply(&x, &mut want);
            cached_a.apply(&x, &mut got_a);
            cached_b.apply(&x, &mut got_b);
            if fresh.deterministic() {
                assert_eq!(got_a, want, "{backend}");
                assert_eq!(got_b, want, "{backend}");
            } else {
                assert_close(&got_a, &want);
                assert_close(&got_b, &want);
            }
        }
    }

    #[test]
    fn auto_backend_follows_the_ops_crossover() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        // fig1 is tiny: far below the pool's amortization floor.
        assert_eq!(Backend::auto(&cp), Backend::CompiledSeq);
        // Inflate the op count artificially: the decision flips.
        let mut big = cp.clone();
        if let Some(crate::RankStep::Compute(crate::Kernel::Csr(k))) =
            big.ranks[0].steps.first_mut()
        {
            let (row, col, val) = (k.rows[0], k.cols[0], 1.0);
            for _ in 0..600_000 {
                k.cols.push(col);
                k.vals.push(val);
            }
            *k.row_ptr.last_mut().unwrap() = k.cols.len() as u32;
            let _ = row;
        } else {
            panic!("fig1 plan starts with a compute phase");
        }
        assert_eq!(Backend::auto(&big), Backend::CompiledPool { threads: 0, pin: false });
        // The crossover is an overridable constant, not magic: a floor
        // below the tiny plan's op count flips even fig1 to the pool,
        // and an unreachable floor pins the inflated plan to seq.
        assert_eq!(
            Backend::auto_with_crossover(&cp, 1),
            Backend::CompiledPool { threads: 0, pin: false },
            "fig1 has k > 1 and more than one madd"
        );
        assert_eq!(Backend::auto_with_crossover(&big, u64::MAX), Backend::CompiledSeq);
    }

    #[test]
    fn compiled_operators_grow_to_wider_batches() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::single_phase(&a, &p));
        for backend in [Backend::CompiledSeq, Backend::CompiledPool { threads: 2, pin: false }] {
            let mut op = backend.build(&plan, 1);
            let r = 3;
            let x: Vec<f64> = (0..a.ncols() * r).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let mut y = vec![0.0; a.nrows() * r];
            op.apply_batch(&x, &mut y, r); // width 1 → grows to 3
            for q in 0..r {
                let xq: Vec<f64> = (0..a.ncols()).map(|g| x[g * r + q]).collect();
                let mut yq = vec![0.0; a.nrows()];
                op.apply(&xq, &mut yq);
                let got: Vec<f64> = (0..a.nrows()).map(|g| y[g * r + q]).collect();
                assert_eq!(got, yq, "{backend} column {q}");
            }
        }
    }
}
