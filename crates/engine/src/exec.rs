//! Sequential execution of a [`CompiledPlan`] over a reusable
//! [`Workspace`].
//!
//! The workspace owns every buffer an iteration touches — per-rank
//! local `x`/`y` arrays and one staging buffer per communication phase
//! — so the iteration loop performs **zero heap allocation**: seeding,
//! kernels, staged copies and output assembly all write into memory
//! allocated once per (plan, workspace) pair.

use crate::compile::{CompiledPlan, RankStep, NO_SLOT};

/// Preallocated buffers for executing one [`CompiledPlan`].
///
/// A workspace is tied to the layout of the plan that created it;
/// executing a different plan through it panics on a size check.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// Per-rank local `x` arrays.
    pub(crate) x: Vec<Vec<f64>>,
    /// Per-rank local `y` arrays.
    pub(crate) y: Vec<Vec<f64>>,
    /// One staging buffer per communication phase.
    pub(crate) staging: Vec<Vec<f64>>,
    /// Assembled-output carrier for chained iterations.
    pub(crate) carrier: Vec<f64>,
}

impl Workspace {
    /// Allocates a workspace sized for `plan`.
    pub fn for_plan(plan: &CompiledPlan) -> Workspace {
        Workspace {
            x: plan.ranks.iter().map(|r| vec![0.0; r.nx]).collect(),
            y: plan.ranks.iter().map(|r| vec![0.0; r.ny]).collect(),
            staging: plan.staging_words.iter().map(|&w| vec![0.0; w]).collect(),
            carrier: vec![0.0; plan.nrows],
        }
    }
}

impl CompiledPlan {
    /// Allocates a [`Workspace`] for this plan.
    pub fn workspace(&self) -> Workspace {
        Workspace::for_plan(self)
    }

    /// Executes one SpMV: `y = A·x`, sequentially, through `ws`.
    ///
    /// Matches `execute_mailbox` exactly (same accumulation order), at
    /// flat-array speed and with no allocation.
    ///
    /// # Panics
    /// Panics if `x`/`y` lengths don't match the plan or `ws` was built
    /// for a different plan.
    pub fn execute(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "input length mismatch");
        assert_eq!(y.len(), self.nrows, "output length mismatch");
        assert_eq!(ws.x.len(), self.k, "workspace belongs to a different plan");
        self.seed(ws, x);
        self.run_phases(ws);
        self.assemble(ws, y);
    }

    /// Seeds owned `x` entries and resets the partial sums.
    fn seed(&self, ws: &mut Workspace, x: &[f64]) {
        for (r, rp) in self.ranks.iter().enumerate() {
            debug_assert_eq!(ws.x[r].len(), rp.nx, "workspace belongs to a different plan");
            for &(g, slot) in &rp.x_seed {
                ws.x[r][slot as usize] = x[g as usize];
            }
            ws.y[r].fill(0.0);
        }
    }

    /// Runs all phases over the workspace buffers.
    fn run_phases(&self, ws: &mut Workspace) {
        // Phases in plan order; within a communication phase all sends
        // stage (and drain) before any receive applies, which is the
        // simultaneous-exchange semantics.
        let num_phases = self.ranks.first().map_or(0, |rp| rp.steps.len());
        for p in 0..num_phases {
            let mut is_comm = false;
            for (r, rp) in self.ranks.iter().enumerate() {
                match &rp.steps[p] {
                    RankStep::Compute(kernel) => kernel.run(&ws.x[r], &mut ws.y[r]),
                    RankStep::Comm { phase, sends, .. } => {
                        is_comm = true;
                        let staging = &mut ws.staging[*phase as usize];
                        for m in sends {
                            stage_send(m, &ws.x[r], &mut ws.y[r], staging);
                        }
                    }
                }
            }
            if is_comm {
                for (r, rp) in self.ranks.iter().enumerate() {
                    if let RankStep::Comm { phase, recvs, .. } = &rp.steps[p] {
                        let staging = &ws.staging[*phase as usize];
                        for m in recvs {
                            apply_recv(m, &mut ws.x[r], &mut ws.y[r], staging);
                        }
                    }
                }
            }
        }
    }

    /// Assembles the output from each row's owner slot.
    fn assemble(&self, ws: &Workspace, y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            let slot = self.y_slot[i];
            *yi = if slot == NO_SLOT { 0.0 } else { ws.y[self.y_part[i] as usize][slot as usize] };
        }
    }

    /// `iters` chained applications: `y = A^iters · x` (power-iteration
    /// shape, no normalization). Requires a square plan for `iters > 1`.
    ///
    /// The workspace's carrier buffer ferries the assembled vector
    /// between iterations; zero allocation beyond the workspace.
    pub fn execute_iters(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64], iters: usize) {
        assert!(iters >= 1, "at least one iteration");
        assert_eq!(y.len(), self.nrows, "output length mismatch");
        if iters > 1 {
            assert_eq!(self.nrows, self.ncols, "chained SpMV needs a square plan");
        }
        let mut carrier = std::mem::take(&mut ws.carrier);
        self.seed(ws, x);
        self.run_phases(ws);
        for _ in 1..iters {
            self.assemble(ws, &mut carrier);
            self.seed(ws, &carrier);
            self.run_phases(ws);
        }
        self.assemble(ws, y);
        ws.carrier = carrier;
    }
}

/// Copies a send's `x` gather and `y` drain into the staging region.
#[inline]
pub(crate) fn stage_send(
    m: &crate::compile::CompiledMsg,
    x: &[f64],
    y: &mut [f64],
    staging: &mut [f64],
) {
    let mut w = m.offset as usize;
    for &slot in &m.x_idx {
        staging[w] = x[slot as usize];
        w += 1;
    }
    for &slot in &m.y_idx {
        staging[w] = y[slot as usize];
        y[slot as usize] = 0.0; // moved, not copied
        w += 1;
    }
}

/// Applies a receive's staging region: overwrite `x`, accumulate `y`.
#[inline]
pub(crate) fn apply_recv(
    m: &crate::compile::CompiledMsg,
    x: &mut [f64],
    y: &mut [f64],
    staging: &[f64],
) {
    let mut w = m.offset as usize;
    for &slot in &m.x_idx {
        x[slot as usize] = staging[w];
        w += 1;
    }
    for &slot in &m.y_idx {
        y[slot as usize] += staging[w];
        w += 1;
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};
    use s2d_spmv::SpmvPlan;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    #[test]
    fn all_plan_kinds_match_mailbox_on_fig1() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh(&a, &p, 3, 1),
            SpmvPlan::mesh(&a, &p, 1, 3),
        ] {
            let cp = CompiledPlan::compile(&plan);
            let mut ws = cp.workspace();
            let mut y = vec![0.0; a.nrows()];
            cp.execute(&mut ws, &x, &mut y);
            assert_close(&y, &plan.execute_mailbox(&x));
        }
    }

    #[test]
    fn compiled_matches_mailbox_bit_for_bit_on_fig1() {
        // Same accumulation order → identical floating point, not just
        // within tolerance.
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 / (j as f64 + 1.0)).collect();
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut y = vec![0.0; a.nrows()];
        cp.execute(&mut ws, &x, &mut y);
        assert_eq!(y, plan.execute_mailbox(&x));
    }

    #[test]
    fn workspace_is_reusable_across_inputs() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut y = vec![0.0; a.nrows()];
        for seed in 0..5 {
            let x: Vec<f64> = (0..a.ncols()).map(|j| ((j + seed) % 7) as f64 - 3.0).collect();
            cp.execute(&mut ws, &x, &mut y);
            assert_close(&y, &a.spmv_alloc(&x));
        }
    }

    /// Square tridiagonal system with a symmetric block partition
    /// (chained iterations need nrows == ncols).
    pub(crate) fn square_setup(n: usize, k: usize) -> (s2d_sparse::Csr, SpmvPlan) {
        use s2d_core::partition::SpmvPartition;
        use s2d_sparse::Coo;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.0);
            if i + 1 < n {
                m.push(i, i + 1, -1.0);
                m.push(i + 1, i, -1.0);
            }
        }
        m.compress();
        let a = m.to_csr();
        let per = n.div_ceil(k);
        let part: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
        let p = SpmvPartition::rowwise(&a, part.clone(), part, k);
        let plan = SpmvPlan::single_phase(&a, &p);
        (a, plan)
    }

    #[test]
    fn execute_iters_chains_applications() {
        let (a, plan) = square_setup(12, 3);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).cos()).collect();
        let mut y = vec![0.0; a.nrows()];
        cp.execute_iters(&mut ws, &x, &mut y, 3);
        let want = a.spmv_alloc(&a.spmv_alloc(&a.spmv_alloc(&x)));
        assert_close(&y, &want);
    }

    #[test]
    fn empty_rows_assemble_to_zero() {
        use s2d_core::partition::SpmvPartition;
        use s2d_sparse::Coo;
        let a = Coo::from_pattern(3, 3, &[(0, 0)]).to_csr();
        let p = SpmvPartition::rowwise(&a, vec![0, 1, 1], vec![0, 0, 1], 2);
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut y = vec![9.0; 3];
        cp.execute(&mut ws, &[2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![2.0, 0.0, 0.0]);
    }
}
