//! Sequential execution of a [`CompiledPlan`] over a reusable
//! [`Workspace`].
//!
//! The workspace owns every buffer an iteration touches — per-rank
//! local `x`/`y` arrays and one staging buffer per communication phase
//! — so the iteration loop performs **zero heap allocation**: seeding,
//! kernels, staged copies and output assembly all write into memory
//! allocated once per (plan, workspace) pair.
//!
//! # Batched (multi-RHS) layout
//!
//! A workspace is allocated for a batch width `r` (1 for the classic
//! single-vector case). All vectors are **row-major blocks**: global
//! index `g` of an `r`-column input `X` occupies `x[g*r .. (g+1)*r]`,
//! local slot `s` occupies `buf[s*r .. (s+1)*r]`, and each message's
//! staging region scales from `len` words to `len × r` words (offset
//! `m.offset * r`). One batched iteration walks every matrix entry and
//! every gather/scatter list once and moves `r` words per touch — the
//! register/cache reuse that makes block SpMV cheaper than `r`
//! single-vector passes.
//!
//! # Kernel formats and workspace sizing
//!
//! Workspace buffers are sized by the rank's *logical* footprint
//! (`nx`/`ny` local slots × batch width) regardless of the plan's
//! [`KernelFormat`](crate::formats::KernelFormat): padded layouts
//! (SELL chunk fill, whole padding lanes) live inside the kernel's own
//! value/column arrays and reference existing local slots, so seeding,
//! scatter and assembly are format-oblivious — one workspace executes
//! the same plan compiled to any format.

use std::time::Instant;

use s2d_obs::Phase;

use crate::compile::{CompiledMsg, CompiledPlan, RankStep, NO_SLOT};
use crate::telemetry::ExecTelemetry;

/// Preallocated buffers for executing one [`CompiledPlan`] at batch
/// widths up to the allocated `width`.
///
/// A workspace is tied to the layout of the plan that created it;
/// executing a different plan through it panics on a size check.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// Batch capacity the buffers were sized for.
    pub(crate) width: usize,
    /// Per-rank local `x` blocks (`nx × width` words each).
    pub(crate) x: Vec<Vec<f64>>,
    /// Per-rank local `y` blocks (`ny × width` words each).
    pub(crate) y: Vec<Vec<f64>>,
    /// One staging buffer per communication phase (`words × width`).
    pub(crate) staging: Vec<Vec<f64>>,
    /// Assembled-output carrier for chained iterations.
    pub(crate) carrier: Vec<f64>,
}

impl Workspace {
    /// Allocates a single-RHS workspace sized for `plan`.
    pub fn for_plan(plan: &CompiledPlan) -> Workspace {
        Workspace::for_plan_batch(plan, 1)
    }

    /// Allocates a workspace able to run batches of up to `width`
    /// right-hand sides through `plan`.
    pub fn for_plan_batch(plan: &CompiledPlan, width: usize) -> Workspace {
        assert!(width >= 1, "batch width must be at least 1");
        Workspace {
            width,
            x: plan.ranks.iter().map(|r| vec![0.0; r.nx * width]).collect(),
            y: plan.ranks.iter().map(|r| vec![0.0; r.ny * width]).collect(),
            staging: plan.staging_words.iter().map(|&w| vec![0.0; w * width]).collect(),
            carrier: vec![0.0; plan.nrows * width],
        }
    }

    /// The batch capacity this workspace was allocated for.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl CompiledPlan {
    /// Allocates a single-RHS [`Workspace`] for this plan.
    pub fn workspace(&self) -> Workspace {
        Workspace::for_plan(self)
    }

    /// Allocates a [`Workspace`] for batches of up to `width` RHS.
    pub fn workspace_batch(&self, width: usize) -> Workspace {
        Workspace::for_plan_batch(self, width)
    }

    /// Executes one SpMV: `y = A·x`, sequentially, through `ws`.
    ///
    /// Matches `execute_mailbox` exactly (same accumulation order), at
    /// flat-array speed and with no allocation.
    ///
    /// # Panics
    /// Panics if `x`/`y` lengths don't match the plan or `ws` was built
    /// for a different plan.
    pub fn execute(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64]) {
        self.execute_batch(ws, x, y, 1);
    }

    /// Executes one batched SpMV: `Y = A·X` for `r` right-hand sides.
    ///
    /// `x` is row-major `ncols × r`, `y` row-major `nrows × r` (column
    /// `q` of global index `g` lives at `g*r + q`). Per column the
    /// result is bitwise identical to `r` single-RHS executions — the
    /// accumulation order per (row, column) pair is unchanged; only the
    /// traversal is shared.
    ///
    /// # Panics
    /// Panics if `x`/`y` lengths don't match `r` copies of the plan's
    /// dimensions, or `ws` was allocated for a smaller width.
    pub fn execute_batch(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64], r: usize) {
        self.execute_batch_iters(ws, x, y, r, 1);
    }

    /// Seeds owned `x` entries and resets the partial sums.
    // manual_memcpy: the `0..r` element loops are deliberate — `r` is
    // const-folded by the `pass::<R>` instantiations, while
    // `copy_from_slice` on a runtime-length region lowers to a per-call
    // `memcpy` (measured ~25% slower per iteration at r = 1).
    #[allow(clippy::manual_memcpy)]
    #[inline(always)]
    fn seed_rank(&self, ws: &mut Workspace, x: &[f64], r: usize, rk: usize) {
        let rp = &self.ranks[rk];
        debug_assert_eq!(ws.x[rk].len(), rp.nx * ws.width, "workspace belongs to a different plan");
        let xloc = &mut ws.x[rk];
        // Element loops, not `copy_from_slice`: the region length
        // `r` is a runtime value, so slice copies lower to per-call
        // `memcpy` — measurably slower at the common small widths.
        for &(g, slot) in &rp.x_seed {
            let (src, dst) = (g as usize * r, slot as usize * r);
            for q in 0..r {
                xloc[dst + q] = x[src + q];
            }
        }
        ws.y[rk][..rp.ny * r].fill(0.0);
    }

    #[inline(always)]
    fn seed(&self, ws: &mut Workspace, x: &[f64], r: usize) {
        for rk in 0..self.ranks.len() {
            self.seed_rank(ws, x, r, rk);
        }
    }

    /// Runs all phases over the workspace buffers.
    #[inline(always)]
    fn run_phases(&self, ws: &mut Workspace, r: usize) {
        // Phases in plan order; within a communication phase all sends
        // stage (and drain) before any receive applies, which is the
        // simultaneous-exchange semantics.
        let num_phases = self.ranks.first().map_or(0, |rp| rp.steps.len());
        for p in 0..num_phases {
            let mut is_comm = false;
            for (rk, rp) in self.ranks.iter().enumerate() {
                match &rp.steps[p] {
                    RankStep::Compute(kernel) => kernel.run_batch(&ws.x[rk], &mut ws.y[rk], r),
                    RankStep::Comm { phase, sends, .. } => {
                        is_comm = true;
                        let staging = &mut ws.staging[*phase as usize];
                        for m in sends {
                            stage_send(m, &ws.x[rk], &mut ws.y[rk], staging, r);
                        }
                    }
                }
            }
            if is_comm {
                for (rk, rp) in self.ranks.iter().enumerate() {
                    if let RankStep::Comm { phase, recvs, .. } = &rp.steps[p] {
                        let staging = &ws.staging[*phase as usize];
                        for m in recvs {
                            apply_recv(m, &mut ws.x[rk], &mut ws.y[rk], staging, r);
                        }
                    }
                }
            }
        }
    }

    /// Assembles the output from each row's owner slot.
    #[allow(clippy::manual_memcpy)] // see `seed`
    #[inline(always)]
    fn assemble(&self, ws: &Workspace, y: &mut [f64], r: usize) {
        for i in 0..self.nrows {
            let slot = self.y_slot[i];
            let dst = i * r;
            if slot == NO_SLOT {
                for q in 0..r {
                    y[dst + q] = 0.0;
                }
            } else {
                let yloc = &ws.y[self.y_part[i] as usize];
                let src = slot as usize * r;
                for q in 0..r {
                    y[dst + q] = yloc[src + q];
                }
            }
        }
    }

    /// `iters` chained applications: `y = A^iters · x` (power-iteration
    /// shape, no normalization). Requires a square plan for `iters > 1`.
    ///
    /// The workspace's carrier buffer ferries the assembled vector
    /// between iterations; zero allocation beyond the workspace.
    pub fn execute_iters(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64], iters: usize) {
        self.execute_batch_iters(ws, x, y, 1, iters);
    }

    /// `iters` chained batched applications: `Y = A^iters · X` over `r`
    /// right-hand sides at once.
    pub fn execute_batch_iters(
        &self,
        ws: &mut Workspace,
        x: &[f64],
        y: &mut [f64],
        r: usize,
        iters: usize,
    ) {
        self.check_batch(ws, x, y, r, iters);
        // Monomorphize the common widths: `pass` is `inline(always)`
        // all the way down, so a constant `r` const-folds the `0..r`
        // block loops in seed / staging / assembly into straight-line
        // code (at r = 1, exactly the pre-batching scalar executor).
        match r {
            1 => self.pass::<1>(ws, x, y, iters),
            2 => self.pass::<2>(ws, x, y, iters),
            4 => self.pass::<4>(ws, x, y, iters),
            8 => self.pass::<8>(ws, x, y, iters),
            _ => self.pass_impl(ws, x, y, r, iters),
        }
    }

    /// [`CompiledPlan::execute_batch_iters`] with optional telemetry:
    /// with a sink attached, per-rank phase spans and work counters are
    /// recorded along the way. The numeric path is untouched — results
    /// are bitwise identical with and without a sink (the instrumented
    /// pass interleaves clock reads between the same calls in the same
    /// order).
    pub fn execute_batch_iters_obs(
        &self,
        ws: &mut Workspace,
        x: &[f64],
        y: &mut [f64],
        r: usize,
        iters: usize,
        obs: Option<&ExecTelemetry>,
    ) {
        match obs {
            None => self.execute_batch_iters(ws, x, y, r, iters),
            Some(obs) => {
                self.check_batch(ws, x, y, r, iters);
                let t = Instant::now();
                // Same const-width monomorphization as the uninstrumented
                // dispatch: without it the instrumented pass runs the
                // generic-width loops and the comparison bench would
                // blame telemetry for a codegen difference.
                match r {
                    1 => self.pass_obs_w::<1>(ws, x, y, iters, obs),
                    2 => self.pass_obs_w::<2>(ws, x, y, iters, obs),
                    4 => self.pass_obs_w::<4>(ws, x, y, iters, obs),
                    8 => self.pass_obs_w::<8>(ws, x, y, iters, obs),
                    _ => self.pass_obs(ws, x, y, r, iters, obs),
                }
                obs.sink().add_wall(t.elapsed().as_nanos() as u64);
                obs.sink().add_iterations(iters as u64);
            }
        }
    }

    fn check_batch(&self, ws: &Workspace, x: &[f64], y: &[f64], r: usize, iters: usize) {
        assert!(iters >= 1, "at least one iteration");
        assert!(r >= 1, "batch width must be at least 1");
        assert_eq!(x.len(), self.ncols * r, "input length mismatch");
        assert_eq!(y.len(), self.nrows * r, "output length mismatch");
        assert_eq!(ws.x.len(), self.k, "workspace belongs to a different plan");
        assert!(ws.width >= r, "workspace width {} cannot hold a batch of {r}", ws.width);
        if iters > 1 {
            assert_eq!(self.nrows, self.ncols, "chained SpMV needs a square plan");
        }
    }

    /// Fixed-width instantiation of the iteration pass.
    fn pass<const R: usize>(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64], iters: usize) {
        self.pass_impl(ws, x, y, R, iters);
    }

    /// The shared pass body; callers provide `r` as a literal constant
    /// (via [`CompiledPlan::pass`]) or as a runtime width.
    #[inline(always)]
    fn pass_impl(&self, ws: &mut Workspace, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        let mut carrier = std::mem::take(&mut ws.carrier);
        self.seed(ws, x, r);
        self.run_phases(ws, r);
        for _ in 1..iters {
            self.assemble(ws, &mut carrier[..self.nrows * r], r);
            self.seed(ws, &carrier[..self.nrows * r], r);
            self.run_phases(ws, r);
        }
        self.assemble(ws, y, r);
        ws.carrier = carrier;
    }

    /// Fixed-width instantiation of the instrumented pass.
    fn pass_obs_w<const R: usize>(
        &self,
        ws: &mut Workspace,
        x: &[f64],
        y: &mut [f64],
        iters: usize,
        obs: &ExecTelemetry,
    ) {
        self.pass_obs(ws, x, y, R, iters, obs);
    }

    /// The instrumented twin of [`CompiledPlan::pass_impl`]: identical
    /// call sequence (bitwise-identical results), with per-rank phase
    /// spans and per-iteration work counters recorded into `obs`. See
    /// the `telemetry` module docs for the phase attribution.
    #[inline(always)]
    fn pass_obs(
        &self,
        ws: &mut Workspace,
        x: &[f64],
        y: &mut [f64],
        r: usize,
        iters: usize,
        obs: &ExecTelemetry,
    ) {
        let mut carrier = std::mem::take(&mut ws.carrier);
        self.seed_obs(ws, x, r, obs);
        self.run_phases_obs(ws, r, obs);
        self.bump_all(r, obs);
        for _ in 1..iters {
            let t = Instant::now();
            self.assemble(ws, &mut carrier[..self.nrows * r], r);
            obs.rec(0).record(Phase::Scatter, t.elapsed().as_nanos() as u64);
            self.seed_obs(ws, &carrier[..self.nrows * r], r, obs);
            self.run_phases_obs(ws, r, obs);
            self.bump_all(r, obs);
        }
        let t = Instant::now();
        self.assemble(ws, y, r);
        obs.rec(0).record(Phase::Scatter, t.elapsed().as_nanos() as u64);
        ws.carrier = carrier;
    }

    #[inline(always)]
    fn seed_obs(&self, ws: &mut Workspace, x: &[f64], r: usize, obs: &ExecTelemetry) {
        for rk in 0..self.ranks.len() {
            let t = Instant::now();
            self.seed_rank(ws, x, r, rk);
            obs.rec(rk).record(Phase::Gather, t.elapsed().as_nanos() as u64);
        }
    }

    fn bump_all(&self, r: usize, obs: &ExecTelemetry) {
        for rk in 0..self.ranks.len() {
            obs.bump_iter(rk, r);
        }
    }

    /// Instrumented twin of [`CompiledPlan::run_phases`] — same phase
    /// walk, same per-rank order, clock reads in between.
    #[inline(always)]
    fn run_phases_obs(&self, ws: &mut Workspace, r: usize, obs: &ExecTelemetry) {
        let num_phases = self.ranks.first().map_or(0, |rp| rp.steps.len());
        for p in 0..num_phases {
            let mut is_comm = false;
            for (rk, rp) in self.ranks.iter().enumerate() {
                match &rp.steps[p] {
                    RankStep::Compute(kernel) => {
                        let t = Instant::now();
                        kernel.run_batch(&ws.x[rk], &mut ws.y[rk], r);
                        obs.rec(rk).record(Phase::Compute, t.elapsed().as_nanos() as u64);
                    }
                    RankStep::Comm { phase, sends, .. } => {
                        is_comm = true;
                        let t = Instant::now();
                        let staging = &mut ws.staging[*phase as usize];
                        for m in sends {
                            stage_send(m, &ws.x[rk], &mut ws.y[rk], staging, r);
                        }
                        obs.rec(rk).record(Phase::Gather, t.elapsed().as_nanos() as u64);
                    }
                }
            }
            if is_comm {
                for (rk, rp) in self.ranks.iter().enumerate() {
                    if let RankStep::Comm { phase, recvs, .. } = &rp.steps[p] {
                        let t = Instant::now();
                        let staging = &ws.staging[*phase as usize];
                        for m in recvs {
                            apply_recv(m, &mut ws.x[rk], &mut ws.y[rk], staging, r);
                        }
                        obs.rec(rk).record(Phase::Scatter, t.elapsed().as_nanos() as u64);
                    }
                }
            }
        }
    }
}

/// Copies a send's `x` gather and `y` drain into the staging region
/// (`r` consecutive words per listed slot).
#[allow(clippy::manual_memcpy)] // see `CompiledPlan::seed`
#[inline(always)]
pub(crate) fn stage_send(m: &CompiledMsg, x: &[f64], y: &mut [f64], staging: &mut [f64], r: usize) {
    let mut w = m.offset as usize * r;
    for &slot in &m.x_idx {
        let s = slot as usize * r;
        for q in 0..r {
            staging[w + q] = x[s + q];
        }
        w += r;
    }
    for &slot in &m.y_idx {
        let s = slot as usize * r;
        for q in 0..r {
            staging[w + q] = y[s + q];
            y[s + q] = 0.0; // moved, not copied
        }
        w += r;
    }
}

/// Applies a receive's staging region: overwrite `x`, accumulate `y`.
#[allow(clippy::manual_memcpy)] // see `CompiledPlan::seed`
#[inline(always)]
pub(crate) fn apply_recv(m: &CompiledMsg, x: &mut [f64], y: &mut [f64], staging: &[f64], r: usize) {
    let mut w = m.offset as usize * r;
    for &slot in &m.x_idx {
        let s = slot as usize * r;
        for q in 0..r {
            x[s + q] = staging[w + q];
        }
        w += r;
    }
    for &slot in &m.y_idx {
        let s = slot as usize * r;
        for q in 0..r {
            y[s + q] += staging[w + q];
        }
        w += r;
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};
    use s2d_spmv::SpmvPlan;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    #[test]
    fn all_plan_kinds_match_mailbox_on_fig1() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh(&a, &p, 3, 1),
            SpmvPlan::mesh(&a, &p, 1, 3),
        ] {
            let cp = CompiledPlan::compile(&plan);
            let mut ws = cp.workspace();
            let mut y = vec![0.0; a.nrows()];
            cp.execute(&mut ws, &x, &mut y);
            assert_close(&y, &plan.execute_mailbox(&x));
        }
    }

    #[test]
    fn compiled_matches_mailbox_bit_for_bit_on_fig1() {
        // Same accumulation order → identical floating point, not just
        // within tolerance.
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 / (j as f64 + 1.0)).collect();
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut y = vec![0.0; a.nrows()];
        cp.execute(&mut ws, &x, &mut y);
        assert_eq!(y, plan.execute_mailbox(&x));
    }

    #[test]
    fn workspace_is_reusable_across_inputs() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut y = vec![0.0; a.nrows()];
        for seed in 0..5 {
            let x: Vec<f64> = (0..a.ncols()).map(|j| ((j + seed) % 7) as f64 - 3.0).collect();
            cp.execute(&mut ws, &x, &mut y);
            assert_close(&y, &a.spmv_alloc(&x));
        }
    }

    /// Square tridiagonal system with a symmetric block partition
    /// (chained iterations need nrows == ncols).
    pub(crate) fn square_setup(n: usize, k: usize) -> (s2d_sparse::Csr, SpmvPlan) {
        use s2d_core::partition::SpmvPartition;
        use s2d_sparse::Coo;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.0);
            if i + 1 < n {
                m.push(i, i + 1, -1.0);
                m.push(i + 1, i, -1.0);
            }
        }
        m.compress();
        let a = m.to_csr();
        let per = n.div_ceil(k);
        let part: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
        let p = SpmvPartition::rowwise(&a, part.clone(), part, k);
        let plan = SpmvPlan::single_phase(&a, &p);
        (a, plan)
    }

    #[test]
    fn execute_iters_chains_applications() {
        let (a, plan) = square_setup(12, 3);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).cos()).collect();
        let mut y = vec![0.0; a.nrows()];
        cp.execute_iters(&mut ws, &x, &mut y, 3);
        let want = a.spmv_alloc(&a.spmv_alloc(&a.spmv_alloc(&x)));
        assert_close(&y, &want);
    }

    #[test]
    fn empty_rows_assemble_to_zero() {
        use s2d_core::partition::SpmvPartition;
        use s2d_sparse::Coo;
        let a = Coo::from_pattern(3, 3, &[(0, 0)]).to_csr();
        let p = SpmvPartition::rowwise(&a, vec![0, 1, 1], vec![0, 0, 1], 2);
        let plan = SpmvPlan::single_phase(&a, &p);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace();
        let mut y = vec![9.0; 3];
        cp.execute(&mut ws, &[2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![2.0, 0.0, 0.0]);
    }

    /// Row-major `n × r` batch whose column `q` is a deterministic
    /// irregular vector (column 0 equals `base` when provided).
    pub(crate) fn batch_input(n: usize, r: usize, seed: u64) -> Vec<f64> {
        (0..n * r)
            .map(|i| {
                let (g, q) = (i / r, i % r);
                ((g as u64).wrapping_mul(2654435761).wrapping_add(q as u64 * 977 + seed) % 211)
                    as f64
                    / 17.0
                    - 5.0
            })
            .collect()
    }

    /// Column `q` of a row-major `n × r` block.
    pub(crate) fn column(block: &[f64], n: usize, r: usize, q: usize) -> Vec<f64> {
        (0..n).map(|g| block[g * r + q]).collect()
    }

    #[test]
    fn every_kernel_format_matches_csr_bitwise_on_fig1() {
        use crate::formats::KernelFormat;
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 / (j as f64 + 1.0)).collect();
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh(&a, &p, 3, 1),
        ] {
            let mut want = vec![0.0; a.nrows()];
            let csr = CompiledPlan::compile(&plan);
            csr.execute(&mut csr.workspace(), &x, &mut want);
            for format in KernelFormat::all() {
                let cp = CompiledPlan::compile_with(&plan, format);
                assert_eq!(cp.format, format);
                assert_eq!(cp.total_ops(), csr.total_ops(), "{format}: ops format-invariant");
                for r in [1usize, 3, 8] {
                    let xb = batch_input(a.ncols(), r, 5);
                    let mut got = vec![0.0; a.nrows() * r];
                    cp.execute_batch(&mut cp.workspace_batch(r), &xb, &mut got, r);
                    let mut wb = vec![0.0; a.nrows() * r];
                    csr.execute_batch(&mut csr.workspace_batch(r), &xb, &mut wb, r);
                    assert_eq!(got, wb, "{format} r={r} must match CSR bitwise");
                }
            }
        }
    }

    #[test]
    fn batched_columns_match_single_rhs_bitwise() {
        let a = fig1_matrix();
        let p = fig1_partition();
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh(&a, &p, 3, 1),
        ] {
            let cp = CompiledPlan::compile(&plan);
            for r in [1usize, 2, 3, 4, 5, 8] {
                let x = batch_input(a.ncols(), r, 7);
                let mut ws = cp.workspace_batch(r);
                let mut y = vec![0.0; a.nrows() * r];
                cp.execute_batch(&mut ws, &x, &mut y, r);
                let mut ws1 = cp.workspace();
                for q in 0..r {
                    let xq = column(&x, a.ncols(), r, q);
                    let mut yq = vec![0.0; a.nrows()];
                    cp.execute(&mut ws1, &xq, &mut yq);
                    assert_eq!(column(&y, a.nrows(), r, q), yq, "r={r} column {q}");
                }
            }
        }
    }

    #[test]
    fn batched_iters_chain_like_single_rhs() {
        let (a, plan) = square_setup(18, 4);
        let cp = CompiledPlan::compile(&plan);
        let r = 3;
        let x = batch_input(a.ncols(), r, 11);
        let mut ws = cp.workspace_batch(r);
        let mut y = vec![0.0; a.nrows() * r];
        cp.execute_batch_iters(&mut ws, &x, &mut y, r, 3);
        for q in 0..r {
            let xq = column(&x, a.ncols(), r, q);
            let want = a.spmv_alloc(&a.spmv_alloc(&a.spmv_alloc(&xq)));
            assert_close(&column(&y, a.nrows(), r, q), &want);
        }
    }

    #[test]
    fn oversized_workspace_accepts_smaller_batches() {
        let (a, plan) = square_setup(10, 2);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace_batch(8);
        for r in [1usize, 2, 5, 8] {
            let x = batch_input(a.ncols(), r, 3);
            let mut y = vec![0.0; a.nrows() * r];
            cp.execute_batch(&mut ws, &x, &mut y, r);
            for q in 0..r {
                let xq = column(&x, a.ncols(), r, q);
                assert_close(&column(&y, a.nrows(), r, q), &a.spmv_alloc(&xq));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold a batch")]
    fn undersized_workspace_is_rejected() {
        let (a, plan) = square_setup(10, 2);
        let cp = CompiledPlan::compile(&plan);
        let mut ws = cp.workspace_batch(2);
        let x = batch_input(a.ncols(), 4, 3);
        let mut y = vec![0.0; a.nrows() * 4];
        cp.execute_batch(&mut ws, &x, &mut y, 4);
    }
}
