//! The plan compiler: `SpmvPlan` → [`CompiledPlan`].
//!
//! The interpreting executors (`s2d-spmv`'s mailbox and threaded paths)
//! resolve every multiply-add and every message word through per-rank
//! `HashMap<u32, f64>` lookups. That is the right tool for validating
//! plan semantics and exactly the wrong one for the workload the paper
//! cares about — thousands of SpMV iterations against one matrix.
//!
//! Compilation pays a one-time inspector cost per plan (the OSKI /
//! inspector-executor pattern) and produces flat buffers:
//!
//! * every rank's `x` and `y` footprint is renumbered into dense local
//!   indices `0..nx` / `0..ny`, so vector storage becomes two flat
//!   `f64` arrays per rank;
//! * compute phases are lowered to CSR-slice kernels — run-length
//!   grouped rows over `row_ptr` / `cols` / `vals` arrays of local
//!   indices, preserving the interpreter's accumulation order exactly;
//! * every [`MsgSpec`] becomes a pair of index lists (gather at the
//!   sender, scatter at the receiver) plus a precomputed offset into a
//!   per-phase staging buffer, so a communication phase is just indexed
//!   copies through preallocated memory.
//!
//! All "processor lacks `x[j]`" conditions the interpreters detect at run
//! time are detected here at compile time, once — the execution paths
//! contain no fallible lookups at all.
//!
//! # Kernel formats
//!
//! Compute phases are first lowered to order-preserving CSR slices
//! ([`CsrKernel`]) and then converted to the requested
//! [`KernelFormat`] (see [`CompiledPlan::compile_with`]): SELL-C-σ
//! chunks for short irregular rows, dense spans for split dense rows,
//! or a per-kernel automatic choice driven by [`KernelStats`] — the
//! format is baked into the kernel's buffer layout here, so execution
//! never branches on it per entry.

use std::collections::HashMap;

use s2d_spmv::{MsgSpec, PlanPhase, SpmvPlan};

use crate::formats::{CsrKernel, Kernel, KernelFormat, KernelIsa, KernelStats};

/// Local-slot sentinel: "this global row never materializes on its
/// owner" (the assembled result is 0 there, matching the interpreters).
pub const NO_SLOT: u32 = u32::MAX;

/// One [`MsgSpec`] lowered to local index lists.
///
/// At the sender the lists *gather*: `x_idx` slots are copied into the
/// staging buffer, `y_idx` slots are copied and then zeroed (the
/// partial sums move, they are not duplicated — that is what makes
/// intermediate aggregation in mesh plans work). At the receiver the
/// same lists *scatter*: `x_idx` slots are overwritten, `y_idx` slots
/// accumulated into.
#[derive(Clone, Debug)]
pub struct CompiledMsg {
    /// The other endpoint: destination for sends, source for receives.
    pub peer: u32,
    /// Word offset of this message's region in the phase staging buffer.
    pub offset: u32,
    /// Local `x` slots (sender: gather; receiver: scatter).
    pub x_idx: Vec<u32>,
    /// Local `y` slots (sender: drain; receiver: accumulate).
    pub y_idx: Vec<u32>,
}

impl CompiledMsg {
    /// Message size in words.
    pub fn words(&self) -> usize {
        self.x_idx.len() + self.y_idx.len()
    }
}

/// One rank's view of one plan phase.
#[derive(Clone, Debug)]
pub enum RankStep {
    /// Run the kernel on local buffers.
    Compute(Kernel),
    /// Exchange staged messages; `phase` indexes the staging buffer.
    Comm {
        /// Ordinal of this communication phase within the plan.
        phase: u32,
        /// Outgoing messages (gather + drain into staging).
        sends: Vec<CompiledMsg>,
        /// Incoming messages (scatter + accumulate from staging).
        recvs: Vec<CompiledMsg>,
    },
}

/// One rank's complete compiled program.
#[derive(Clone, Debug)]
pub struct RankProgram {
    /// Size of the rank's local `x` array.
    pub nx: usize,
    /// Size of the rank's local `y` array.
    pub ny: usize,
    /// `(global column, local slot)` pairs seeded from the input vector
    /// at the start of every iteration (the rank's *used* owned entries).
    pub x_seed: Vec<(u32, u32)>,
    /// `(global row, local slot)` pairs this rank contributes to the
    /// assembled output (rows it owns and actually materializes).
    pub y_emit: Vec<(u32, u32)>,
    /// One step per plan phase, in plan order.
    pub steps: Vec<RankStep>,
}

/// A fully compiled plan: per-rank programs plus the shared layout
/// needed to execute them (staging sizes, output assembly map).
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    /// Number of virtual processors.
    pub k: usize,
    /// Output dimension.
    pub nrows: usize,
    /// Input dimension.
    pub ncols: usize,
    /// Per-rank programs, indexed by rank.
    pub ranks: Vec<RankProgram>,
    /// Staging buffer size in words, one entry per communication phase.
    pub staging_words: Vec<usize>,
    /// Owner rank of every output row (copied from the plan).
    pub y_part: Vec<u32>,
    /// Owner-local `y` slot of every output row, or [`NO_SLOT`] for
    /// rows no rank materializes (assembled as 0.0).
    pub y_slot: Vec<u32>,
    /// The [`KernelFormat`] the plan was compiled with (the *policy* —
    /// under [`KernelFormat::Auto`] individual kernels record their own
    /// concrete choice, see [`Kernel::format`]).
    pub format: KernelFormat,
    /// The [`KernelIsa`] policy the plan was compiled with (the
    /// CPU-resolved verdict lives in each kernel, see
    /// [`Kernel::simd`]).
    pub isa: KernelIsa,
    /// Row-length statistics of every nonempty compute kernel (phase-
    /// major, rank order), gathered from the CSR lowering before format
    /// conversion — populated only by [`KernelFormat::Auto`] compiles.
    /// See [`CompiledPlan::kernel_stats`].
    stats: Vec<KernelStats>,
}

/// Per-rank renumbering state used only during compilation.
#[derive(Default)]
struct RankState {
    /// global x id → local slot.
    xmap: HashMap<u32, u32>,
    /// Local x slots with a defined value at this point of the walk.
    xdef: Vec<bool>,
    /// global y id → local slot.
    ymap: HashMap<u32, u32>,
    /// Local y slots currently holding a live partial sum.
    ylive: Vec<bool>,
    x_seed: Vec<(u32, u32)>,
}

impl RankState {
    /// Slot for reading `x[j]` on rank `r`: must be owned (seeded) or
    /// previously received.
    fn x_read(&mut self, j: u32, rank: usize, owned: bool, what: &str) -> u32 {
        if let Some(&slot) = self.xmap.get(&j) {
            if !self.xdef[slot as usize] {
                panic!("processor {rank} lacks x[{j}] {what}: plan bug");
            }
            return slot;
        }
        if !owned {
            panic!("processor {rank} lacks x[{j}] {what}: plan bug");
        }
        let slot = self.xmap.len() as u32;
        self.xmap.insert(j, slot);
        self.xdef.push(true);
        self.x_seed.push((j, slot));
        slot
    }

    /// Slot for receiving `x[j]` (defines the value).
    fn x_write(&mut self, j: u32) -> u32 {
        if let Some(&slot) = self.xmap.get(&j) {
            self.xdef[slot as usize] = true;
            return slot;
        }
        let slot = self.xmap.len() as u32;
        self.xmap.insert(j, slot);
        self.xdef.push(true);
        slot
    }

    /// Slot for accumulating into `y[i]` (creates the partial on first
    /// touch, like the interpreters' `entry().or_insert(0.0)`).
    fn y_accum(&mut self, i: u32) -> u32 {
        if let Some(&slot) = self.ymap.get(&i) {
            self.ylive[slot as usize] = true;
            return slot;
        }
        let slot = self.ymap.len() as u32;
        self.ymap.insert(i, slot);
        self.ylive.push(true);
        slot
    }

    /// Slot for draining `y[i]` into a message: must be live.
    fn y_drain(&mut self, i: u32, rank: usize) -> u32 {
        match self.ymap.get(&i) {
            Some(&slot) if self.ylive[slot as usize] => {
                self.ylive[slot as usize] = false;
                slot
            }
            _ => panic!("processor {rank} lacks partial y[{i}] to send: plan bug"),
        }
    }
}

impl CompiledPlan {
    /// Compiles `plan` with the default [`KernelFormat::CsrSlice`]
    /// kernels — bitwise-identical to the interpreting executors.
    ///
    /// # Panics
    /// Panics with a "plan bug" message if the plan reads an `x` value
    /// or drains a partial `y` its rank cannot hold — the same
    /// conditions the interpreting executors detect mid-run.
    pub fn compile(plan: &SpmvPlan) -> CompiledPlan {
        CompiledPlan::compile_with(plan, KernelFormat::CsrSlice)
    }

    /// Compiles `plan`, lowering every compute kernel to `format`
    /// ([`KernelFormat::Auto`] decides per kernel from row-length
    /// statistics). One pass over the plan; cost is proportional to the
    /// plan size (nnz + communication volume).
    ///
    /// # Panics
    /// Same contract as [`CompiledPlan::compile`].
    pub fn compile_with(plan: &SpmvPlan, format: KernelFormat) -> CompiledPlan {
        CompiledPlan::compile_with_isa(plan, format, KernelIsa::Auto)
    }

    /// [`CompiledPlan::compile_with`] with an explicit instruction-set
    /// choice for the fixed-width batch loops. The default elsewhere is
    /// [`KernelIsa::Auto`] — AVX2 whenever the CPU has it — which is
    /// always safe because the SIMD paths are bitwise identical to the
    /// scalar reference; [`KernelIsa::Scalar`] pins the reference loops
    /// for differential runs.
    ///
    /// # Panics
    /// Same contract as [`CompiledPlan::compile`].
    pub fn compile_with_isa(plan: &SpmvPlan, format: KernelFormat, isa: KernelIsa) -> CompiledPlan {
        let k = plan.k;
        let mut states: Vec<RankState> = (0..k).map(|_| RankState::default()).collect();
        let mut programs: Vec<Vec<RankStep>> = (0..k).map(|_| Vec::new()).collect();
        let mut staging_words = Vec::new();
        let mut stats = Vec::new();

        for phase in &plan.phases {
            match phase {
                PlanPhase::Compute(tasks) => {
                    for (r, list) in tasks.iter().enumerate() {
                        let csr = lower_tasks(list, r, &mut states[r], &plan.x_part);
                        // Statistics (a σ-sort plus a dense-run scan per
                        // kernel) are gathered only when the policy
                        // needs them — a fixed-format compile stays one
                        // pass proportional to the plan size. The pick
                        // is resolved here so `from_csr` never
                        // recomputes the same stats.
                        let concrete = if format == KernelFormat::Auto && csr.ops() > 0 {
                            let st = KernelStats::of(&csr);
                            stats.push(st);
                            crate::formats::auto_pick(&st)
                        } else {
                            format
                        };
                        programs[r]
                            .push(RankStep::Compute(Kernel::from_csr_isa(csr, concrete, isa)));
                    }
                }
                PlanPhase::Comm(msgs) => {
                    let ordinal = staging_words.len() as u32;
                    let (sends, recvs, words) = lower_comm(msgs, k, &mut states, &plan.x_part);
                    staging_words.push(words);
                    for (r, (s, v)) in sends.into_iter().zip(recvs).enumerate() {
                        programs[r].push(RankStep::Comm { phase: ordinal, sends: s, recvs: v });
                    }
                }
            }
        }

        // Output assembly: each row reads its owner's local slot
        // (NO_SLOT rows assemble to 0).
        let mut y_slot = vec![NO_SLOT; plan.nrows];
        for i in 0..plan.nrows {
            let owner = plan.y_part[i] as usize;
            if let Some(&slot) = states[owner].ymap.get(&(i as u32)) {
                y_slot[i] = slot;
            }
        }

        let ranks = states
            .into_iter()
            .zip(programs)
            .enumerate()
            .map(|(r, (st, steps))| {
                let mut y_emit: Vec<(u32, u32)> = st
                    .ymap
                    .iter()
                    .filter(|&(&i, _)| plan.y_part[i as usize] as usize == r)
                    .map(|(&i, &slot)| (i, slot))
                    .collect();
                y_emit.sort_unstable();
                RankProgram {
                    nx: st.xmap.len(),
                    ny: st.ymap.len(),
                    x_seed: st.x_seed,
                    y_emit,
                    steps,
                }
            })
            .collect();

        CompiledPlan {
            k,
            nrows: plan.nrows,
            ncols: plan.ncols,
            ranks,
            staging_words,
            y_part: plan.y_part.clone(),
            y_slot,
            format,
            isa,
            stats,
        }
    }

    /// Total multiply-adds across all ranks (must equal the plan's).
    ///
    /// Format-invariant: [`Kernel::ops`] counts real multiply-adds only,
    /// never SELL padding entries, so this total is identical whatever
    /// [`KernelFormat`] the plan was compiled with.
    pub fn total_ops(&self) -> u64 {
        self.ranks
            .iter()
            .flat_map(|rp| &rp.steps)
            .map(|s| match s {
                RankStep::Compute(kernel) => kernel.ops() as u64,
                RankStep::Comm { .. } => 0,
            })
            .sum()
    }

    /// Per-concrete-format kernel counts, in [`KernelFormat::all`]
    /// order minus `Auto` — what an [`KernelFormat::Auto`] compile
    /// actually picked (diagnostics for the CLI and benches).
    pub fn format_counts(&self) -> Vec<(KernelFormat, usize)> {
        let mut counts: Vec<(KernelFormat, usize)> = Vec::new();
        for step in self.ranks.iter().flat_map(|rp| &rp.steps) {
            if let RankStep::Compute(kernel) = step {
                if kernel.ops() == 0 {
                    continue; // empty kernels say nothing about the policy
                }
                let f = kernel.format();
                match counts.iter_mut().find(|(g, _)| *g == f) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((f, 1)),
                }
            }
        }
        counts
    }

    /// Row-length statistics of every nonempty compute kernel, flattened
    /// over ranks and phases — the compile-time evidence the `auto`
    /// policy decided from, gathered from the CSR lowering *before*
    /// format conversion (so they describe the task lists, not any
    /// padded layout). Recorded only by [`KernelFormat::Auto`] compiles;
    /// fixed-format compiles skip the gathering (it costs a σ-sort per
    /// kernel) and report an empty slice.
    pub fn kernel_stats(&self) -> &[KernelStats] {
        &self.stats
    }

    /// Bytes of flat buffer storage one workspace for this plan needs —
    /// the compiled footprint reported by benchmarks.
    pub fn workspace_bytes(&self) -> usize {
        let vectors: usize = self.ranks.iter().map(|r| r.nx + r.ny).sum();
        let staging: usize = self.staging_words.iter().sum();
        (vectors + staging + self.nrows) * std::mem::size_of::<f64>()
    }
}

/// Lowers one rank's task list into a run-length grouped CSR slice
/// (the canonical order-preserving form every [`KernelFormat`] is
/// converted from).
fn lower_tasks(
    tasks: &[s2d_spmv::MultTask],
    rank: usize,
    st: &mut RankState,
    x_part: &[u32],
) -> CsrKernel {
    let mut kernel = CsrKernel::default();
    kernel.row_ptr.push(0);
    let mut current: Option<u32> = None;
    for t in tasks {
        let col = st.x_read(t.col, rank, x_part[t.col as usize] as usize == rank, "to multiply");
        let row = st.y_accum(t.row);
        if current != Some(row) {
            if current.is_some() {
                kernel.row_ptr.push(kernel.cols.len() as u32);
            }
            kernel.rows.push(row);
            current = Some(row);
        }
        kernel.cols.push(col);
        kernel.vals.push(t.val);
    }
    if current.is_some() {
        kernel.row_ptr.push(kernel.cols.len() as u32);
    }
    kernel
}

/// Lowers one communication phase: per-rank send and receive lists plus
/// the staging footprint. All sends are lowered before any receive so
/// the drain/define bookkeeping matches the simultaneous-exchange
/// semantics (payloads capture the pre-phase state).
#[allow(clippy::type_complexity)]
fn lower_comm(
    msgs: &[MsgSpec],
    k: usize,
    states: &mut [RankState],
    x_part: &[u32],
) -> (Vec<Vec<CompiledMsg>>, Vec<Vec<CompiledMsg>>, usize) {
    let mut sends: Vec<Vec<CompiledMsg>> = (0..k).map(|_| Vec::new()).collect();
    let mut recvs: Vec<Vec<CompiledMsg>> = (0..k).map(|_| Vec::new()).collect();
    let mut offset = 0u32;
    let mut offsets = Vec::with_capacity(msgs.len());
    for m in msgs {
        let src = m.src as usize;
        let st = &mut states[src];
        let x_idx: Vec<u32> = m
            .x_cols
            .iter()
            .map(|&j| st.x_read(j, src, x_part[j as usize] as usize == src, "to send"))
            .collect();
        let y_idx: Vec<u32> = m.y_rows.iter().map(|&i| st.y_drain(i, src)).collect();
        offsets.push(offset);
        sends[src].push(CompiledMsg { peer: m.dst, offset, x_idx, y_idx });
        offset += (m.x_cols.len() + m.y_rows.len()) as u32;
    }
    for (m, &off) in msgs.iter().zip(&offsets) {
        let dst = m.dst as usize;
        let st = &mut states[dst];
        let x_idx: Vec<u32> = m.x_cols.iter().map(|&j| st.x_write(j)).collect();
        let y_idx: Vec<u32> = m.y_rows.iter().map(|&i| st.y_accum(i)).collect();
        recvs[dst].push(CompiledMsg { peer: m.src, offset: off, x_idx, y_idx });
    }
    (sends, recvs, offset as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_spmv::{MultTask, SpmvPlan};

    /// A tiny hand-built two-rank plan: rank 0 computes y0 += 2·x0,
    /// ships x0 and its partial y1 to rank 1; rank 1 finishes y1.
    fn tiny_plan() -> SpmvPlan {
        SpmvPlan {
            k: 2,
            nrows: 2,
            ncols: 2,
            x_part: vec![0, 1],
            y_part: vec![0, 1],
            phases: vec![
                PlanPhase::Compute(vec![
                    vec![
                        MultTask { row: 0, col: 0, val: 2.0 },
                        MultTask { row: 1, col: 0, val: 3.0 },
                    ],
                    vec![],
                ]),
                PlanPhase::Comm(vec![MsgSpec { src: 0, dst: 1, x_cols: vec![0], y_rows: vec![1] }]),
                PlanPhase::Compute(vec![vec![], vec![MultTask { row: 1, col: 1, val: 5.0 }]]),
            ],
        }
    }

    #[test]
    fn footprints_are_dense_and_minimal() {
        let cp = CompiledPlan::compile(&tiny_plan());
        assert_eq!(cp.ranks[0].nx, 1, "rank 0 only ever holds x0");
        assert_eq!(cp.ranks[0].ny, 2, "rank 0 accumulates y0 and the y1 partial");
        assert_eq!(cp.ranks[1].nx, 2, "rank 1 holds x1 and the received x0");
        assert_eq!(cp.ranks[1].ny, 1);
        assert_eq!(cp.staging_words, vec![2]);
        assert_eq!(cp.total_ops(), 3);
    }

    #[test]
    fn seeds_cover_only_used_owned_entries() {
        let cp = CompiledPlan::compile(&tiny_plan());
        assert_eq!(cp.ranks[0].x_seed, vec![(0, 0)]);
        // Rank 1 first *uses* x1 in the final compute, after receiving
        // x0 — so x0 takes local slot 0 and the owned x1 slot 1.
        assert_eq!(cp.ranks[1].x_seed, vec![(1, 1)]);
    }

    #[test]
    fn drained_partials_are_tracked() {
        let cp = CompiledPlan::compile(&tiny_plan());
        match &cp.ranks[0].steps[1] {
            RankStep::Comm { sends, recvs, .. } => {
                assert_eq!(sends.len(), 1);
                assert_eq!(sends[0].x_idx.len(), 1);
                assert_eq!(sends[0].y_idx.len(), 1);
                assert!(recvs.is_empty());
            }
            other => panic!("expected comm step, got {other:?}"),
        }
        // y1 is emitted by rank 1 (its owner), not by rank 0 whose
        // partial was drained.
        assert_eq!(cp.ranks[0].y_emit, vec![(0, 0)]);
        assert_eq!(cp.ranks[1].y_emit, vec![(1, 0)]);
    }

    #[test]
    fn kernel_grouping_preserves_task_order() {
        // Tasks interleave rows: 0, 1, 0 — three segments, order kept.
        let tasks = vec![
            MultTask { row: 0, col: 0, val: 1.0 },
            MultTask { row: 1, col: 0, val: 2.0 },
            MultTask { row: 0, col: 0, val: 4.0 },
        ];
        let mut st = RankState::default();
        let kernel = lower_tasks(&tasks, 0, &mut st, &[0]);
        assert_eq!(kernel.rows, vec![0, 1, 0]);
        assert_eq!(kernel.row_ptr, vec![0, 1, 2, 3]);
        let mut y = vec![0.0, 0.0];
        kernel.run(&[10.0], &mut y);
        assert_eq!(y, vec![50.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "plan bug")]
    fn missing_x_is_rejected_at_compile_time() {
        let plan = SpmvPlan {
            k: 2,
            nrows: 2,
            ncols: 2,
            x_part: vec![0, 1],
            y_part: vec![0, 1],
            phases: vec![PlanPhase::Compute(vec![
                vec![MultTask { row: 0, col: 1, val: 1.0 }],
                vec![],
            ])],
        };
        let _ = CompiledPlan::compile(&plan);
    }

    #[test]
    #[should_panic(expected = "plan bug")]
    fn double_drain_is_rejected_at_compile_time() {
        let plan = SpmvPlan {
            k: 2,
            nrows: 1,
            ncols: 1,
            x_part: vec![0],
            y_part: vec![1],
            phases: vec![
                PlanPhase::Compute(vec![vec![MultTask { row: 0, col: 0, val: 1.0 }], vec![]]),
                PlanPhase::Comm(vec![
                    MsgSpec { src: 0, dst: 1, x_cols: vec![], y_rows: vec![0] },
                    MsgSpec { src: 0, dst: 1, x_cols: vec![], y_rows: vec![0] },
                ]),
            ],
        };
        let _ = CompiledPlan::compile(&plan);
    }
}
