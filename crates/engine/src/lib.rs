//! Compiled SpMV execution engine.
//!
//! The interpreting executors in `s2d-spmv` validate plan *semantics*;
//! this crate makes plans *fast*. It follows the inspector/executor
//! pattern of the OSKI line and shared-memory SpMV practice: pay a
//! one-time compilation cost per `(matrix, partition)` pair, then run
//! thousands of iterations over flat, cache-friendly arrays.
//!
//! The pipeline:
//!
//! ```text
//!   SpmvPlan ──CompiledPlan::compile──▶ CompiledPlan
//!                                          │
//!                      ┌───────────────────┴──────────────────┐
//!            Workspace + execute                    ParallelEngine
//!            execute_batch(X, r)                 execute_batch(X, r)
//!            (sequential, zero-alloc            (persistent worker pool,
//!             iteration loop)                    atomic phase barriers)
//! ```
//!
//! * [`compile`] — renumbers every rank's `x`/`y` footprint into dense
//!   local indices, lowers compute phases to format-pluggable kernels
//!   and messages to gather/scatter index lists with staging offsets;
//! * [`formats`] — the kernel storage formats ([`KernelFormat`]):
//!   CSR slices, SELL-C-σ sorted chunks, dense-span splits, and the
//!   per-kernel `auto` selection policy;
//! * [`exec`] — the sequential executor over a reusable [`Workspace`];
//! * [`pool`] — the [`ParallelEngine`]: long-lived OS threads running
//!   `execute_iters(n)` for solver loops with zero per-iteration
//!   allocation.
//!
//! # Kernel formats
//!
//! The kernel body is a pluggable storage format, not a single CSR
//! loop: [`CompiledPlan::compile_with`] lowers every compute phase to
//! the requested [`KernelFormat`], and the format is baked into the
//! kernel's buffer layout (chunk packing, padding, span tables) —
//! every executor (sequential workspace, worker pool, the solver's
//! per-rank programs) runs whatever format the plan carries through
//! the one [`Kernel::run_batch`] entry point.
//!
//! Selection guidance:
//!
//! * [`KernelFormat::CsrSlice`] (the default) — the PR 1 kernel,
//!   bitwise-preserved; right for mixed/long-row slices and the
//!   baseline every other format is differentially held to.
//! * [`KernelFormat::SellCSigma`] — sorts rows by length inside σ-row
//!   windows and packs C-lane padded chunks whose inner loop has a
//!   uniform trip count; wins on many short irregular rows (graph
//!   matrices), loses when padding fill gets large.
//! * [`KernelFormat::DenseRowSplit`] — turns runs of consecutive local
//!   columns into index-free dense spans; right for the heavy split
//!   rows semi-2D partitions produce (after dense renumbering a split
//!   dense row is exactly such a run).
//! * [`KernelFormat::Auto`] — per rank × phase choice from compile-time
//!   row-length statistics ([`KernelStats`]); use it unless you are
//!   pinning a format for comparison.
//!
//! All formats preserve per-row entry order and accumulate through a
//! single chain per row, so results are bitwise identical across
//! formats for finite inputs (see the [`formats`] module docs for the
//! exact contract), and [`Kernel::ops`] /
//! [`CompiledPlan::total_ops`] are format-invariant — padding never
//! counts.
//!
//! # Batched (multi-RHS) execution
//!
//! Every compiled path also runs **blocks** of `r` right-hand sides at
//! once (`Y = A·X`): `Kernel::run_batch`, `CompiledPlan::execute_batch`
//! / `execute_batch_iters` over a [`Workspace`] allocated with
//! `workspace_batch(r)`, and `ParallelEngine::execute_batch` on a pool
//! built with `new_batch`/`with_threads_batch`. The memory layout is
//! row-major everywhere:
//!
//! * global vectors: index `g`, column `q` at `x[g*r + q]` — an `n × r`
//!   block, never `r` separate vectors;
//! * rank-local buffers: local slot `s` occupies `buf[s*r .. (s+1)*r]`;
//! * message staging: each [`CompiledMsg`]'s region scales from `len`
//!   to `len × r` words (region start `offset * r`), so a communication
//!   phase still performs one staged copy per message — the payload is
//!   just `r` times wider.
//!
//! One batched iteration therefore walks the matrix values and the
//! gather/scatter index lists **once** for all `r` columns, reusing
//! each fetched `A` entry `r` times against `r` contiguous `x` words —
//! the register/cache-blocking lever of the OSKI line. The fixed-width
//! inner loops (`r ∈ {1, 2, 4, 8}` specializations in
//! [`Kernel::run_batch`]) carry explicit AVX2 variants for `r ∈ {4,
//! 8}`, selected by [`KernelIsa`] (`auto` probes the CPU once at
//! compile time) — the vector lanes map to the batch dimension, so the
//! SIMD paths are **bitwise identical** to the scalar reference. Per
//! column, results are bitwise identical to the single-RHS path: only
//! the traversal is shared, never the accumulation order.
//!
//! `s2d-solver`'s `RankCtx` runs its per-rank SpMV on the same compiled
//! per-rank programs ([`RankProgram`]) — including the batched layout
//! via `RankCtx::spmv_batch`, which block power iteration consumes — so
//! CG, Jacobi, power iteration, block power and PageRank all ride this
//! path; the interpreting executors remain as the cross-check oracle
//! (see `crates/engine/tests/props.rs` and the differential harness in
//! `crates/engine/tests/differential.rs`).
//!
//! # The unified operator surface
//!
//! The [`backend`] module puts every execution path — the two
//! interpreting executors of `s2d-spmv` plus the two compiled paths
//! here — behind `s2d_spmv::SpmvOperator`, selected by the [`Backend`]
//! enum: `Backend::build(&plan, width)` pays all setup (compilation,
//! buffers, worker threads) once and returns an operator whose
//! `apply`/`apply_batch` write into caller-owned buffers with zero
//! steady-state allocation on the compiled paths. See the [`backend`]
//! module docs for selection guidance (when the pool beats the
//! sequential workspace, how to pick a batch width). The conformance
//! suite in `crates/engine/tests/conformance.rs` holds every backend to
//! one shared property set.

pub mod backend;
pub mod compile;
pub mod exec;
pub mod formats;
pub mod pool;
pub mod telemetry;

pub use backend::{Backend, CompiledPoolOperator, CompiledSeqOperator, ObservedOperator};
pub use compile::{CompiledMsg, CompiledPlan, RankProgram, RankStep, NO_SLOT};
pub use exec::Workspace;
pub use formats::{
    CsrKernel, DenseSplitKernel, Kernel, KernelFormat, KernelIsa, KernelStats, SellKernel, NO_LANE,
};
pub use pool::{ParallelEngine, PoolOptions, PoolSchedule};
pub use telemetry::ExecTelemetry;
