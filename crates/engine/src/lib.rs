//! Compiled SpMV execution engine.
//!
//! The interpreting executors in `s2d-spmv` validate plan *semantics*;
//! this crate makes plans *fast*. It follows the inspector/executor
//! pattern of the OSKI line and shared-memory SpMV practice: pay a
//! one-time compilation cost per `(matrix, partition)` pair, then run
//! thousands of iterations over flat, cache-friendly arrays.
//!
//! The pipeline:
//!
//! ```text
//!   SpmvPlan ──CompiledPlan::compile──▶ CompiledPlan
//!                                          │
//!                      ┌───────────────────┴──────────────────┐
//!            Workspace + execute                    ParallelEngine
//!            (sequential, zero-alloc            (persistent worker pool,
//!             iteration loop)                    atomic phase barriers)
//! ```
//!
//! * [`compile`] — renumbers every rank's `x`/`y` footprint into dense
//!   local indices, lowers compute phases to CSR-slice kernels and
//!   messages to gather/scatter index lists with staging offsets;
//! * [`exec`] — the sequential executor over a reusable [`Workspace`];
//! * [`pool`] — the [`ParallelEngine`]: long-lived OS threads running
//!   `execute_iters(n)` for solver loops with zero per-iteration
//!   allocation.
//!
//! `s2d-solver`'s `RankCtx` runs its per-rank SpMV on the same compiled
//! per-rank programs ([`RankProgram`]), so CG, Jacobi, power iteration
//! and PageRank all ride this path; the interpreting executors remain
//! as the cross-check oracle (see `crates/engine/tests/props.rs`).

pub mod compile;
pub mod exec;
pub mod pool;

pub use compile::{CompiledMsg, CompiledPlan, Kernel, RankProgram, RankStep, NO_SLOT};
pub use exec::Workspace;
pub use pool::ParallelEngine;
