//! Engine-side glue for the `s2d-obs` telemetry sink.
//!
//! [`ExecTelemetry`] pairs a shared [`TelemetrySink`] with the plan's
//! *static* per-iteration work profile — rows emitted, multiply-adds
//! and staged send words per rank — precomputed once at operator
//! construction so the hot loop's counter updates are three relaxed
//! atomic adds per rank per iteration, never a plan walk.
//!
//! Phase attribution on the compiled paths (see the `s2d-obs` crate
//! docs for phase semantics):
//!
//! * **compute** — each kernel's `run_batch` call;
//! * **gather** — input seeding plus send staging;
//! * **scatter** — receive application plus output assembly (on the
//!   sequential executor, whole-output assembly is recorded under
//!   rank 0);
//! * **barrier-wait** — the worker pool's phase barriers, recorded
//!   under the first rank of the waiting worker's contiguous range.
//!
//! Instrumentation never touches the numeric path: the instrumented
//! executors interleave clock reads between exactly the same seeding /
//! kernel / staging / assembly calls in the same order, so
//! telemetry-on results are bitwise identical to telemetry-off.

use std::sync::Arc;

use s2d_obs::{PhaseRecorder, TelemetrySink};

use crate::compile::{CompiledPlan, RankStep};

/// A telemetry sink bound to one compiled plan: the sink plus the
/// plan's static per-rank, per-iteration work counters.
pub struct ExecTelemetry {
    sink: Arc<TelemetrySink>,
    /// Rows each rank emits per iteration (owner-assembled outputs).
    rows: Vec<u64>,
    /// Multiply-adds each rank executes per iteration
    /// (format-invariant).
    madds: Vec<u64>,
    /// Words each rank stages into send regions per iteration (batch
    /// width 1).
    words: Vec<u64>,
}

impl ExecTelemetry {
    /// Binds `sink` to `cp`'s shape, precomputing the per-iteration
    /// work profile.
    ///
    /// # Panics
    /// Panics if the sink was sized for a different rank count.
    pub fn new(cp: &CompiledPlan, sink: Arc<TelemetrySink>) -> ExecTelemetry {
        assert_eq!(sink.k(), cp.k, "telemetry sink sized for a different rank count");
        let mut rows = vec![0u64; cp.k];
        let mut madds = vec![0u64; cp.k];
        let mut words = vec![0u64; cp.k];
        for (rk, rp) in cp.ranks.iter().enumerate() {
            rows[rk] = rp.y_emit.len() as u64;
            for step in &rp.steps {
                match step {
                    RankStep::Compute(kernel) => madds[rk] += kernel.ops() as u64,
                    RankStep::Comm { sends, .. } => {
                        words[rk] += sends.iter().map(|m| m.words() as u64).sum::<u64>();
                    }
                }
            }
        }
        ExecTelemetry { sink, rows, madds, words }
    }

    /// The shared sink.
    pub fn sink(&self) -> &Arc<TelemetrySink> {
        &self.sink
    }

    /// Rank `rk`'s recorder.
    #[inline]
    pub(crate) fn rec(&self, rk: usize) -> &PhaseRecorder {
        self.sink.rank(rk)
    }

    /// Accounts one iteration of rank `rk`'s static work at batch
    /// width `r` (all three counters scale with the batch width — an
    /// `r`-wide iteration does `r×` the single-RHS work).
    #[inline]
    pub(crate) fn bump_iter(&self, rk: usize, r: usize) {
        let r = r as u64;
        self.rec(rk).add_counts(self.rows[rk] * r, self.madds[rk] * r, self.words[rk] * r);
    }
}
