//! Pluggable kernel storage formats for compiled compute phases.
//!
//! PR 1 lowered every compute phase to one hard-coded CSR-slice loop.
//! But the semi-2D partitions this workspace exists to study produce
//! ranks with very *different* row-length profiles: a rank that
//! inherited a split dense row sees a handful of huge rows with long
//! contiguous column runs, while a rank holding a regular sparse slice
//! sees thousands of short irregular rows. One loop shape cannot be the
//! right machine code for both — which is the OSKI lesson: formats only
//! win when something *picks* them per matrix (here: per rank, per
//! phase).
//!
//! Three executable formats live behind the [`Kernel`] enum:
//!
//! * [`CsrKernel`] ([`KernelFormat::CsrSlice`]) — the PR 1 run-length
//!   grouped CSR slice, bitwise-preserved: it is the reference the
//!   other formats are held to.
//! * [`SellKernel`] ([`KernelFormat::SellCSigma`]) — SELL-C-σ: rows
//!   sorted by length inside windows of σ, packed into chunks of C
//!   lanes, values stored entry-major inside a chunk and padded to the
//!   chunk's widest row. The inner loop carries C accumulators with a
//!   uniform trip count — the vectorizable shape for short irregular
//!   rows, where the CSR slice pays per-row loop-control overhead.
//! * [`DenseSplitKernel`] ([`KernelFormat::DenseRowSplit`]) — for the
//!   heavy split rows semi-2D produces: maximal runs of *consecutive*
//!   local column slots become dense spans (`y[i] += vals·x[c0..c0+len]`
//!   with no index loads at all), the rest stays indexed. After the
//!   compiler's dense renumbering, a split dense row's footprint is
//!   exactly such a run.
//!
//! [`KernelFormat::Auto`] picks per kernel from row-length statistics
//! ([`KernelStats`]) gathered at compile time.
//!
//! # Bitwise contract
//!
//! Every format preserves the CSR slice's *per-row entry order* and
//! accumulates each row through a single accumulator chain, so for
//! finite inputs all formats produce bitwise-identical results:
//!
//! * `DenseRowSplit` executes the exact CSR operation sequence — only
//!   the column indices are implicit in dense spans.
//! * `SELL-C-σ` reorders *rows* (whose `y` slots are disjoint) but
//!   never the entries within a row; padding lanes append `acc += 0.0
//!   · x[c]` terms, which leave a finite accumulator bit-identical
//!   (partial sums are never `-0.0`: they start at `+0.0` and IEEE-754
//!   addition of `±0.0` to `+0.0` stays `+0.0`). A kernel whose task
//!   list interleaved the same row into several segments falls back to
//!   the CSR slice — reordering same-row segments would regroup the
//!   accumulation.
//!
//! Non-finite inputs (±∞, NaN) void the bitwise guarantee for padded
//! SELL lanes (`0.0 · ∞ = NaN`); the conformance suite pins the
//! guarantee for finite data.
//!
//! # SIMD ([`KernelIsa`])
//!
//! The fixed-width batch paths (`r ∈ {4, 8}`) have explicit AVX2
//! variants on x86-64, selected at lowering time by [`KernelIsa`]
//! (runtime `is_x86_feature_detected!` under `auto`). The vector lanes
//! map to the *batch* dimension — lane `q` of a 4-wide register is
//! right-hand side `q` — so each lane is an independent accumulator
//! chain and the vector code performs the exact scalar operation
//! sequence per accumulator. No FMA, no horizontal reduction, no
//! reassociation: the AVX2 results are **bitwise identical** to the
//! scalar reference, and the differential suite pins that with exact
//! equality. The scalar loops stay as the reference implementation.

/// Lane sentinel in [`SellKernel`]: this lane of the chunk is pure
/// padding, its accumulator is discarded. Also the "no dense run" marker
/// in [`DenseSplitKernel`] span descriptors.
pub const NO_LANE: u32 = u32::MAX;

/// Chunk heights supported by the SELL fixed-width dispatch.
const SELL_C_MIN: usize = 2;
const SELL_C_MAX: usize = 16;

/// Minimum consecutive-column run length that becomes a dense span in
/// [`DenseSplitKernel`] (shorter runs stay indexed — the span descriptor
/// would cost more than the index loads it saves).
pub const DENSE_MIN_RUN: usize = 8;

/// Selects the storage format compute kernels are lowered to.
///
/// The format is compiled into the buffer layout itself (chunk packing,
/// padding, span tables), so it is chosen at
/// [`CompiledPlan::compile_with`](crate::CompiledPlan::compile_with)
/// time — not flipped at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelFormat {
    /// Run-length grouped CSR slice (PR 1's kernel, bitwise-preserved).
    CsrSlice,
    /// SELL-C-σ: σ-windowed row sort, C-lane chunks, padded entry-major
    /// storage. `c` must lie in `2..=16`.
    SellCSigma {
        /// Chunk height (rows per chunk).
        c: usize,
        /// Sorting window in rows (row order is disturbed at most σ
        /// positions; `σ = usize::MAX` sorts globally).
        sigma: usize,
    },
    /// Dense-span split: consecutive-column runs execute as dense dot
    /// products, the remainder as indexed entries.
    DenseRowSplit,
    /// Per-kernel selection from compile-time [`KernelStats`].
    Auto,
}

impl KernelFormat {
    /// The SELL parameters `auto` reaches for: C = 2, σ = 256. The
    /// small chunk height is deliberate — the entry-major loop keeps a
    /// `C × R` accumulator block live, and C = 2 is the largest chunk
    /// whose block stays in registers at every specialized batch width
    /// (r ≤ 8). Measured across R-MAT / power-law / FEM / ultra-sparse
    /// shapes, `sell:2` matches the wider chunks at r = 1 and is the
    /// only SELL variant that beats the CSR slice at r = 8 (wider
    /// chunks fall back to the lane-major walk and lose the lockstep
    /// advantage).
    pub const DEFAULT_SELL: KernelFormat = KernelFormat::SellCSigma { c: 2, sigma: 256 };

    /// Every format with default parameters — the sweep set for
    /// conformance, differential and bench runs.
    pub fn all() -> [KernelFormat; 4] {
        [
            KernelFormat::CsrSlice,
            KernelFormat::DEFAULT_SELL,
            KernelFormat::DenseRowSplit,
            KernelFormat::Auto,
        ]
    }

    /// Short stable label (bench ids, CLI output, test diagnostics).
    pub fn label(&self) -> &'static str {
        match self {
            KernelFormat::CsrSlice => "csr",
            KernelFormat::SellCSigma { .. } => "sell",
            KernelFormat::DenseRowSplit => "dense-split",
            KernelFormat::Auto => "auto",
        }
    }
}

impl std::str::FromStr for KernelFormat {
    type Err = String;

    /// Parses the CLI spelling: `csr`, `sell` / `sell:C` / `sell:C:S`,
    /// `dense-split` (alias `dense`), `auto`.
    fn from_str(s: &str) -> Result<KernelFormat, String> {
        match s {
            "csr" => Ok(KernelFormat::CsrSlice),
            "sell" => Ok(KernelFormat::DEFAULT_SELL),
            "dense-split" | "dense" => Ok(KernelFormat::DenseRowSplit),
            "auto" => Ok(KernelFormat::Auto),
            other => {
                if let Some(params) = other.strip_prefix("sell:") {
                    let mut it = params.splitn(2, ':');
                    let c: usize =
                        it.next().unwrap_or("").parse().map_err(|_| {
                            format!("bad chunk height in {other:?} (want sell:C[:S])")
                        })?;
                    let sigma: usize = match it.next() {
                        None => 256,
                        Some(sv) => sv
                            .parse()
                            .map_err(|_| format!("bad sigma in {other:?} (want sell:C[:S])"))?,
                    };
                    if !(SELL_C_MIN..=SELL_C_MAX).contains(&c) {
                        return Err(format!(
                            "sell chunk height must be in {SELL_C_MIN}..={SELL_C_MAX} (got {c})"
                        ));
                    }
                    return Ok(KernelFormat::SellCSigma { c, sigma });
                }
                Err(format!("unknown kernel format {other:?} (csr|sell[:C[:S]]|dense-split|auto)"))
            }
        }
    }
}

impl std::fmt::Display for KernelFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelFormat::SellCSigma { c, sigma } => write!(f, "sell:{c}:{sigma}"),
            other => f.write_str(other.label()),
        }
    }
}

/// Selects the instruction set the fixed-width batch loops run on.
///
/// Like [`KernelFormat`], the choice is baked in at
/// [`CompiledPlan::compile_with_isa`](crate::CompiledPlan::compile_with_isa)
/// time: each lowered kernel stores a resolved "use SIMD" flag, so the
/// hot dispatch is one branch, not a per-call feature probe. The
/// default (`Auto`) turns AVX2 on whenever the CPU has it — safe
/// because the vector paths are bitwise identical to scalar (see the
/// module docs) — while `Scalar` pins the portable reference loops for
/// differential testing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelIsa {
    /// Use AVX2 when the running CPU supports it, scalar otherwise.
    #[default]
    Auto,
    /// Portable scalar loops only — the bitwise reference.
    Scalar,
    /// Request AVX2 explicitly. On a CPU (or architecture) without
    /// AVX2 this degrades to scalar rather than erroring: the results
    /// are bitwise identical either way, so a hard failure would only
    /// hurt portability of configs and caches.
    Avx2,
}

impl KernelIsa {
    /// Every ISA choice — the sweep set for differential tests.
    pub fn all() -> [KernelIsa; 3] {
        [KernelIsa::Auto, KernelIsa::Scalar, KernelIsa::Avx2]
    }

    /// Short stable label (bench ids, CLI output, cache files).
    pub fn label(&self) -> &'static str {
        match self {
            KernelIsa::Auto => "auto",
            KernelIsa::Scalar => "scalar",
            KernelIsa::Avx2 => "avx2",
        }
    }

    /// True when the running CPU can execute the AVX2 kernels.
    pub fn avx2_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Resolves the knob against the running CPU: should lowered
    /// kernels take the AVX2 batch paths?
    pub fn simd(self) -> bool {
        match self {
            KernelIsa::Scalar => false,
            KernelIsa::Auto | KernelIsa::Avx2 => KernelIsa::avx2_available(),
        }
    }
}

impl std::str::FromStr for KernelIsa {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelIsa, String> {
        match s {
            "auto" => Ok(KernelIsa::Auto),
            "scalar" => Ok(KernelIsa::Scalar),
            "avx2" => Ok(KernelIsa::Avx2),
            other => Err(format!("unknown kernel isa {other:?} (auto|scalar|avx2)")),
        }
    }
}

impl std::fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Row-length statistics of one lowered kernel — the evidence
/// [`KernelFormat::Auto`] decides from, gathered once at compile time.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Row segments in the kernel.
    pub rows: usize,
    /// Real multiply-adds (excludes any format padding).
    pub ops: usize,
    /// Longest row segment.
    pub max_row: usize,
    /// Mean row segment length.
    pub mean_row: f64,
    /// Fraction of entries inside consecutive-column runs of at least
    /// [`DENSE_MIN_RUN`] — the share a dense-span kernel executes
    /// without index loads.
    pub dense_frac: f64,
    /// Stored entries (incl. padding) per real entry if lowered to
    /// [`KernelFormat::DEFAULT_SELL`]; 1.0 is padding-free.
    pub sell_fill: f64,
}

impl KernelStats {
    /// Gathers the statistics of a CSR slice.
    pub fn of(csr: &CsrKernel) -> KernelStats {
        let rows = csr.rows.len();
        let ops = csr.vals.len();
        if rows == 0 {
            return KernelStats::default();
        }
        let mut max_row = 0usize;
        let mut dense_entries = 0usize;
        for s in 0..rows {
            let (lo, hi) = (csr.row_ptr[s] as usize, csr.row_ptr[s + 1] as usize);
            max_row = max_row.max(hi - lo);
            // Count entries in maximal consecutive-column runs.
            let mut run = 1usize;
            for e in lo + 1..=hi {
                if e < hi && csr.cols[e] == csr.cols[e - 1] + 1 {
                    run += 1;
                } else {
                    if run >= DENSE_MIN_RUN {
                        dense_entries += run;
                    }
                    run = 1;
                }
            }
        }
        let (c, sigma) = match KernelFormat::DEFAULT_SELL {
            KernelFormat::SellCSigma { c, sigma } => (c, sigma),
            _ => unreachable!(),
        };
        let padded = sell_padded_entries(csr, c, sigma);
        KernelStats {
            rows,
            ops,
            max_row,
            mean_row: ops as f64 / rows as f64,
            dense_frac: dense_entries as f64 / ops as f64,
            sell_fill: padded as f64 / ops.max(1) as f64,
        }
    }
}

/// Stored-entry count (real + padding) of the SELL lowering without
/// materializing it: sum over chunks of `C ×` the chunk's widest row.
fn sell_padded_entries(csr: &CsrKernel, c: usize, sigma: usize) -> usize {
    let order = sell_order(csr, c, sigma);
    order
        .chunks(c)
        .map(|chunk| {
            let widest = chunk
                .iter()
                .map(|&s| (csr.row_ptr[s as usize + 1] - csr.row_ptr[s as usize]) as usize)
                .max()
                .unwrap_or(0);
            widest * c
        })
        .sum()
}

/// Segment order after the σ-windowed descending length sort (stable,
/// so equal-length rows keep their original relative order).
fn sell_order(csr: &CsrKernel, c: usize, sigma: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..csr.rows.len() as u32).collect();
    let window = sigma.max(c);
    for win in order.chunks_mut(window) {
        win.sort_by_key(|&s| {
            std::cmp::Reverse(csr.row_ptr[s as usize + 1] - csr.row_ptr[s as usize])
        });
    }
    order
}

/// Picks a concrete format for one kernel from its statistics.
///
/// The policy, in order:
/// 1. kernels dominated by consecutive-column runs (≥ 50 % of entries —
///    the split-dense-row shape, however few rows carry it) take dense
///    spans;
/// 2. kernels with enough short irregular rows and acceptable padding
///    (≤ 25 % fill overhead after the σ-sort) take SELL — the row
///    floor applies here only: a handful of rows cannot amortize the
///    chunk machinery;
/// 3. everything else (including empty/trivial kernels) stays CSR.
pub(crate) fn auto_pick(st: &KernelStats) -> KernelFormat {
    if st.ops == 0 {
        return KernelFormat::CsrSlice;
    }
    if st.dense_frac >= 0.5 {
        return KernelFormat::DenseRowSplit;
    }
    if st.rows >= 4 * 8 && st.sell_fill <= 1.25 {
        return KernelFormat::DEFAULT_SELL;
    }
    KernelFormat::CsrSlice
}

/// A compute phase lowered to one of the pluggable storage formats.
///
/// All variants run the same arithmetic (see the module docs for the
/// bitwise contract); they differ in the memory layout the inner loop
/// walks. [`Kernel::ops`] is **format-invariant**: it counts the real
/// multiply-adds of the lowered task list, never format padding — so
/// `CompiledPlan::total_ops` equals the plan's op count whatever the
/// format.
#[derive(Clone, Debug)]
pub enum Kernel {
    /// Run-length grouped CSR slice.
    Csr(CsrKernel),
    /// SELL-C-σ sorted chunks.
    Sell(SellKernel),
    /// Dense-span / indexed split.
    DenseSplit(DenseSplitKernel),
}

impl Default for Kernel {
    fn default() -> Kernel {
        Kernel::Csr(CsrKernel::default())
    }
}

impl Kernel {
    /// Lowers a CSR slice into `format` (resolving [`KernelFormat::Auto`]
    /// per kernel). Falls back to the CSR slice where a format cannot
    /// represent the kernel faithfully (SELL with duplicated row
    /// segments).
    pub fn from_csr(csr: CsrKernel, format: KernelFormat) -> Kernel {
        Kernel::from_csr_isa(csr, format, KernelIsa::Auto)
    }

    /// [`Kernel::from_csr`] with an explicit instruction-set choice:
    /// `isa` is resolved against the running CPU once, here, and the
    /// verdict is stored in the lowered kernel.
    pub fn from_csr_isa(csr: CsrKernel, format: KernelFormat, isa: KernelIsa) -> Kernel {
        let format = match format {
            KernelFormat::Auto => auto_pick(&KernelStats::of(&csr)),
            fixed => fixed,
        };
        let simd = isa.simd();
        let mut kernel = match format {
            KernelFormat::CsrSlice => Kernel::Csr(csr),
            KernelFormat::SellCSigma { c, sigma } => match SellKernel::build(&csr, c, sigma) {
                Some(sell) => Kernel::Sell(sell),
                None => Kernel::Csr(csr),
            },
            KernelFormat::DenseRowSplit => Kernel::DenseSplit(DenseSplitKernel::build(&csr)),
            KernelFormat::Auto => unreachable!("resolved above"),
        };
        kernel.set_simd(simd);
        kernel
    }

    /// Sets the resolved "use the AVX2 batch paths" flag.
    pub(crate) fn set_simd(&mut self, simd: bool) {
        match self {
            Kernel::Csr(k) => k.simd = simd,
            Kernel::Sell(k) => k.simd = simd,
            Kernel::DenseSplit(k) => k.simd = simd,
        }
    }

    /// True when the kernel will take the AVX2 batch paths for
    /// `r ∈ {4, 8}`.
    pub fn simd(&self) -> bool {
        match self {
            Kernel::Csr(k) => k.simd,
            Kernel::Sell(k) => k.simd,
            Kernel::DenseSplit(k) => k.simd,
        }
    }

    /// Number of real multiply-adds (format-invariant; padding entries
    /// in SELL chunks are not counted).
    pub fn ops(&self) -> usize {
        match self {
            Kernel::Csr(k) => k.ops(),
            Kernel::Sell(k) => k.ops,
            Kernel::DenseSplit(k) => k.vals.len(),
        }
    }

    /// Number of row segments the kernel accumulates into.
    pub fn segments(&self) -> usize {
        match self {
            Kernel::Csr(k) => k.rows.len(),
            Kernel::Sell(k) => k.rows.iter().filter(|&&r| r != NO_LANE).count(),
            Kernel::DenseSplit(k) => k.rows.len(),
        }
    }

    /// The concrete format this kernel was lowered to.
    pub fn format(&self) -> KernelFormat {
        match self {
            Kernel::Csr(_) => KernelFormat::CsrSlice,
            Kernel::Sell(k) => KernelFormat::SellCSigma { c: k.c as usize, sigma: k.sigma },
            Kernel::DenseSplit(_) => KernelFormat::DenseRowSplit,
        }
    }

    /// Runs the kernel over flat local vectors (batch width 1).
    #[inline]
    pub fn run(&self, x: &[f64], y: &mut [f64]) {
        match self {
            Kernel::Csr(k) => k.run(x, y),
            Kernel::Sell(k) => k.run_batch(x, y, 1),
            Kernel::DenseSplit(k) => k.run_batch(x, y, 1),
        }
    }

    /// Runs the kernel over row-major multi-vector blocks: local slot
    /// `s` of an `r`-wide batch occupies `buf[s*r .. (s+1)*r]`, one
    /// word per right-hand side. `r ∈ {1, 2, 4, 8}` dispatch to
    /// fixed-width specializations; other widths take a strided
    /// fallback.
    #[inline]
    pub fn run_batch(&self, x: &[f64], y: &mut [f64], r: usize) {
        match self {
            Kernel::Csr(k) => k.run_batch(x, y, r),
            Kernel::Sell(k) => k.run_batch(x, y, r),
            Kernel::DenseSplit(k) => k.run_batch(x, y, r),
        }
    }

    /// Number of schedulable **units** — the granularity the worker
    /// pool's NNZ-chunked schedule may split this kernel at. A unit is
    /// a row segment (CSR slice, dense-split) or a SELL chunk; units
    /// execute independently when the kernel is [`Kernel::splittable`].
    pub fn units(&self) -> usize {
        match self {
            Kernel::Csr(k) => k.rows.len(),
            Kernel::Sell(k) => k.chunk_ptr.len().saturating_sub(1),
            Kernel::DenseSplit(k) => k.rows.len(),
        }
    }

    /// Stored work (multiply-adds, incl. SELL padding — that is what
    /// the hardware executes) of unit `u`. Drives the NNZ-weighted
    /// chunk split.
    pub fn unit_ops(&self, u: usize) -> usize {
        match self {
            Kernel::Csr(k) => (k.row_ptr[u + 1] - k.row_ptr[u]) as usize,
            Kernel::Sell(k) => (k.chunk_ptr[u + 1] - k.chunk_ptr[u]) as usize,
            Kernel::DenseSplit(k) => (k.seg_ptr[u] as usize..k.seg_ptr[u + 1] as usize)
                .map(|sp| k.span_len[sp] as usize)
                .sum(),
        }
    }

    /// True when distinct units write **disjoint** `y` slots, so unit
    /// ranges may run on different workers concurrently. A CSR or
    /// dense-split kernel whose task list interleaved a row into
    /// several segments is not splittable (two units share an
    /// accumulator target); SELL kernels are always splittable — the
    /// builder rejects duplicated rows, and [`NO_LANE`] padding lanes
    /// are never written.
    pub fn splittable(&self) -> bool {
        let rows = match self {
            Kernel::Csr(k) => &k.rows,
            Kernel::Sell(_) => return true,
            Kernel::DenseSplit(k) => &k.rows,
        };
        let mut seen = rows.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// [`Kernel::run_batch`] restricted to units `lo..hi` — the
    /// chunked-schedule entry point. `run_batch_range(.., 0, units())`
    /// is exactly `run_batch`, and because chunk boundaries never cut
    /// a unit, running a kernel as any partition of unit ranges is
    /// bitwise identical to one full pass.
    #[inline]
    pub fn run_batch_range(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        match self {
            Kernel::Csr(k) => k.run_range(x, y, r, lo, hi),
            Kernel::Sell(k) => k.run_range(x, y, r, lo, hi),
            Kernel::DenseSplit(k) => k.run_range(x, y, r, lo, hi),
        }
    }

    /// Checks the structural invariants execution relies on against the
    /// rank's local footprint (`nx` x-slots, `ny` y-slots). Used by the
    /// worker pool, whose shared-buffer execution must reject hand-built
    /// plans before any thread runs.
    pub fn validate(&self, nx: usize, ny: usize) -> Result<(), String> {
        match self {
            Kernel::Csr(k) => k.validate(nx, ny),
            Kernel::Sell(k) => k.validate(nx, ny),
            Kernel::DenseSplit(k) => k.validate(nx, ny),
        }
    }
}

/// A compute phase lowered to a CSR slice over local indices.
///
/// `rows` holds run-length grouped local `y` slots: segment `s` of
/// `cols`/`vals` (bounded by `row_ptr[s]..row_ptr[s + 1]`) accumulates
/// into `rows[s]`. A row may appear in several segments if the original
/// task list interleaved rows — grouping is order-preserving, so
/// floating-point accumulation order matches the mailbox executor
/// bit for bit.
#[derive(Clone, Debug, Default)]
pub struct CsrKernel {
    /// Segment boundaries into `cols` / `vals` (`rows.len() + 1` entries).
    pub row_ptr: Vec<u32>,
    /// Local `y` slot per segment.
    pub rows: Vec<u32>,
    /// Local `x` slot per multiply-add.
    pub cols: Vec<u32>,
    /// Matrix value per multiply-add.
    pub vals: Vec<f64>,
    /// Take the AVX2 batch paths (resolved from [`KernelIsa`] at
    /// lowering; bitwise-equivalent either way).
    pub simd: bool,
}

impl CsrKernel {
    /// Number of multiply-adds in the kernel.
    pub fn ops(&self) -> usize {
        self.vals.len()
    }

    /// Runs the kernel over flat local vectors.
    #[inline]
    pub fn run(&self, x: &[f64], y: &mut [f64]) {
        self.run_r1(x, y, 0, self.rows.len());
    }

    /// The r = 1 loop over segments `lo..hi`.
    #[inline]
    fn run_r1(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        // Dedicated scalar loop: semantically the r = 1 specialization
        // of `run_fixed` (identical accumulation order, bit for bit),
        // but written with scalar loads/stores — the array-of-one
        // shape costs measurable throughput on the hot path.
        for s in lo..hi {
            let elo = self.row_ptr[s] as usize;
            let ehi = self.row_ptr[s + 1] as usize;
            let mut acc = y[self.rows[s] as usize];
            for e in elo..ehi {
                acc += self.vals[e] * x[self.cols[e] as usize];
            }
            y[self.rows[s] as usize] = acc;
        }
    }

    /// Runs the kernel over row-major multi-vector blocks (see
    /// [`Kernel::run_batch`] for the layout and dispatch).
    #[inline]
    pub fn run_batch(&self, x: &[f64], y: &mut [f64], r: usize) {
        self.run_range(x, y, r, 0, self.rows.len());
    }

    /// [`CsrKernel::run_batch`] over segments `lo..hi` only.
    #[inline]
    pub(crate) fn run_range(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        match r {
            1 => self.run_r1(x, y, lo, hi),
            2 => self.run_fixed::<2>(x, y, lo, hi),
            4 => {
                #[cfg(target_arch = "x86_64")]
                if self.simd {
                    // SAFETY: `simd` is only set from `KernelIsa::simd`,
                    // which requires a positive AVX2 feature probe.
                    return unsafe { self.run_avx2::<1>(x, y, lo, hi) };
                }
                self.run_fixed::<4>(x, y, lo, hi)
            }
            8 => {
                #[cfg(target_arch = "x86_64")]
                if self.simd {
                    // SAFETY: as above — AVX2 was detected at lowering.
                    return unsafe { self.run_avx2::<2>(x, y, lo, hi) };
                }
                self.run_fixed::<8>(x, y, lo, hi)
            }
            _ => self.run_dyn(x, y, r, lo, hi),
        }
    }

    /// Fixed-width inner loop: `R` accumulators live in registers.
    #[inline]
    fn run_fixed<const R: usize>(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        for s in lo..hi {
            let elo = self.row_ptr[s] as usize;
            let ehi = self.row_ptr[s + 1] as usize;
            let row = self.rows[s] as usize * R;
            let mut acc = [0.0f64; R];
            acc.copy_from_slice(&y[row..row + R]);
            for e in elo..ehi {
                let v = self.vals[e];
                let col = self.cols[e] as usize * R;
                for (q, a) in acc.iter_mut().enumerate() {
                    *a += v * x[col + q];
                }
            }
            y[row..row + R].copy_from_slice(&acc);
        }
    }

    /// AVX2 inner loop for `r = 4·NV`: each 4-wide vector register
    /// holds 4 *batch* lanes of one accumulator chain, so the
    /// operation sequence per lane is exactly [`CsrKernel::run_fixed`]'s
    /// (`mul` then `add`, no FMA) — bitwise identical results.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the running CPU supports
    /// AVX2 (`KernelIsa::avx2_available`). Memory safety does not
    /// depend on that: all loads and stores go through bounds-checked
    /// subslices.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2<const NV: usize>(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        use std::arch::x86_64::*;
        let r = NV * 4;
        for s in lo..hi {
            let elo = self.row_ptr[s] as usize;
            let ehi = self.row_ptr[s + 1] as usize;
            let row = self.rows[s] as usize * r;
            let yy = &mut y[row..row + r];
            let mut acc = [_mm256_setzero_pd(); NV];
            for (n, a) in acc.iter_mut().enumerate() {
                *a = _mm256_loadu_pd(yy.as_ptr().add(4 * n));
            }
            for e in elo..ehi {
                let v = _mm256_set1_pd(self.vals[e]);
                let col = self.cols[e] as usize * r;
                let xs = &x[col..col + r];
                for (n, a) in acc.iter_mut().enumerate() {
                    let xv = _mm256_loadu_pd(xs.as_ptr().add(4 * n));
                    *a = _mm256_add_pd(*a, _mm256_mul_pd(v, xv));
                }
            }
            for (n, a) in acc.iter().enumerate() {
                _mm256_storeu_pd(yy.as_mut_ptr().add(4 * n), *a);
            }
        }
    }

    /// Generic strided fallback for widths without a specialization.
    fn run_dyn(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        for s in lo..hi {
            let elo = self.row_ptr[s] as usize;
            let ehi = self.row_ptr[s + 1] as usize;
            let row = self.rows[s] as usize * r;
            for e in elo..ehi {
                let v = self.vals[e];
                let col = self.cols[e] as usize * r;
                for q in 0..r {
                    y[row + q] += v * x[col + q];
                }
            }
        }
    }

    fn validate(&self, nx: usize, ny: usize) -> Result<(), String> {
        if self.row_ptr.len() != self.rows.len() + 1 {
            return Err("malformed kernel row_ptr".into());
        }
        if self.cols.len() != self.vals.len() {
            return Err("malformed kernel arrays".into());
        }
        if !(self.rows.iter().all(|&s| (s as usize) < ny)
            && self.cols.iter().all(|&s| (s as usize) < nx))
        {
            return Err("kernel slot out of range".into());
        }
        Ok(())
    }
}

/// SELL-C-σ storage: segments sorted by descending length inside σ-row
/// windows, packed into chunks of `c` lanes. Within a chunk, entry `e`
/// of lane `l` lives at `chunk_ptr[ch] + e·c + l` — entry-major, so the
/// inner loop advances `c` accumulators with one uniform trip count
/// (the chunk's widest row). Shorter lanes are padded with `val = 0.0`
/// repeating the lane's last column; whole padding lanes carry
/// [`NO_LANE`] and their accumulator is discarded.
#[derive(Clone, Debug)]
pub struct SellKernel {
    /// Chunk height (lanes per chunk), in `2..=16`.
    pub(crate) c: u32,
    /// Sorting window the kernel was built with (metadata only).
    pub(crate) sigma: usize,
    /// Entry offsets per chunk (`nchunks + 1`, multiples of `c` apart).
    pub(crate) chunk_ptr: Vec<u32>,
    /// Local `y` slot per lane (`nchunks × c`; [`NO_LANE`] = padding).
    pub(crate) rows: Vec<u32>,
    /// Local `x` slot per stored entry (incl. padding entries).
    pub(crate) cols: Vec<u32>,
    /// Value per stored entry (0.0 on padding entries).
    pub(crate) vals: Vec<f64>,
    /// Real multiply-adds (excludes padding).
    pub(crate) ops: usize,
    /// Take the AVX2 batch paths (resolved from [`KernelIsa`] at
    /// lowering; bitwise-equivalent either way).
    pub(crate) simd: bool,
}

impl SellKernel {
    /// Lowers a CSR slice. Returns `None` when the slice repeats a row
    /// across segments (interleaved task lists) — reordering same-row
    /// segments would regroup the accumulation, breaking the bitwise
    /// contract — or when `c` is outside `2..=16`.
    pub fn build(csr: &CsrKernel, c: usize, sigma: usize) -> Option<SellKernel> {
        if !(SELL_C_MIN..=SELL_C_MAX).contains(&c) {
            return None;
        }
        let nseg = csr.rows.len();
        let mut seen = csr.rows.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        let order = sell_order(csr, c, sigma);
        let nchunks = nseg.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        chunk_ptr.push(0u32);
        let mut rows = Vec::with_capacity(nchunks * c);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for chunk in order.chunks(c) {
            let seg_len =
                |&s: &u32| (csr.row_ptr[s as usize + 1] - csr.row_ptr[s as usize]) as usize;
            let widest = chunk.iter().map(seg_len).max().unwrap_or(0);
            let base = vals.len();
            cols.resize(base + widest * c, 0u32);
            vals.resize(base + widest * c, 0.0f64);
            for (l, &s) in chunk.iter().enumerate() {
                let lo = csr.row_ptr[s as usize] as usize;
                let len = seg_len(&s);
                rows.push(csr.rows[s as usize]);
                for e in 0..widest {
                    // Padding repeats the lane's last real column with
                    // val 0.0: `acc += 0.0 · x[c]` is a bitwise no-op
                    // for finite x (see the module docs).
                    let src = lo + e.min(len - 1);
                    cols[base + e * c + l] = csr.cols[src];
                    vals[base + e * c + l] = if e < len { csr.vals[src] } else { 0.0 };
                }
            }
            // Whole padding lanes: col 0 is always a valid slot for a
            // nonempty kernel; the accumulator is discarded.
            rows.resize(rows.len() + (c - chunk.len()), NO_LANE);
            chunk_ptr.push(vals.len() as u32);
        }
        Some(SellKernel {
            c: c as u32,
            sigma,
            chunk_ptr,
            rows,
            cols,
            vals,
            ops: csr.ops(),
            simd: false,
        })
    }

    /// Stored entries per real multiply-add (1.0 = padding-free).
    pub fn fill(&self) -> f64 {
        self.vals.len() as f64 / self.ops.max(1) as f64
    }

    /// See [`Kernel::run_batch`].
    ///
    /// Two loop shapes, both order-preserving per row: the chunk runs
    /// **entry-major** (all `C` lanes advance in lockstep through one
    /// uniform trip count — the classic SELL vectorization) whenever
    /// the `C × R` accumulator block fits in registers (≤ 16 f64
    /// words); beyond that it runs **lane-major** (`R` accumulators per
    /// lane, like a CSR row over σ-sorted rows) — entry-major with a
    /// spilled accumulator block measures *slower* than the CSR slice.
    /// Wide batches therefore want small chunks: the default `sell:2`
    /// keeps entry-major up to r = 8, `sell:8` only up to r = 2.
    #[inline]
    pub fn run_batch(&self, x: &[f64], y: &mut [f64], r: usize) {
        self.run_range(x, y, r, 0, self.chunk_ptr.len().saturating_sub(1));
    }

    /// [`SellKernel::run_batch`] over SELL chunks `lo..hi` only.
    #[inline]
    pub(crate) fn run_range(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        #[cfg(target_arch = "x86_64")]
        if self.simd && self.c == 2 && (r == 4 || r == 8) {
            // SAFETY: `simd` is only set from `KernelIsa::simd`, which
            // requires a positive AVX2 feature probe.
            unsafe {
                match r {
                    4 => self.run_c2_avx2::<1>(x, y, lo, hi),
                    _ => self.run_c2_avx2::<2>(x, y, lo, hi),
                }
            }
            return;
        }
        match (self.c, r) {
            (2, 1) => self.run_cr::<2, 1>(x, y, lo, hi),
            (2, 2) => self.run_cr::<2, 2>(x, y, lo, hi),
            (2, 4) => self.run_cr::<2, 4>(x, y, lo, hi),
            (2, 8) => self.run_cr::<2, 8>(x, y, lo, hi),
            (4, 1) => self.run_cr::<4, 1>(x, y, lo, hi),
            (4, 2) => self.run_cr::<4, 2>(x, y, lo, hi),
            (4, 4) => self.run_cr::<4, 4>(x, y, lo, hi),
            (8, 1) => self.run_cr::<8, 1>(x, y, lo, hi),
            (8, 2) => self.run_cr::<8, 2>(x, y, lo, hi),
            (16, 1) => self.run_cr::<16, 1>(x, y, lo, hi),
            (_, 1) => self.run_lanes_fixed::<1>(x, y, lo, hi),
            (_, 2) => self.run_lanes_fixed::<2>(x, y, lo, hi),
            (_, 4) => self.run_lanes_fixed::<4>(x, y, lo, hi),
            (_, 8) => self.run_lanes_fixed::<8>(x, y, lo, hi),
            _ => self.run_dyn(x, y, r, lo, hi),
        }
    }

    /// AVX2 entry-major loop for `c = 2`, `r = 4·NV`: the `2 × R`
    /// accumulator block becomes `2 × NV` vector registers whose lanes
    /// are batch lanes, performing [`SellKernel::run_cr`]'s exact
    /// operation sequence per accumulator (`mul` then `add`, no FMA) —
    /// bitwise identical results, [`NO_LANE`] discard behavior
    /// included.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the running CPU supports
    /// AVX2 (`KernelIsa::avx2_available`). All loads and stores go
    /// through bounds-checked subslices.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_c2_avx2<const NV: usize>(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        use std::arch::x86_64::*;
        let r = NV * 4;
        for ch in lo..hi {
            let base = self.chunk_ptr[ch] as usize;
            let end = self.chunk_ptr[ch + 1] as usize;
            let lanes = &self.rows[ch * 2..(ch + 1) * 2];
            let mut acc = [[_mm256_setzero_pd(); NV]; 2];
            for (l, &row) in lanes.iter().enumerate() {
                if row != NO_LANE {
                    let yy = &y[row as usize * r..row as usize * r + r];
                    for (n, a) in acc[l].iter_mut().enumerate() {
                        *a = _mm256_loadu_pd(yy.as_ptr().add(4 * n));
                    }
                }
            }
            let vals = &self.vals[base..end];
            let cols = &self.cols[base..end];
            for (ev, ec) in vals.chunks_exact(2).zip(cols.chunks_exact(2)) {
                for l in 0..2 {
                    let v = _mm256_set1_pd(ev[l]);
                    let at = ec[l] as usize * r;
                    let xs = &x[at..at + r];
                    for (n, a) in acc[l].iter_mut().enumerate() {
                        let xv = _mm256_loadu_pd(xs.as_ptr().add(4 * n));
                        *a = _mm256_add_pd(*a, _mm256_mul_pd(v, xv));
                    }
                }
            }
            for (l, &row) in lanes.iter().enumerate() {
                if row != NO_LANE {
                    let yy = &mut y[row as usize * r..row as usize * r + r];
                    for (n, a) in acc[l].iter().enumerate() {
                        _mm256_storeu_pd(yy.as_mut_ptr().add(4 * n), *a);
                    }
                }
            }
        }
    }

    /// Fully unrolled shape: `C` chunk lanes × `R` right-hand sides of
    /// accumulators in registers, uniform inner trip count.
    /// `chunks_exact(C)` gives the optimizer a compile-time row width,
    /// eliding the per-entry bounds checks.
    #[inline]
    fn run_cr<const C: usize, const R: usize>(
        &self,
        x: &[f64],
        y: &mut [f64],
        lo: usize,
        hi: usize,
    ) {
        for ch in lo..hi {
            let base = self.chunk_ptr[ch] as usize;
            let end = self.chunk_ptr[ch + 1] as usize;
            let lanes = &self.rows[ch * C..(ch + 1) * C];
            let mut acc = [[0.0f64; R]; C];
            for (l, &row) in lanes.iter().enumerate() {
                if row != NO_LANE {
                    let at = row as usize * R;
                    acc[l].copy_from_slice(&y[at..at + R]);
                }
            }
            let vals = &self.vals[base..end];
            let cols = &self.cols[base..end];
            for (ev, ec) in vals.chunks_exact(C).zip(cols.chunks_exact(C)) {
                for l in 0..C {
                    let v = ev[l];
                    let at = ec[l] as usize * R;
                    let xs = &x[at..at + R];
                    for q in 0..R {
                        acc[l][q] += v * xs[q];
                    }
                }
            }
            for (l, &row) in lanes.iter().enumerate() {
                if row != NO_LANE {
                    let at = row as usize * R;
                    y[at..at + R].copy_from_slice(&acc[l]);
                }
            }
        }
    }

    /// Lane-major walk: each lane runs like a CSR row with `R`
    /// accumulators in registers (same per-row entry order, so the
    /// bitwise contract holds), but over σ-sorted rows with the chunk's
    /// uniform trip count — the batched (`r ≥ 2`) SELL shape.
    #[inline]
    fn run_lanes_fixed<const R: usize>(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        let c = self.c as usize;
        for ch in lo..hi {
            let base = self.chunk_ptr[ch] as usize;
            let w = (self.chunk_ptr[ch + 1] as usize - base) / c;
            for (l, &row) in self.rows[ch * c..(ch + 1) * c].iter().enumerate() {
                if row == NO_LANE {
                    continue;
                }
                let at = row as usize * R;
                let mut acc = [0.0f64; R];
                acc.copy_from_slice(&y[at..at + R]);
                for e in 0..w {
                    let v = self.vals[base + e * c + l];
                    let col = self.cols[base + e * c + l] as usize * R;
                    for q in 0..R {
                        acc[q] += v * x[col + q];
                    }
                }
                y[at..at + R].copy_from_slice(&acc);
            }
        }
    }

    /// Strided fallback for widths without a specialization.
    fn run_dyn(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        let c = self.c as usize;
        for ch in lo..hi {
            let base = self.chunk_ptr[ch] as usize;
            let w = (self.chunk_ptr[ch + 1] as usize - base) / c;
            for (l, &row) in self.rows[ch * c..(ch + 1) * c].iter().enumerate() {
                if row == NO_LANE {
                    continue;
                }
                let at = row as usize * r;
                for e in 0..w {
                    let v = self.vals[base + e * c + l];
                    let col = self.cols[base + e * c + l] as usize * r;
                    for q in 0..r {
                        y[at + q] += v * x[col + q];
                    }
                }
            }
        }
    }

    fn validate(&self, nx: usize, ny: usize) -> Result<(), String> {
        let c = self.c as usize;
        if !(SELL_C_MIN..=SELL_C_MAX).contains(&c) {
            return Err("malformed kernel chunk height".into());
        }
        let nchunks = self.chunk_ptr.len().saturating_sub(1);
        if self.chunk_ptr.first() != Some(&0)
            || self.chunk_ptr.last().map(|&e| e as usize) != Some(self.vals.len())
            || self.rows.len() != nchunks * c
            || self.cols.len() != self.vals.len()
        {
            return Err("malformed kernel arrays".into());
        }
        for pair in self.chunk_ptr.windows(2) {
            if pair[1] < pair[0] || (pair[1] - pair[0]) as usize % c != 0 {
                return Err("malformed kernel chunk_ptr".into());
            }
        }
        if !(self.rows.iter().all(|&s| s == NO_LANE || (s as usize) < ny)
            && self.cols.iter().all(|&s| (s as usize) < nx))
        {
            return Err("kernel slot out of range".into());
        }
        Ok(())
    }
}

/// Dense-span storage for split-dense-row kernels: each segment's entry
/// list is cut into maximal runs of consecutive local columns. Runs of
/// at least [`DENSE_MIN_RUN`] entries execute as dense dot products
/// (`col0 + i` — no index loads); shorter stretches stay indexed. The
/// operation sequence is exactly the CSR slice's, so results are
/// bitwise identical.
#[derive(Clone, Debug, Default)]
pub struct DenseSplitKernel {
    /// Span range per segment (`rows.len() + 1` entries).
    pub(crate) seg_ptr: Vec<u32>,
    /// Local `y` slot per segment.
    pub(crate) rows: Vec<u32>,
    /// Per span: start offset into `vals`/`cols`.
    pub(crate) span_start: Vec<u32>,
    /// Per span: entry count.
    pub(crate) span_len: Vec<u32>,
    /// Per span: first local column of a dense run, or [`NO_LANE`] for
    /// an indexed span.
    pub(crate) span_col0: Vec<u32>,
    /// Local `x` slot per entry (used by indexed spans; kept for all
    /// entries so validation and debugging see the full pattern).
    pub(crate) cols: Vec<u32>,
    /// Value per entry, in original task order.
    pub(crate) vals: Vec<f64>,
    /// Take the AVX2 batch paths (resolved from [`KernelIsa`] at
    /// lowering; bitwise-equivalent either way).
    pub(crate) simd: bool,
}

impl DenseSplitKernel {
    /// Lowers a CSR slice (always succeeds; order is preserved).
    pub fn build(csr: &CsrKernel) -> DenseSplitKernel {
        let mut k = DenseSplitKernel {
            seg_ptr: vec![0],
            rows: csr.rows.clone(),
            cols: csr.cols.clone(),
            vals: csr.vals.clone(),
            ..DenseSplitKernel::default()
        };
        for s in 0..csr.rows.len() {
            let (lo, hi) = (csr.row_ptr[s] as usize, csr.row_ptr[s + 1] as usize);
            let mut run_start = lo;
            let mut pending_start = lo; // start of the current indexed stretch
            let push = |k: &mut DenseSplitKernel, pend: usize, dlo: usize, dhi: usize| {
                // Emit the indexed stretch before the dense run, then
                // the dense run itself.
                if dlo > pend {
                    k.span_start.push(pend as u32);
                    k.span_len.push((dlo - pend) as u32);
                    k.span_col0.push(NO_LANE);
                }
                if dhi > dlo {
                    k.span_start.push(dlo as u32);
                    k.span_len.push((dhi - dlo) as u32);
                    k.span_col0.push(csr.cols[dlo]);
                }
            };
            for e in lo + 1..=hi {
                let run_continues = e < hi && csr.cols[e] == csr.cols[e - 1] + 1;
                if !run_continues {
                    if e - run_start >= DENSE_MIN_RUN {
                        push(&mut k, pending_start, run_start, e);
                        pending_start = e;
                    }
                    run_start = e;
                }
            }
            if hi > pending_start {
                k.span_start.push(pending_start as u32);
                k.span_len.push((hi - pending_start) as u32);
                k.span_col0.push(NO_LANE);
            }
            k.seg_ptr.push(k.span_start.len() as u32);
        }
        k
    }

    /// Fraction of entries executed as dense spans.
    pub fn dense_frac(&self) -> f64 {
        let dense: usize = self
            .span_len
            .iter()
            .zip(&self.span_col0)
            .filter(|&(_, &c0)| c0 != NO_LANE)
            .map(|(&len, _)| len as usize)
            .sum();
        dense as f64 / self.vals.len().max(1) as f64
    }

    /// See [`Kernel::run_batch`].
    #[inline]
    pub fn run_batch(&self, x: &[f64], y: &mut [f64], r: usize) {
        self.run_range(x, y, r, 0, self.rows.len());
    }

    /// [`DenseSplitKernel::run_batch`] over segments `lo..hi` only.
    #[inline]
    pub(crate) fn run_range(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        match r {
            1 => self.run_fixed::<1>(x, y, lo, hi),
            2 => self.run_fixed::<2>(x, y, lo, hi),
            4 => {
                #[cfg(target_arch = "x86_64")]
                if self.simd {
                    // SAFETY: `simd` is only set from `KernelIsa::simd`,
                    // which requires a positive AVX2 feature probe.
                    return unsafe { self.run_avx2::<1>(x, y, lo, hi) };
                }
                self.run_fixed::<4>(x, y, lo, hi)
            }
            8 => {
                #[cfg(target_arch = "x86_64")]
                if self.simd {
                    // SAFETY: as above — AVX2 was detected at lowering.
                    return unsafe { self.run_avx2::<2>(x, y, lo, hi) };
                }
                self.run_fixed::<8>(x, y, lo, hi)
            }
            _ => self.run_dyn(x, y, r, lo, hi),
        }
    }

    /// AVX2 span loop for `r = 4·NV`: one set of `NV` vector
    /// accumulators per segment, batch lanes in the vector lanes, the
    /// exact [`DenseSplitKernel::run_fixed`] operation sequence (`mul`
    /// then `add`, no FMA) for both dense and indexed spans — bitwise
    /// identical results.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the running CPU supports
    /// AVX2 (`KernelIsa::avx2_available`). All loads and stores go
    /// through bounds-checked subslices.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2<const NV: usize>(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        use std::arch::x86_64::*;
        let r = NV * 4;
        for s in lo..hi {
            let row = self.rows[s] as usize * r;
            let yy = &mut y[row..row + r];
            let mut acc = [_mm256_setzero_pd(); NV];
            for (n, a) in acc.iter_mut().enumerate() {
                *a = _mm256_loadu_pd(yy.as_ptr().add(4 * n));
            }
            for sp in self.seg_ptr[s] as usize..self.seg_ptr[s + 1] as usize {
                let start = self.span_start[sp] as usize;
                let len = self.span_len[sp] as usize;
                let c0 = self.span_col0[sp];
                for i in 0..len {
                    let v = _mm256_set1_pd(self.vals[start + i]);
                    let col = if c0 != NO_LANE {
                        (c0 as usize + i) * r
                    } else {
                        self.cols[start + i] as usize * r
                    };
                    let xs = &x[col..col + r];
                    for (n, a) in acc.iter_mut().enumerate() {
                        let xv = _mm256_loadu_pd(xs.as_ptr().add(4 * n));
                        *a = _mm256_add_pd(*a, _mm256_mul_pd(v, xv));
                    }
                }
            }
            for (n, a) in acc.iter().enumerate() {
                _mm256_storeu_pd(yy.as_mut_ptr().add(4 * n), *a);
            }
        }
    }

    #[inline]
    fn run_fixed<const R: usize>(&self, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
        for s in lo..hi {
            let row = self.rows[s] as usize * R;
            let mut acc = [0.0f64; R];
            acc.copy_from_slice(&y[row..row + R]);
            for sp in self.seg_ptr[s] as usize..self.seg_ptr[s + 1] as usize {
                let start = self.span_start[sp] as usize;
                let len = self.span_len[sp] as usize;
                let c0 = self.span_col0[sp];
                if c0 != NO_LANE {
                    let c0 = c0 as usize;
                    for i in 0..len {
                        let v = self.vals[start + i];
                        let col = (c0 + i) * R;
                        for q in 0..R {
                            acc[q] += v * x[col + q];
                        }
                    }
                } else {
                    for i in 0..len {
                        let v = self.vals[start + i];
                        let col = self.cols[start + i] as usize * R;
                        for q in 0..R {
                            acc[q] += v * x[col + q];
                        }
                    }
                }
            }
            y[row..row + R].copy_from_slice(&acc);
        }
    }

    fn run_dyn(&self, x: &[f64], y: &mut [f64], r: usize, lo: usize, hi: usize) {
        for s in lo..hi {
            let row = self.rows[s] as usize * r;
            for sp in self.seg_ptr[s] as usize..self.seg_ptr[s + 1] as usize {
                let start = self.span_start[sp] as usize;
                let len = self.span_len[sp] as usize;
                let c0 = self.span_col0[sp];
                for i in 0..len {
                    let v = self.vals[start + i];
                    let col = if c0 != NO_LANE {
                        (c0 as usize + i) * r
                    } else {
                        self.cols[start + i] as usize * r
                    };
                    for q in 0..r {
                        y[row + q] += v * x[col + q];
                    }
                }
            }
        }
    }

    fn validate(&self, nx: usize, ny: usize) -> Result<(), String> {
        if self.seg_ptr.len() != self.rows.len() + 1
            || self.cols.len() != self.vals.len()
            || self.seg_ptr.first() != Some(&0)
            || self.seg_ptr.last().map(|&e| e as usize) != Some(self.span_start.len())
            || self.span_start.len() != self.span_len.len()
            || self.span_start.len() != self.span_col0.len()
        {
            return Err("malformed kernel arrays".into());
        }
        if self.seg_ptr.windows(2).any(|w| w[1] < w[0]) {
            return Err("malformed kernel seg_ptr".into());
        }
        for sp in 0..self.span_start.len() {
            let start = self.span_start[sp] as usize;
            let len = self.span_len[sp] as usize;
            if start + len > self.vals.len() {
                return Err("kernel span out of range".into());
            }
            let c0 = self.span_col0[sp];
            if c0 != NO_LANE && c0 as usize + len > nx {
                return Err("kernel slot out of range".into());
            }
        }
        if !(self.rows.iter().all(|&s| (s as usize) < ny)
            && self.cols.iter().all(|&s| (s as usize) < nx))
        {
            return Err("kernel slot out of range".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a CSR kernel from (row, col, val) triples in task order.
    fn csr_of(tasks: &[(u32, u32, f64)]) -> CsrKernel {
        let mut k = CsrKernel::default();
        k.row_ptr.push(0);
        let mut current: Option<u32> = None;
        for &(row, col, val) in tasks {
            if current != Some(row) {
                if current.is_some() {
                    k.row_ptr.push(k.cols.len() as u32);
                }
                k.rows.push(row);
                current = Some(row);
            }
            k.cols.push(col);
            k.vals.push(val);
        }
        if current.is_some() {
            k.row_ptr.push(k.cols.len() as u32);
        }
        k
    }

    /// An irregular kernel: row lengths 1..=7 over 14 rows, scattered
    /// columns.
    fn irregular(nx: u32) -> (CsrKernel, usize, usize) {
        let mut tasks = Vec::new();
        for row in 0..14u32 {
            let len = (row % 7 + 1) as usize;
            for e in 0..len {
                let col = (row.wrapping_mul(13) + e as u32 * 5 + 1) % nx;
                tasks.push((row, col, (row as f64 + 1.0) * 0.25 - e as f64 * 0.5));
            }
        }
        let k = csr_of(&tasks);
        (k, nx as usize, 14)
    }

    fn x_for(nx: usize, r: usize) -> Vec<f64> {
        (0..nx * r).map(|i| ((i * 29) % 23) as f64 / 7.0 - 1.5).collect()
    }

    #[test]
    fn format_parse_roundtrip() {
        for (s, want) in [
            ("csr", KernelFormat::CsrSlice),
            ("sell", KernelFormat::DEFAULT_SELL),
            ("sell:4", KernelFormat::SellCSigma { c: 4, sigma: 256 }),
            ("sell:4:64", KernelFormat::SellCSigma { c: 4, sigma: 64 }),
            ("dense-split", KernelFormat::DenseRowSplit),
            ("dense", KernelFormat::DenseRowSplit),
            ("auto", KernelFormat::Auto),
        ] {
            assert_eq!(s.parse::<KernelFormat>().unwrap(), want, "{s}");
        }
        assert!("warp".parse::<KernelFormat>().is_err());
        assert!("sell:1".parse::<KernelFormat>().is_err(), "c below the dispatch floor");
        assert!("sell:99".parse::<KernelFormat>().is_err());
        assert!("sell:x".parse::<KernelFormat>().is_err());
        // Display round-trips through FromStr.
        for f in KernelFormat::all() {
            assert_eq!(f.to_string().parse::<KernelFormat>().unwrap(), f);
        }
    }

    #[test]
    fn isa_parse_roundtrip() {
        for (s, want) in
            [("auto", KernelIsa::Auto), ("scalar", KernelIsa::Scalar), ("avx2", KernelIsa::Avx2)]
        {
            assert_eq!(s.parse::<KernelIsa>().unwrap(), want, "{s}");
            assert_eq!(want.to_string(), s);
        }
        assert!("sse2".parse::<KernelIsa>().is_err());
        assert!(!KernelIsa::Scalar.simd(), "scalar always pins the reference loops");
    }

    #[test]
    fn simd_paths_match_scalar_bitwise() {
        let (csr, nx, ny) = irregular(11);
        for r in [1usize, 4, 8] {
            let x = x_for(nx, r);
            for format in KernelFormat::all() {
                let scalar = Kernel::from_csr_isa(csr.clone(), format, KernelIsa::Scalar);
                assert!(!scalar.simd());
                let mut want = vec![0.1; ny * r];
                scalar.run_batch(&x, &mut want, r);
                for isa in [KernelIsa::Auto, KernelIsa::Avx2] {
                    let k = Kernel::from_csr_isa(csr.clone(), format, isa);
                    assert_eq!(k.simd(), KernelIsa::avx2_available(), "{format} {isa}");
                    let mut got = vec![0.1; ny * r];
                    k.run_batch(&x, &mut got, r);
                    assert_eq!(got, want, "{format} {isa} r={r}");
                }
            }
        }
    }

    #[test]
    fn unit_ranges_compose_to_the_full_kernel() {
        let (csr, nx, ny) = irregular(11);
        for format in KernelFormat::all() {
            let k = Kernel::from_csr(csr.clone(), format);
            assert!(k.splittable(), "{format}: unique rows are splittable");
            let units = k.units();
            assert!(units > 0);
            let total: usize = (0..units).map(|u| k.unit_ops(u)).sum();
            assert!(total >= k.ops(), "{format}: stored work covers real work");
            for r in [1usize, 4, 8] {
                let x = x_for(nx, r);
                let mut want = vec![0.2; ny * r];
                k.run_batch(&x, &mut want, r);
                // Any partition of the unit range, run in any order,
                // must be bitwise identical to one full pass — this is
                // the property the pool's chunked schedule rests on.
                let (cut1, cut2) = (units / 3, 2 * units / 3);
                let mut got = vec![0.2; ny * r];
                k.run_batch_range(&x, &mut got, r, cut2, units);
                k.run_batch_range(&x, &mut got, r, 0, cut1);
                k.run_batch_range(&x, &mut got, r, cut1, cut2);
                assert_eq!(got, want, "{format} r={r}");
            }
        }
    }

    #[test]
    fn interleaved_rows_are_not_splittable() {
        // Rows 0, 1, 0: two units share the row-0 accumulator, so the
        // kernel must run as a single chunk.
        let csr = csr_of(&[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 4.0)]);
        let k = Kernel::from_csr(csr, KernelFormat::CsrSlice);
        assert!(!k.splittable());
    }

    #[test]
    fn every_format_matches_csr_bitwise_on_irregular_kernels() {
        let (csr, nx, ny) = irregular(11);
        for r in [1usize, 2, 3, 4, 5, 8] {
            let x = x_for(nx, r);
            let mut want = vec![0.1; ny * r];
            csr.run_batch(&x, &mut want, r);
            for format in KernelFormat::all() {
                let k = Kernel::from_csr(csr.clone(), format);
                k.validate(nx, ny).unwrap();
                let mut got = vec![0.1; ny * r];
                k.run_batch(&x, &mut got, r);
                assert_eq!(got, want, "{format} r={r}");
                assert_eq!(k.ops(), csr.ops(), "{format}: ops must be format-invariant");
            }
        }
    }

    #[test]
    fn sell_chunk_heights_all_agree() {
        let (csr, nx, ny) = irregular(9);
        let x = x_for(nx, 1);
        let mut want = vec![0.0; ny];
        csr.run(&x, &mut want);
        for c in [2usize, 3, 4, 7, 8, 16] {
            for sigma in [2usize, 8, 1024] {
                let sell = SellKernel::build(&csr, c, sigma).expect("unique rows");
                sell.validate(nx, ny).unwrap();
                let mut got = vec![0.0; ny];
                sell.run_batch(&x, &mut got, 1);
                assert_eq!(got, want, "c={c} sigma={sigma}");
                assert!(sell.fill() >= 1.0);
            }
        }
    }

    #[test]
    fn sell_rejects_interleaved_rows() {
        // Rows 0, 1, 0 — segment order carries accumulation grouping.
        let csr = csr_of(&[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 4.0)]);
        assert!(SellKernel::build(&csr, 4, 64).is_none());
        // from_csr falls back to the CSR slice instead of failing.
        let k = Kernel::from_csr(csr, KernelFormat::DEFAULT_SELL);
        assert_eq!(k.format(), KernelFormat::CsrSlice);
    }

    #[test]
    fn dense_split_finds_consecutive_runs() {
        // Row 0: 12 consecutive cols (dense), row 1: scattered.
        let mut tasks = Vec::new();
        for e in 0..12u32 {
            tasks.push((0, 3 + e, e as f64 + 0.5));
        }
        for e in 0..3u32 {
            tasks.push((1, e * 7, 1.0 - e as f64));
        }
        let csr = csr_of(&tasks);
        let k = DenseSplitKernel::build(&csr);
        k.validate(24, 2).unwrap();
        assert!(k.dense_frac() > 0.7, "12 of 15 entries are in the dense run");
        let x = x_for(24, 1);
        let mut want = vec![0.0; 2];
        csr.run(&x, &mut want);
        let mut got = vec![0.0; 2];
        k.run_batch(&x, &mut got, 1);
        assert_eq!(got, want);
    }

    fn pick(csr: &CsrKernel) -> KernelFormat {
        auto_pick(&KernelStats::of(csr))
    }

    #[test]
    fn auto_picks_by_profile() {
        // Dense-run dominated → DenseRowSplit.
        let mut tasks = Vec::new();
        for row in 0..40u32 {
            for e in 0..16u32 {
                tasks.push((row, e, 1.0 + (row * 16 + e) as f64 * 0.01));
            }
        }
        let dense = csr_of(&tasks);
        assert_eq!(pick(&dense), KernelFormat::DenseRowSplit);

        // ONE huge split dense row — the flagship semi-2D shape: the
        // dense-run check must fire regardless of the row count (the
        // row floor gates only the SELL branch).
        let tasks: Vec<(u32, u32, f64)> =
            (0..512u32).map(|e| (0, e, 1.0 + e as f64 * 0.125)).collect();
        let one_row = csr_of(&tasks);
        assert_eq!(pick(&one_row), KernelFormat::DenseRowSplit);

        // Many short scattered rows, low padding → SELL.
        let mut tasks = Vec::new();
        for row in 0..64u32 {
            for e in 0..3u32 {
                tasks.push((row, (row * 17 + e * 29) % 64, 0.5));
            }
        }
        let short = csr_of(&tasks);
        assert_eq!(pick(&short), KernelFormat::DEFAULT_SELL);

        // Tiny scattered kernel → CSR.
        let tiny = csr_of(&[(0, 0, 1.0)]);
        assert_eq!(pick(&tiny), KernelFormat::CsrSlice);
    }

    #[test]
    fn fixed_format_compiles_skip_stats_gathering() {
        // `kernel_stats` is the Auto policy's evidence; fixed-format
        // compiles must not pay the per-kernel σ-sort for it.
        use s2d_spmv::{MultTask, PlanPhase, SpmvPlan};
        let plan = SpmvPlan {
            k: 1,
            nrows: 2,
            ncols: 2,
            x_part: vec![0, 0],
            y_part: vec![0, 0],
            phases: vec![PlanPhase::Compute(vec![vec![
                MultTask { row: 0, col: 0, val: 2.0 },
                MultTask { row: 1, col: 1, val: 3.0 },
            ]])],
        };
        let csr = crate::CompiledPlan::compile(&plan);
        assert!(csr.kernel_stats().is_empty());
        let auto = crate::CompiledPlan::compile_with(&plan, KernelFormat::Auto);
        assert_eq!(auto.kernel_stats().len(), 1);
        assert_eq!(auto.kernel_stats()[0].ops, 2);
    }

    #[test]
    fn empty_kernel_is_fine_in_every_format() {
        let csr = CsrKernel { row_ptr: vec![0], ..CsrKernel::default() };
        for format in KernelFormat::all() {
            let k = Kernel::from_csr(csr.clone(), format);
            k.validate(0, 0).unwrap();
            let mut y: Vec<f64> = vec![];
            k.run_batch(&[], &mut y, 4);
            assert_eq!(k.ops(), 0);
            assert_eq!(k.segments(), 0);
        }
    }

    #[test]
    fn stats_describe_the_kernel() {
        let (csr, ..) = irregular(11);
        let st = KernelStats::of(&csr);
        assert_eq!(st.rows, 14);
        assert_eq!(st.ops, csr.ops());
        assert_eq!(st.max_row, 7);
        assert!(st.sell_fill >= 1.0);
        assert!((0.0..=1.0).contains(&st.dense_frac));
    }
}
