//! Bipartite matching and the Dulmage–Mendelsohn decomposition.
//!
//! Section IV-A of the paper splits every off-diagonal block `A_ℓk` by its
//! DM decomposition: the *horizontal* block `H` goes to the column owner,
//! everything else to the row owner, which is optimal because
//! `m̂(H) + m̂(S) + n̂(V)` equals the minimum number of rows and columns
//! covering all nonzeros (König). This crate provides:
//!
//! * [`matching`] — Hopcroft–Karp maximum bipartite matching (O(E√V)) and a
//!   simple augmenting-path matcher used as a test oracle;
//! * [`decompose`] — the coarse DM decomposition labelling every row and
//!   column as part of the horizontal (`H`), square (`S`) or vertical (`V`)
//!   block.

pub mod decompose;
pub mod matching;

pub use decompose::{dm_decompose, DmDecomposition, DmLabel};
pub use matching::{hopcroft_karp, kuhn_matching, Matching, UNMATCHED};
