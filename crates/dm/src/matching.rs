//! Maximum bipartite matching.
//!
//! The bipartite graph is given as an edge list over `nrows` left vertices
//! (rows) and `ncols` right vertices (columns) — exactly the view of a
//! sparse block that the s2D splitter works with.

/// Sentinel marking an unmatched vertex.
pub const UNMATCHED: u32 = u32::MAX;

/// A matching between rows and columns.
#[derive(Clone, Debug)]
pub struct Matching {
    /// `row_mate[i]` is the column matched to row `i`, or [`UNMATCHED`].
    pub row_mate: Vec<u32>,
    /// `col_mate[j]` is the row matched to column `j`, or [`UNMATCHED`].
    pub col_mate: Vec<u32>,
    /// Number of matched pairs.
    pub size: usize,
}

impl Matching {
    /// Verifies internal consistency against the edge set (test helper).
    pub fn is_valid(&self, edges: &[(u32, u32)]) -> bool {
        let edge_set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        let mut count = 0usize;
        for (i, &j) in self.row_mate.iter().enumerate() {
            if j != UNMATCHED {
                if self.col_mate[j as usize] != i as u32 || !edge_set.contains(&(i as u32, j)) {
                    return false;
                }
                count += 1;
            }
        }
        for (j, &i) in self.col_mate.iter().enumerate() {
            if i != UNMATCHED && self.row_mate[i as usize] != j as u32 {
                return false;
            }
        }
        count == self.size
    }
}

/// Row-major adjacency built once and shared by the matchers.
pub(crate) struct Adjacency {
    pub rowptr: Vec<usize>,
    pub cols: Vec<u32>,
}

impl Adjacency {
    pub(crate) fn new(nrows: usize, edges: &[(u32, u32)]) -> Self {
        let mut rowptr = vec![0usize; nrows + 1];
        for &(r, _) in edges {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut cols = vec![0u32; edges.len()];
        let mut next = rowptr.clone();
        for &(r, c) in edges {
            cols[next[r as usize]] = c;
            next[r as usize] += 1;
        }
        Adjacency { rowptr, cols }
    }

    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[u32] {
        &self.cols[self.rowptr[i]..self.rowptr[i + 1]]
    }
}

/// Hopcroft–Karp maximum matching in `O(E √V)`.
///
/// # Panics
/// Panics if an edge index is out of range.
pub fn hopcroft_karp(nrows: usize, ncols: usize, edges: &[(u32, u32)]) -> Matching {
    for &(r, c) in edges {
        assert!((r as usize) < nrows && (c as usize) < ncols, "edge ({r},{c}) out of range");
    }
    let adj = Adjacency::new(nrows, edges);
    let mut row_mate = vec![UNMATCHED; nrows];
    let mut col_mate = vec![UNMATCHED; ncols];
    let mut size = 0usize;

    // Greedy warm start removes most of the augmentation work.
    for i in 0..nrows {
        for &j in adj.row(i) {
            if col_mate[j as usize] == UNMATCHED {
                row_mate[i] = j;
                col_mate[j as usize] = i as u32;
                size += 1;
                break;
            }
        }
    }

    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; nrows];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    loop {
        // BFS: layer free rows at distance 0, alternate free/matching edges.
        queue.clear();
        for i in 0..nrows {
            if row_mate[i] == UNMATCHED {
                dist[i] = 0;
                queue.push_back(i);
            } else {
                dist[i] = INF;
            }
        }
        let mut found_free_col = false;
        while let Some(i) = queue.pop_front() {
            for &j in adj.row(i) {
                let mate = col_mate[j as usize];
                if mate == UNMATCHED {
                    found_free_col = true;
                } else if dist[mate as usize] == INF {
                    dist[mate as usize] = dist[i] + 1;
                    queue.push_back(mate as usize);
                }
            }
        }
        if !found_free_col {
            break;
        }
        // DFS phase: find augmenting paths following only the BFS layering.
        // Iterative with an explicit frame stack — augmenting paths can be
        // O(V) long (e.g. banded blocks), which would overflow the call
        // stack on large instances.
        let mut frames: Vec<(u32, usize)> = Vec::new(); // (row, edge cursor)
        for start in 0..nrows {
            if row_mate[start] != UNMATCHED {
                continue;
            }
            frames.clear();
            frames.push((start as u32, adj.rowptr[start]));
            let augmented = loop {
                let &(i, cursor) = frames.last().expect("frame stack nonempty");
                let i = i as usize;
                if cursor == adj.rowptr[i + 1] {
                    dist[i] = INF; // dead end; prune for this phase
                    frames.pop();
                    if frames.is_empty() {
                        break false;
                    }
                    continue;
                }
                frames.last_mut().expect("frame stack nonempty").1 += 1;
                let j = adj.cols[cursor];
                let mate = col_mate[j as usize];
                if mate == UNMATCHED {
                    // Augment: pair the free column with the top row, then
                    // unwind — each deeper frame's row re-pairs with the
                    // column it was previously matched through.
                    let mut col = j;
                    for &(ri, _) in frames.iter().rev() {
                        let prev = row_mate[ri as usize];
                        row_mate[ri as usize] = col;
                        col_mate[col as usize] = ri;
                        col = prev;
                    }
                    break true;
                } else if dist[mate as usize] == dist[i] + 1 {
                    frames.push((mate, adj.rowptr[mate as usize]));
                }
            };
            if augmented {
                size += 1;
            }
        }
    }
    Matching { row_mate, col_mate, size }
}

/// Kuhn's simple augmenting-path matching, `O(V·E)`. Kept as an
/// independently-implemented oracle for property tests.
pub fn kuhn_matching(nrows: usize, ncols: usize, edges: &[(u32, u32)]) -> Matching {
    for &(r, c) in edges {
        assert!((r as usize) < nrows && (c as usize) < ncols, "edge ({r},{c}) out of range");
    }
    let adj = Adjacency::new(nrows, edges);
    let mut row_mate = vec![UNMATCHED; nrows];
    let mut col_mate = vec![UNMATCHED; ncols];
    let mut size = 0usize;
    let mut visited = vec![false; ncols];

    fn dfs(
        i: usize,
        adj: &Adjacency,
        visited: &mut [bool],
        row_mate: &mut [u32],
        col_mate: &mut [u32],
    ) -> bool {
        for k in adj.rowptr[i]..adj.rowptr[i + 1] {
            let j = adj.cols[k] as usize;
            if !visited[j] {
                visited[j] = true;
                if col_mate[j] == UNMATCHED
                    || dfs(col_mate[j] as usize, adj, visited, row_mate, col_mate)
                {
                    row_mate[i] = j as u32;
                    col_mate[j] = i as u32;
                    return true;
                }
            }
        }
        false
    }

    for i in 0..nrows {
        visited.iter_mut().for_each(|v| *v = false);
        if dfs(i, &adj, &mut visited, &mut row_mate, &mut col_mate) {
            size += 1;
        }
    }
    Matching { row_mate, col_mate, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i)).collect();
        let m = hopcroft_karp(5, 5, &edges);
        assert_eq!(m.size, 5);
        assert!(m.is_valid(&edges));
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy picks (0,0) first; maximum matching requires augmenting:
        // row0-{0,1}, row1-{0}.
        let edges = vec![(0, 0), (0, 1), (1, 0)];
        let m = hopcroft_karp(2, 2, &edges);
        assert_eq!(m.size, 2);
        assert!(m.is_valid(&edges));
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(3, 4, &[]);
        assert_eq!(m.size, 0);
        assert!(m.row_mate.iter().all(|&j| j == UNMATCHED));
    }

    #[test]
    fn star_graph_matches_once() {
        // One row connected to every column.
        let edges: Vec<(u32, u32)> = (0..6).map(|j| (0, j)).collect();
        let m = hopcroft_karp(1, 6, &edges);
        assert_eq!(m.size, 1);
    }

    #[test]
    fn kuhn_agrees_on_fixed_cases() {
        let cases: Vec<(usize, usize, Vec<(u32, u32)>)> = vec![
            (3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 1)]),
            (4, 2, vec![(0, 0), (1, 0), (2, 1), (3, 1), (0, 1)]),
            (2, 5, vec![(0, 4), (1, 4)]),
        ];
        for (m, n, edges) in cases {
            let hk = hopcroft_karp(m, n, &edges);
            let kn = kuhn_matching(m, n, &edges);
            assert_eq!(hk.size, kn.size, "sizes differ on {edges:?}");
            assert!(hk.is_valid(&edges));
            assert!(kn.is_valid(&edges));
        }
    }

    #[test]
    fn hard_instance_chain() {
        // A chain that forces O(V) augmentations for naive greedy.
        let n = 50u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            if i + 1 < n {
                edges.push((i, i + 1));
            }
        }
        let m = hopcroft_karp(n as usize, n as usize, &edges);
        assert_eq!(m.size, n as usize);
    }
}
