//! Coarse Dulmage–Mendelsohn decomposition.
//!
//! Splits the rows and columns of a bipartite graph (sparse block) into the
//! horizontal (`H`), square (`S`) and vertical (`V`) groups of the block
//! triangular form
//!
//! ```text
//!       [ H  X  Z ]
//! B̂  =  [ 0  S  Y ]
//!       [ 0  0  V ]
//! ```
//!
//! built on a maximum matching: `H` is reached by alternating paths from
//! unmatched columns, `V` from unmatched rows, `S` is the perfectly-matched
//! remainder. `m̂(H) + m̂(S) + n̂(V)` is the minimum number of rows and
//! columns covering all nonzeros (König's theorem), which Section IV-A of
//! the paper uses as the optimal per-block communication volume.

use crate::matching::{hopcroft_karp, Adjacency, Matching, UNMATCHED};

/// DM group of a row or column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmLabel {
    /// Horizontal block (`m̂(H) < n̂(H)`); underdetermined columns.
    Horizontal,
    /// Square block (`m̂(S) = n̂(S)`); perfectly matched core.
    Square,
    /// Vertical block (`m̂(V) > n̂(V)`); underdetermined rows.
    Vertical,
}

/// Result of the coarse DM decomposition of a sparse block.
#[derive(Clone, Debug)]
pub struct DmDecomposition {
    /// Group of each row.
    pub row_label: Vec<DmLabel>,
    /// Group of each column.
    pub col_label: Vec<DmLabel>,
    /// The maximum matching the decomposition was built on.
    pub matching: Matching,
    /// Rows in the horizontal group (`m̂(H)`); all matched.
    pub h_rows: usize,
    /// Columns in the horizontal group (`n̂(H)`), including unmatched ones.
    pub h_cols: usize,
    /// Rows = columns of the square group (`m̂(S) = n̂(S)`).
    pub s_size: usize,
    /// Rows in the vertical group (`m̂(V)`), including unmatched ones.
    pub v_rows: usize,
    /// Columns in the vertical group (`n̂(V)`); all matched.
    pub v_cols: usize,
}

impl DmDecomposition {
    /// `m̂(H) + m̂(S) + n̂(V)` — the minimum row+column cover, equal to the
    /// maximum matching size.
    pub fn min_cover(&self) -> usize {
        self.h_rows + self.s_size + self.v_cols
    }
}

/// Computes the coarse DM decomposition of the bipartite graph with
/// `nrows` rows, `ncols` columns and the given edges.
///
/// Rows or columns with no incident edge are grouped as `V` / `H`
/// respectively (they are unmatched by definition). Callers working with
/// compacted sparse blocks never produce such vertices.
///
/// # Panics
/// Panics if an edge index is out of range.
pub fn dm_decompose(nrows: usize, ncols: usize, edges: &[(u32, u32)]) -> DmDecomposition {
    let matching = hopcroft_karp(nrows, ncols, edges);
    let row_adj = Adjacency::new(nrows, edges);
    let col_edges: Vec<(u32, u32)> = edges.iter().map(|&(r, c)| (c, r)).collect();
    let col_adj = Adjacency::new(ncols, &col_edges);

    // H: alternating BFS from unmatched columns. From a column, cross any
    // edge to a row; from a row, follow only its matching edge.
    let mut row_in_h = vec![false; nrows];
    let mut col_in_h = vec![false; ncols];
    let mut stack: Vec<u32> = Vec::new();
    for j in 0..ncols {
        if matching.col_mate[j] == UNMATCHED {
            col_in_h[j] = true;
            stack.push(j as u32);
        }
    }
    while let Some(j) = stack.pop() {
        for &i in col_adj.row(j as usize) {
            if !row_in_h[i as usize] {
                row_in_h[i as usize] = true;
                let mate = matching.row_mate[i as usize];
                debug_assert_ne!(mate, UNMATCHED, "free row reachable from free column");
                if !col_in_h[mate as usize] {
                    col_in_h[mate as usize] = true;
                    stack.push(mate);
                }
            }
        }
    }

    // V: symmetric BFS from unmatched rows.
    let mut row_in_v = vec![false; nrows];
    let mut col_in_v = vec![false; ncols];
    for i in 0..nrows {
        if matching.row_mate[i] == UNMATCHED {
            row_in_v[i] = true;
            stack.push(i as u32);
        }
    }
    while let Some(i) = stack.pop() {
        for &j in row_adj.row(i as usize) {
            if !col_in_v[j as usize] {
                col_in_v[j as usize] = true;
                let mate = matching.col_mate[j as usize];
                debug_assert_ne!(mate, UNMATCHED, "free column reachable from free row");
                if !row_in_v[mate as usize] {
                    row_in_v[mate as usize] = true;
                    stack.push(mate);
                }
            }
        }
    }

    let mut row_label = Vec::with_capacity(nrows);
    let mut col_label = Vec::with_capacity(ncols);
    let (mut h_rows, mut s_rows, mut v_rows) = (0usize, 0usize, 0usize);
    for i in 0..nrows {
        debug_assert!(!(row_in_h[i] && row_in_v[i]), "H and V overlap on row {i}");
        let label = if row_in_h[i] {
            h_rows += 1;
            DmLabel::Horizontal
        } else if row_in_v[i] {
            v_rows += 1;
            DmLabel::Vertical
        } else {
            s_rows += 1;
            DmLabel::Square
        };
        row_label.push(label);
    }
    let (mut h_cols, mut s_cols, mut v_cols) = (0usize, 0usize, 0usize);
    for j in 0..ncols {
        debug_assert!(!(col_in_h[j] && col_in_v[j]), "H and V overlap on column {j}");
        let label = if col_in_h[j] {
            h_cols += 1;
            DmLabel::Horizontal
        } else if col_in_v[j] {
            v_cols += 1;
            DmLabel::Vertical
        } else {
            s_cols += 1;
            DmLabel::Square
        };
        col_label.push(label);
    }
    debug_assert_eq!(s_rows, s_cols, "square block must be square");

    DmDecomposition {
        row_label,
        col_label,
        matching,
        h_rows,
        h_cols,
        s_size: s_rows,
        v_rows,
        v_cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every edge respects the block-triangular zero pattern:
    /// no edge may be (S|V row, H col) or (V row, S col).
    fn assert_block_triangular(dm: &DmDecomposition, edges: &[(u32, u32)]) {
        for &(r, c) in edges {
            let (rl, cl) = (dm.row_label[r as usize], dm.col_label[c as usize]);
            let rank_r = match rl {
                DmLabel::Horizontal => 0,
                DmLabel::Square => 1,
                DmLabel::Vertical => 2,
            };
            let rank_c = match cl {
                DmLabel::Horizontal => 0,
                DmLabel::Square => 1,
                DmLabel::Vertical => 2,
            };
            assert!(rank_r <= rank_c, "edge ({r},{c}) below the block diagonal: {rl:?} x {cl:?}");
        }
    }

    #[test]
    fn wide_block_is_all_horizontal() {
        // 1 row, 3 cols, row connected to all: H = everything.
        let edges = vec![(0, 0), (0, 1), (0, 2)];
        let dm = dm_decompose(1, 3, &edges);
        assert_eq!(dm.h_rows, 1);
        assert_eq!(dm.h_cols, 3);
        assert_eq!(dm.s_size, 0);
        assert_eq!(dm.min_cover(), 1);
        assert_block_triangular(&dm, &edges);
    }

    #[test]
    fn tall_block_is_all_vertical() {
        let edges = vec![(0, 0), (1, 0), (2, 0)];
        let dm = dm_decompose(3, 1, &edges);
        assert_eq!(dm.v_rows, 3);
        assert_eq!(dm.v_cols, 1);
        assert_eq!(dm.min_cover(), 1);
        assert_block_triangular(&dm, &edges);
    }

    #[test]
    fn perfect_square_is_all_square() {
        let edges: Vec<(u32, u32)> = (0..4).map(|i| (i, i)).collect();
        let dm = dm_decompose(4, 4, &edges);
        assert_eq!(dm.s_size, 4);
        assert_eq!(dm.min_cover(), 4);
        assert_block_triangular(&dm, &edges);
    }

    #[test]
    fn mixed_blocks() {
        // Rows 0..2 / cols 0..2: row 0 spans cols 0,1 (H candidate);
        // col 2 only reachable via row 1; row 2 isolated on col 2 too.
        // Construct: H part {row0; cols 0,1}, V part {rows 1,2; col 2}.
        let edges = vec![(0, 0), (0, 1), (1, 2), (2, 2)];
        let dm = dm_decompose(3, 3, &edges);
        assert_eq!(dm.h_rows, 1);
        assert_eq!(dm.h_cols, 2);
        assert_eq!(dm.s_size, 0);
        assert_eq!(dm.v_rows, 2);
        assert_eq!(dm.v_cols, 1);
        assert_eq!(dm.min_cover(), 2);
        assert_eq!(dm.min_cover(), dm.matching.size);
        assert_block_triangular(&dm, &edges);
    }

    #[test]
    fn isolated_vertices_labelled_under_determined() {
        // Row 1 and col 1 have no edges.
        let edges = vec![(0, 0)];
        let dm = dm_decompose(2, 2, &edges);
        assert_eq!(dm.row_label[1], DmLabel::Vertical);
        assert_eq!(dm.col_label[1], DmLabel::Horizontal);
    }

    #[test]
    fn cover_equals_matching_size_on_grid() {
        // 3x4 full bipartite graph: matching = 3, cover = 3.
        let mut edges = Vec::new();
        for i in 0..3u32 {
            for j in 0..4u32 {
                edges.push((i, j));
            }
        }
        let dm = dm_decompose(3, 4, &edges);
        assert_eq!(dm.matching.size, 3);
        assert_eq!(dm.min_cover(), 3);
        assert_block_triangular(&dm, &edges);
    }
}
