//! Property tests for matching and Dulmage–Mendelsohn decomposition.
//!
//! The oracles: Kuhn's matcher (independent implementation) for matching
//! sizes, König duality (min cover = max matching) and the
//! block-triangular zero pattern for the decomposition.

use proptest::prelude::*;
use s2d_dm::{dm_decompose, hopcroft_karp, kuhn_matching, DmLabel, UNMATCHED};

/// Random bipartite edge list with bounded dimensions, deduplicated.
fn edges_strategy(
    max_dim: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, usize, Vec<(u32, u32)>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, n)| {
        let edge = (0..m as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..=max_edges).prop_map(move |mut es| {
            es.sort_unstable();
            es.dedup();
            (m, n, es)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hopcroft–Karp returns a structurally valid matching.
    #[test]
    fn hk_matching_is_valid((m, n, edges) in edges_strategy(24, 96)) {
        let hk = hopcroft_karp(m, n, &edges);
        prop_assert!(hk.is_valid(&edges));
        prop_assert!(hk.size <= m.min(n));
    }

    /// Hopcroft–Karp and Kuhn agree on the maximum matching size.
    #[test]
    fn hk_matches_kuhn_oracle((m, n, edges) in edges_strategy(20, 80)) {
        let hk = hopcroft_karp(m, n, &edges);
        let kn = kuhn_matching(m, n, &edges);
        prop_assert!(kn.is_valid(&edges));
        prop_assert_eq!(hk.size, kn.size);
    }

    /// The matching is maximal: no edge joins two unmatched vertices.
    #[test]
    fn hk_matching_is_maximal((m, n, edges) in edges_strategy(24, 96)) {
        let hk = hopcroft_karp(m, n, &edges);
        for &(r, c) in &edges {
            prop_assert!(
                hk.row_mate[r as usize] != UNMATCHED || hk.col_mate[c as usize] != UNMATCHED,
                "edge ({r},{c}) joins two free vertices"
            );
        }
    }

    /// König duality: the DM min cover equals the maximum matching size,
    /// and it really covers every edge.
    #[test]
    fn dm_cover_is_min_and_covers((m, n, edges) in edges_strategy(20, 80)) {
        let dm = dm_decompose(m, n, &edges);
        prop_assert_eq!(dm.min_cover(), dm.matching.size);
        // Cover = H rows + S rows + V cols. Every edge touches it.
        for &(r, c) in &edges {
            let covered = matches!(dm.row_label[r as usize], DmLabel::Horizontal | DmLabel::Square)
                || matches!(dm.col_label[c as usize], DmLabel::Vertical);
            prop_assert!(covered, "edge ({r},{c}) escapes the cover");
        }
    }

    /// The coarse decomposition produces the block-triangular pattern:
    /// ordering groups H < S < V, no edge goes from a later row group to
    /// an earlier column group.
    #[test]
    fn dm_is_block_triangular((m, n, edges) in edges_strategy(20, 80)) {
        let dm = dm_decompose(m, n, &edges);
        let rank = |l: DmLabel| match l {
            DmLabel::Horizontal => 0,
            DmLabel::Square => 1,
            DmLabel::Vertical => 2,
        };
        for &(r, c) in &edges {
            prop_assert!(
                rank(dm.row_label[r as usize]) <= rank(dm.col_label[c as usize]),
                "edge ({r},{c}) below the block diagonal"
            );
        }
    }

    /// Group cardinalities are consistent: H is wide, V is tall, S is
    /// square, and they tile the rows and columns exactly.
    #[test]
    fn dm_group_shapes((m, n, edges) in edges_strategy(20, 80)) {
        let dm = dm_decompose(m, n, &edges);
        prop_assert_eq!(dm.h_rows + dm.s_size + dm.v_rows, m);
        prop_assert_eq!(dm.h_cols + dm.s_size + dm.v_cols, n);
        // Width/height inequalities hold when the group is nonempty.
        if dm.h_rows + dm.h_cols > 0 {
            prop_assert!(dm.h_rows <= dm.h_cols, "H must be wide: {} x {}", dm.h_rows, dm.h_cols);
        }
        if dm.v_rows + dm.v_cols > 0 {
            prop_assert!(dm.v_rows >= dm.v_cols, "V must be tall: {} x {}", dm.v_rows, dm.v_cols);
        }
    }

    /// All H rows and V columns are matched (they carry the matching of
    /// their group), and unmatched vertices live only in H cols / V rows.
    #[test]
    fn dm_matching_saturation((m, n, edges) in edges_strategy(20, 80)) {
        let dm = dm_decompose(m, n, &edges);
        for i in 0..m {
            if dm.row_label[i] == DmLabel::Horizontal || dm.row_label[i] == DmLabel::Square {
                prop_assert!(dm.matching.row_mate[i] != UNMATCHED, "H/S row {i} unmatched");
            }
        }
        for j in 0..n {
            if dm.col_label[j] == DmLabel::Vertical || dm.col_label[j] == DmLabel::Square {
                prop_assert!(dm.matching.col_mate[j] != UNMATCHED, "V/S col {j} unmatched");
            }
        }
    }

    /// Decomposition is invariant under edge-list permutation.
    #[test]
    fn dm_is_order_insensitive(
        (m, n, edges) in edges_strategy(16, 64),
        seed in 0u64..1000,
    ) {
        let dm1 = dm_decompose(m, n, &edges);
        // Deterministic shuffle driven by the seed.
        let mut shuffled = edges.clone();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let dm2 = dm_decompose(m, n, &shuffled);
        prop_assert_eq!(dm1.min_cover(), dm2.min_cover());
        prop_assert_eq!(dm1.row_label, dm2.row_label);
        prop_assert_eq!(dm1.col_label, dm2.col_label);
    }
}

/// Brute-force minimum row+column cover for tiny instances — exponential
/// oracle pinning König duality end to end.
fn brute_force_cover(m: usize, n: usize, edges: &[(u32, u32)]) -> usize {
    let mut best = usize::MAX;
    for row_mask in 0u32..(1 << m) {
        for col_mask in 0u32..(1 << n) {
            let covers =
                edges.iter().all(|&(r, c)| row_mask & (1 << r) != 0 || col_mask & (1 << c) != 0);
            if covers {
                best = best.min((row_mask.count_ones() + col_mask.count_ones()) as usize);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DM min cover equals the brute-force minimum cover (König).
    #[test]
    fn dm_cover_matches_brute_force((m, n, edges) in edges_strategy(6, 18)) {
        let dm = dm_decompose(m, n, &edges);
        prop_assert_eq!(dm.min_cover(), brute_force_cover(m, n, &edges));
    }
}
