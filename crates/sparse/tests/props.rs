//! Property tests for the sparse matrix substrate: format conversions,
//! Matrix Market round-trips, permutations, SpMV linearity, and the
//! block-structure partition invariants.

use proptest::prelude::*;
use s2d_sparse::{read_matrix_market, write_matrix_market, BlockStructure, Coo, Csr, Permutation};

/// Random COO matrix (duplicates summed by `compress`).
fn coo_strategy(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, n)| {
        let entry = (0..m, 0..n, -8i32..=8);
        proptest::collection::vec(entry, 0..=max_nnz).prop_map(move |es| {
            let mut coo = Coo::new(m, n);
            for (r, c, v) in es {
                coo.push(r, c, f64::from(v) * 0.5);
            }
            coo.compress();
            coo
        })
    })
}

/// Random permutation of `0..n` derived from a seed.
fn random_perm(n: usize, seed: u64) -> Permutation {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state as usize) % (i + 1));
    }
    Permutation::from_order(&order)
}

fn dense_of(a: &Csr) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; a.ncols()]; a.nrows()];
    for (r, c, v) in a.iter() {
        d[r][c] += v;
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// COO → CSR → COO preserves the entry set.
    #[test]
    fn coo_csr_roundtrip(coo in coo_strategy(24, 96)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.nnz(), coo.nnz());
        let back = csr.to_coo();
        prop_assert_eq!(
            back.iter().collect::<Vec<_>>(),
            coo.iter().collect::<Vec<_>>()
        );
    }

    /// CSR → CSC → CSR is the identity.
    #[test]
    fn csr_csc_roundtrip(coo in coo_strategy(24, 96)) {
        let csr = coo.to_csr();
        let back = csr.to_csc().to_csr();
        prop_assert_eq!(back, csr);
    }

    /// Transposing twice is the identity; the transpose swaps (r, c).
    #[test]
    fn transpose_involution(coo in coo_strategy(20, 80)) {
        let csr = coo.to_csr();
        let t = csr.transpose();
        prop_assert_eq!(t.nrows(), csr.ncols());
        prop_assert_eq!(&t.transpose(), &csr);
        let mut swapped: Vec<(usize, usize, f64)> =
            csr.iter().map(|(r, c, v)| (c, r, v)).collect();
        swapped.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        prop_assert_eq!(t.iter().collect::<Vec<_>>(), swapped);
    }

    /// Matrix Market write → read round-trips exactly.
    #[test]
    fn matrix_market_roundtrip(coo in coo_strategy(20, 60)) {
        let mut buf = Vec::new();
        write_matrix_market(&coo, &mut buf).expect("write");
        let back = read_matrix_market(buf.as_slice()).expect("read");
        prop_assert_eq!(back.nrows(), coo.nrows());
        prop_assert_eq!(back.ncols(), coo.ncols());
        prop_assert_eq!(
            back.iter().collect::<Vec<_>>(),
            coo.iter().collect::<Vec<_>>()
        );
    }

    /// SpMV agrees with the dense reference.
    #[test]
    fn spmv_matches_dense(coo in coo_strategy(16, 64), seed in 0u64..100) {
        let a = coo.to_csr();
        let x: Vec<f64> = (0..a.ncols())
            .map(|j| ((j as u64 + seed).wrapping_mul(2654435761) % 17) as f64 - 8.0)
            .collect();
        let y = a.spmv_alloc(&x);
        let d = dense_of(&a);
        for (i, row) in d.iter().enumerate() {
            let want: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert!((y[i] - want).abs() < 1e-9, "row {i}: {} vs {want}", y[i]);
        }
    }

    /// SpMV is linear: A(αx + βz) = αAx + βAz.
    #[test]
    fn spmv_linearity(coo in coo_strategy(16, 64)) {
        let a = coo.to_csr();
        let n = a.ncols();
        let x: Vec<f64> = (0..n).map(|j| (j as f64).sin()).collect();
        let z: Vec<f64> = (0..n).map(|j| (j as f64 * 0.7).cos()).collect();
        let (alpha, beta) = (2.5, -0.75);
        let combo: Vec<f64> = x.iter().zip(&z).map(|(u, v)| alpha * u + beta * v).collect();
        let lhs = a.spmv_alloc(&combo);
        let ax = a.spmv_alloc(&x);
        let az = a.spmv_alloc(&z);
        for i in 0..a.nrows() {
            let want = alpha * ax[i] + beta * az[i];
            prop_assert!((lhs[i] - want).abs() < 1e-9);
        }
    }

    /// Row permutation reorders SpMV output; column permutation reorders
    /// its input.
    #[test]
    fn permutation_commutes_with_spmv(coo in coo_strategy(12, 48), seed in 0u64..50) {
        let a = coo.to_csr();
        let rp = random_perm(a.nrows(), seed);
        let cp = random_perm(a.ncols(), seed ^ 0xabcdef);
        let b = s2d_sparse::perm::permute(&a, &rp, &cp);
        let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64 + 1.0).collect();
        // x permuted for b: xb[cp(j)] = x[j].
        let mut xb = vec![0.0; a.ncols()];
        for j in 0..a.ncols() {
            xb[cp.apply(j)] = x[j];
        }
        let y = a.spmv_alloc(&x);
        let yb = b.spmv_alloc(&xb);
        for i in 0..a.nrows() {
            prop_assert!((yb[rp.apply(i)] - y[i]).abs() < 1e-12);
        }
    }

    /// Permutation inverse really inverts.
    #[test]
    fn permutation_inverse(n in 1usize..64, seed in 0u64..100) {
        let p = random_perm(n, seed);
        let inv = p.inverse();
        for i in 0..n {
            prop_assert_eq!(inv.apply(p.apply(i)), i);
            prop_assert_eq!(p.apply(inv.apply(i)), i);
        }
    }

    /// The block structure tiles the nonzeros exactly: every CSR id in
    /// exactly one block, and each block's ids match their parts.
    #[test]
    fn block_structure_tiles_nonzeros(
        coo in coo_strategy(20, 80),
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        let a = coo.to_csr();
        let row_part: Vec<u32> = (0..a.nrows())
            .map(|i| ((i as u64 * 31 + seed) % k as u64) as u32)
            .collect();
        let col_part: Vec<u32> = (0..a.ncols())
            .map(|j| ((j as u64 * 17 + seed / 2) % k as u64) as u32)
            .collect();
        let bs = BlockStructure::build(&a, &row_part, &col_part, k);
        let mut seen = vec![false; a.nnz()];
        for ((l, kk), nz) in bs.iter() {
            for &e in nz {
                prop_assert!(!seen[e as usize], "nonzero {e} in two blocks");
                seen[e as usize] = true;
                let i = a.row_of_nnz(e as usize);
                let j = a.colind()[e as usize] as usize;
                prop_assert_eq!(row_part[i], l);
                prop_assert_eq!(col_part[j], kk);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "all nonzeros covered");
        // Rowwise loads agree with a direct count.
        let mut want = vec![0u64; k];
        for i in 0..a.nrows() {
            want[row_part[i] as usize] += a.row_nnz(i) as u64;
        }
        prop_assert_eq!(bs.rowwise_loads(), want);
    }
}
