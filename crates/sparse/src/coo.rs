//! Triplet (coordinate) sparse matrix format.

use crate::{idx, Csr, Idx};

/// A sparse matrix in coordinate (triplet) format.
///
/// Triplets may be unsorted and may contain duplicates until
/// [`Coo::compress`] or [`Coo::to_csr`] is called; duplicates are summed,
/// matching Matrix Market semantics.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<Idx>,
    cols: Vec<Idx>,
    vals: Vec<f64>,
}

impl Coo {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty matrix with capacity for `cap` nonzeros.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds a matrix from parallel triplet arrays.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths or an index is out of
    /// bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<Idx>,
        cols: Vec<Idx>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        for (&r, &c) in rows.iter().zip(&cols) {
            assert!((r as usize) < nrows && (c as usize) < ncols, "entry ({r},{c}) out of bounds");
        }
        Coo { nrows, ncols, rows, cols, vals }
    }

    /// Builds a pattern matrix (all values 1.0) from `(row, col)` pairs.
    pub fn from_pattern(nrows: usize, ncols: usize, entries: &[(usize, usize)]) -> Self {
        let mut m = Coo::with_capacity(nrows, ncols, entries.len());
        for &(r, c) in entries {
            m.push(r, c, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (may include duplicates before compression).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Appends a triplet.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.nrows && col < self.ncols, "entry ({row},{col}) out of bounds");
        self.rows.push(idx(row));
        self.cols.push(idx(col));
        self.vals.push(val);
    }

    /// Iterates over stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Sorts triplets by `(row, col)` and sums duplicates in place.
    pub fn compress(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_unstable_by_key(|&e| ((self.rows[e] as u64) << 32) | self.cols[e] as u64);
        let mut rows = Vec::with_capacity(order.len());
        let mut cols = Vec::with_capacity(order.len());
        let mut vals = Vec::with_capacity(order.len());
        for &e in &order {
            let (r, c, v) = (self.rows[e], self.cols[e], self.vals[e]);
            if rows.last() == Some(&r) && cols.last() == Some(&c) {
                *vals.last_mut().expect("vals nonempty alongside rows") += v;
            } else {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            }
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Converts to CSR, summing duplicate entries.
    pub fn to_csr(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colind = vec![0 as Idx; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut next = rowptr.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let slot = next[r as usize];
            colind[slot] = c;
            vals[slot] = v;
            next[r as usize] += 1;
        }
        let mut csr = Csr::from_raw(self.nrows, self.ncols, rowptr, colind, vals);
        csr.sort_and_sum_duplicates();
        csr
    }

    /// Returns the transpose (rows and columns swapped).
    pub fn transpose(&self) -> Coo {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Makes the pattern symmetric by adding the transpose of every
    /// off-diagonal entry (values duplicated, duplicates later summed).
    pub fn symmetrize(&mut self) {
        let n = self.nnz();
        for e in 0..n {
            if self.rows[e] != self.cols[e] {
                self.rows.push(self.cols[e]);
                self.cols.push(self.rows[e]);
                self.vals.push(self.vals[e]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut m = Coo::new(3, 4);
        m.push(0, 1, 2.0);
        m.push(2, 3, -1.0);
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 2.0), (2, 3, -1.0)]);
    }

    #[test]
    fn compress_sums_duplicates() {
        let mut m = Coo::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 3.0);
        m.compress();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 0, 2.0), (1, 1, 4.0)]);
    }

    #[test]
    fn symmetrize_adds_mirror_entries() {
        let mut m = Coo::from_pattern(3, 3, &[(0, 1), (1, 1)]);
        m.symmetrize();
        m.compress();
        let pat: Vec<_> = m.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(pat, vec![(0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut m = Coo::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn transpose_swaps_shape() {
        let m = Coo::from_pattern(2, 5, &[(1, 4)]);
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (5, 2));
        assert_eq!(t.iter().next(), Some((4, 1, 1.0)));
    }
}
