//! Sparse matrix substrate for the s2D partitioning workspace.
//!
//! Provides the triplet ([`Coo`]), compressed-row ([`Csr`]) and
//! compressed-column ([`Csc`]) formats used throughout the workspace, plus
//! Matrix Market I/O, permutations, degree statistics and the block
//! structure a pair of vector partitions induces on a matrix (the `K × K`
//! grid of Section III of the paper).
//!
//! Indices are stored as `u32` ([`Idx`]): the paper's largest instance has
//! ~1.2 M rows and ~8 M nonzeros, so 32-bit indices halve the memory
//! traffic of every kernel without restricting the reproduction.

pub mod block;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod io;
pub mod perm;
pub mod stats;

pub use block::{BlockId, BlockStructure};
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use io::{
    read_matrix_market, read_matrix_market_file, write_matrix_market, write_matrix_market_file,
    MmError,
};
pub use perm::Permutation;
pub use stats::MatrixStats;

/// Index type for row/column identifiers.
pub type Idx = u32;

/// Casts a `usize` to [`Idx`], panicking on overflow (debug-only cost).
#[inline]
pub fn idx(v: usize) -> Idx {
    debug_assert!(v <= Idx::MAX as usize, "index {v} exceeds u32 range");
    v as Idx
}
