//! Degree statistics — the `n`, `nnz`, `davg`, `dmax` columns of the
//! paper's Tables I and IV.

use crate::Csr;

/// Summary statistics of a sparse matrix, as reported in the paper's
/// matrix-property tables.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of nonzeros.
    pub nnz: usize,
    /// Average number of nonzeros per row (`davg` in the paper).
    pub row_davg: f64,
    /// Maximum number of nonzeros in a row (`dmax` in the paper).
    pub row_dmax: usize,
    /// Average number of nonzeros per column.
    pub col_davg: f64,
    /// Maximum number of nonzeros in a column.
    pub col_dmax: usize,
}

impl MatrixStats {
    /// Computes statistics for `a`.
    pub fn of(a: &Csr) -> Self {
        let row_dmax = (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap_or(0);
        let mut col_deg = vec![0usize; a.ncols()];
        for &c in a.colind() {
            col_deg[c as usize] += 1;
        }
        let col_dmax = col_deg.iter().copied().max().unwrap_or(0);
        MatrixStats {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            row_davg: a.nnz() as f64 / a.nrows().max(1) as f64,
            row_dmax,
            col_davg: a.nnz() as f64 / a.ncols().max(1) as f64,
            col_dmax,
        }
    }
}

/// Number of nonempty rows of `a` — `m̂(A)` in the paper's notation.
pub fn nonempty_rows(a: &Csr) -> usize {
    (0..a.nrows()).filter(|&i| a.row_nnz(i) > 0).count()
}

/// Number of nonempty columns of `a` — `n̂(A)` in the paper's notation.
pub fn nonempty_cols(a: &Csr) -> usize {
    let mut seen = vec![false; a.ncols()];
    for &c in a.colind() {
        seen[c as usize] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

/// Row degrees of `a`.
pub fn row_degrees(a: &Csr) -> Vec<usize> {
    (0..a.nrows()).map(|i| a.row_nnz(i)).collect()
}

/// Column degrees of `a`.
pub fn col_degrees(a: &Csr) -> Vec<usize> {
    let mut deg = vec![0usize; a.ncols()];
    for &c in a.colind() {
        deg[c as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        Coo::from_pattern(3, 4, &[(0, 0), (0, 1), (0, 2), (2, 2)]).to_csr()
    }

    #[test]
    fn stats_match_hand_count() {
        let s = MatrixStats::of(&sample());
        assert_eq!(s.nnz, 4);
        assert_eq!(s.row_dmax, 3);
        assert_eq!(s.col_dmax, 2);
        assert!((s.row_davg - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.col_davg, 1.0);
    }

    #[test]
    fn nonempty_counts() {
        let a = sample();
        assert_eq!(nonempty_rows(&a), 2); // row 1 is empty
        assert_eq!(nonempty_cols(&a), 3); // col 3 is empty
    }

    #[test]
    fn degree_vectors() {
        let a = sample();
        assert_eq!(row_degrees(&a), vec![3, 0, 1]);
        assert_eq!(col_degrees(&a), vec![1, 1, 2, 0]);
    }
}
