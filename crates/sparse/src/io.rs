//! Matrix Market (`.mtx`) reader and writer.
//!
//! Supports the `matrix coordinate` object with `real`, `integer` and
//! `pattern` fields and `general`, `symmetric` and `skew-symmetric`
//! symmetry, which covers every matrix class referenced by the paper.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::Coo;

/// Errors produced by the Matrix Market parser.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic violation, with a human-readable message.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

#[derive(Clone, Copy, PartialEq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, PartialEq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a Matrix Market stream into triplet form.
///
/// Symmetric inputs are expanded (the strict lower triangle is mirrored), so
/// the returned matrix always stores the full pattern.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 5 || !tokens[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(format!("bad header line: {header:?}")));
    }
    if !tokens[1].eq_ignore_ascii_case("matrix") || !tokens[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err("only `matrix coordinate` objects are supported"));
    }
    let field = match tokens[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(format!("unsupported field {other:?}"))),
    };
    let symmetry = match tokens[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(parse_err(format!("unsupported symmetry {other:?}"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|e| parse_err(format!("bad size token {t:?}: {e}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must contain `nrows ncols nnz`"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let cap = if symmetry == Symmetry::General { nnz } else { 2 * nnz };
    let mut coo = Coo::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|e| parse_err(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|e| parse_err(format!("bad column index: {e}")))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!("entry ({r},{c}) outside 1..={nrows} x 1..={ncols}")));
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse::<f64>()
                .map_err(|e| parse_err(format!("bad value: {e}")))?,
        };
        let (r, c) = (r - 1, c - 1);
        coo.push(r, c, v);
        if r != c {
            match symmetry {
                Symmetry::General => {}
                Symmetry::Symmetric => coo.push(c, r, v),
                Symmetry::SkewSymmetric => coo.push(c, r, -v),
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("size line promised {nnz} entries, found {seen}")));
    }
    coo.compress();
    Ok(coo)
}

/// Reads a Matrix Market file from `path`.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Coo, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes `m` as a `matrix coordinate real general` Matrix Market stream.
pub fn write_matrix_market<W: Write>(m: &Coo, writer: W) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {v:?}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Writes `m` to the file at `path` in Matrix Market format.
pub fn write_matrix_market_file(m: &Coo, path: impl AsRef<Path>) -> Result<(), MmError> {
    write_matrix_market(m, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let src =
            "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 2\n1 2 5.0\n3 3 -1\n";
        let m = read_matrix_market(src.as_bytes()).expect("parse");
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 5.0), (2, 2, -1.0)]);
    }

    #[test]
    fn expands_symmetric() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n2 1\n2 2\n";
        let m = read_matrix_market(src.as_bytes()).expect("parse");
        let pat: Vec<_> = m.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(pat, vec![(0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn skew_symmetric_negates() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n";
        let m = read_matrix_market(src.as_bytes()).expect("parse");
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, -3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn roundtrip_write_read() {
        let m = Coo::from_triplets(3, 4, vec![0, 2], vec![3, 1], vec![1.5, -2.25]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).expect("write");
        let back = read_matrix_market(buf.as_slice()).expect("read");
        assert_eq!(back.iter().collect::<Vec<_>>(), m.iter().collect::<Vec<_>>());
    }

    #[test]
    fn rejects_bad_counts() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }
}
