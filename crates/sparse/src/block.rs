//! The `K × K` block structure a pair of vector partitions induces on a
//! matrix (Section III of the paper: `A_ℓk = {a_ij : y_i ∈ y(ℓ), x_j ∈ x(k)}`).
//!
//! Only nonempty blocks are materialized — for `K = 4096` the full grid has
//! 16.7 M cells while real matrices touch a tiny fraction of them.

use crate::Csr;

/// Identifier of a block: `(row_part ℓ, col_part k)`.
pub type BlockId = (u32, u32);

/// Sparse representation of the block structure: for every nonempty block,
/// the list of nonzero ids (indices into the CSR arrays) that fall in it.
#[derive(Clone, Debug)]
pub struct BlockStructure {
    nparts: usize,
    /// Sorted, deduplicated keys of nonempty blocks.
    keys: Vec<BlockId>,
    /// `nz[ptr[b]..ptr[b+1]]` are the nonzero ids of block `keys[b]`.
    ptr: Vec<usize>,
    nz: Vec<u32>,
}

impl BlockStructure {
    /// Builds the block structure of `a` under the given vector partitions.
    ///
    /// `row_part[i]` is the owner of `y_i`; `col_part[j]` the owner of `x_j`.
    ///
    /// # Panics
    /// Panics if the partition arrays do not match the matrix shape or a
    /// part id is `>= nparts`.
    pub fn build(a: &Csr, row_part: &[u32], col_part: &[u32], nparts: usize) -> Self {
        assert_eq!(row_part.len(), a.nrows(), "row partition length mismatch");
        assert_eq!(col_part.len(), a.ncols(), "column partition length mismatch");
        assert!(row_part.iter().all(|&p| (p as usize) < nparts));
        assert!(col_part.iter().all(|&p| (p as usize) < nparts));

        // Tag every nonzero with its block key, then sort by key. The sort
        // is the dominant cost: O(nnz log nnz) with a u64 key.
        let mut tagged: Vec<(u64, u32)> = Vec::with_capacity(a.nnz());
        for i in 0..a.nrows() {
            let l = row_part[i] as u64;
            for e in a.row_range(i) {
                let k = col_part[a.colind()[e] as usize] as u64;
                tagged.push(((l << 32) | k, e as u32));
            }
        }
        tagged.sort_unstable();

        let mut keys = Vec::new();
        let mut ptr = vec![0usize];
        let mut nz = Vec::with_capacity(tagged.len());
        for (key, e) in tagged {
            let id = ((key >> 32) as u32, key as u32);
            if keys.last() != Some(&id) {
                keys.push(id);
                ptr.push(nz.len());
            }
            nz.push(e);
            *ptr.last_mut().expect("ptr nonempty") = nz.len();
        }
        BlockStructure { nparts, keys, ptr, nz }
    }

    /// Number of parts `K`.
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// Number of nonempty blocks.
    pub fn nblocks(&self) -> usize {
        self.keys.len()
    }

    /// Iterates over `(block_id, nonzero_ids)` for every nonempty block.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[u32])> + '_ {
        self.keys
            .iter()
            .enumerate()
            .map(move |(b, &id)| (id, &self.nz[self.ptr[b]..self.ptr[b + 1]]))
    }

    /// Iterates over nonempty *off-diagonal* blocks only (`ℓ != k`).
    pub fn iter_off_diagonal(&self) -> impl Iterator<Item = (BlockId, &[u32])> + '_ {
        self.iter().filter(|((l, k), _)| l != k)
    }

    /// The nonzero ids of block `(l, k)`, empty if the block is empty.
    pub fn block(&self, l: u32, k: u32) -> &[u32] {
        match self.keys.binary_search(&(l, k)) {
            Ok(b) => &self.nz[self.ptr[b]..self.ptr[b + 1]],
            Err(_) => &[],
        }
    }

    /// Number of nonzeros in block `(l, k)`.
    pub fn block_nnz(&self, l: u32, k: u32) -> usize {
        self.block(l, k).len()
    }

    /// Total nonzeros across diagonal blocks.
    pub fn diagonal_nnz(&self) -> usize {
        self.iter().filter(|((l, k), _)| l == k).map(|(_, nz)| nz.len()).sum()
    }

    /// Per-part nonzero count of the *rowwise* assignment (every nonzero
    /// charged to its row part) — the starting loads of Algorithm 1.
    pub fn rowwise_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.nparts];
        for ((l, _), nz) in self.iter() {
            loads[l as usize] += nz.len() as u64;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // 4x4, parts rows [0,0,1,1], cols [0,1,1,0]
        Coo::from_pattern(4, 4, &[(0, 0), (0, 1), (1, 3), (2, 2), (3, 0), (3, 1)]).to_csr()
    }

    #[test]
    fn blocks_partition_all_nonzeros() {
        let a = sample();
        let bs = BlockStructure::build(&a, &[0, 0, 1, 1], &[0, 1, 1, 0], 2);
        let total: usize = bs.iter().map(|(_, nz)| nz.len()).sum();
        assert_eq!(total, a.nnz());
        let mut seen: Vec<u32> = bs.iter().flat_map(|(_, nz)| nz.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..a.nnz() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn block_lookup_matches_hand_count() {
        let a = sample();
        let bs = BlockStructure::build(&a, &[0, 0, 1, 1], &[0, 1, 1, 0], 2);
        // (0,0): a00 and a13 (col 3 is part 0) -> 2 nonzeros
        assert_eq!(bs.block_nnz(0, 0), 2);
        // (0,1): a01 -> 1
        assert_eq!(bs.block_nnz(0, 1), 1);
        // (1,0): a30 -> 1
        assert_eq!(bs.block_nnz(1, 0), 1);
        // (1,1): a22, a31 -> 2
        assert_eq!(bs.block_nnz(1, 1), 2);
        assert_eq!(bs.nblocks(), 4);
    }

    #[test]
    fn off_diagonal_iterator_skips_diagonal() {
        let a = sample();
        let bs = BlockStructure::build(&a, &[0, 0, 1, 1], &[0, 1, 1, 0], 2);
        let off: Vec<_> = bs.iter_off_diagonal().map(|(id, _)| id).collect();
        assert_eq!(off, vec![(0, 1), (1, 0)]);
        assert_eq!(bs.diagonal_nnz(), 4);
    }

    #[test]
    fn rowwise_loads_sum_to_nnz() {
        let a = sample();
        let bs = BlockStructure::build(&a, &[0, 0, 1, 1], &[0, 1, 1, 0], 2);
        assert_eq!(bs.rowwise_loads(), vec![3, 3]);
    }

    #[test]
    fn empty_block_lookup_returns_empty() {
        let a = Coo::from_pattern(2, 2, &[(0, 0)]).to_csr();
        let bs = BlockStructure::build(&a, &[0, 1], &[0, 1], 2);
        assert!(bs.block(0, 1).is_empty());
        assert_eq!(bs.nblocks(), 1);
    }
}
