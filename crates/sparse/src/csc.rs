//! Compressed sparse column format.

use crate::{Csr, Idx};

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// Used where column access dominates: building row-net models, computing
/// column covers in Dulmage–Mendelsohn splits, and checkerboard column
/// partitioning.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<Idx>,
    vals: Vec<f64>,
}

impl Csc {
    /// Builds a CSC matrix from raw arrays.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<Idx>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr length must be ncols+1");
        assert_eq!(*colptr.last().expect("colptr nonempty"), rowind.len());
        assert_eq!(rowind.len(), vals.len());
        assert!(colptr.windows(2).all(|w| w[0] <= w[1]), "colptr must be nondecreasing");
        assert!(rowind.iter().all(|&r| (r as usize) < nrows), "row index out of bounds");
        Csc { nrows, ncols, colptr, rowind, vals }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices, column by column.
    #[inline]
    pub fn rowind(&self) -> &[Idx] {
        &self.rowind
    }

    /// Nonzero values, aligned with [`Csc::rowind`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[Idx] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_vals(&self, j: usize) -> &[f64] {
        &self.vals[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Number of nonzeros in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowind {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colind = vec![0 as Idx; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = rowptr.clone();
        for j in 0..self.ncols {
            for (&r, &v) in self.col_rows(j).iter().zip(self.col_vals(j)) {
                let slot = next[r as usize];
                colind[slot] = j as Idx;
                vals[slot] = v;
                next[r as usize] += 1;
            }
        }
        // Columns are visited in increasing order, so rows come out sorted.
        Csr::from_raw(self.nrows, self.ncols, rowptr, colind, vals)
    }
}

#[cfg(test)]
mod tests {
    use crate::Coo;

    #[test]
    fn col_access() {
        let a = Coo::from_triplets(3, 2, vec![0, 2, 1], vec![0, 0, 1], vec![1.0, 3.0, 2.0])
            .to_csr()
            .to_csc();
        assert_eq!(a.col_rows(0), &[0, 2]);
        assert_eq!(a.col_vals(0), &[1.0, 3.0]);
        assert_eq!(a.col_nnz(1), 1);
    }

    #[test]
    fn csr_roundtrip_preserves_matrix() {
        let a = Coo::from_pattern(4, 4, &[(0, 3), (1, 0), (3, 3), (2, 2)]).to_csr();
        assert_eq!(a.to_csc().to_csr(), a);
    }
}
