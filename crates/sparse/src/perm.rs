//! Permutations of rows and columns.

use crate::{Coo, Csr, Idx};

/// A permutation of `0..n`, stored as `new = perm[old]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Idx>,
}

impl Permutation {
    /// Identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        Permutation { forward: (0..n as Idx).collect() }
    }

    /// Builds a permutation from `new = map[old]`.
    ///
    /// # Panics
    /// Panics if `map` is not a bijection of `0..map.len()`.
    pub fn from_forward(map: Vec<Idx>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &v in &map {
            assert!((v as usize) < n, "permutation image {v} out of range");
            assert!(!seen[v as usize], "permutation image {v} duplicated");
            seen[v as usize] = true;
        }
        Permutation { forward: map }
    }

    /// Builds the permutation that sorts items into the order given by
    /// `order` (i.e. `order[new] = old`).
    pub fn from_order(order: &[usize]) -> Self {
        let mut forward = vec![0 as Idx; order.len()];
        for (new, &old) in order.iter().enumerate() {
            forward[old] = new as Idx;
        }
        Self::from_forward(forward)
    }

    /// Groups items by their part id (stable within a part) — the
    /// permutation that block-orders a matrix according to a partition.
    pub fn from_parts(parts: &[u32], nparts: usize) -> Self {
        let mut count = vec![0usize; nparts + 1];
        for &p in parts {
            assert!((p as usize) < nparts, "part id {p} out of range");
            count[p as usize + 1] += 1;
        }
        for p in 0..nparts {
            count[p + 1] += count[p];
        }
        let mut forward = vec![0 as Idx; parts.len()];
        for (old, &p) in parts.iter().enumerate() {
            forward[old] = count[p as usize] as Idx;
            count[p as usize] += 1;
        }
        Permutation { forward }
    }

    /// Size of the permuted set.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New position of `old`.
    #[inline]
    pub fn apply(&self, old: usize) -> usize {
        self.forward[old] as usize
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Idx; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as Idx;
        }
        Permutation { forward: inv }
    }

    /// Applies the permutation to a slice, returning the reordered copy
    /// (`out[perm[i]] = data[i]`).
    pub fn permute_slice<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        let mut out = data.to_vec();
        for (old, item) in data.iter().enumerate() {
            out[self.forward[old] as usize] = item.clone();
        }
        out
    }
}

/// Returns `P_r A P_c^T`: row `i` moves to `row_perm.apply(i)`, column `j`
/// to `col_perm.apply(j)`.
///
/// # Panics
/// Panics if the permutation sizes do not match the matrix shape.
pub fn permute(a: &Csr, row_perm: &Permutation, col_perm: &Permutation) -> Csr {
    assert_eq!(row_perm.len(), a.nrows());
    assert_eq!(col_perm.len(), a.ncols());
    let mut out = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for (i, j, v) in a.iter() {
        out.push(row_perm.apply(i), col_perm.apply(j), v);
    }
    out.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn from_parts_orders_by_part() {
        // parts: item0 -> 1, item1 -> 0, item2 -> 1, item3 -> 0
        let p = Permutation::from_parts(&[1, 0, 1, 0], 2);
        // part 0 items (1, 3) first, stable; then part 1 items (0, 2).
        assert_eq!(p.apply(1), 0);
        assert_eq!(p.apply(3), 1);
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.apply(2), 3);
    }

    #[test]
    fn permute_matrix_moves_entries() {
        let a = Coo::from_pattern(2, 2, &[(0, 0), (1, 1)]).to_csr();
        let swap = Permutation::from_forward(vec![1, 0]);
        let b = permute(&a, &swap, &Permutation::identity(2));
        let pat: Vec<_> = b.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(pat, vec![(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn rejects_non_bijection() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn permute_slice_places_items() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        assert_eq!(p.permute_slice(&['a', 'b', 'c']), vec!['b', 'c', 'a']);
    }
}
