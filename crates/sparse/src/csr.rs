//! Compressed sparse row format — the workhorse format of the workspace.

use crate::{Coo, Csc, Idx};

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Column indices within each row are kept sorted and duplicate-free; every
/// constructor establishes this invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<Idx>,
    vals: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays without sorting rows.
    ///
    /// Callers that cannot guarantee sorted, duplicate-free rows must call
    /// [`Csr::sort_and_sum_duplicates`] afterwards (as [`Coo::to_csr`] does).
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<Idx>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr length must be nrows+1");
        assert_eq!(*rowptr.last().expect("rowptr nonempty"), colind.len());
        assert_eq!(colind.len(), vals.len());
        assert!(rowptr.windows(2).all(|w| w[0] <= w[1]), "rowptr must be nondecreasing");
        assert!(colind.iter().all(|&c| (c as usize) < ncols), "column index out of bounds");
        Csr { nrows, ncols, rowptr, colind, vals }
    }

    /// Builds an empty matrix of the given shape.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr { nrows, ncols, rowptr: vec![0; nrows + 1], colind: Vec::new(), vals: Vec::new() }
    }

    /// Builds an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colind: (0..n as Idx).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// A 64-bit content fingerprint over the matrix shape, sparsity
    /// structure and value bits (FNV-1a). Two matrices fingerprint
    /// equally iff they are bitwise-identical CSR instances (up to hash
    /// collision), which makes the fingerprint a stable cache key for
    /// per-matrix preparation (partitioning, plan compilation) across
    /// repeat registrations.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.nrows as u64);
        mix(self.ncols as u64);
        mix(self.colind.len() as u64);
        for &p in &self.rowptr {
            mix(p as u64);
        }
        for &c in &self.colind {
            mix(u64::from(c));
        }
        for &v in &self.vals {
            mix(v.to_bits());
        }
        h
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column indices, row by row.
    #[inline]
    pub fn colind(&self) -> &[Idx] {
        &self.colind
    }

    /// Nonzero values, aligned with [`Csr::colind`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable access to the values (pattern is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[Idx] {
        &self.colind[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.vals[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// The nonzero-id range of row `i` (ids index [`Csr::colind`]).
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.rowptr[i]..self.rowptr[i + 1]
    }

    /// Row index owning nonzero id `e` (binary search; O(log nrows)).
    pub fn row_of_nnz(&self, e: usize) -> usize {
        debug_assert!(e < self.nnz());
        // partition_point returns the first row whose range starts past e.
        self.rowptr.partition_point(|&p| p <= e) - 1
    }

    /// Iterates over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            self.row_cols(i).iter().zip(self.row_vals(i)).map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Sorts each row by column and sums duplicates, re-establishing the
    /// format invariant after a raw build.
    pub fn sort_and_sum_duplicates(&mut self) {
        let mut new_rowptr = Vec::with_capacity(self.nrows + 1);
        new_rowptr.push(0usize);
        let mut out_c: Vec<Idx> = Vec::with_capacity(self.nnz());
        let mut out_v: Vec<f64> = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(Idx, f64)> = Vec::new();
        for i in 0..self.nrows {
            scratch.clear();
            scratch.extend(self.row_cols(i).iter().copied().zip(self.row_vals(i).iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in scratch.iter() {
                if out_c.len() > *new_rowptr.last().expect("nonempty")
                    && *out_c.last().unwrap() == c
                {
                    *out_v.last_mut().unwrap() += v;
                } else {
                    out_c.push(c);
                    out_v.push(v);
                }
            }
            new_rowptr.push(out_c.len());
        }
        self.rowptr = new_rowptr;
        self.colind = out_c;
        self.vals = out_v;
    }

    /// Converts to triplet format.
    pub fn to_coo(&self) -> Coo {
        let mut rows = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            rows.extend(std::iter::repeat_n(i as Idx, self.row_nnz(i)));
        }
        Coo::from_triplets(self.nrows, self.ncols, rows, self.colind.clone(), self.vals.clone())
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> Csc {
        let mut colptr = vec![0usize; self.ncols + 1];
        for &c in &self.colind {
            colptr[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        let mut rowind = vec![0 as Idx; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = colptr.clone();
        for i in 0..self.nrows {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                let slot = next[c as usize];
                rowind[slot] = i as Idx;
                vals[slot] = v;
                next[c as usize] += 1;
            }
        }
        Csc::from_raw(self.nrows, self.ncols, colptr, rowind, vals)
    }

    /// Returns `A^T` in CSR format.
    pub fn transpose(&self) -> Csr {
        let csc = self.to_csc();
        // A CSC of A laid out column-major is exactly the CSR of A^T.
        Csr::from_raw(
            self.ncols,
            self.nrows,
            csc.colptr().to_vec(),
            csc.rowind().to_vec(),
            csc.values().to_vec(),
        )
    }

    /// Dense `y ← A x` against a serial reference; `y` is overwritten.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let mut acc = 0.0;
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                acc += v * x[c as usize];
            }
            y[i] = acc;
        }
    }

    /// Convenience allocating variant of [`Csr::spmv`].
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// True if the *pattern* is structurally symmetric (square and
    /// `a_ij != 0 ⇔ a_ji != 0`).
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.rowptr == t.rowptr && self.colind == t.colind
    }

    /// Extracts the sub-matrix of the given rows and columns (indices are
    /// renumbered to `0..rows.len()` / `0..cols.len()`).
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Csr {
        let mut colmap = vec![Idx::MAX; self.ncols];
        for (new, &old) in cols.iter().enumerate() {
            colmap[old] = new as Idx;
        }
        let mut out = Coo::new(rows.len(), cols.len());
        for (new_i, &old_i) in rows.iter().enumerate() {
            for (&c, &v) in self.row_cols(old_i).iter().zip(self.row_vals(old_i)) {
                let nc = colmap[c as usize];
                if nc != Idx::MAX {
                    out.push(new_i, nc as usize, v);
                }
            }
        }
        out.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Coo::from_triplets(3, 3, vec![0, 0, 2, 2], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0])
            .to_csr()
    }

    #[test]
    fn structure_accessors() {
        let a = sample();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.row_cols(2), &[0, 1]);
        assert_eq!(a.row_vals(0), &[1.0, 2.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let y = a.spmv_alloc(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![201.0, 0.0, 43.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn csc_roundtrip() {
        let a = sample();
        assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn row_of_nnz_inverts_row_range() {
        let a = sample();
        for i in 0..a.nrows() {
            for e in a.row_range(i) {
                assert_eq!(a.row_of_nnz(e), i);
            }
        }
    }

    #[test]
    fn pattern_symmetry() {
        assert!(Csr::identity(4).is_pattern_symmetric());
        assert!(!sample().is_pattern_symmetric());
        let mut c = Coo::from_pattern(2, 2, &[(0, 1), (1, 0)]);
        c.compress();
        assert!(c.to_csr().is_pattern_symmetric());
    }

    #[test]
    fn submatrix_renumbers() {
        let a = sample();
        let s = a.submatrix(&[0, 2], &[0, 1]);
        assert_eq!((s.nrows(), s.ncols()), (2, 2));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(0, 0, 1.0), (1, 0, 3.0), (1, 1, 4.0)]);
    }

    #[test]
    fn duplicate_summing_via_raw() {
        let mut a = Csr::from_raw(1, 3, vec![0, 3], vec![2, 0, 2], vec![1.0, 5.0, 2.0]);
        a.sort_and_sum_duplicates();
        assert_eq!(a.row_cols(0), &[0, 2]);
        assert_eq!(a.row_vals(0), &[5.0, 3.0]);
    }
}
