//! The [`Strategy`] enum and the [`Partitioner`] trait.

use s2d_baselines::oned::majority_col_owner;
use s2d_baselines::{
    partition_1d_b, partition_1d_colwise, partition_1d_rowwise, partition_2d_fine_grain,
    partition_checkerboard, partition_s2d_mg,
};
use s2d_core::heuristic::{s2d_heuristic_kway, HeuristicConfig};
use s2d_core::heuristic2::{s2d_generalized, Heuristic2Config};
use s2d_core::iterate::{iterate_s2d, IterateConfig};
use s2d_core::optimal::s2d_optimal;
use s2d_core::partition::SpmvPartition;
use s2d_hypergraph::models::column_net_model;
use s2d_hypergraph::{partition_kway, PartitionConfig};
use s2d_sparse::{Csr, MatrixStats};

use crate::quality::PartitionQuality;

/// Shared partitioner knobs (the two every method accepts).
#[derive(Clone, Copy, Debug)]
pub struct PartitionerConfig {
    /// Load-balance tolerance ε (the paper's 3% default).
    pub epsilon: f64,
    /// RNG seed for the hypergraph engine; runs are deterministic given
    /// a seed.
    pub seed: u64,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        PartitionerConfig { epsilon: 0.03, seed: 1 }
    }
}

/// A partitioning method: matrix + processor count in, full data
/// partition out. Every [`Strategy`] variant implements this; custom
/// partitioners slot in beside the built-ins (sessions and solvers only
/// see the produced [`SpmvPartition`]).
pub trait Partitioner {
    /// Short stable label (bench ids, CLI output, JSON reports).
    fn label(&self) -> String;

    /// Partitions `a` over `k` processors with explicit knobs.
    ///
    /// # Panics
    /// Panics when the method's structural prerequisites fail (the
    /// mesh-shaped baselines and the iterative refinement require a
    /// square matrix — see [`Strategy::requires_square`]).
    fn partition_with(&self, a: &Csr, k: usize, cfg: &PartitionerConfig) -> SpmvPartition;

    /// Partitions `a` over `k` processors with the default knobs
    /// (ε = 3%, seed 1).
    fn partition(&self, a: &Csr, k: usize) -> SpmvPartition {
        self.partition_with(a, k, &PartitionerConfig::default())
    }
}

/// Which semi-2D split refines the 1D-induced vector partition —
/// the deduplicated `heuristic`/`heuristic2` surface (both run the
/// shared sweep engine in `s2d_core::sweep`; see the module docs there
/// for the exact behavioral difference).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum S2dVariant {
    /// Algorithm 1 (Section IV-B): greedy `{A1, A2}` volume sweeps
    /// under the load cap. The paper's headline `s2D` method.
    Algorithm1,
    /// The generalized heuristic (Section VII): full `{A1, A2, A4, A3}`
    /// alternative family plus a balance pass that can offload
    /// overloaded row owners.
    Generalized,
    /// The per-block DM optimum (Section IV-A): minimum possible volume
    /// for the given vector partition, balance unconstrained.
    Optimal,
    /// Alternating vector/nonzero refinement (Section VII outlook);
    /// square matrices only.
    Iterative,
}

impl S2dVariant {
    /// Every variant, in sweep order.
    pub fn all() -> [S2dVariant; 4] {
        [
            S2dVariant::Algorithm1,
            S2dVariant::Generalized,
            S2dVariant::Optimal,
            S2dVariant::Iterative,
        ]
    }

    fn label(&self) -> &'static str {
        match self {
            S2dVariant::Algorithm1 => "s2d",
            S2dVariant::Generalized => "s2d-gen",
            S2dVariant::Optimal => "s2d-opt",
            S2dVariant::Iterative => "s2d-it",
        }
    }
}

/// Every partitioning method in the workspace as one selectable value.
///
/// `FromStr` accepts both the canonical labels (`Display` output) and
/// the legacy CLI spellings; [`Strategy::all`] and [`Strategy::fixed`]
/// drive the sweeps. The variants map onto the paper's method names:
/// `s2d*` (Sections IV/VII), `1d`/`1d-col` (Catalyurek–Aykanat 1D),
/// `2d` (fine-grain), `2d-b` (checkerboard), `1d-b` (Boman et al.),
/// `s2d-mg` (medium-grain, Pelt–Bisseling adapted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Semi-2D: 1D-rowwise vector partition refined by `variant`.
    SemiTwoD {
        /// Which refinement runs on the induced vector partition.
        variant: S2dVariant,
    },
    /// 1D rowwise via the column-net hypergraph model (the paper's `1D`).
    OneDRow,
    /// 1D columnwise via the row-net model (dual of [`Strategy::OneDRow`]).
    OneDCol,
    /// Cartesian checkerboard on the default mesh (the paper's `2D-b`);
    /// square matrices only.
    Checkerboard,
    /// 2D nonzero-based fine-grain partitioning (the paper's `2D`).
    FineGrain,
    /// Medium-grain adapted to emit s2D partitions (the paper's
    /// `s2D-mg`); square matrices only.
    MediumGrain,
    /// The 1D-to-mesh post-processing of Boman et al. (the paper's
    /// `1D-b`); square matrices only.
    Boman,
    /// The raw multilevel k-way engine on the column-net model without
    /// the 1D conventions (no diagonal pins) — isolates the hypergraph
    /// partitioner itself as a baseline.
    HypergraphKway,
    /// Cost-model-driven selection: matrix statistics prune the
    /// candidate set, the α–β–γ model picks the winner (see
    /// [`Strategy::auto_pick`]).
    Auto,
}

impl Strategy {
    /// Every strategy including [`Strategy::Auto`] — the sweep set for
    /// benches and conformance suites.
    pub fn all() -> Vec<Strategy> {
        let mut v = Self::fixed();
        v.push(Strategy::Auto);
        v
    }

    /// Every concrete strategy (everything but [`Strategy::Auto`]).
    pub fn fixed() -> Vec<Strategy> {
        let mut v: Vec<Strategy> =
            S2dVariant::all().into_iter().map(|variant| Strategy::SemiTwoD { variant }).collect();
        v.extend([
            Strategy::OneDRow,
            Strategy::OneDCol,
            Strategy::Checkerboard,
            Strategy::FineGrain,
            Strategy::MediumGrain,
            Strategy::Boman,
            Strategy::HypergraphKway,
        ]);
        v
    }

    /// True when the produced partition is guaranteed to satisfy the
    /// s2D property (and so supports the fused single-phase plan).
    pub fn claims_s2d(&self) -> bool {
        matches!(
            self,
            Strategy::SemiTwoD { .. }
                | Strategy::OneDRow
                | Strategy::OneDCol
                | Strategy::MediumGrain
                | Strategy::HypergraphKway
        )
    }

    /// True when the method only accepts square matrices (mesh-shaped
    /// baselines and the symmetric iterative refinement).
    pub fn requires_square(&self) -> bool {
        matches!(
            self,
            Strategy::Checkerboard
                | Strategy::MediumGrain
                | Strategy::Boman
                | Strategy::SemiTwoD { variant: S2dVariant::Iterative }
        )
    }

    /// Runs the auto-selection and reports what won and why: matrix
    /// statistics prune [`Strategy::fixed`] down to a candidate
    /// shortlist, each candidate partitions the matrix, and the α–β–γ
    /// model prices each one's best legal plan; the cheapest modeled
    /// per-iteration time wins (ties to the earlier candidate).
    ///
    /// The shortlist always contains `1d` and `s2d`; dense-row/skewed
    /// matrices add `s2d-gen` and `2d` (1D row balance collapses
    /// there); square matrices add `2d-b` once the mesh is nontrivial
    /// (K ≥ 4 — latency-bound routing starts paying when the α term
    /// dominates) and `s2d-mg` when skewed.
    pub fn auto_pick(a: &Csr, k: usize, cfg: &PartitionerConfig) -> AutoPick {
        let mut best: Option<(f64, Strategy, SpmvPartition, PartitionQuality)> = None;
        for s in Strategy::auto_candidates(a, k) {
            let p = s.partition_with(a, k, cfg);
            let q = PartitionQuality::measure(a, &p, s.to_string());
            let better = match &best {
                None => true,
                Some((t, ..)) => q.alpha_beta_time < *t,
            };
            if better {
                best = Some((q.alpha_beta_time, s, p, q));
            }
        }
        let (_, strategy, partition, quality) = best.expect("candidate set is never empty");
        AutoPick { strategy, partition, quality }
    }

    /// The matrix-statistics-pruned candidate shortlist behind
    /// [`Strategy::auto_pick`] — also the strategy axis of the
    /// `s2d-tune` empirical search. Deterministic for a given matrix
    /// (the statistics are pure functions of the structure) and never
    /// empty: `1d` and `s2d` are always present; dense-row/skewed
    /// matrices add `s2d-gen` and `2d` (1D row balance collapses
    /// there); square matrices add `2d-b` once the mesh is nontrivial
    /// (K ≥ 4) and `s2d-mg` when skewed.
    pub fn auto_candidates(a: &Csr, k: usize) -> Vec<Strategy> {
        let stats = MatrixStats::of(a);
        let square = a.nrows() == a.ncols();
        let skewed = stats.row_dmax as f64 > 8.0 * stats.row_davg.max(1.0)
            || stats.col_dmax as f64 > 8.0 * stats.col_davg.max(1.0);

        let mut candidates =
            vec![Strategy::OneDRow, Strategy::SemiTwoD { variant: S2dVariant::Algorithm1 }];
        if skewed {
            candidates.push(Strategy::SemiTwoD { variant: S2dVariant::Generalized });
            candidates.push(Strategy::FineGrain);
        }
        if square && k >= 4 {
            candidates.push(Strategy::Checkerboard);
        }
        if square && skewed {
            candidates.push(Strategy::MediumGrain);
        }
        candidates
    }
}

/// What [`Strategy::auto_pick`] decided.
#[derive(Clone, Debug)]
pub struct AutoPick {
    /// The winning concrete strategy.
    pub strategy: Strategy,
    /// Its partition.
    pub partition: SpmvPartition,
    /// Its measured quality (the modeled time that won the comparison).
    pub quality: PartitionQuality,
}

impl Partitioner for Strategy {
    fn label(&self) -> String {
        self.to_string()
    }

    fn partition_with(&self, a: &Csr, k: usize, cfg: &PartitionerConfig) -> SpmvPartition {
        let (eps, seed) = (cfg.epsilon, cfg.seed);
        match *self {
            Strategy::SemiTwoD { variant } => {
                let oned = partition_1d_rowwise(a, k, eps, seed);
                match variant {
                    S2dVariant::Algorithm1 => s2d_heuristic_kway(
                        a,
                        &oned.row_part,
                        &oned.col_part,
                        k,
                        &HeuristicConfig { epsilon: eps, ..Default::default() },
                    ),
                    S2dVariant::Generalized => s2d_generalized(
                        a,
                        &oned.row_part,
                        &oned.col_part,
                        k,
                        &Heuristic2Config { epsilon: eps, ..Default::default() },
                    ),
                    S2dVariant::Optimal => s2d_optimal(a, &oned.row_part, &oned.col_part, k),
                    S2dVariant::Iterative => {
                        assert_eq!(
                            a.nrows(),
                            a.ncols(),
                            "s2d-it requires a square matrix (symmetric refinement)"
                        );
                        let inner = Heuristic2Config { epsilon: eps, ..Default::default() };
                        let cfg = IterateConfig { inner, ..Default::default() };
                        iterate_s2d(a, &oned.row_part, k, &cfg).partition
                    }
                }
            }
            Strategy::OneDRow => partition_1d_rowwise(a, k, eps, seed).partition,
            Strategy::OneDCol => partition_1d_colwise(a, k, eps, seed).partition,
            Strategy::Checkerboard => partition_checkerboard(a, k, eps, seed).partition,
            Strategy::FineGrain => partition_2d_fine_grain(a, k, eps, seed),
            Strategy::MediumGrain => partition_s2d_mg(a, k, eps, seed),
            Strategy::Boman => {
                assert_eq!(a.nrows(), a.ncols(), "1d-b requires a square matrix");
                let oned = partition_1d_rowwise(a, k, eps, seed);
                partition_1d_b(a, &oned.row_part, k)
            }
            Strategy::HypergraphKway => {
                let square = a.nrows() == a.ncols();
                let hg = column_net_model(a, false);
                let kcfg = PartitionConfig { epsilon: eps, seed, ..Default::default() };
                let row_part = partition_kway(&hg, k, &kcfg).parts;
                let col_part =
                    if square { row_part.clone() } else { majority_col_owner(a, &row_part, k) };
                SpmvPartition::rowwise(a, row_part, col_part, k)
            }
            Strategy::Auto => Strategy::auto_pick(a, k, cfg).partition,
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses both the canonical labels and the legacy CLI spellings
    /// (`1d`, `1d-col`, `2d`, `s2d`, `s2d-opt`, `s2d-mg`, `2d-b`,
    /// `1d-b` keep working unchanged).
    fn from_str(s: &str) -> Result<Strategy, String> {
        match s {
            "s2d" => Ok(Strategy::SemiTwoD { variant: S2dVariant::Algorithm1 }),
            "s2d-gen" | "s2d2" => Ok(Strategy::SemiTwoD { variant: S2dVariant::Generalized }),
            "s2d-opt" => Ok(Strategy::SemiTwoD { variant: S2dVariant::Optimal }),
            "s2d-it" | "s2d-iter" => Ok(Strategy::SemiTwoD { variant: S2dVariant::Iterative }),
            "1d" | "1d-row" => Ok(Strategy::OneDRow),
            "1d-col" => Ok(Strategy::OneDCol),
            "2d-b" | "checkerboard" => Ok(Strategy::Checkerboard),
            "2d" | "fine-grain" => Ok(Strategy::FineGrain),
            "s2d-mg" | "medium-grain" => Ok(Strategy::MediumGrain),
            "1d-b" | "boman" => Ok(Strategy::Boman),
            "hg-kway" | "kway" => Ok(Strategy::HypergraphKway),
            "auto" => Ok(Strategy::Auto),
            other => Err(format!(
                "unknown partitioner {other:?} \
                 (s2d|s2d-gen|s2d-opt|s2d-it|1d|1d-col|2d|2d-b|s2d-mg|1d-b|hg-kway|auto)"
            )),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::SemiTwoD { variant } => variant.label(),
            Strategy::OneDRow => "1d",
            Strategy::OneDCol => "1d-col",
            Strategy::Checkerboard => "2d-b",
            Strategy::FineGrain => "2d",
            Strategy::MediumGrain => "s2d-mg",
            Strategy::Boman => "1d-b",
            Strategy::HypergraphKway => "hg-kway",
            Strategy::Auto => "auto",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::comm::comm_requirements;
    use s2d_sparse::Coo;

    fn grid(n: usize) -> Csr {
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 4.0);
            if i + 1 < n {
                m.push(i, i + 1, -1.0);
                m.push(i + 1, i, -1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    #[test]
    fn display_fromstr_roundtrip_covers_every_strategy() {
        for s in Strategy::all() {
            let back: Strategy = s.to_string().parse().expect("canonical label parses");
            assert_eq!(back, s, "{s}");
        }
        assert!("nonsense".parse::<Strategy>().is_err());
    }

    #[test]
    fn legacy_cli_spellings_still_parse() {
        for (name, want) in [
            ("1d", Strategy::OneDRow),
            ("1d-col", Strategy::OneDCol),
            ("2d", Strategy::FineGrain),
            ("s2d", Strategy::SemiTwoD { variant: S2dVariant::Algorithm1 }),
            ("s2d-opt", Strategy::SemiTwoD { variant: S2dVariant::Optimal }),
            ("s2d-mg", Strategy::MediumGrain),
            ("2d-b", Strategy::Checkerboard),
            ("1d-b", Strategy::Boman),
        ] {
            assert_eq!(name.parse::<Strategy>().unwrap(), want, "{name}");
        }
    }

    #[test]
    fn all_is_fixed_plus_auto() {
        let all = Strategy::all();
        let fixed = Strategy::fixed();
        assert_eq!(all.len(), fixed.len() + 1);
        assert_eq!(*all.last().unwrap(), Strategy::Auto);
        assert!(!fixed.contains(&Strategy::Auto));
    }

    #[test]
    fn every_fixed_strategy_partitions_a_grid() {
        let a = grid(48);
        for s in Strategy::fixed() {
            let p = s.partition(&a, 4);
            p.assert_shape(&a);
            assert_eq!(p.k, 4, "{s}");
            if s.claims_s2d() {
                assert!(p.validate_s2d(&a).is_ok(), "{s} must be s2D");
            }
        }
    }

    #[test]
    fn semi_2d_never_exceeds_1d_volume() {
        // Algorithm 1 starts from 1D rowwise and only takes
        // volume-reducing flips: λ(s2d) ≤ λ(1d) with the same seed.
        let a = grid(64);
        let cfg = PartitionerConfig::default();
        let v1 =
            comm_requirements(&a, &Strategy::OneDRow.partition_with(&a, 4, &cfg)).total_volume();
        let vs = comm_requirements(
            &a,
            &Strategy::SemiTwoD { variant: S2dVariant::Algorithm1 }.partition_with(&a, 4, &cfg),
        )
        .total_volume();
        assert!(vs <= v1, "s2d {vs} > 1d {v1}");
    }

    #[test]
    fn auto_picks_a_concrete_strategy() {
        let a = grid(48);
        let pick = Strategy::auto_pick(&a, 4, &PartitionerConfig::default());
        assert_ne!(pick.strategy, Strategy::Auto);
        pick.partition.assert_shape(&a);
        // The Partitioner impl returns the same partition.
        assert_eq!(Strategy::Auto.partition(&a, 4), pick.partition);
    }

    #[test]
    fn auto_candidates_are_deterministic_and_contain_the_pick() {
        let a = grid(48);
        let candidates = Strategy::auto_candidates(&a, 4);
        assert!(!candidates.is_empty());
        assert_eq!(candidates, Strategy::auto_candidates(&a, 4), "pure function of (a, k)");
        assert!(candidates.contains(&Strategy::OneDRow), "1d is always shortlisted");
        let pick = Strategy::auto_pick(&a, 4, &PartitionerConfig::default());
        assert!(candidates.contains(&pick.strategy), "auto_pick chooses from the shortlist");
    }

    #[test]
    fn rectangular_matrices_work_on_the_rect_capable_subset() {
        let a = Coo::from_pattern(
            6,
            4,
            &[(0, 0), (1, 1), (2, 2), (3, 3), (4, 0), (5, 1), (0, 3), (2, 0)],
        )
        .to_csr();
        for s in Strategy::fixed().into_iter().filter(|s| !s.requires_square()) {
            let p = s.partition(&a, 2);
            p.assert_shape(&a);
            if s.claims_s2d() {
                assert!(p.validate_s2d(&a).is_ok(), "{s}");
            }
        }
    }
}
