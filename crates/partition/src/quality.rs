//! Partition-quality reports: the paper's comparison columns priced
//! through the machine models.

use s2d_core::comm::CommStats;
use s2d_core::partition::SpmvPartition;
use s2d_sim::{simulate_loggp, LogGpModel, MachineModel};
use s2d_sparse::Csr;
use s2d_spmv::{simulate_plan, to_phase_specs, PlanKind, PlanPhase};

/// Quality metrics of one partition under its best legal SpMV plan —
/// what the paper's tables report per (matrix, method, K) cell, plus
/// modeled per-iteration times under both machine models.
#[derive(Clone, Debug)]
pub struct PartitionQuality {
    /// The strategy label that produced the partition.
    pub strategy: String,
    /// Number of processors.
    pub k: usize,
    /// Whether the partition satisfies the s2D property (and hence ran
    /// the fused single-phase plan).
    pub s2d: bool,
    /// Plan kind label the metrics were measured under.
    pub plan: &'static str,
    /// Total communication volume in words (the paper's λ).
    pub volume: u64,
    /// Load imbalance `max/avg − 1` (the paper's LI when ×100).
    pub load_imbalance: f64,
    /// Maximum per-processor multiply-add load.
    pub max_load: u64,
    /// Total messages per iteration across all phases.
    pub total_messages: u64,
    /// Average messages sent per processor.
    pub avg_send_msgs: f64,
    /// Maximum messages sent by one processor (the latency bottleneck).
    pub max_send_msgs: u32,
    /// Maximum words sent by one processor (the bandwidth bottleneck).
    pub max_send_volume: u64,
    /// Number of communication phases in the plan (1 for fused s2D,
    /// 2 for expand/fold or mesh-routed).
    pub comm_phases: usize,
    /// Modeled per-iteration time under the α–β–γ model (seconds).
    pub alpha_beta_time: f64,
    /// Modeled per-iteration time under the LogGP model (seconds).
    pub loggp_time: f64,
    /// Modeled speedup over serial under the α–β–γ model (the paper's
    /// `Sp` columns).
    pub speedup: f64,
}

impl PartitionQuality {
    /// Measures `p` on `a` under the best legal plan kind
    /// ([`PlanKind::auto`]: fused single-phase when the partition is
    /// s2D, two-phase otherwise) with the XE6-flavoured machine models.
    pub fn measure(a: &Csr, p: &SpmvPartition, strategy: impl Into<String>) -> Self {
        let kind = PlanKind::auto(a, p);
        Self::measure_with(a, p, kind, strategy)
    }

    /// [`PartitionQuality::measure`] under an explicit plan kind (e.g.
    /// [`PlanKind::MeshAuto`] to price the bounded-latency routing).
    pub fn measure_with(
        a: &Csr,
        p: &SpmvPartition,
        kind: PlanKind,
        strategy: impl Into<String>,
    ) -> Self {
        Self::measure_plan(a, p, kind, &kind.build(a, p), strategy)
    }

    /// Prices an already-built plan of kind `kind` for `(a, p)` —
    /// callers that hold the plan anyway (the CLI `analyze`) skip the
    /// rebuild the other constructors pay.
    pub fn measure_plan(
        a: &Csr,
        p: &SpmvPartition,
        kind: PlanKind,
        plan: &s2d_spmv::SpmvPlan,
        strategy: impl Into<String>,
    ) -> Self {
        let stats: CommStats = plan.comm_stats();
        let ab = simulate_plan(plan, &MachineModel::cray_xe6());
        let lg = simulate_loggp(
            plan.k,
            &to_phase_specs(plan),
            plan.total_ops(),
            &LogGpModel::cray_xe6(),
        );
        let comm_phases = plan.phases.iter().filter(|ph| matches!(ph, PlanPhase::Comm(_))).count();
        PartitionQuality {
            strategy: strategy.into(),
            k: p.k,
            s2d: p.is_s2d(a),
            plan: kind.label(),
            volume: stats.total_volume,
            load_imbalance: p.load_imbalance(),
            max_load: plan.loads().into_iter().max().unwrap_or(0),
            total_messages: stats.total_messages,
            avg_send_msgs: stats.avg_send_msgs(),
            max_send_msgs: stats.max_send_msgs(),
            max_send_volume: stats.max_send_volume(),
            comm_phases,
            alpha_beta_time: ab.parallel_time,
            loggp_time: lg.parallel_time,
            speedup: ab.speedup(),
        }
    }

    /// The quality as one JSON object (hand-rolled; the workspace has
    /// no serde). Strings are labels from [`std::fmt::Display`] impls
    /// and contain no characters needing escapes.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"strategy\":\"{}\",\"k\":{},\"s2d\":{},\"plan\":\"{}\",",
                "\"volume\":{},\"load_imbalance\":{:.6},\"max_load\":{},",
                "\"total_messages\":{},\"avg_send_msgs\":{:.3},\"max_send_msgs\":{},",
                "\"max_send_volume\":{},\"comm_phases\":{},",
                "\"alpha_beta_time\":{:.9},\"loggp_time\":{:.9},\"speedup\":{:.3}}}"
            ),
            self.strategy,
            self.k,
            self.s2d,
            self.plan,
            self.volume,
            self.load_imbalance,
            self.max_load,
            self.total_messages,
            self.avg_send_msgs,
            self.max_send_msgs,
            self.max_send_volume,
            self.comm_phases,
            self.alpha_beta_time,
            self.loggp_time,
            self.speedup,
        )
    }
}

/// Header matching [`fmt_quality_row`] for aligned table printing.
pub fn quality_header() -> String {
    format!(
        "{:<10} {:>5} {:>4} {:>9} {:>7} {:>5}/{:>4} {:>3} {:>10} {:>10} {:>7}",
        "strategy", "K", "s2d", "volume", "LI", "avg", "max", "ph", "t(ab) us", "t(lgp) us", "Sp"
    )
}

/// One aligned report row (pairs with [`quality_header`]).
pub fn fmt_quality_row(q: &PartitionQuality) -> String {
    format!(
        "{:<10} {:>5} {:>4} {:>9} {:>6.1}% {:>5.1}/{:>4} {:>3} {:>10.1} {:>10.1} {:>7.1}",
        q.strategy,
        q.k,
        if q.s2d { "yes" } else { "no" },
        q.volume,
        q.load_imbalance * 100.0,
        q.avg_send_msgs,
        q.max_send_msgs,
        q.comm_phases,
        q.alpha_beta_time * 1e6,
        q.loggp_time * 1e6,
        q.speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};

    #[test]
    fn fig1_quality_is_consistent() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let q = PartitionQuality::measure(&a, &p, "fig1");
        assert!(q.s2d);
        assert_eq!(q.plan, "single_phase");
        assert_eq!(q.comm_phases, 1);
        assert!(q.volume > 0);
        assert!(q.alpha_beta_time > 0.0 && q.loggp_time > 0.0);
        assert_eq!(q.max_load, p.loads().into_iter().max().unwrap());
        // Mesh pricing routes through two phases.
        let qm = PartitionQuality::measure_with(&a, &p, PlanKind::MeshAuto, "fig1");
        assert_eq!(qm.comm_phases, 2);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let q = PartitionQuality::measure(&a, &p, "fig1");
        let j = q.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"strategy\":\"fig1\""));
        assert!(j.contains("\"volume\":"));
        assert_eq!(j.matches('{').count(), 1);
    }
}
