//! The unified partitioner layer: one [`Strategy`] enum over the
//! paper's semi-2D methods and every baseline, behind one
//! [`Partitioner`] trait.
//!
//! The paper's contribution *is* the partitioning — semi-2D splitting
//! of dense rows against 1D and 2D baselines — yet historically the
//! partitioners lived behind incompatible ad-hoc entry points scattered
//! across `s2d-core` (heuristic, heuristic2, optimal, iterate),
//! `s2d-baselines` (1D, checkerboard, fine-grain, medium-grain, 1D-b)
//! and `s2d-hypergraph` (the raw k-way engine). This crate gives
//! partitioning the same first-class, enumerable, auto-selectable
//! treatment the engine gives kernels (`KernelFormat::Auto`) and
//! backends (`Backend::auto`):
//!
//! * [`Strategy`] — every partitioning method as one enum variant, with
//!   `FromStr`/`Display`/[`Strategy::all`] so sessions, the CLI, the
//!   benches and the conformance suites sweep the same set; adding a
//!   partitioner means adding a variant and an arm.
//! * [`Partitioner`] — the one-method trait (`partition(&Csr, k)`)
//!   every strategy implements; custom partitioners slot in beside the
//!   built-ins.
//! * [`PartitionQuality`] — the paper's reporting columns (communication
//!   volume, load imbalance, message counts, phase counts) priced
//!   through the `s2d-sim` α–β–γ and LogGP machine models.
//! * [`Strategy::Auto`] — cost-model-driven selection: matrix
//!   statistics prune the candidate set, the machine model picks the
//!   winner — the partitioning analogue of `KernelFormat::Auto`.

pub mod quality;
pub mod strategy;

pub use quality::PartitionQuality;
pub use strategy::{AutoPick, Partitioner, PartitionerConfig, S2dVariant, Strategy};
