//! Serve-layer acceptance tests: the differential guarantees
//! (coalesced concurrent execution bitwise-identical to sequential
//! per-request solves, with and without chaos), admission behavior
//! (queue-full rejection, deadline expiry) and cache reuse across
//! registrations.

use std::sync::Arc;
use std::time::{Duration, Instant};

use s2d::{Session, Strategy};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_runtime::ChaosConfig;
use s2d_serve::{ServeError, Server, ServerConfig};
use s2d_sparse::Csr;

fn test_matrix(scale: u32) -> Csr {
    rmat(&RmatConfig::graph500(scale, 8), 42).to_csr()
}

/// Deterministic per-request input: request `i`'s RHS.
fn rhs(ncols: usize, i: usize) -> Vec<f64> {
    (0..ncols).map(|j| ((j * 31 + i * 17) % 23) as f64 - 11.0).collect()
}

/// Sequential per-request reference on the same compiled stack the
/// server uses.
fn sequential_reference(
    a: &Csr,
    strategy: Strategy,
    k: usize,
    inputs: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let mut s = Session::builder(a).partitioner(strategy, k).build();
    inputs
        .iter()
        .map(|x| {
            let mut y = vec![0.0; a.nrows()];
            s.apply(x, &mut y);
            y
        })
        .collect()
}

#[test]
fn concurrent_coalesced_results_match_sequential_bitwise() {
    let a = test_matrix(8);
    let (strategy, k) = (Strategy::OneDRow, 4);
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;
    let inputs: Vec<Vec<f64>> = (0..CLIENTS * PER_CLIENT).map(|i| rhs(a.ncols(), i)).collect();
    let want = sequential_reference(&a, strategy, k, &inputs);

    let server = Arc::new(Server::new(ServerConfig {
        max_coalesce: 8,
        batch_window: Duration::from_millis(2),
        ..ServerConfig::default()
    }));
    let sid = server.register(&a, strategy, k);
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let inputs: Vec<Vec<f64>> =
                (0..PER_CLIENT).map(|m| inputs[c * PER_CLIENT + m].clone()).collect();
            std::thread::spawn(move || {
                // Fire all requests first, then wait — the server sees
                // real concurrency and can coalesce.
                let tickets: Vec<_> =
                    inputs.into_iter().map(|x| server.submit(sid, x).expect("admission")).collect();
                tickets.into_iter().map(|t| t.wait().expect("solve")).collect::<Vec<_>>()
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("client thread");
        for (m, y) in got.into_iter().enumerate() {
            let i = c * PER_CLIENT + m;
            assert_eq!(y, want[i], "request {i}: coalesced result must match sequential bitwise");
        }
    }
    let snap = server.snapshot();
    assert_eq!(snap.admitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.coalesced, snap.completed, "every request runs in some batch");
    assert!(snap.batches <= snap.completed);
    assert_eq!((snap.rejected_full, snap.expired), (0, 0));
}

#[test]
fn burst_from_one_client_coalesces() {
    let a = test_matrix(8);
    let server = Server::new(ServerConfig {
        max_coalesce: 8,
        batch_window: Duration::from_millis(20),
        ..ServerConfig::default()
    });
    let sid = server.register(&a, Strategy::OneDRow, 2);
    let n = 16;
    let inputs: Vec<Vec<f64>> = (0..n).map(|i| rhs(a.ncols(), i)).collect();
    let want = sequential_reference(&a, Strategy::OneDRow, 2, &inputs);
    let tickets: Vec<_> =
        inputs.into_iter().map(|x| server.submit(sid, x).expect("admission")).collect();
    for (i, t) in tickets.into_iter().enumerate() {
        assert_eq!(t.wait().expect("solve"), want[i], "request {i}");
    }
    let snap = server.snapshot();
    assert_eq!(snap.completed, n as u64);
    // 16 requests fired before the first window closed: the worker must
    // have packed them into far fewer batches than requests.
    assert!(
        snap.batches < snap.completed,
        "expected coalescing: {} batches for {} requests",
        snap.batches,
        snap.completed
    );
    assert!(snap.coalescing_rate() > 1.0);
}

#[test]
fn chaotic_sharded_serving_is_bitwise_identical_to_quiet_solves() {
    let a = test_matrix(7);
    let (strategy, k) = (Strategy::OneDRow, 4);
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 4;
    let inputs: Vec<Vec<f64>> = (0..CLIENTS * PER_CLIENT).map(|i| rhs(a.ncols(), i)).collect();

    // Quiet per-request reference through the same sharded executor.
    let quiet = {
        use s2d::SpmvOperator;
        let prep = Session::builder(&a).partitioner(strategy, k).prepare();
        let mut op = s2d_serve::ShardedOperator::new(Arc::clone(prep.plan()));
        inputs
            .iter()
            .map(|x| {
                let mut y = vec![0.0; a.nrows()];
                op.apply(x, &mut y);
                y
            })
            .collect::<Vec<_>>()
    };

    let server = Arc::new(Server::new(ServerConfig {
        sharded: true,
        chaos: ChaosConfig::with_delays(100, 9),
        max_coalesce: 4,
        batch_window: Duration::from_millis(2),
        ..ServerConfig::default()
    }));
    let sid = server.register(&a, strategy, k);
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let inputs: Vec<Vec<f64>> =
                (0..PER_CLIENT).map(|m| inputs[c * PER_CLIENT + m].clone()).collect();
            std::thread::spawn(move || {
                let tickets: Vec<_> =
                    inputs.into_iter().map(|x| server.submit(sid, x).expect("admission")).collect();
                tickets.into_iter().map(|t| t.wait().expect("solve")).collect::<Vec<_>>()
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        for (m, y) in h.join().expect("client").into_iter().enumerate() {
            let i = c * PER_CLIENT + m;
            assert_eq!(
                y, quiet[i],
                "request {i}: chaotic coalesced sharded run must match quiet run bitwise"
            );
        }
    }
    assert_eq!(server.snapshot().completed, (CLIENTS * PER_CLIENT) as u64);
}

#[test]
fn repeat_registrations_hit_the_preparation_cache() {
    let a = test_matrix(7);
    let server = Server::new(ServerConfig::default());
    let s1 = server.register(&a, Strategy::OneDRow, 4);
    let s2 = server.register(&a, Strategy::OneDRow, 4); // same prep → hit
    let s3 = server.register(&a, Strategy::OneDRow, 2); // different k → miss
    let snap = server.snapshot();
    assert_eq!((snap.cache_hits, snap.cache_misses), (1, 2));
    assert_eq!(server.cache().len(), 2);
    // All three sessions serve correct answers.
    let x = rhs(a.ncols(), 0);
    let want = a.spmv_alloc(&x);
    for sid in [s1, s2, s3] {
        let y = server.solve(sid, x.clone()).expect("solve");
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
    }
}

#[test]
fn cache_eviction_keeps_the_store_bounded() {
    let a7 = test_matrix(7);
    let a8 = test_matrix(8);
    let server = Server::new(ServerConfig { cache_capacity: 2, ..ServerConfig::default() });
    server.register(&a7, Strategy::OneDRow, 2);
    server.register(&a7, Strategy::OneDRow, 4);
    server.register(&a8, Strategy::OneDRow, 2); // third prep → evicts one
    let snap = server.snapshot();
    assert_eq!(snap.cache_misses, 3);
    assert_eq!(snap.cache_evictions, 1);
    assert_eq!(server.cache().len(), 2);
}

#[test]
fn full_queues_reject_instead_of_blocking() {
    // A heavy pre-batched request occupies the worker; the tiny queue
    // behind it fills and the next submission must bounce immediately.
    let a = test_matrix(12);
    let server = Server::new(ServerConfig {
        queue_capacity: 2,
        max_coalesce: 1,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    });
    let sid = server.register(&a, Strategy::OneDRow, 4);
    let wide: Vec<f64> = (0..a.ncols() * 8).map(|i| (i % 13) as f64).collect();
    let busy = server.submit_batch(sid, wide, 8).expect("first request admitted");
    // While the worker grinds through the wide batch, fill the queue.
    let mut outcomes = Vec::new();
    for i in 0..8 {
        outcomes.push(server.submit(sid, rhs(a.ncols(), i)).err());
    }
    let rejected = outcomes.iter().filter(|o| **o == Some(ServeError::QueueFull)).count();
    assert!(rejected >= 6, "queue of 2 must bounce most of 8 instant submissions");
    assert_eq!(server.snapshot().rejected_full, rejected as u64);
    let y = busy.wait().expect("wide batch still completes");
    assert_eq!(y.len(), a.nrows() * 8);
}

#[test]
fn expired_deadlines_are_refused_not_executed() {
    let a = test_matrix(7);
    let server = Server::new(ServerConfig::default());
    let sid = server.register(&a, Strategy::OneDRow, 2);
    // A deadline already in the past must be refused at dequeue.
    let t = server
        .submit_with_deadline(sid, rhs(a.ncols(), 0), Instant::now() - Duration::from_millis(1))
        .expect("admission succeeds; expiry happens at dequeue");
    assert_eq!(t.wait(), Err(ServeError::Expired));
    // A generous deadline executes normally.
    let t = server
        .submit_with_deadline(sid, rhs(a.ncols(), 1), Instant::now() + Duration::from_secs(30))
        .expect("admission");
    assert!(t.wait().is_ok());
    let snap = server.snapshot();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.completed, 1);
}

#[test]
fn mixed_width_requests_interleave_correctly() {
    let a = test_matrix(7);
    let server = Server::new(ServerConfig {
        max_coalesce: 4,
        batch_window: Duration::from_millis(5),
        ..ServerConfig::default()
    });
    let sid = server.register(&a, Strategy::OneDRow, 2);
    let singles: Vec<Vec<f64>> = (0..3).map(|i| rhs(a.ncols(), i)).collect();
    let want = sequential_reference(&a, Strategy::OneDRow, 2, &singles);
    // Row-major width-2 block from inputs 10 and 11.
    let (wa, wb) = (rhs(a.ncols(), 10), rhs(a.ncols(), 11));
    let mut wide = vec![0.0; a.ncols() * 2];
    for j in 0..a.ncols() {
        wide[j * 2] = wa[j];
        wide[j * 2 + 1] = wb[j];
    }
    let wide_want = sequential_reference(&a, Strategy::OneDRow, 2, &[wa, wb]);

    let t0 = server.submit(sid, singles[0].clone()).expect("admit");
    let tw = server.submit_batch(sid, wide, 2).expect("admit");
    let t1 = server.submit(sid, singles[1].clone()).expect("admit");
    let t2 = server.submit(sid, singles[2].clone()).expect("admit");
    assert_eq!(t0.wait().expect("single 0"), want[0]);
    let yw = tw.wait().expect("wide");
    for q in 0..2 {
        let col: Vec<f64> = (0..a.nrows()).map(|g| yw[g * 2 + q]).collect();
        assert_eq!(col, wide_want[q], "wide column {q}");
    }
    assert_eq!(t1.wait().expect("single 1"), want[1]);
    assert_eq!(t2.wait().expect("single 2"), want[2]);
    assert_eq!(server.snapshot().completed, 4);
}

#[test]
fn tuning_cache_verdicts_override_the_configured_defaults() {
    use s2d_tune::{TuneBudget, Tuner};
    let a = test_matrix(7);
    let path = std::env::temp_dir().join(format!("s2d-serve-tune-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig { tuning_cache: Some(path.clone()), ..ServerConfig::default() };
    let width = config.max_coalesce.max(1);

    // No verdict on disk yet: the lookup is a miss and the configured
    // defaults serve.
    let server = Server::new(config.clone());
    let sid = server.register(&a, Strategy::OneDRow, 4);
    let snap = server.snapshot();
    assert_eq!((snap.tuner_hits, snap.tuner_misses), (0, 1));
    assert!(server.solve(sid, rhs(a.ncols(), 0)).is_ok());
    drop(server);

    // Tune the exact serve workload (same matrix, k, coalescing width)
    // into the cache, then register again: hit, and the measured
    // configuration overrides strategy/format/backend.
    let verdict = Tuner::new(&a, 4).width(width).budget(TuneBudget::fast()).cache(&path).run();
    let server = Server::new(config);
    let sid = server.register(&a, Strategy::OneDRow, 4);
    let snap = server.snapshot();
    assert_eq!((snap.tuner_hits, snap.tuner_misses), (1, 0));
    // The tuned strategy (not the requested OneDRow) produced the prep,
    // and the served answers stay correct under it.
    let x = rhs(a.ncols(), 3);
    let want = a.spmv_alloc(&x);
    let y = server.solve(sid, x).expect("tuned session serves");
    for (g, w) in y.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{}: {g} vs {w}", verdict.winner);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unregister_closes_the_session_and_runs_pending_work() {
    let a = test_matrix(7);
    let server = Server::new(ServerConfig::default());
    let sid = server.register(&a, Strategy::OneDRow, 2);
    let t = server.submit(sid, rhs(a.ncols(), 0)).expect("admit");
    server.unregister(sid);
    assert!(t.wait().is_ok(), "queued work finishes before the worker exits");
    assert_eq!(server.submit(sid, rhs(a.ncols(), 1)).err(), Some(ServeError::SessionClosed));
}
