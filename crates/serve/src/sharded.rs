//! Rank-sharded execution over `s2d-runtime` endpoints, hardened for
//! serving: **bitwise deterministic under arbitrary delivery
//! interleavings**, including chaos-injected delays, and batch-capable
//! so coalesced requests run through the same code path as single
//! solves.
//!
//! The stock threaded executor accumulates partial sums in arrival
//! order, so two runs of the same plan can differ in the last ulp —
//! fine for validation against a tolerance, fatal for a serving layer
//! that promises coalesced results identical to per-request ones. This
//! executor closes the gap with two rules: every per-rank buffer is an
//! ordered map (`BTreeMap`), and each communication phase first
//! collects *all* expected messages, sorts them by sender, and only
//! then folds them in. The floating-point reduction order is therefore
//! a pure function of the plan, never of the scheduler — a chaotic run
//! and a quiet run produce the same bits, and column `q` of a width-`r`
//! batch produces the same bits as a width-1 run of that column.

use std::collections::BTreeMap;

use s2d_runtime::{spmd, ChaosConfig, Cluster, Endpoint, Envelope};
use s2d_spmv::{MsgSpec, PlanPhase, SpmvOperator, SpmvPlan};
use std::sync::Arc;

/// Payload of one phase message: `x` columns and partial-`y` rows, each
/// carrying `r` lanes (one per coalesced right-hand side).
type Payload = (Vec<(u32, Vec<f64>)>, Vec<(u32, Vec<f64>)>);

/// A batch-capable, chaos-proof distributed SpMV operator: `plan.k`
/// ranks on OS threads exchanging plan messages through the runtime,
/// with a deterministic reduction order (see the module docs).
pub struct ShardedOperator {
    plan: Arc<SpmvPlan>,
    chaos: ChaosConfig,
}

impl ShardedOperator {
    /// A quiet sharded operator over `plan`.
    pub fn new(plan: Arc<SpmvPlan>) -> ShardedOperator {
        ShardedOperator::with_chaos(plan, ChaosConfig::off())
    }

    /// A sharded operator with delivery-delay injection — results are
    /// bitwise identical to the quiet operator's, only slower.
    pub fn with_chaos(plan: Arc<SpmvPlan>, chaos: ChaosConfig) -> ShardedOperator {
        ShardedOperator { plan, chaos }
    }
}

impl SpmvOperator for ShardedOperator {
    fn nrows(&self) -> usize {
        self.plan.nrows
    }

    fn ncols(&self) -> usize {
        self.plan.ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        execute_sharded(&self.plan, x, y, 1, self.chaos);
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        execute_sharded(&self.plan, x, y, r, self.chaos);
    }

    fn deterministic(&self) -> bool {
        true
    }
}

/// Per-rank view of one phase (mirrors the plan's phase list).
enum RankPhase<'a> {
    Compute(&'a [s2d_spmv::MultTask]),
    Comm { tag: u32, outgoing: Vec<&'a MsgSpec>, expected: usize },
}

fn rank_scripts(plan: &SpmvPlan) -> Vec<Vec<RankPhase<'_>>> {
    let k = plan.k;
    let mut scripts: Vec<Vec<RankPhase<'_>>> = (0..k).map(|_| Vec::new()).collect();
    for (idx, phase) in plan.phases.iter().enumerate() {
        match phase {
            PlanPhase::Compute(tasks) => {
                for (p, list) in tasks.iter().enumerate() {
                    scripts[p].push(RankPhase::Compute(list));
                }
            }
            PlanPhase::Comm(msgs) => {
                let mut outgoing: Vec<Vec<&MsgSpec>> = vec![Vec::new(); k];
                let mut expected = vec![0usize; k];
                for m in msgs {
                    outgoing[m.src as usize].push(m);
                    expected[m.dst as usize] += 1;
                }
                for (p, out) in outgoing.into_iter().enumerate() {
                    scripts[p].push(RankPhase::Comm {
                        tag: idx as u32,
                        outgoing: out,
                        expected: expected[p],
                    });
                }
            }
        }
    }
    scripts
}

/// Executes `plan` on the row-major batch `x` (`x[j*r + q]` = column
/// `q` of input `j`), writing the row-major result into `y`.
fn execute_sharded(plan: &SpmvPlan, x: &[f64], y: &mut [f64], r: usize, chaos: ChaosConfig) {
    assert!(r >= 1, "batch width must be at least 1");
    assert_eq!(x.len(), plan.ncols * r, "input length mismatch");
    assert_eq!(y.len(), plan.nrows * r, "output length mismatch");
    let k = plan.k;
    let scripts = rank_scripts(plan);

    // Initial x placement: each rank's owned columns, all r lanes.
    let mut init_x: Vec<Vec<(u32, Vec<f64>)>> = vec![Vec::new(); k];
    for j in 0..plan.ncols {
        init_x[plan.x_part[j] as usize].push((j as u32, x[j * r..(j + 1) * r].to_vec()));
    }
    let init_x = std::sync::Mutex::new(init_x);

    let results = spmd(Cluster::<Payload>::with_chaos(k, chaos), |ep| {
        let p = ep.rank() as usize;
        let my_x = std::mem::take(&mut init_x.lock().expect("init lock")[p]);
        let final_y = run_rank(ep, &scripts[p], my_x, r);
        debug_assert!(ep.drained(), "rank {p} exits with unconsumed messages");
        final_y
    });

    // Assemble y from each owner's final accumulators.
    let mut owner_y: Vec<BTreeMap<u32, Vec<f64>>> =
        results.into_iter().map(|pairs| pairs.into_iter().collect()).collect();
    for i in 0..plan.nrows {
        match owner_y[plan.y_part[i] as usize].remove(&(i as u32)) {
            Some(lanes) => y[i * r..(i + 1) * r].copy_from_slice(&lanes),
            None => y[i * r..(i + 1) * r].fill(0.0),
        }
    }
}

fn run_rank(
    ep: &mut Endpoint<Payload>,
    script: &[RankPhase<'_>],
    my_x: Vec<(u32, Vec<f64>)>,
    r: usize,
) -> Vec<(u32, Vec<f64>)> {
    let p = ep.rank();
    let mut xbuf: BTreeMap<u32, Vec<f64>> = my_x.into_iter().collect();
    let mut ybuf: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for phase in script {
        match phase {
            RankPhase::Compute(tasks) => {
                for t in *tasks {
                    let xv = xbuf
                        .get(&t.col)
                        .unwrap_or_else(|| panic!("rank {p} lacks x[{}]: plan bug", t.col));
                    let acc = ybuf.entry(t.row).or_insert_with(|| vec![0.0; r]);
                    for q in 0..r {
                        acc[q] += t.val * xv[q];
                    }
                }
            }
            RankPhase::Comm { tag, outgoing, expected } => {
                for m in outgoing {
                    let xs: Vec<(u32, Vec<f64>)> = m
                        .x_cols
                        .iter()
                        .map(|&j| {
                            (
                                j,
                                xbuf.get(&j)
                                    .unwrap_or_else(|| {
                                        panic!("rank {p} lacks x[{j}] to send: plan bug")
                                    })
                                    .clone(),
                            )
                        })
                        .collect();
                    let ys: Vec<(u32, Vec<f64>)> = m
                        .y_rows
                        .iter()
                        .map(|&i| {
                            (
                                i,
                                ybuf.remove(&i).unwrap_or_else(|| {
                                    panic!("rank {p} lacks partial y[{i}] to send: plan bug")
                                }),
                            )
                        })
                        .collect();
                    ep.send(m.dst, *tag, (xs, ys));
                }
                // Collect ALL of this phase's messages first, then fold
                // them in sender order: the reduction order becomes a
                // pure function of the plan, so chaotic delivery cannot
                // perturb the result bits.
                let mut arrived: Vec<Envelope<Payload>> =
                    (0..*expected).map(|_| ep.recv_tag(*tag)).collect();
                arrived.sort_by_key(|env| env.src);
                for env in arrived {
                    let (xs, ys) = env.payload;
                    for (j, v) in xs {
                        xbuf.insert(j, v);
                    }
                    for (i, v) in ys {
                        let acc = ybuf.entry(i).or_insert_with(|| vec![0.0; r]);
                        for q in 0..r {
                            acc[q] += v[q];
                        }
                    }
                }
            }
        }
    }
    ybuf.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};
    use s2d_spmv::PlanKind;

    #[test]
    fn sharded_runs_are_bitwise_reproducible_under_chaos() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin() + 2.0).collect();
        for kind in PlanKind::all() {
            let plan = Arc::new(kind.build(&a, &p));
            let mut quiet = ShardedOperator::new(Arc::clone(&plan));
            let mut y_quiet = vec![0.0; a.nrows()];
            quiet.apply(&x, &mut y_quiet);
            // Tolerance check against serial once; everything else is
            // exact equality.
            let want = a.spmv_alloc(&x);
            for (g, w) in y_quiet.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{kind}: {g} vs {w}");
            }
            for seed in 0..4 {
                let chaos = ChaosConfig::with_delays(150, seed);
                let mut noisy = ShardedOperator::with_chaos(Arc::clone(&plan), chaos);
                let mut y_noisy = vec![f64::NAN; a.nrows()];
                noisy.apply(&x, &mut y_noisy);
                assert_eq!(y_noisy, y_quiet, "{kind} seed {seed}: chaos must not change bits");
            }
        }
    }

    #[test]
    fn batch_columns_match_single_runs_bitwise() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(PlanKind::SinglePhase.build(&a, &p));
        let r = 4;
        let x: Vec<f64> = (0..a.ncols() * r).map(|i| ((i * 7) % 19) as f64 - 9.0).collect();
        let mut op =
            ShardedOperator::with_chaos(Arc::clone(&plan), ChaosConfig::with_delays(100, 11));
        let mut y = vec![0.0; a.nrows() * r];
        op.apply_batch(&x, &mut y, r);
        for q in 0..r {
            let xq: Vec<f64> = (0..a.ncols()).map(|g| x[g * r + q]).collect();
            let mut quiet = ShardedOperator::new(Arc::clone(&plan));
            let mut yq = vec![0.0; a.nrows()];
            quiet.apply(&xq, &mut yq);
            let got: Vec<f64> = (0..a.nrows()).map(|g| y[g * r + q]).collect();
            assert_eq!(got, yq, "column {q} must match its quiet single-RHS run bitwise");
        }
    }
}
