//! # s2d-serve — SpMV as a service
//!
//! The long-lived, multi-tenant serving layer over the `s2d` stack:
//! where the rest of the workspace answers *one* solve fast, this crate
//! answers *many concurrent* solves cheaply. Three mechanisms carry the
//! load:
//!
//! * **Preparation cache** ([`PlanCache`]) — partitioning, plan
//!   construction and kernel compilation are cached under
//!   (matrix fingerprint, strategy, k, plan kind, kernel format, batch
//!   width); repeat registrations stamp sessions from the cached
//!   artifact in microseconds. Hit/miss/eviction counters surface
//!   through [`s2d_obs::ServeStats`] into `ExecutionReport`s.
//! * **Admission + queueing** ([`Server`]) — per-session bounded queues
//!   with immediate [`QueueFull`](ServeError::QueueFull) rejection and
//!   per-request deadlines ([`Expired`](ServeError::Expired)), so
//!   overload sheds load instead of stretching latency.
//! * **Cross-request coalescing** — up to
//!   [`max_coalesce`](ServerConfig::max_coalesce) pending single-RHS
//!   requests for one session pack into a single `apply_batch`
//!   execution (the multi-RHS reuse win measured at ~2–2.4× on
//!   rmat14/K = 16) and scatter back per caller, bitwise identical to
//!   running each request alone.
//!
//! For distributed execution the [`ShardedOperator`] runs sessions over
//! `s2d-runtime` endpoints with a deterministic reduction order, so
//! even chaos-injected delivery cannot change a result bit — the
//! property the serve differential tests pin down.

mod cache;
mod server;
mod sharded;

pub use cache::{PlanCache, PrepKey};
pub use server::{ServeError, Server, ServerConfig, SessionId, Ticket};
pub use sharded::ShardedOperator;
