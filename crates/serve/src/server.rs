//! The serving front end: session registry, request admission and
//! cross-request coalescing.
//!
//! One [`Server`] owns any number of registered sessions (matrix +
//! partitioning + compiled backend), each with a bounded request queue
//! and a dedicated worker thread. Clients submit right-hand sides and
//! get a [`Ticket`] to wait on; the worker packs up to
//! [`ServerConfig::max_coalesce`] pending single-RHS requests arriving
//! within [`ServerConfig::batch_window`] into **one** `apply_batch`
//! execution — the multi-RHS reuse win the engine benches measured —
//! and scatters the result columns back to their callers. Admission is
//! strict: a full queue rejects immediately ([`ServeError::QueueFull`])
//! and a request whose deadline passed before execution is refused
//! ([`ServeError::Expired`]), so overload degrades by shedding load,
//! never by growing latency without bound.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use s2d::{Backend, ConfigKey, KernelFormat, Session, SpmvOperator, Strategy};
use s2d_obs::{ServeSnapshot, ServeStats};
use s2d_runtime::ChaosConfig;
use s2d_sparse::Csr;
use s2d_tune::TuningCache;

use crate::cache::{PlanCache, PrepKey};
use crate::sharded::ShardedOperator;

/// Serving knobs; [`ServerConfig::default`] is the sensible production
/// shape (coalescing on, bounded queues, in-process compiled backend).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Backend each session's worker executes on.
    pub backend: Backend,
    /// Kernel format sessions compile to.
    pub format: KernelFormat,
    /// Path of an `s2d-tune` [`TuningCache`] to consult at registration
    /// time (`None` = don't). When the cache holds a measured verdict
    /// for (matrix, k, coalescing width), its strategy, plan kind,
    /// format and backend override the configured ones — measurement
    /// beats the static models wherever a measurement exists. Lookups
    /// are counted on [`ServeStats`] as tuner hits/misses. No search
    /// ever runs at serve time: a miss just uses the configured
    /// defaults.
    pub tuning_cache: Option<PathBuf>,
    /// Bounded queue depth per session; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Most single-RHS requests packed into one batch execution
    /// (1 disables coalescing).
    pub max_coalesce: usize,
    /// How long a worker holding a partial batch waits for more
    /// requests before executing what it has.
    pub batch_window: Duration,
    /// Preparation-cache capacity (entries).
    pub cache_capacity: usize,
    /// Run sessions rank-sharded over `s2d-runtime` endpoints instead
    /// of the in-process backend (the distributed-execution path;
    /// results are bitwise identical).
    pub sharded: bool,
    /// Delivery-delay injection for sharded sessions (ignored
    /// otherwise) — fault-testing knob, results stay bitwise identical.
    pub chaos: ChaosConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            backend: Backend::CompiledSeq,
            format: KernelFormat::CsrSlice,
            tuning_cache: None,
            queue_capacity: 64,
            max_coalesce: 8,
            batch_window: Duration::from_micros(200),
            cache_capacity: 8,
            sharded: false,
            chaos: ChaosConfig::off(),
        }
    }
}

/// Why a request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The session's queue was full at submission time.
    QueueFull,
    /// The request's deadline passed before execution started.
    Expired,
    /// The session was shut down before the request could run.
    SessionClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeError::QueueFull => "queue full",
            ServeError::Expired => "deadline expired",
            ServeError::SessionClosed => "session closed",
        })
    }
}

impl std::error::Error for ServeError {}

/// Handle to a registered session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId(u64);

/// A pending result: wait on it to get the solve's output vector.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Vec<f64>, ServeError>>,
}

impl Ticket {
    /// Blocks until the request is executed or refused.
    pub fn wait(self) -> Result<Vec<f64>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::SessionClosed))
    }
}

struct Request {
    x: Vec<f64>,
    width: usize,
    deadline: Option<Instant>,
    resp: mpsc::Sender<Result<Vec<f64>, ServeError>>,
}

/// Shared per-session queue state: the deque plus a closed flag,
/// signalled through one condvar (std primitives — the workspace shims
/// carry no bounded channels).
struct SessionQueue {
    state: Mutex<(VecDeque<Request>, bool)>,
    cond: Condvar,
    capacity: usize,
}

impl SessionQueue {
    fn new(capacity: usize) -> SessionQueue {
        SessionQueue { state: Mutex::new((VecDeque::new(), false)), cond: Condvar::new(), capacity }
    }

    fn push(&self, req: Request) -> Result<(), ServeError> {
        let mut st = self.state.lock().expect("queue lock");
        if st.1 {
            return Err(ServeError::SessionClosed);
        }
        if st.0.len() >= self.capacity {
            return Err(ServeError::QueueFull);
        }
        st.0.push_back(req);
        self.cond.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").1 = true;
        self.cond.notify_all();
    }
}

struct SessionEntry {
    queue: Arc<SessionQueue>,
    worker: Option<JoinHandle<()>>,
    nrows: usize,
    ncols: usize,
}

/// A long-lived, multi-tenant SpMV server. See the module docs.
pub struct Server {
    config: ServerConfig,
    stats: Arc<ServeStats>,
    cache: PlanCache,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
}

impl Server {
    /// A server with the given knobs and an empty registry.
    pub fn new(config: ServerConfig) -> Server {
        let stats = Arc::new(ServeStats::new());
        let cache = PlanCache::new(config.cache_capacity, Arc::clone(&stats));
        Server {
            config,
            stats,
            cache,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The live serving counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Plain-value reading of the counters, for reports
    /// (`ExecutionReport::with_serve`).
    pub fn snapshot(&self) -> ServeSnapshot {
        self.stats.snapshot()
    }

    /// The preparation cache (inspection / tests).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Registers `a` partitioned by `strategy` over `k` ranks and
    /// starts its worker. Repeat registrations of the same (matrix,
    /// strategy, k) hit the preparation cache and skip partitioning and
    /// compilation entirely — only the per-session operator setup runs.
    ///
    /// When [`ServerConfig::tuning_cache`] is set, the on-disk tuning
    /// cache is consulted first: a measured verdict for this (matrix,
    /// k, width) overrides `strategy` and the configured format and
    /// backend with the tuner's winners.
    pub fn register(&self, a: &Csr, strategy: Strategy, k: usize) -> SessionId {
        let width = self.config.max_coalesce.max(1);
        let ckey = ConfigKey::of(a, k, width);
        let tuned = self.config.tuning_cache.as_ref().and_then(|path| {
            let verdict = TuningCache::load(path).lookup(ckey).map(|e| e.choice);
            match verdict {
                Some(_) => self.stats.tuner_hit(),
                None => self.stats.tuner_miss(),
            }
            verdict
        });
        let (strategy, plan_kind, format, isa, backend) = match tuned {
            Some(c) => (c.strategy, Some(c.plan_kind), c.format, c.isa, c.backend),
            None => (strategy, None, self.config.format, s2d::KernelIsa::Auto, self.config.backend),
        };
        let key = PrepKey { key: ckey, strategy: Some(strategy), plan_kind, format, isa };
        let prep = self.cache.get_or_prepare(key, || {
            let mut b =
                Session::builder(a).partitioner(strategy, k).kernel_format(format).kernel_isa(isa);
            if let Some(kind) = plan_kind {
                b = b.plan_kind(kind);
            }
            b.prepare()
        });
        let operator: Box<dyn SpmvOperator + Send> = if self.config.sharded {
            Box::new(ShardedOperator::with_chaos(Arc::clone(prep.plan()), self.config.chaos))
        } else {
            Box::new(prep.session(backend, width))
        };
        let (nrows, ncols) = (operator.nrows(), operator.ncols());
        let queue = Arc::new(SessionQueue::new(self.config.queue_capacity));
        let worker = spawn_worker(
            operator,
            Arc::clone(&queue),
            Arc::clone(&self.stats),
            self.config.max_coalesce.max(1),
            self.config.batch_window,
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .expect("registry lock")
            .insert(id, SessionEntry { queue, worker: Some(worker), nrows, ncols });
        SessionId(id)
    }

    /// Submits one right-hand side (`x.len()` = the session's `ncols`)
    /// with no deadline.
    pub fn submit(&self, sid: SessionId, x: Vec<f64>) -> Result<Ticket, ServeError> {
        self.submit_request(sid, x, 1, None)
    }

    /// [`Server::submit`] with a deadline: if the request is still
    /// queued when `deadline` passes, it is refused with
    /// [`ServeError::Expired`] instead of executed late.
    pub fn submit_with_deadline(
        &self,
        sid: SessionId,
        x: Vec<f64>,
        deadline: Instant,
    ) -> Result<Ticket, ServeError> {
        self.submit_request(sid, x, 1, Some(deadline))
    }

    /// Submits an already-batched request of `width` right-hand sides
    /// (row-major, `x.len()` = `ncols * width`). Wide requests run as
    /// their own batch; they are not coalesced with others.
    pub fn submit_batch(
        &self,
        sid: SessionId,
        x: Vec<f64>,
        width: usize,
    ) -> Result<Ticket, ServeError> {
        assert!(width >= 1, "batch width must be at least 1");
        self.submit_request(sid, x, width, None)
    }

    /// Submit-and-wait convenience.
    pub fn solve(&self, sid: SessionId, x: Vec<f64>) -> Result<Vec<f64>, ServeError> {
        self.submit(sid, x)?.wait()
    }

    fn submit_request(
        &self,
        sid: SessionId,
        x: Vec<f64>,
        width: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        let (queue, ncols) = {
            let sessions = self.sessions.lock().expect("registry lock");
            let entry = sessions.get(&sid.0).ok_or(ServeError::SessionClosed)?;
            (Arc::clone(&entry.queue), entry.ncols)
        };
        assert_eq!(x.len(), ncols * width, "input length must be ncols * width");
        let (tx, rx) = mpsc::channel();
        match queue.push(Request { x, width, deadline, resp: tx }) {
            Ok(()) => {
                self.stats.admit();
                Ok(Ticket { rx })
            }
            Err(e) => {
                if e == ServeError::QueueFull {
                    self.stats.reject_full();
                }
                Err(e)
            }
        }
    }

    /// The (nrows, ncols) shape a session serves.
    pub fn shape(&self, sid: SessionId) -> Option<(usize, usize)> {
        self.sessions.lock().expect("registry lock").get(&sid.0).map(|e| (e.nrows, e.ncols))
    }

    /// Closes one session: pending requests still execute, then the
    /// worker exits and the id stops resolving.
    pub fn unregister(&self, sid: SessionId) {
        let entry = self.sessions.lock().expect("registry lock").remove(&sid.0);
        if let Some(mut entry) = entry {
            entry.queue.close();
            if let Some(w) = entry.worker.take() {
                let _ = w.join();
            }
        }
    }

    /// Closes every session and joins all workers (also run on drop).
    pub fn shutdown(&self) {
        let drained: Vec<SessionEntry> = {
            let mut sessions = self.sessions.lock().expect("registry lock");
            sessions.drain().map(|(_, e)| e).collect()
        };
        for mut entry in drained {
            entry.queue.close();
            if let Some(w) = entry.worker.take() {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns one session's worker: pull, coalesce, execute, scatter.
fn spawn_worker(
    mut operator: Box<dyn SpmvOperator + Send>,
    queue: Arc<SessionQueue>,
    stats: Arc<ServeStats>,
    max_coalesce: usize,
    batch_window: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let nrows = operator.nrows();
        loop {
            // Block for the first request (or exit once closed AND
            // drained — close still lets queued work finish).
            let first = {
                let mut st = queue.state.lock().expect("queue lock");
                loop {
                    if let Some(req) = st.0.pop_front() {
                        break req;
                    }
                    if st.1 {
                        return;
                    }
                    st = queue.cond.wait(st).expect("queue lock");
                }
            };
            let Some(first) = admit_or_expire(first, &stats) else { continue };

            if first.width > 1 {
                // Pre-batched request: runs alone.
                run_batch(&mut *operator, nrows, vec![first], &stats);
                continue;
            }

            // Coalesce: gather more single-RHS requests until the batch
            // is full, a wide request heads the queue, or the window
            // closes.
            let mut batch = vec![first];
            let window_end = Instant::now() + batch_window;
            loop {
                if batch.len() >= max_coalesce {
                    break;
                }
                let mut st = queue.state.lock().expect("queue lock");
                while batch.len() < max_coalesce && st.0.front().is_some_and(|r| r.width == 1) {
                    let req = st.0.pop_front().expect("front checked");
                    drop(st);
                    if let Some(req) = admit_or_expire(req, &stats) {
                        batch.push(req);
                    }
                    st = queue.state.lock().expect("queue lock");
                }
                if batch.len() >= max_coalesce || st.0.front().is_some_and(|r| r.width > 1) || st.1
                {
                    break;
                }
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                let (guard, timeout) =
                    queue.cond.wait_timeout(st, window_end - now).expect("queue lock");
                drop(guard);
                if timeout.timed_out() {
                    break;
                }
            }
            run_batch(&mut *operator, nrows, batch, &stats);
        }
    })
}

/// Deadline gate at dequeue time: refused requests answer immediately.
fn admit_or_expire(req: Request, stats: &ServeStats) -> Option<Request> {
    if req.deadline.is_some_and(|d| Instant::now() >= d) {
        stats.expire();
        let _ = req.resp.send(Err(ServeError::Expired));
        return None;
    }
    Some(req)
}

/// Executes one batch and scatters result columns back to the callers.
///
/// Determinism contract: a single-request batch runs `apply` (width
/// `r > 1` requests run `apply_batch` with their own width), and a
/// coalesced batch runs one `apply_batch` whose column `q` is bitwise
/// identical to running request `q` alone — both the compiled backends
/// and the sharded executor keep per-column accumulation order
/// independent of the batch width.
fn run_batch(
    operator: &mut dyn SpmvOperator,
    nrows: usize,
    batch: Vec<Request>,
    stats: &ServeStats,
) {
    if batch.is_empty() {
        return;
    }
    if batch.len() == 1 {
        let req = &batch[0];
        let mut y = vec![0.0; nrows * req.width];
        if req.width == 1 {
            operator.apply(&req.x, &mut y);
        } else {
            operator.apply_batch(&req.x, &mut y, req.width);
        }
        stats.batch(1);
        // Count before replying: a caller that saw its result must also
        // see it in any later stats snapshot.
        stats.complete();
        let _ = batch[0].resp.send(Ok(y));
        return;
    }
    // Pack the coalesced single-RHS requests into one row-major block.
    let r = batch.len();
    let ncols = batch[0].x.len();
    let mut packed = vec![0.0; ncols * r];
    for (q, req) in batch.iter().enumerate() {
        for (j, &v) in req.x.iter().enumerate() {
            packed[j * r + q] = v;
        }
    }
    let mut y = vec![0.0; nrows * r];
    operator.apply_batch(&packed, &mut y, r);
    stats.batch(r as u64);
    for (q, req) in batch.into_iter().enumerate() {
        let col: Vec<f64> = (0..nrows).map(|g| y[g * r + q]).collect();
        stats.complete();
        let _ = req.resp.send(Ok(col));
    }
}
