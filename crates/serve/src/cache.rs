//! The preparation cache: fingerprint-keyed reuse of the expensive
//! per-matrix work (partitioning, plan construction, kernel
//! compilation).
//!
//! The serving layer registers matrices over and over — the same
//! operator under different tenants, reconnecting clients, restarted
//! pipelines. All of those hit the same [`Prepared`] artifact, so the
//! cache keys on everything that determines it: the matrix
//! [fingerprint](s2d_sparse::Csr::fingerprint), the partitioning
//! strategy and processor count, the plan kind, the kernel format and
//! the batch width sessions will be stamped for. Hits skip the whole
//! preparation; misses run it once and park the result for the next
//! tenant. Eviction is least-recently-used over a small bounded store
//! (preparations are few and large — a linear scan beats hashing at
//! this size).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use s2d::{ConfigKey, PlanKind, Prepared, Strategy};
use s2d_engine::{KernelFormat, KernelIsa};
use s2d_obs::ServeStats;

/// Everything that determines a [`Prepared`] artifact (plus the batch
/// width sessions are stamped for): the cache key. The (matrix,
/// workload) core is the shared [`ConfigKey`] — the same composition
/// the tuner's on-disk `TuningCache` keys on, so the two caches cannot
/// drift on what identifies a matrix/workload pair — extended here by
/// the configuration axes that pin down one preparation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrepKey {
    /// Matrix fingerprint + processor count + stamped batch width.
    pub key: ConfigKey,
    /// Partitioning strategy (`None` for hand-built partitions, which
    /// are distinguished by fingerprint alone).
    pub strategy: Option<Strategy>,
    /// Plan kind (`None` = the builder's automatic choice).
    pub plan_kind: Option<PlanKind>,
    /// Kernel format the plan compiles to.
    pub format: KernelFormat,
    /// Kernel ISA the plan's batch paths select with (bitwise-neutral,
    /// but a Scalar preparation must not satisfy an Auto lookup — the
    /// compiled artifact differs).
    pub isa: KernelIsa,
}

struct Entry {
    key: PrepKey,
    prep: Arc<Prepared>,
    /// Logical clock of the last hit (for LRU eviction).
    last_use: u64,
}

/// A bounded, thread-safe LRU cache of [`Prepared`] artifacts with
/// hit/miss/eviction counters on a shared [`ServeStats`].
pub struct PlanCache {
    capacity: usize,
    entries: Mutex<Vec<Entry>>,
    clock: AtomicU64,
    stats: Arc<ServeStats>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` preparations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, stats: Arc<ServeStats>) -> PlanCache {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        PlanCache { capacity, entries: Mutex::new(Vec::new()), clock: AtomicU64::new(0), stats }
    }

    /// The cached preparation for `key`, running `prepare` on a miss
    /// (inside the cache lock, so concurrent registrations of the same
    /// matrix prepare exactly once — the second one hits).
    pub fn get_or_prepare(
        &self,
        key: PrepKey,
        prepare: impl FnOnce() -> Prepared,
    ) -> Arc<Prepared> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.lock().expect("cache lock");
        if let Some(e) = entries.iter_mut().find(|e| e.key == key) {
            e.last_use = tick;
            self.stats.cache_hit();
            return Arc::clone(&e.prep);
        }
        self.stats.cache_miss();
        let prep = Arc::new(prepare());
        if entries.len() >= self.capacity {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("capacity >= 1 so the full cache is nonempty");
            entries.swap_remove(lru);
            self.stats.cache_evict();
        }
        entries.push(Entry { key, prep: Arc::clone(&prep), last_use: tick });
        prep
    }

    /// Number of cached preparations.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d::Session;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};

    fn key(fp: u64, width: usize) -> PrepKey {
        PrepKey {
            key: ConfigKey { fingerprint: fp, k: 3, width },
            strategy: None,
            plan_kind: None,
            format: KernelFormat::CsrSlice,
            isa: KernelIsa::Auto,
        }
    }

    fn prep() -> Prepared {
        let a = fig1_matrix();
        let p = fig1_partition();
        Session::builder(&a).partition(&p).prepare()
    }

    #[test]
    fn hits_skip_preparation_and_count() {
        let stats = Arc::new(ServeStats::new());
        let cache = PlanCache::new(4, Arc::clone(&stats));
        let mut prepared = 0;
        for _ in 0..3 {
            let _ = cache.get_or_prepare(key(1, 1), || {
                prepared += 1;
                prep()
            });
        }
        assert_eq!(prepared, 1, "two of three lookups must hit");
        let snap = stats.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses, snap.cache_evictions), (2, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_miss_independently() {
        let stats = Arc::new(ServeStats::new());
        let cache = PlanCache::new(4, Arc::clone(&stats));
        let _ = cache.get_or_prepare(key(1, 1), prep);
        let _ = cache.get_or_prepare(key(2, 1), prep); // different matrix
        let _ = cache.get_or_prepare(key(1, 8), prep); // different width
        assert_eq!(stats.snapshot().cache_misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let stats = Arc::new(ServeStats::new());
        let cache = PlanCache::new(2, Arc::clone(&stats));
        let _ = cache.get_or_prepare(key(1, 1), prep);
        let _ = cache.get_or_prepare(key(2, 1), prep);
        let _ = cache.get_or_prepare(key(1, 1), prep); // refresh key 1
        let _ = cache.get_or_prepare(key(3, 1), prep); // evicts key 2
        assert_eq!(stats.snapshot().cache_evictions, 1);
        assert_eq!(cache.len(), 2);
        // Key 1 survived (hit), key 2 did not (miss again).
        let snap_before = stats.snapshot();
        let _ = cache.get_or_prepare(key(1, 1), prep);
        assert_eq!(stats.snapshot().cache_hits, snap_before.cache_hits + 1);
        let _ = cache.get_or_prepare(key(2, 1), prep);
        assert_eq!(stats.snapshot().cache_misses, snap_before.cache_misses + 1);
    }
}
