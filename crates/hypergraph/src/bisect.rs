//! Multilevel bisection: coarsen → initial partition → uncoarsen + refine.

use rand::Rng;

use crate::coarsen::{coarsen_once, CoarseLevel, CoarsenConfig};
use crate::fm::{fm_refine, BisectState};
use crate::hg::Hypergraph;
use crate::kway::PartitionConfig;

/// Result of a multilevel bisection.
pub struct Bisection {
    /// Side (0/1) per vertex.
    pub side: Vec<u8>,
    /// Cut-net cutsize of the bisection.
    pub cut: u64,
}

/// Bisects `hg` with side-0 target weight fraction `ratio0` and per-side
/// weight limits `maxw` (per constraint).
pub fn multilevel_bisect<R: Rng>(
    hg: &Hypergraph,
    ratio0: f64,
    maxw: &[Vec<u64>; 2],
    cfg: &PartitionConfig,
    rng: &mut R,
) -> Bisection {
    // V-cycle down: coarsen until small or stalled.
    let coarsen_cfg = CoarsenConfig {
        net_size_limit: cfg.coarsen_net_limit,
        weight_cap_divisor: cfg.coarsen_weight_divisor,
    };
    let mut levels: Vec<CoarseLevel> = Vec::new();
    {
        let mut cur: &Hypergraph = hg;
        while cur.nvtx() > cfg.coarsen_to {
            match coarsen_once(cur, &coarsen_cfg, rng) {
                Some(level) => {
                    levels.push(level);
                    cur = &levels.last().expect("just pushed").hg;
                }
                None => break,
            }
        }
    }

    // Initial partition on the coarsest level.
    let coarsest: &Hypergraph = levels.last().map(|l| &l.hg).unwrap_or(hg);
    let mut side = crate::initial::initial_bisection(
        coarsest,
        maxw,
        cfg.initial_tries,
        cfg.fm_passes,
        ratio0,
        rng,
    );

    // V-cycle up: project through each level and refine.
    for lvl in (0..levels.len()).rev() {
        let fine_hg: &Hypergraph = if lvl == 0 { hg } else { &levels[lvl - 1].hg };
        let map = &levels[lvl].map;
        let mut fine_side = vec![0u8; fine_hg.nvtx()];
        for v in 0..fine_hg.nvtx() {
            fine_side[v] = side[map[v] as usize];
        }
        fm_refine(fine_hg, &mut fine_side, maxw, cfg.fm_passes);
        side = fine_side;
    }
    if levels.is_empty() {
        // No coarsening happened: `side` is already on the input hypergraph
        // but refined only as the "coarsest"; one more refinement is free.
        fm_refine(hg, &mut side, maxw, cfg.fm_passes);
    }

    let cut = BisectState::new(hg, side.clone()).cut;
    Bisection { side, cut }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Hypergraph {
        let nets: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i, (i + 1) % n as u32]).collect();
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(n, 1, vec![1; n], &nets, costs)
    }

    fn limits(hg: &Hypergraph, ratio0: f64, eps: f64) -> [Vec<u64>; 2] {
        let t = hg.total_weight(0) as f64;
        [
            vec![(t * ratio0 * (1.0 + eps)).ceil() as u64],
            vec![(t * (1.0 - ratio0) * (1.0 + eps)).ceil() as u64],
        ]
    }

    #[test]
    fn ring_bisects_with_two_cuts() {
        let hg = ring(128);
        let maxw = limits(&hg, 0.5, 0.03);
        let mut rng = StdRng::seed_from_u64(42);
        let bis = multilevel_bisect(&hg, 0.5, &maxw, &PartitionConfig::default(), &mut rng);
        // A cycle cannot be bisected with fewer than 2 cut nets.
        assert!(bis.cut >= 2);
        assert!(bis.cut <= 6, "multilevel should find a near-optimal cut, got {}", bis.cut);
        let w0 = bis.side.iter().filter(|&&s| s == 0).count() as u64;
        assert!(w0 <= maxw[0][0] && 128 - w0 <= maxw[1][0]);
    }

    #[test]
    fn respects_asymmetric_ratio() {
        let hg = ring(96);
        let maxw = limits(&hg, 0.25, 0.05);
        let mut rng = StdRng::seed_from_u64(9);
        let bis = multilevel_bisect(&hg, 0.25, &maxw, &PartitionConfig::default(), &mut rng);
        let w0 = bis.side.iter().filter(|&&s| s == 0).count() as u64;
        assert!(w0 <= maxw[0][0], "side 0 over its limit: {w0}");
        assert!(w0 >= 15, "side 0 suspiciously empty: {w0}");
    }

    #[test]
    fn tiny_hypergraph_skips_coarsening() {
        let hg = ring(8);
        let maxw = limits(&hg, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let bis = multilevel_bisect(&hg, 0.5, &maxw, &PartitionConfig::default(), &mut rng);
        assert!(bis.cut >= 2);
    }
}
