//! Initial bisection of the coarsest hypergraph.
//!
//! Two generators, both cheap because the coarsest level is small:
//! greedy hypergraph growing (grow side 0 from a random seed by FM gain)
//! and random balanced assignment. Each candidate is FM-refined; the best
//! (feasibility, cut) wins.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::fm::{fm_refine, BisectState};
use crate::hg::Hypergraph;

/// Produces a bisection of `hg` with target side-0 weight fraction
/// `ratio0`, trying `tries` GHG and `tries` random starts, refining each.
pub fn initial_bisection<R: Rng>(
    hg: &Hypergraph,
    maxw: &[Vec<u64>; 2],
    tries: usize,
    fm_passes: usize,
    ratio0: f64,
    rng: &mut R,
) -> Vec<u8> {
    let mut best: Option<(u64, u64, Vec<u8>)> = None; // (overweight, cut, side)
    for t in 0..tries.max(1) * 2 {
        let mut side = if t % 2 == 0 {
            greedy_growing(hg, ratio0, rng)
        } else {
            random_balanced(hg, ratio0, rng)
        };
        let cut = fm_refine(hg, &mut side, maxw, fm_passes);
        let over = BisectState::new(hg, side.clone()).overweight(maxw);
        if best.as_ref().map(|(bo, bc, _)| (over, cut) < (*bo, *bc)).unwrap_or(true) {
            best = Some((over, cut, side));
        }
    }
    best.expect("at least one candidate").2
}

/// Greedy hypergraph growing: start from a random seed on side 0 and
/// repeatedly pull in the highest-gain vertex until the side-0 weight
/// target is reached. Remaining vertices stay on side 1.
pub fn greedy_growing<R: Rng>(hg: &Hypergraph, ratio0: f64, rng: &mut R) -> Vec<u8> {
    let nvtx = hg.nvtx();
    if nvtx == 0 {
        return Vec::new();
    }
    let total0: u64 = hg.total_weight(0);
    let target = (total0 as f64 * ratio0).round() as u64;
    let mut side = vec![1u8; nvtx];
    let mut w0 = 0u64;

    let mut state = BisectState::new(hg, side.clone());
    let mut heap: std::collections::BinaryHeap<(i64, u32)> = std::collections::BinaryHeap::new();
    let mut in_side0 = vec![false; nvtx];

    let seed = rng.random_range(0..nvtx);
    heap.push((0, seed as u32));
    let mut pulled = 0usize;
    // Pull until the weight target, but always at least one vertex and
    // never the whole hypergraph — both sides must end nonempty.
    while (w0 < target || pulled == 0) && pulled + 1 < nvtx.max(2) {
        // Grab the best frontier vertex, or a fresh random seed if the
        // frontier dried up (disconnected hypergraphs).
        let v = loop {
            match heap.pop() {
                Some((g, v)) => {
                    if in_side0[v as usize] {
                        continue;
                    }
                    // Stale gains are fine for a constructive heuristic, but
                    // skip grossly stale entries when a fresh gain differs.
                    let fresh = state.gain(v as usize);
                    if fresh != g {
                        heap.push((fresh, v));
                        continue;
                    }
                    break v as usize;
                }
                None => match (0..nvtx).find(|&u| !in_side0[u]) {
                    Some(u) => break u,
                    None => return state.side,
                },
            }
        };
        in_side0[v] = true;
        state.apply_move(v); // side 1 -> side 0
        w0 += hg.vweight(v)[0];
        pulled += 1;
        for &n in hg.nets_of(v) {
            for &u in hg.pins_of(n as usize) {
                if !in_side0[u as usize] {
                    heap.push((state.gain(u as usize), u));
                }
            }
        }
    }
    side.copy_from_slice(&state.side);
    side
}

/// Random balanced assignment: shuffle, fill side 0 to its weight target,
/// rest to side 1.
pub fn random_balanced<R: Rng>(hg: &Hypergraph, ratio0: f64, rng: &mut R) -> Vec<u8> {
    let nvtx = hg.nvtx();
    let total0: u64 = hg.total_weight(0);
    let target = (total0 as f64 * ratio0).round() as u64;
    let mut order: Vec<u32> = (0..nvtx as u32).collect();
    order.shuffle(rng);
    let mut side = vec![1u8; nvtx];
    let mut w0 = 0u64;
    let mut taken = 0usize;
    for &v in &order {
        // Fill to the weight target, but keep both sides nonempty.
        if (w0 >= target && taken > 0) || taken + 1 >= nvtx.max(2) {
            break;
        }
        side[v as usize] = 0;
        w0 += hg.vweight(v as usize)[0];
        taken += 1;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clique_pair() -> Hypergraph {
        // Two 4-cliques joined by one net: natural bisection cuts 1 net.
        let mut nets: Vec<Vec<u32>> = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                nets.push(vec![a, b]);
                nets.push(vec![a + 4, b + 4]);
            }
        }
        nets.push(vec![3, 4]);
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(8, 1, vec![1; 8], &nets, costs)
    }

    fn limits(hg: &Hypergraph, eps: f64) -> [Vec<u64>; 2] {
        let w: Vec<u64> = hg
            .total_weights()
            .iter()
            .map(|&t| ((t as f64 / 2.0) * (1.0 + eps)).ceil() as u64)
            .collect();
        [w.clone(), w]
    }

    #[test]
    fn initial_bisection_finds_natural_cut() {
        let hg = clique_pair();
        let mut rng = StdRng::seed_from_u64(11);
        let side = initial_bisection(&hg, &limits(&hg, 0.05), 4, 4, 0.5, &mut rng);
        let cut = BisectState::new(&hg, side.clone()).cut;
        assert_eq!(cut, 1, "cliques should separate: {side:?}");
    }

    #[test]
    fn random_balanced_hits_target() {
        let hg = clique_pair();
        let mut rng = StdRng::seed_from_u64(2);
        let side = random_balanced(&hg, 0.5, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 4);
    }

    #[test]
    fn greedy_growing_respects_ratio() {
        let hg = clique_pair();
        let mut rng = StdRng::seed_from_u64(3);
        let side = greedy_growing(&hg, 0.25, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 2); // 25% of weight 8
    }

    #[test]
    fn handles_disconnected_hypergraph() {
        let hg = Hypergraph::new(6, 1, vec![1; 6], &[vec![0, 1]], vec![1]);
        let mut rng = StdRng::seed_from_u64(4);
        let side = greedy_growing(&hg, 0.5, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 3);
    }
}
