//! Matching-based coarsening (randomized heavy-connectivity matching).
//!
//! Visits vertices in random order; each unmatched vertex is paired with
//! the unmatched neighbour sharing the largest total net cost, subject to a
//! cluster-weight cap so the coarsest level stays bisectable. Oversized
//! nets are skipped while scoring (they carry little locality signal and
//! dominate the scan cost — dense rows in the paper's suite B matrices
//! produce nets with 10^5 pins).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::hg::Hypergraph;

/// Tuning knobs for one coarsening step.
#[derive(Clone, Debug)]
pub struct CoarsenConfig {
    /// Nets larger than this are ignored while scoring matches.
    pub net_size_limit: usize,
    /// A merged cluster may not exceed `total_weight[c] / weight_cap_divisor`
    /// in any constraint.
    pub weight_cap_divisor: u64,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig { net_size_limit: 256, weight_cap_divisor: 16 }
    }
}

/// One level of coarsening: the coarse hypergraph plus the fine→coarse map.
pub struct CoarseLevel {
    /// Coarse hypergraph with merged identical nets.
    pub hg: Hypergraph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<u32>,
}

/// Performs one matching-based coarsening step. Returns `None` when the
/// matching shrinks the vertex count by less than 5% (coarsening has
/// stalled and another level would waste time without helping quality).
pub fn coarsen_once<R: Rng>(
    hg: &Hypergraph,
    cfg: &CoarsenConfig,
    rng: &mut R,
) -> Option<CoarseLevel> {
    let nvtx = hg.nvtx();
    let ncon = hg.ncon();
    let totals = hg.total_weights();
    let caps: Vec<u64> = totals.iter().map(|&t| (t / cfg.weight_cap_divisor).max(1)).collect();

    let mut order: Vec<u32> = (0..nvtx as u32).collect();
    order.shuffle(rng);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; nvtx];
    let mut score = vec![0u64; nvtx];
    let mut touched: Vec<u32> = Vec::new();
    let mut matched_pairs = 0usize;

    for &v in &order {
        let v = v as usize;
        if mate[v] != UNMATCHED {
            continue;
        }
        // Score unmatched neighbours by shared net cost.
        touched.clear();
        for &n in hg.nets_of(v) {
            let n = n as usize;
            if hg.net_size(n) > cfg.net_size_limit {
                continue;
            }
            let cost = hg.ncost(n);
            for &u in hg.pins_of(n) {
                let u = u as usize;
                if u == v || mate[u] != UNMATCHED {
                    continue;
                }
                if score[u] == 0 {
                    touched.push(u as u32);
                }
                score[u] += cost;
            }
        }
        // Pick the heaviest-connectivity candidate that fits the cap.
        let mut best: Option<(u64, u32)> = None;
        for &u in &touched {
            let s = score[u as usize];
            let fits = (0..ncon).all(|c| hg.vweight(v)[c] + hg.vweight(u as usize)[c] <= caps[c]);
            if fits && best.map(|(bs, _)| s > bs).unwrap_or(true) {
                best = Some((s, u));
            }
        }
        for &u in &touched {
            score[u as usize] = 0;
        }
        if let Some((_, u)) = best {
            mate[v] = u;
            mate[u as usize] = v as u32;
            matched_pairs += 1;
        }
    }

    let ncoarse = nvtx - matched_pairs;
    if (ncoarse as f64) > 0.95 * nvtx as f64 {
        return None;
    }

    // Number clusters: matched pair shares an id, singleton keeps its own.
    let mut map = vec![u32::MAX; nvtx];
    let mut next = 0u32;
    for v in 0..nvtx {
        if map[v] != u32::MAX {
            continue;
        }
        map[v] = next;
        if mate[v] != UNMATCHED {
            map[mate[v] as usize] = next;
        }
        next += 1;
    }
    debug_assert_eq!(next as usize, ncoarse);

    Some(CoarseLevel { hg: contract(hg, &map, ncoarse), map })
}

/// Contracts `hg` according to `map` (fine vertex → coarse vertex):
/// accumulates vertex weights, re-pins nets onto clusters, drops single-pin
/// nets and merges identical ones.
pub fn contract(hg: &Hypergraph, map: &[u32], ncoarse: usize) -> Hypergraph {
    let ncon = hg.ncon();
    let mut vwgt = vec![0u64; ncoarse * ncon];
    for v in 0..hg.nvtx() {
        let cv = map[v] as usize;
        for c in 0..ncon {
            vwgt[cv * ncon + c] += hg.vweight(v)[c];
        }
    }
    // Re-pin nets, deduplicating within each net with a stamp array.
    let mut stamp = vec![u32::MAX; ncoarse];
    let mut xpins = Vec::with_capacity(hg.nnets() + 1);
    xpins.push(0usize);
    let mut pins: Vec<u32> = Vec::with_capacity(hg.npins());
    let mut ncost: Vec<u64> = Vec::with_capacity(hg.nnets());
    for n in 0..hg.nnets() {
        let start = pins.len();
        for &p in hg.pins_of(n) {
            let cp = map[p as usize];
            if stamp[cp as usize] != n as u32 {
                stamp[cp as usize] = n as u32;
                pins.push(cp);
            }
        }
        if pins.len() - start >= 2 {
            xpins.push(pins.len());
            ncost.push(hg.ncost(n));
        } else {
            pins.truncate(start); // single-pin net: uncuttable, drop
        }
    }
    Hypergraph::from_csr(ncoarse, ncon, vwgt, ncost, xpins, pins).merge_identical_nets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> Hypergraph {
        // Path hypergraph: net {i, i+1} for each i.
        let nets: Vec<Vec<u32>> = (0..n as u32 - 1).map(|i| vec![i, i + 1]).collect();
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(n, 1, vec![1; n], &nets, costs)
    }

    #[test]
    fn coarsening_halves_chain() {
        let h = chain(64);
        let mut rng = StdRng::seed_from_u64(1);
        let level = coarsen_once(&h, &CoarsenConfig::default(), &mut rng).expect("should coarsen");
        assert!(level.hg.nvtx() < 64);
        assert!(level.hg.nvtx() >= 32); // matching merges at most pairs
                                        // Weight is conserved.
        assert_eq!(level.hg.total_weight(0), 64);
    }

    #[test]
    fn map_is_consistent() {
        let h = chain(32);
        let mut rng = StdRng::seed_from_u64(7);
        let level = coarsen_once(&h, &CoarsenConfig::default(), &mut rng).expect("should coarsen");
        assert_eq!(level.map.len(), 32);
        assert!(level.map.iter().all(|&c| (c as usize) < level.hg.nvtx()));
        // Every coarse vertex has at least one fine vertex.
        let mut seen = vec![false; level.hg.nvtx()];
        for &c in &level.map {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contract_drops_internal_nets() {
        let h = chain(4);
        // Merge {0,1} and {2,3}: nets {0,1} and {2,3} become single-pin.
        let coarse = contract(&h, &[0, 0, 1, 1], 2);
        assert_eq!(coarse.nvtx(), 2);
        assert_eq!(coarse.nnets(), 1); // only net {1,2} survives
        assert_eq!(coarse.vweight(0), &[2]);
    }

    #[test]
    fn weight_cap_prevents_giant_clusters() {
        // One dominant vertex: nothing may merge with it under divisor 16.
        let mut wgts = vec![1u64; 16];
        wgts[0] = 1000;
        let nets: Vec<Vec<u32>> = (1..16u32).map(|i| vec![0, i]).collect();
        let costs = vec![1u64; nets.len()];
        let h = Hypergraph::new(16, 1, wgts, &nets, costs);
        let mut rng = StdRng::seed_from_u64(3);
        if let Some(level) = coarsen_once(&h, &CoarsenConfig::default(), &mut rng) {
            // Heaviest coarse cluster is still just the dominant vertex.
            let max_w = (0..level.hg.nvtx()).map(|v| level.hg.vweight(v)[0]).max().unwrap();
            assert_eq!(max_w, 1000);
        }
    }

    #[test]
    fn stall_returns_none() {
        // No nets => no matches => stall.
        let h = Hypergraph::new(8, 1, vec![1; 8], &[], vec![]);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(coarsen_once(&h, &CoarsenConfig::default(), &mut rng).is_none());
    }
}
