//! K-way partitioning by recursive bisection with net splitting.
//!
//! Cut nets are split between the two sub-hypergraphs, so the sum of all
//! bisection cuts equals the connectivity−1 metric of the final K-way
//! partition — the property that makes hypergraph cutsize equal SpMV
//! communication volume (Catalyurek & Aykanat 1999, as used by the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bisect::multilevel_bisect;
use crate::hg::Hypergraph;
use crate::metrics;

/// Partitioner configuration (defaults mirror PaToH's defaults where the
/// paper relies on them, e.g. 3% imbalance tolerance).
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Allowed K-way load imbalance (`0.03` = the paper's 3%).
    pub epsilon: f64,
    /// RNG seed; every run is deterministic given a seed.
    pub seed: u64,
    /// Stop coarsening when at most this many vertices remain.
    pub coarsen_to: usize,
    /// Nets larger than this are ignored while scoring coarsening matches.
    pub coarsen_net_limit: usize,
    /// Cluster weight cap divisor during coarsening.
    pub coarsen_weight_divisor: u64,
    /// Number of initial-partition attempts (each of GHG and random).
    pub initial_tries: usize,
    /// Maximum FM passes per level.
    pub fm_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            epsilon: 0.03,
            seed: 1,
            coarsen_to: 96,
            coarsen_net_limit: 256,
            coarsen_weight_divisor: 16,
            initial_tries: 4,
            fm_passes: 3,
        }
    }
}

impl PartitionConfig {
    /// Same configuration with a different seed (the paper averages over
    /// three randomized runs).
    pub fn with_seed(&self, seed: u64) -> Self {
        PartitionConfig { seed, ..self.clone() }
    }
}

/// A K-way partition of hypergraph vertices.
#[derive(Clone, Debug)]
pub struct KwayPartition {
    /// Part id per vertex, in `0..k`.
    pub parts: Vec<u32>,
    /// Number of parts.
    pub k: usize,
}

impl KwayPartition {
    /// Connectivity−1 cutsize against `hg`.
    pub fn connectivity_cut(&self, hg: &Hypergraph) -> u64 {
        metrics::connectivity_minus_one(hg, &self.parts, self.k)
    }

    /// Load imbalance of constraint `c` (0.0 = perfect balance).
    pub fn imbalance(&self, hg: &Hypergraph, c: usize) -> f64 {
        metrics::imbalance(hg, &self.parts, self.k, c)
    }
}

/// Partitions `hg` into `k` parts with at most `cfg.epsilon` imbalance
/// (best effort) minimizing the connectivity−1 metric.
pub fn partition_kway(hg: &Hypergraph, k: usize, cfg: &PartitionConfig) -> KwayPartition {
    assert!(k >= 1, "k must be positive");
    let mut parts = vec![0u32; hg.nvtx()];
    if k > 1 {
        let depth = (k as f64).log2().ceil().max(1.0);
        // Spread the global tolerance over bisection levels so the final
        // K-way imbalance stays within epsilon.
        let eps_b = (1.0 + cfg.epsilon).powf(1.0 / depth) - 1.0;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vertices: Vec<u32> = (0..hg.nvtx() as u32).collect();
        recurse(hg, &vertices, k, 0, eps_b, cfg, &mut rng, &mut parts);
    }
    KwayPartition { parts, k }
}

/// Recursively bisects `hg` (which contains only `vertices` of the
/// original hypergraph) into `k` parts, writing part ids starting at
/// `first_part` into `out` (indexed by original vertex id).
#[allow(clippy::too_many_arguments)]
fn recurse<R: Rng>(
    hg: &Hypergraph,
    vertices: &[u32],
    k: usize,
    first_part: u32,
    eps_b: f64,
    cfg: &PartitionConfig,
    rng: &mut R,
    out: &mut [u32],
) {
    if k == 1 {
        for &v in vertices {
            out[v as usize] = first_part;
        }
        return;
    }
    let kl = k.div_ceil(2);
    let kr = k - kl;
    let ratio0 = kl as f64 / k as f64;
    let totals = hg.total_weights();
    let maxw: [Vec<u64>; 2] = [
        totals.iter().map(|&t| ((t as f64) * ratio0 * (1.0 + eps_b)).ceil() as u64).collect(),
        totals
            .iter()
            .map(|&t| ((t as f64) * (1.0 - ratio0) * (1.0 + eps_b)).ceil() as u64)
            .collect(),
    ];
    let bis = multilevel_bisect(hg, ratio0, &maxw, cfg, rng);
    let mut side = bis.side;
    repair_counts(hg, &mut side, kl, kr);

    // Build the two sub-hypergraphs with net splitting.
    for (s, sub_k, sub_first) in [(0u8, kl, first_part), (1u8, kr, first_part + kl as u32)] {
        if hg.nvtx() == 0 {
            continue;
        }
        let (sub, sub_vertices) = extract_side(hg, vertices, &side, s);
        recurse(&sub, &sub_vertices, sub_k, sub_first, eps_b, cfg, rng, out);
    }
}

/// Ensures side 0 holds at least `kl` vertices and side 1 at least `kr`
/// (whenever the hypergraph has `kl + kr` vertices at all), so every leaf
/// of the recursion can own a nonempty part. The weight caps alone cannot
/// guarantee this: on tiny sub-hypergraphs their `ceil` slack admits
/// splits like 3|1 for `k = 2+2`. Deficits are repaired by moving the
/// least cut-damaging vertices from the surplus side.
fn repair_counts(hg: &Hypergraph, side: &mut [u8], kl: usize, kr: usize) {
    let nvtx = hg.nvtx();
    if nvtx < kl + kr {
        return; // fewer vertices than parts: emptiness is unavoidable
    }
    let mut count = [0usize, 0usize];
    for &s in side.iter() {
        count[s as usize] += 1;
    }
    let need = [kl, kr];
    for s in 0..2usize {
        if count[s] >= need[s] {
            continue;
        }
        let donor = 1 - s;
        let mut state = crate::fm::BisectState::new(hg, side.to_vec());
        while count[s] < need[s] {
            // Best-gain movable vertex on the donor side.
            let v = (0..nvtx)
                .filter(|&v| state.side[v] == donor as u8)
                .max_by_key(|&v| state.gain(v))
                .expect("donor side nonempty by counting");
            state.apply_move(v);
            count[s] += 1;
            count[donor] -= 1;
        }
        side.copy_from_slice(&state.side);
    }
}

/// Extracts the sub-hypergraph induced by side `s`: vertices renumbered,
/// nets restricted to the side (net splitting), single-pin nets dropped.
/// Returns the sub-hypergraph and the original ids of its vertices.
fn extract_side(hg: &Hypergraph, vertices: &[u32], side: &[u8], s: u8) -> (Hypergraph, Vec<u32>) {
    let ncon = hg.ncon();
    let mut local_of = vec![u32::MAX; hg.nvtx()];
    let mut sub_vertices = Vec::new();
    let mut vwgt = Vec::new();
    for v in 0..hg.nvtx() {
        if side[v] == s {
            local_of[v] = sub_vertices.len() as u32;
            sub_vertices.push(vertices[v]);
            vwgt.extend_from_slice(hg.vweight(v));
        }
    }
    let mut xpins = vec![0usize];
    let mut pins: Vec<u32> = Vec::new();
    let mut ncost: Vec<u64> = Vec::new();
    for n in 0..hg.nnets() {
        let start = pins.len();
        for &p in hg.pins_of(n) {
            let lp = local_of[p as usize];
            if lp != u32::MAX {
                pins.push(lp);
            }
        }
        if pins.len() - start >= 2 {
            xpins.push(pins.len());
            ncost.push(hg.ncost(n));
        } else {
            pins.truncate(start);
        }
    }
    let sub = Hypergraph::from_csr(sub_vertices.len(), ncon, vwgt, ncost, xpins, pins);
    (sub, sub_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_hg(rows: usize, cols: usize) -> Hypergraph {
        // 2D grid as a graph (2-pin nets): classic partitioning testbed.
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        let mut nets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    nets.push(vec![id(r, c), id(r, c + 1)]);
                }
                if r + 1 < rows {
                    nets.push(vec![id(r, c), id(r + 1, c)]);
                }
            }
        }
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(rows * cols, 1, vec![1; rows * cols], &nets, costs)
    }

    #[test]
    fn kway_covers_all_parts() {
        let hg = grid_hg(16, 16);
        let p = partition_kway(&hg, 8, &PartitionConfig::default());
        assert_eq!(p.parts.len(), 256);
        let mut seen = vec![false; 8];
        for &x in &p.parts {
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every part must be used");
    }

    #[test]
    fn kway_respects_epsilon_on_unit_weights() {
        let hg = grid_hg(16, 16);
        let cfg = PartitionConfig { epsilon: 0.05, ..Default::default() };
        let p = partition_kway(&hg, 4, &cfg);
        let imb = p.imbalance(&hg, 0);
        assert!(imb <= 0.0501, "imbalance {imb} exceeds tolerance");
    }

    #[test]
    fn kway_cut_is_reasonable_on_grid() {
        // 16x16 grid into 4 parts: ideal cut ~ 2*16 = 32 edges; accept 2x.
        let hg = grid_hg(16, 16);
        let p = partition_kway(&hg, 4, &PartitionConfig::default());
        let cut = p.connectivity_cut(&hg);
        assert!(cut <= 64, "cut {cut} too large for a 16x16 grid 4-way");
        assert!(cut >= 16, "cut {cut} suspiciously small");
    }

    #[test]
    fn k_equal_one_is_trivial() {
        let hg = grid_hg(4, 4);
        let p = partition_kway(&hg, 1, &PartitionConfig::default());
        assert!(p.parts.iter().all(|&x| x == 0));
        assert_eq!(p.connectivity_cut(&hg), 0);
    }

    #[test]
    fn nonpower_of_two_parts() {
        let hg = grid_hg(12, 12);
        let p = partition_kway(&hg, 3, &PartitionConfig::default());
        let mut seen = vec![false; 3];
        for &x in &p.parts {
            assert!(x < 3);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let imb = p.imbalance(&hg, 0);
        assert!(imb < 0.10, "3-way imbalance {imb}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let hg = grid_hg(10, 10);
        let cfg = PartitionConfig::default();
        let p1 = partition_kway(&hg, 4, &cfg);
        let p2 = partition_kway(&hg, 4, &cfg);
        assert_eq!(p1.parts, p2.parts);
    }
}
