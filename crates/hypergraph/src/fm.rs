//! Fiduccia–Mattheyses bisection refinement.
//!
//! Classic FM with the textbook delta-gain rules, a lazy max-heap
//! (entries carry a per-vertex version stamp; stale entries are skipped on
//! pop), hill climbing with best-prefix rollback, and a balance mode that
//! lets infeasible partitions walk back into the balance envelope by
//! accepting overweight-reducing moves regardless of gain.

use std::collections::BinaryHeap;

use crate::hg::Hypergraph;

/// Incremental state of a bisection: side of every vertex, per-net pin
/// counts per side, per-side weights and the current cut-net cutsize.
pub struct BisectState<'a> {
    hg: &'a Hypergraph,
    /// Side (0 or 1) of every vertex.
    pub side: Vec<u8>,
    pins: [Vec<u32>; 2],
    /// Per-side, per-constraint weights.
    pub part_w: [Vec<u64>; 2],
    /// Per-side vertex counts (moves must never empty a side — an empty
    /// part is always a worse partition than any balanced one).
    pub count: [usize; 2],
    /// Current cut-net cutsize.
    pub cut: u64,
}

impl<'a> BisectState<'a> {
    /// Builds the incremental state for an assignment.
    pub fn new(hg: &'a Hypergraph, side: Vec<u8>) -> Self {
        assert_eq!(side.len(), hg.nvtx());
        let ncon = hg.ncon();
        let mut part_w = [vec![0u64; ncon], vec![0u64; ncon]];
        for v in 0..hg.nvtx() {
            for c in 0..ncon {
                part_w[side[v] as usize][c] += hg.vweight(v)[c];
            }
        }
        let mut pins = [vec![0u32; hg.nnets()], vec![0u32; hg.nnets()]];
        for n in 0..hg.nnets() {
            for &p in hg.pins_of(n) {
                pins[side[p as usize] as usize][n] += 1;
            }
        }
        let cut = (0..hg.nnets())
            .filter(|&n| pins[0][n] > 0 && pins[1][n] > 0)
            .map(|n| hg.ncost(n))
            .sum();
        let mut count = [0usize; 2];
        for &s in &side {
            count[s as usize] += 1;
        }
        BisectState { hg, side, pins, part_w, count, cut }
    }

    /// Pin count of net `n` on side `s`.
    #[inline]
    pub fn pins_on(&self, n: usize, s: u8) -> u32 {
        self.pins[s as usize][n]
    }

    /// FM gain of moving `v` to the other side (cut reduction, may be
    /// negative).
    pub fn gain(&self, v: usize) -> i64 {
        let from = self.side[v] as usize;
        let to = 1 - from;
        let mut g = 0i64;
        for &n in self.hg.nets_of(v) {
            let n = n as usize;
            let c = self.hg.ncost(n) as i64;
            if self.pins[from][n] == 1 && self.pins[to][n] > 0 {
                g += c;
            } else if self.pins[to][n] == 0 && self.pins[from][n] > 1 {
                g -= c;
            }
        }
        g
    }

    /// Moves `v` to the other side, updating pin counts, weights and cut.
    /// Applying the same move twice restores the previous state.
    pub fn apply_move(&mut self, v: usize) {
        let from = self.side[v] as usize;
        let to = 1 - from;
        for &n in self.hg.nets_of(v) {
            let n = n as usize;
            let f = self.pins[from][n];
            let t = self.pins[to][n];
            if t == 0 && f > 1 {
                self.cut += self.hg.ncost(n); // newly cut
            } else if f == 1 && t > 0 {
                self.cut -= self.hg.ncost(n); // newly uncut
            }
            self.pins[from][n] -= 1;
            self.pins[to][n] += 1;
        }
        for c in 0..self.hg.ncon() {
            let w = self.hg.vweight(v)[c];
            self.part_w[from][c] -= w;
            self.part_w[to][c] += w;
        }
        self.count[from] -= 1;
        self.count[to] += 1;
        self.side[v] = to as u8;
    }

    /// Total amount by which the two sides exceed `maxw` (0 = feasible).
    pub fn overweight(&self, maxw: &[Vec<u64>; 2]) -> u64 {
        let mut over = 0u64;
        for s in 0..2 {
            for c in 0..self.hg.ncon() {
                over += self.part_w[s][c].saturating_sub(maxw[s][c]);
            }
        }
        over
    }
}

/// Runs up to `passes` FM passes on `side`, respecting the per-side,
/// per-constraint weight limits `maxw`. Returns the final cut-net cutsize.
///
/// The refined assignment is written back into `side`.
pub fn fm_refine(hg: &Hypergraph, side: &mut [u8], maxw: &[Vec<u64>; 2], passes: usize) -> u64 {
    let mut state = BisectState::new(hg, side.to_vec());
    for _ in 0..passes {
        if !fm_pass(&mut state, maxw) {
            break;
        }
    }
    side.copy_from_slice(&state.side);
    state.cut
}

/// One FM pass. Returns true if the pass improved (cut or overweight).
fn fm_pass(state: &mut BisectState<'_>, maxw: &[Vec<u64>; 2]) -> bool {
    let hg = state.hg;
    let nvtx = hg.nvtx();
    if nvtx == 0 {
        return false;
    }

    // Initial gains in one sweep over nets.
    let mut gain = vec![0i64; nvtx];
    for n in 0..hg.nnets() {
        let (p0, p1) = (state.pins_on(n, 0), state.pins_on(n, 1));
        let c = hg.ncost(n) as i64;
        if p0 > 0 && p1 > 0 {
            if p0 == 1 || p1 == 1 {
                for &u in hg.pins_of(n) {
                    let s = state.side[u as usize];
                    if (s == 0 && p0 == 1) || (s == 1 && p1 == 1) {
                        gain[u as usize] += c;
                    }
                }
            }
        } else if hg.net_size(n) > 1 {
            for &u in hg.pins_of(n) {
                gain[u as usize] -= c;
            }
        }
    }

    let mut version = vec![0u32; nvtx];
    let mut locked = vec![false; nvtx];
    // Max-heap of (gain, vertex, version); stale versions skipped on pop.
    let mut heap: BinaryHeap<(i64, u32, u32)> = BinaryHeap::new();

    // Seed with boundary vertices; in infeasible states also seed the
    // overweight side so balance can be restored even with zero cut.
    let infeasible_side = |state: &BisectState<'_>| -> Option<u8> {
        for s in 0..2u8 {
            for c in 0..hg.ncon() {
                if state.part_w[s as usize][c] > maxw[s as usize][c] {
                    return Some(s);
                }
            }
        }
        None
    };
    let mut seeded = vec![false; nvtx];
    for n in 0..hg.nnets() {
        if state.pins_on(n, 0) > 0 && state.pins_on(n, 1) > 0 {
            for &u in hg.pins_of(n) {
                if !seeded[u as usize] {
                    seeded[u as usize] = true;
                    heap.push((gain[u as usize], u, 0));
                }
            }
        }
    }
    if let Some(heavy) = infeasible_side(state) {
        for v in 0..nvtx {
            if state.side[v] == heavy && !seeded[v] {
                seeded[v] = true;
                heap.push((gain[v], v as u32, 0));
            }
        }
    }

    // Move loop with best-prefix tracking.
    let start_cut = state.cut;
    let start_over = state.overweight(maxw);
    let mut best_key = (start_over, start_cut);
    let mut history: Vec<u32> = Vec::new();
    let mut best_len = 0usize;
    let abort_limit = 300.max(nvtx / 8);
    let mut deferred: Vec<(i64, u32, u32)> = Vec::new();

    while let Some((g, v, ver)) = heap.pop() {
        let v = v as usize;
        if version[v] != ver || locked[v] {
            continue;
        }
        debug_assert_eq!(g, state.gain(v), "stale gain for vertex {v}");
        let from = state.side[v];
        let to = 1 - from;
        // A move may never empty a side: with both sides nonempty on
        // entry, any all-on-one-side assignment is strictly worse for the
        // recursive K-way driver (an empty part), whatever its cut.
        if state.count[from as usize] == 1 {
            continue;
        }
        // Feasibility: target side must stay within limits, or the move
        // must strictly reduce total overweight (rebalancing mode).
        let to_fits = (0..hg.ncon())
            .all(|c| state.part_w[to as usize][c] + hg.vweight(v)[c] <= maxw[to as usize][c]);
        let cur_over = state.overweight(maxw);
        let reduces_over = if cur_over == 0 {
            false
        } else {
            let mut new_over = 0u64;
            for c in 0..hg.ncon() {
                let w = hg.vweight(v)[c];
                new_over +=
                    (state.part_w[from as usize][c] - w).saturating_sub(maxw[from as usize][c]);
                new_over += (state.part_w[to as usize][c] + w).saturating_sub(maxw[to as usize][c]);
            }
            new_over < cur_over
        };
        if !to_fits && !reduces_over {
            deferred.push((g, v as u32, ver));
            continue;
        }

        // Delta-gain updates (textbook FM rules), before and after the move.
        for &n in hg.nets_of(v) {
            let n = n as usize;
            let c = hg.ncost(n) as i64;
            let t = state.pins_on(n, to);
            if t == 0 {
                for &u in hg.pins_of(n) {
                    let u = u as usize;
                    if u != v && !locked[u] {
                        gain[u] += c;
                        bump(&mut version, &mut heap, &mut seeded, &gain, u);
                    }
                }
            } else if t == 1 {
                for &u in hg.pins_of(n) {
                    let u = u as usize;
                    if u != v && !locked[u] && state.side[u] == to {
                        gain[u] -= c;
                        bump(&mut version, &mut heap, &mut seeded, &gain, u);
                        break;
                    }
                }
            }
        }
        state.apply_move(v);
        locked[v] = true;
        history.push(v as u32);
        for &n in hg.nets_of(v) {
            let n = n as usize;
            let c = hg.ncost(n) as i64;
            let f = state.pins_on(n, from);
            if f == 0 {
                for &u in hg.pins_of(n) {
                    let u = u as usize;
                    if u != v && !locked[u] {
                        gain[u] -= c;
                        bump(&mut version, &mut heap, &mut seeded, &gain, u);
                    }
                }
            } else if f == 1 {
                for &u in hg.pins_of(n) {
                    let u = u as usize;
                    if u != v && !locked[u] && state.side[u] == from {
                        gain[u] += c;
                        bump(&mut version, &mut heap, &mut seeded, &gain, u);
                        break;
                    }
                }
            }
        }

        // Weight distribution changed: deferred moves may fit now.
        heap.extend(deferred.drain(..));

        let key = (state.overweight(maxw), state.cut);
        if key < best_key {
            best_key = key;
            best_len = history.len();
        } else if history.len() - best_len > abort_limit {
            break;
        }
    }

    // Roll back to the best prefix (apply_move is an involution).
    for &v in history[best_len..].iter().rev() {
        state.apply_move(v as usize);
    }
    best_key < (start_over, start_cut)
}

#[inline]
fn bump(
    version: &mut [u32],
    heap: &mut BinaryHeap<(i64, u32, u32)>,
    seeded: &mut [bool],
    gain: &[i64],
    u: usize,
) {
    version[u] += 1;
    seeded[u] = true;
    heap.push((gain[u], u as u32, version[u]));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_hg(n: usize) -> Hypergraph {
        let nets: Vec<Vec<u32>> = (0..n as u32 - 1).map(|i| vec![i, i + 1]).collect();
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(n, 1, vec![1; n], &nets, costs)
    }

    fn limits(hg: &Hypergraph, eps: f64) -> [Vec<u64>; 2] {
        let w: Vec<u64> = hg
            .total_weights()
            .iter()
            .map(|&t| ((t as f64 / 2.0) * (1.0 + eps)).ceil() as u64)
            .collect();
        [w.clone(), w]
    }

    #[test]
    fn state_tracks_cut_incrementally() {
        let hg = path_hg(4);
        let mut st = BisectState::new(&hg, vec![0, 1, 0, 1]);
        assert_eq!(st.cut, 3); // all three path nets cut
        st.apply_move(1); // -> 0,0,0,1
        assert_eq!(st.cut, 1);
        let reference = BisectState::new(&hg, st.side.clone());
        assert_eq!(st.cut, reference.cut);
    }

    #[test]
    fn apply_move_is_involution() {
        let hg = path_hg(6);
        let mut st = BisectState::new(&hg, vec![0, 1, 0, 1, 0, 1]);
        let (cut0, w0) = (st.cut, st.part_w.clone());
        st.apply_move(2);
        st.apply_move(2);
        assert_eq!(st.cut, cut0);
        assert_eq!(st.part_w, w0);
    }

    #[test]
    fn gain_matches_recompute_after_moves() {
        let hg = path_hg(8);
        let mut st = BisectState::new(&hg, vec![0, 0, 1, 1, 0, 1, 0, 1]);
        for v in [0usize, 3, 5] {
            st.apply_move(v);
        }
        let fresh = BisectState::new(&hg, st.side.clone());
        for v in 0..8 {
            assert_eq!(st.gain(v), fresh.gain(v), "vertex {v}");
        }
    }

    #[test]
    fn fm_untangles_alternating_path() {
        let hg = path_hg(8);
        let mut side = vec![0u8, 1, 0, 1, 0, 1, 0, 1];
        // Slack of one unit: FM needs headroom >= max vertex weight to
        // hill-climb (with zero slack no single move is ever feasible).
        let maxw = limits(&hg, 0.26); // ceil(4 * 1.26) = 6... capped below
        let maxw = [vec![maxw[0][0].min(5)], vec![maxw[1][0].min(5)]];
        let cut = fm_refine(&hg, &mut side, &maxw, 8);
        assert_eq!(cut, 1, "a path bisects with a single cut net: {side:?}");
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((3..=5).contains(&w0), "balance within slack: {side:?}");
    }

    #[test]
    fn fm_restores_balance_when_infeasible() {
        let hg = path_hg(10);
        let mut side = vec![0u8; 10]; // everything on side 0: infeasible
        fm_refine(&hg, &mut side, &limits(&hg, 0.05), 8);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((4..=6).contains(&w0), "rebalanced to ~half: {side:?}");
    }

    #[test]
    fn fm_respects_weight_limits() {
        let hg = path_hg(12);
        let maxw = limits(&hg, 0.0);
        let mut side: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        fm_refine(&hg, &mut side, &maxw, 8);
        let w0 = side.iter().filter(|&&s| s == 0).count() as u64;
        assert!(w0 <= maxw[0][0] && (12 - w0) <= maxw[1][0]);
    }

    #[test]
    fn fm_never_worsens_cut() {
        // Random-ish fixed assignment on a grid of overlapping nets.
        let nets: Vec<Vec<u32>> =
            vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0], vec![1, 3, 5], vec![0, 3]];
        let hg = Hypergraph::new(6, 1, vec![1; 6], &nets, vec![1, 2, 3, 4, 5]);
        let start = vec![0u8, 1, 1, 0, 1, 0];
        let start_cut = BisectState::new(&hg, start.clone()).cut;
        let mut side = start;
        let cut = fm_refine(&hg, &mut side, &limits(&hg, 0.1), 4);
        assert!(cut <= start_cut);
        assert_eq!(cut, BisectState::new(&hg, side).cut);
    }
}
