//! Hypergraph data structure.
//!
//! Pins are stored twice in CSR form — net → vertices (`xpins`/`pins`) and
//! vertex → nets (`xnets`/`vnets`) — because coarsening walks both
//! directions in the hot loop. Vertex weights carry `ncon` balance
//! constraints (checkerboard partitioning needs one constraint per row
//! stripe; everything else uses `ncon = 1`).

/// A hypergraph with weighted vertices and weighted nets.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    nvtx: usize,
    ncon: usize,
    /// Vertex weights, `ncon` consecutive entries per vertex.
    vwgt: Vec<u64>,
    /// Net costs.
    ncost: Vec<u64>,
    /// Net → pins CSR.
    xpins: Vec<usize>,
    pins: Vec<u32>,
    /// Vertex → nets CSR (derived).
    xnets: Vec<usize>,
    vnets: Vec<u32>,
}

impl Hypergraph {
    /// Builds a hypergraph from per-net pin lists.
    ///
    /// `vwgt` holds `ncon` weights per vertex (`vwgt.len() == nvtx * ncon`).
    ///
    /// # Panics
    /// Panics on inconsistent sizes or out-of-range pins.
    pub fn new(
        nvtx: usize,
        ncon: usize,
        vwgt: Vec<u64>,
        nets: &[Vec<u32>],
        ncost: Vec<u64>,
    ) -> Self {
        let mut xpins = Vec::with_capacity(nets.len() + 1);
        xpins.push(0usize);
        let mut pins = Vec::with_capacity(nets.iter().map(Vec::len).sum());
        for net in nets {
            pins.extend_from_slice(net);
            xpins.push(pins.len());
        }
        Self::from_csr(nvtx, ncon, vwgt, ncost, xpins, pins)
    }

    /// Builds a hypergraph from CSR pin arrays.
    ///
    /// # Panics
    /// Panics on inconsistent sizes or out-of-range pins.
    pub fn from_csr(
        nvtx: usize,
        ncon: usize,
        vwgt: Vec<u64>,
        ncost: Vec<u64>,
        xpins: Vec<usize>,
        pins: Vec<u32>,
    ) -> Self {
        assert!(ncon >= 1, "at least one balance constraint required");
        assert_eq!(vwgt.len(), nvtx * ncon, "vertex weight array size mismatch");
        assert_eq!(xpins.len(), ncost.len() + 1, "xpins/ncost size mismatch");
        assert_eq!(*xpins.last().expect("xpins nonempty"), pins.len());
        assert!(xpins.windows(2).all(|w| w[0] <= w[1]), "xpins must be nondecreasing");
        assert!(pins.iter().all(|&p| (p as usize) < nvtx), "pin out of range");

        // Derive the vertex → nets CSR by counting sort.
        let nnets = ncost.len();
        let mut xnets = vec![0usize; nvtx + 1];
        for &p in &pins {
            xnets[p as usize + 1] += 1;
        }
        for v in 0..nvtx {
            xnets[v + 1] += xnets[v];
        }
        let mut vnets = vec![0u32; pins.len()];
        let mut next = xnets.clone();
        for n in 0..nnets {
            for k in xpins[n]..xpins[n + 1] {
                let v = pins[k] as usize;
                vnets[next[v]] = n as u32;
                next[v] += 1;
            }
        }
        Hypergraph { nvtx, ncon, vwgt, ncost, xpins, pins, xnets, vnets }
    }

    /// Number of vertices.
    #[inline]
    pub fn nvtx(&self) -> usize {
        self.nvtx
    }

    /// Number of nets.
    #[inline]
    pub fn nnets(&self) -> usize {
        self.ncost.len()
    }

    /// Number of pins (sum of net sizes).
    #[inline]
    pub fn npins(&self) -> usize {
        self.pins.len()
    }

    /// Number of balance constraints.
    #[inline]
    pub fn ncon(&self) -> usize {
        self.ncon
    }

    /// The weights of vertex `v` (`ncon` entries).
    #[inline]
    pub fn vweight(&self, v: usize) -> &[u64] {
        &self.vwgt[v * self.ncon..(v + 1) * self.ncon]
    }

    /// The cost of net `n`.
    #[inline]
    pub fn ncost(&self, n: usize) -> u64 {
        self.ncost[n]
    }

    /// The pins (vertices) of net `n`.
    #[inline]
    pub fn pins_of(&self, n: usize) -> &[u32] {
        &self.pins[self.xpins[n]..self.xpins[n + 1]]
    }

    /// The nets incident to vertex `v`.
    #[inline]
    pub fn nets_of(&self, v: usize) -> &[u32] {
        &self.vnets[self.xnets[v]..self.xnets[v + 1]]
    }

    /// Size of net `n`.
    #[inline]
    pub fn net_size(&self, n: usize) -> usize {
        self.xpins[n + 1] - self.xpins[n]
    }

    /// Degree (number of incident nets) of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xnets[v + 1] - self.xnets[v]
    }

    /// Total vertex weight for constraint `c`.
    pub fn total_weight(&self, c: usize) -> u64 {
        (0..self.nvtx).map(|v| self.vweight(v)[c]).sum()
    }

    /// Total vertex weight per constraint.
    pub fn total_weights(&self) -> Vec<u64> {
        (0..self.ncon).map(|c| self.total_weight(c)).collect()
    }

    /// Sum of net costs (an upper bound on any cut).
    pub fn total_net_cost(&self) -> u64 {
        self.ncost.iter().sum()
    }

    /// Merges nets with identical pin sets (summing their costs) and drops
    /// nets with fewer than two pins. Pin order within a net is not
    /// significant; nets are compared as sorted sets.
    ///
    /// Identical nets appear naturally during coarsening (a row net and a
    /// column net collapse onto the same cluster set); merging keeps the
    /// coarse hypergraphs small.
    pub fn merge_identical_nets(&self) -> Hypergraph {
        use std::collections::HashMap;
        let mut sorted_pins: Vec<Vec<u32>> = Vec::with_capacity(self.nnets());
        for n in 0..self.nnets() {
            let mut p = self.pins_of(n).to_vec();
            p.sort_unstable();
            p.dedup();
            sorted_pins.push(p);
        }
        let mut groups: HashMap<&[u32], u64> = HashMap::new();
        for n in 0..self.nnets() {
            if sorted_pins[n].len() >= 2 {
                *groups.entry(&sorted_pins[n]).or_insert(0) += self.ncost[n];
            }
        }
        let mut nets: Vec<&[u32]> = groups.keys().copied().collect();
        nets.sort_unstable(); // deterministic output order
        let mut xpins = Vec::with_capacity(nets.len() + 1);
        xpins.push(0usize);
        let mut pins = Vec::new();
        let mut ncost = Vec::with_capacity(nets.len());
        for net in nets {
            pins.extend_from_slice(net);
            xpins.push(pins.len());
            ncost.push(groups[net]);
        }
        Hypergraph::from_csr(self.nvtx, self.ncon, self.vwgt.clone(), ncost, xpins, pins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // 4 vertices, nets: {0,1,2}, {2,3}, {0,3}
        Hypergraph::new(
            4,
            1,
            vec![1, 2, 3, 4],
            &[vec![0, 1, 2], vec![2, 3], vec![0, 3]],
            vec![1, 5, 2],
        )
    }

    #[test]
    fn structure_accessors() {
        let h = sample();
        assert_eq!(h.nvtx(), 4);
        assert_eq!(h.nnets(), 3);
        assert_eq!(h.npins(), 7);
        assert_eq!(h.pins_of(1), &[2, 3]);
        assert_eq!(h.net_size(0), 3);
        assert_eq!(h.vweight(3), &[4]);
        assert_eq!(h.total_weight(0), 10);
    }

    #[test]
    fn vertex_net_incidence_is_inverse_of_pins() {
        let h = sample();
        for n in 0..h.nnets() {
            for &v in h.pins_of(n) {
                assert!(h.nets_of(v as usize).contains(&(n as u32)));
            }
        }
        let total: usize = (0..h.nvtx()).map(|v| h.degree(v)).sum();
        assert_eq!(total, h.npins());
    }

    #[test]
    fn merge_identical_nets_sums_costs() {
        let h = Hypergraph::new(
            3,
            1,
            vec![1, 1, 1],
            &[vec![0, 1], vec![1, 0], vec![2], vec![0, 1, 2]],
            vec![2, 3, 7, 1],
        );
        let m = h.merge_identical_nets();
        assert_eq!(m.nnets(), 2); // {0,1} merged, {2} dropped, {0,1,2} kept
        let merged_cost: Vec<u64> = (0..m.nnets()).map(|n| m.ncost(n)).collect();
        assert!(merged_cost.contains(&5));
        assert!(merged_cost.contains(&1));
    }

    #[test]
    fn multiconstraint_weights() {
        let h = Hypergraph::new(2, 2, vec![1, 10, 2, 20], &[vec![0, 1]], vec![1]);
        assert_eq!(h.vweight(0), &[1, 10]);
        assert_eq!(h.vweight(1), &[2, 20]);
        assert_eq!(h.total_weights(), vec![3, 30]);
    }

    #[test]
    #[should_panic(expected = "pin out of range")]
    fn rejects_bad_pin() {
        Hypergraph::new(2, 1, vec![1, 1], &[vec![0, 2]], vec![1]);
    }
}
