//! Partition quality metrics: cutsize and balance.

use crate::hg::Hypergraph;

/// Connectivity−1 cutsize: `Σ_nets cost(n) · (λ(n) − 1)` where `λ(n)` is
/// the number of parts net `n` touches. For the column-net and
/// medium-grain models this equals the total SpMV communication volume.
pub fn connectivity_minus_one(hg: &Hypergraph, parts: &[u32], k: usize) -> u64 {
    assert_eq!(parts.len(), hg.nvtx());
    let mut mark = vec![u32::MAX; k];
    let mut cut = 0u64;
    for n in 0..hg.nnets() {
        let mut lambda = 0u64;
        for &p in hg.pins_of(n) {
            let part = parts[p as usize] as usize;
            if mark[part] != n as u32 {
                mark[part] = n as u32;
                lambda += 1;
            }
        }
        cut += hg.ncost(n) * lambda.saturating_sub(1);
    }
    cut
}

/// Cut-net cutsize: `Σ_{cut nets} cost(n)` (a net is cut if it touches
/// more than one part).
pub fn cut_net(hg: &Hypergraph, parts: &[u32], k: usize) -> u64 {
    assert_eq!(parts.len(), hg.nvtx());
    let mut mark = vec![u32::MAX; k];
    let mut cut = 0u64;
    for n in 0..hg.nnets() {
        let mut lambda = 0u32;
        for &p in hg.pins_of(n) {
            let part = parts[p as usize] as usize;
            if mark[part] != n as u32 {
                mark[part] = n as u32;
                lambda += 1;
                if lambda > 1 {
                    cut += hg.ncost(n);
                    break;
                }
            }
        }
    }
    cut
}

/// Per-part weights for constraint `c`.
pub fn part_weights(hg: &Hypergraph, parts: &[u32], k: usize, c: usize) -> Vec<u64> {
    let mut w = vec![0u64; k];
    for v in 0..hg.nvtx() {
        w[parts[v] as usize] += hg.vweight(v)[c];
    }
    w
}

/// Load imbalance of a weight vector: `max(w)/avg(w) − 1`, the paper's
/// `LI%` when multiplied by 100. Returns 0 for an empty or zero vector.
pub fn imbalance_of(weights: &[u64]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let avg = total as f64 / weights.len() as f64;
    let max = *weights.iter().max().expect("nonempty") as f64;
    max / avg - 1.0
}

/// Load imbalance of constraint `c` of a partition.
pub fn imbalance(hg: &Hypergraph, parts: &[u32], k: usize, c: usize) -> f64 {
    imbalance_of(&part_weights(hg, parts, k, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        Hypergraph::new(
            4,
            1,
            vec![1, 1, 1, 1],
            &[vec![0, 1, 2], vec![2, 3], vec![0, 3]],
            vec![1, 5, 2],
        )
    }

    #[test]
    fn uncut_partition_has_zero_cut() {
        let h = sample();
        let parts = vec![0, 0, 0, 0];
        assert_eq!(connectivity_minus_one(&h, &parts, 1), 0);
        assert_eq!(cut_net(&h, &parts, 1), 0);
    }

    #[test]
    fn cut_metrics_hand_checked() {
        let h = sample();
        // parts: {0,1} vs {2,3}: net0 spans both (λ=2), net1 internal to 1,
        // net2 spans both.
        let parts = vec![0, 0, 1, 1];
        assert_eq!(connectivity_minus_one(&h, &parts, 2), 1 + 0 + 2);
        assert_eq!(cut_net(&h, &parts, 2), 1 + 2);
    }

    #[test]
    fn lambda_exceeding_two_counts_multiply() {
        let h = Hypergraph::new(3, 1, vec![1, 1, 1], &[vec![0, 1, 2]], vec![4]);
        let parts = vec![0, 1, 2];
        assert_eq!(connectivity_minus_one(&h, &parts, 3), 8); // 4 * (3-1)
        assert_eq!(cut_net(&h, &parts, 3), 4);
    }

    #[test]
    fn imbalance_values() {
        assert_eq!(imbalance_of(&[5, 5]), 0.0);
        assert!((imbalance_of(&[6, 4]) - 0.2).abs() < 1e-12);
        assert_eq!(imbalance_of(&[]), 0.0);
        assert_eq!(imbalance_of(&[0, 0]), 0.0);
    }

    #[test]
    fn part_weight_accumulation() {
        let h = Hypergraph::new(3, 1, vec![2, 3, 5], &[vec![0, 1]], vec![1]);
        assert_eq!(part_weights(&h, &[0, 1, 1], 2, 0), vec![2, 8]);
    }
}
