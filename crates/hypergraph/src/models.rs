//! Hypergraph models of sparse matrices for SpMV partitioning.
//!
//! * **Column-net** model [Catalyurek & Aykanat 1999]: vertices = rows,
//!   nets = columns. A K-way partition gives a 1D rowwise distribution
//!   whose total expand volume equals the connectivity−1 cutsize.
//! * **Row-net** model: the transpose dual, for columnwise distributions.
//! * **Fine-grain** model [Catalyurek & Aykanat 2001]: vertices =
//!   nonzeros, nets = rows and columns; gives the fully general 2D
//!   distribution used as the paper's `2D` baseline.
//! * **Medium-grain** model [Pelt & Bisseling 2014]: the composite model
//!   the paper adapts to produce s2D partitions (`s2D-mg`): the matrix is
//!   split `A = Ar + Ac`, a combined vertex `u_i` amalgamates row `i` of
//!   `Ar`, column `i` of `Ac` and the vector entries `x_i, y_i`, so the
//!   partition decodes directly to an s2D distribution with a symmetric
//!   vector partition.

use s2d_sparse::Csr;

use crate::hg::Hypergraph;

/// Column-net model: vertex per row (weight = row nnz), net per column
/// (cost 1, pins = rows with a nonzero in the column).
///
/// With `include_diagonal`, row `j` is added to column-net `j` (square
/// matrices only) — this models the symmetric vector partition where `x_j`
/// resides with row `j`, making connectivity−1 the exact expand volume.
pub fn column_net_model(a: &Csr, include_diagonal: bool) -> Hypergraph {
    if include_diagonal {
        assert_eq!(a.nrows(), a.ncols(), "diagonal pins require a square matrix");
    }
    let csc = a.to_csc();
    let mut nets: Vec<Vec<u32>> = Vec::with_capacity(a.ncols());
    for j in 0..a.ncols() {
        let mut pins: Vec<u32> = csc.col_rows(j).to_vec();
        if include_diagonal && !pins.contains(&(j as u32)) {
            pins.push(j as u32);
        }
        nets.push(pins);
    }
    let vwgt: Vec<u64> = (0..a.nrows()).map(|i| a.row_nnz(i) as u64).collect();
    let ncost = vec![1u64; nets.len()];
    Hypergraph::new(a.nrows(), 1, vwgt, &nets, ncost)
}

/// Row-net model: vertex per column (weight = column nnz), net per row.
/// The dual of [`column_net_model`]; used for 1D columnwise partitions.
pub fn row_net_model(a: &Csr, include_diagonal: bool) -> Hypergraph {
    column_net_model(&a.transpose(), include_diagonal)
}

/// Fine-grain model: vertex per nonzero (unit weight, ordered as in the
/// CSR arrays), one net per row and one per column (cost 1).
///
/// Nets `0..nrows` are row nets; nets `nrows..nrows+ncols` are column
/// nets. Empty rows/columns produce empty nets (harmless).
pub fn fine_grain_model(a: &Csr) -> Hypergraph {
    let nnz = a.nnz();
    let nnets = a.nrows() + a.ncols();
    // Row nets are contiguous ranges of the CSR order; column nets are
    // gathered through the transpose.
    let mut xpins = Vec::with_capacity(nnets + 1);
    let mut pins: Vec<u32> = Vec::with_capacity(2 * nnz);
    xpins.push(0usize);
    for i in 0..a.nrows() {
        pins.extend(a.row_range(i).map(|e| e as u32));
        xpins.push(pins.len());
    }
    // Column nets: counting sort of nonzero ids by column.
    let mut colcnt = vec![0usize; a.ncols() + 1];
    for &c in a.colind() {
        colcnt[c as usize + 1] += 1;
    }
    for j in 0..a.ncols() {
        colcnt[j + 1] += colcnt[j];
    }
    let base = pins.len();
    pins.resize(base + nnz, 0);
    let mut next = colcnt.clone();
    for (e, &c) in a.colind().iter().enumerate() {
        pins[base + next[c as usize]] = e as u32;
        next[c as usize] += 1;
    }
    for j in 0..a.ncols() {
        xpins.push(base + colcnt[j + 1]);
    }
    let ncost = vec![1u64; nnets];
    Hypergraph::from_csr(nnz, 1, vec![1u64; nnz], ncost, xpins, pins)
}

/// Output of [`medium_grain_model`].
pub struct MediumGrainModel {
    /// The composite hypergraph: vertex `u_i` per row/column pair `i`.
    pub hg: Hypergraph,
    /// Per nonzero (CSR order): `true` if assigned to `Ar` (row side),
    /// `false` if assigned to `Ac` (column side).
    pub in_ar: Vec<bool>,
}

/// Medium-grain composite model for a square matrix.
///
/// The split rule follows Pelt & Bisseling: `a_ij` joins `Ac` when column
/// `j` has strictly fewer nonzeros than row `i`, otherwise `Ar`.
/// Net `j` (column net over `Ar`) and net `nrows + i` (row net over `Ac`)
/// both carry cost 1; `u_j` is a pin of column-net `j` and `u_i` of
/// row-net `i`, so connectivity−1 equals the decoded s2D partition's
/// communication volume.
///
/// # Panics
/// Panics if `a` is not square.
pub fn medium_grain_model(a: &Csr) -> MediumGrainModel {
    assert_eq!(a.nrows(), a.ncols(), "medium-grain amalgamated model requires a square matrix");
    let n = a.nrows();
    let col_deg = s2d_sparse::stats::col_degrees(a);

    let mut in_ar = vec![false; a.nnz()];
    let mut vwgt = vec![0u64; n];
    // Nets: index j in 0..n = column-net over Ar; n + i = row-net over Ac.
    let mut nets: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
    for i in 0..n {
        let row_deg = a.row_nnz(i);
        for e in a.row_range(i) {
            let j = a.colind()[e] as usize;
            let ar = col_deg[j] >= row_deg; // Ac iff col strictly shorter
            in_ar[e] = ar;
            if ar {
                vwgt[i] += 1;
                nets[j].push(i as u32);
            } else {
                vwgt[j] += 1;
                nets[n + i].push(j as u32);
            }
        }
    }
    for j in 0..n {
        if !nets[j].contains(&(j as u32)) {
            nets[j].push(j as u32);
        }
        if !nets[n + j].contains(&(j as u32)) {
            nets[n + j].push(j as u32);
        }
    }
    let ncost = vec![1u64; 2 * n];
    let hg = Hypergraph::new(n, 1, vwgt, &nets, ncost);
    MediumGrainModel { hg, in_ar }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::connectivity_minus_one;
    use s2d_sparse::Coo;

    fn arrow(n: usize) -> Csr {
        // Arrowhead: dense first row and column plus diagonal.
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(0, i, 1.0);
            m.push(i, 0, 1.0);
            m.push(i, i, 1.0);
        }
        m.compress();
        m.to_csr()
    }

    #[test]
    fn column_net_shape() {
        let a = arrow(5);
        let hg = column_net_model(&a, false);
        assert_eq!(hg.nvtx(), 5);
        assert_eq!(hg.nnets(), 5);
        // Column 0 is dense: net 0 has all rows as pins.
        assert_eq!(hg.net_size(0), 5);
        // Vertex weight = row nnz.
        assert_eq!(hg.vweight(0), &[5]);
    }

    #[test]
    fn column_net_diagonal_pin_added() {
        let a = Coo::from_pattern(3, 3, &[(0, 1), (1, 1), (2, 2)]).to_csr();
        let hg = column_net_model(&a, true);
        // Column 0 is empty but gains the diagonal pin {0}.
        assert_eq!(hg.net_size(0), 1);
        // Column 1 has rows {0,1}; 1 is the diagonal, already there.
        assert_eq!(hg.net_size(1), 2);
    }

    #[test]
    fn column_net_cut_equals_expand_volume() {
        // 4x4: row pairs {0,1} and {2,3}; column 2 accessed by both parts.
        let a = Coo::from_pattern(4, 4, &[(0, 0), (0, 2), (1, 1), (2, 2), (3, 3), (3, 2)]).to_csr();
        let hg = column_net_model(&a, true);
        let parts = vec![0u32, 0, 1, 1];
        // Nets: col0 {r0}+diag0 -> {0}; col1 {r1}+d1 {1}; col2 {0,2,3}+d2;
        // col3 {3}+d3. Only net 2 is cut with lambda=2.
        assert_eq!(connectivity_minus_one(&hg, &parts, 2), 1);
    }

    #[test]
    fn fine_grain_nets_index_rows_then_cols() {
        let a = arrow(4);
        let hg = fine_grain_model(&a);
        assert_eq!(hg.nvtx(), a.nnz());
        assert_eq!(hg.nnets(), 8);
        // Row net 0 = nonzeros of row 0 (4 of them: cols 0..3).
        assert_eq!(hg.net_size(0), 4);
        // Column net (4 + 0) = nonzeros of column 0.
        assert_eq!(hg.net_size(4), 4);
        // Every nonzero appears in exactly one row net and one col net.
        for v in 0..hg.nvtx() {
            assert_eq!(hg.degree(v), 2);
        }
    }

    #[test]
    fn medium_grain_splits_by_shorter_dimension() {
        let a = arrow(6);
        let mg = medium_grain_model(&a);
        // Row 0 and column 0 are both dense (weight 7 each with diagonal);
        // for nonzero (0, j) with j > 0: column j has 2 nonzeros, row 0 has
        // 6: column is shorter -> Ac.
        for e in a.row_range(0) {
            let j = a.colind()[e] as usize;
            if j > 0 {
                assert!(!mg.in_ar[e], "(0,{j}) should go to Ac");
            }
        }
        // Nonzero (i, 0) with i > 0: row i has 2 nonzeros, column 0 has 6:
        // row is shorter -> Ar.
        for i in 1..6 {
            let e = a.row_range(i).next().unwrap();
            assert_eq!(a.colind()[e], 0);
            assert!(mg.in_ar[e], "({i},0) should go to Ar");
        }
        // Weights count assigned nonzeros and sum to nnz.
        let total: u64 = (0..mg.hg.nvtx()).map(|v| mg.hg.vweight(v)[0]).sum();
        assert_eq!(total, a.nnz() as u64);
    }

    #[test]
    fn medium_grain_nets_contain_own_vertex() {
        let a = arrow(5);
        let mg = medium_grain_model(&a);
        for j in 0..5 {
            assert!(mg.hg.pins_of(j).contains(&(j as u32)), "col net {j}");
            assert!(mg.hg.pins_of(5 + j).contains(&(j as u32)), "row net {j}");
        }
    }
}
