//! Multilevel hypergraph partitioning — the PaToH substitute.
//!
//! The paper partitions with PaToH (closed source). This crate implements
//! the same algorithmic family so every experiment can run offline:
//!
//! * [`hg`] — pin/net CSR hypergraph structure with multi-constraint
//!   vertex weights;
//! * [`coarsen`] — randomized heavy-connectivity matching coarsening with
//!   identical-net merging;
//! * [`initial`] — greedy hypergraph growing + random initial bisections;
//! * [`fm`] — Fiduccia–Mattheyses boundary refinement with delta-gain
//!   updates, hill climbing and rollback;
//! * [`bisect`] / [`kway`] — multilevel bisection and recursive K-way
//!   driver with net splitting (so the sum of bisection cuts equals the
//!   connectivity−1 metric of the final K-way partition);
//! * [`metrics`] — cut-net and connectivity−1 cutsizes, imbalance;
//! * [`models`] — the column-net, row-net, fine-grain and medium-grain
//!   hypergraph models of sparse matrices used by the paper.

pub mod bisect;
pub mod coarsen;
pub mod fm;
pub mod hg;
pub mod initial;
pub mod kway;
pub mod metrics;
pub mod models;

pub use hg::Hypergraph;
pub use kway::{partition_kway, KwayPartition, PartitionConfig};
pub use metrics::{connectivity_minus_one, cut_net, imbalance};
