//! Property tests for the hypergraph partitioner and the SpMV models.
//!
//! Oracles: brute-force connectivity−1 on tiny hypergraphs, the
//! cut = communication-volume identity of the column-net model, and the
//! structural invariants every partition must satisfy (all parts used
//! when feasible, part ids in range, determinism in the seed).

use proptest::prelude::*;
use s2d_hypergraph::models::{column_net_model, fine_grain_model, row_net_model};
use s2d_hypergraph::{
    connectivity_minus_one, cut_net, imbalance, partition_kway, Hypergraph, PartitionConfig,
};
use s2d_sparse::Coo;

/// Random hypergraph: unit vertex weights, unit net costs.
fn hg_strategy(max_vtx: usize, max_nets: usize) -> impl Strategy<Value = Hypergraph> {
    (2..=max_vtx).prop_flat_map(move |nv| {
        let net = proptest::collection::vec(0..nv as u32, 2..=nv.min(6));
        proptest::collection::vec(net, 1..=max_nets).prop_map(move |mut nets| {
            for net in &mut nets {
                net.sort_unstable();
                net.dedup();
            }
            nets.retain(|n| n.len() >= 2);
            if nets.is_empty() {
                nets.push(vec![0, 1]);
            }
            let costs = vec![1u64; nets.len()];
            Hypergraph::new(nv, 1, vec![1; nv], &nets, costs)
        })
    })
}

/// Random sparse matrix for the model tests.
fn coo_strategy(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(move |(m, n)| {
        let entry = (0..m, 0..n);
        proptest::collection::vec(entry, 1..=max_nnz).prop_map(move |es| {
            let mut coo = Coo::new(m, n);
            for (r, c) in es {
                coo.push(r, c, 1.0);
            }
            coo.compress();
            coo
        })
    })
}

/// Reference connectivity−1 computed naively.
fn naive_connectivity(hg: &Hypergraph, parts: &[u32], k: usize) -> u64 {
    let mut total = 0u64;
    for n in 0..hg.nnets() {
        let mut seen = vec![false; k];
        let mut lambda = 0u64;
        for &p in hg.pins_of(n) {
            let part = parts[p as usize] as usize;
            if !seen[part] {
                seen[part] = true;
                lambda += 1;
            }
        }
        total += hg.ncost(n) * lambda.saturating_sub(1);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fast connectivity metric equals the naive one on arbitrary
    /// partitions.
    #[test]
    fn connectivity_matches_naive(
        hg in hg_strategy(16, 24),
        k in 1usize..5,
        seed in 0u64..500,
    ) {
        let parts: Vec<u32> = (0..hg.nvtx())
            .map(|v| ((v as u64 * 2654435761 + seed) % k as u64) as u32)
            .collect();
        prop_assert_eq!(
            connectivity_minus_one(&hg, &parts, k),
            naive_connectivity(&hg, &parts, k)
        );
    }

    /// Cut-net is bounded by connectivity−1 is bounded by (K−1)·cut-net.
    #[test]
    fn metric_sandwich(
        hg in hg_strategy(16, 24),
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let parts: Vec<u32> = (0..hg.nvtx())
            .map(|v| ((v as u64 * 40503 + seed) % k as u64) as u32)
            .collect();
        let cn = cut_net(&hg, &parts, k);
        let conn = connectivity_minus_one(&hg, &parts, k);
        prop_assert!(cn <= conn);
        prop_assert!(conn <= cn * (k as u64 - 1));
    }

    /// The partitioner produces in-range part ids, covers every part when
    /// vertices allow, and is deterministic in the seed.
    #[test]
    fn partitioner_structural_invariants(
        hg in hg_strategy(24, 32),
        k in 1usize..5,
        seed in 0u64..20,
    ) {
        let cfg = PartitionConfig { seed, ..Default::default() };
        let p1 = partition_kway(&hg, k, &cfg);
        prop_assert_eq!(p1.parts.len(), hg.nvtx());
        prop_assert!(p1.parts.iter().all(|&x| (x as usize) < k));
        if hg.nvtx() >= k {
            let mut seen = vec![false; k];
            for &x in &p1.parts {
                seen[x as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "a part is empty");
        }
        let p2 = partition_kway(&hg, k, &cfg);
        prop_assert_eq!(p1.parts, p2.parts);
    }

    /// The partitioner never exceeds a generous imbalance envelope on
    /// unit weights (epsilon plus the one-vertex granularity slack).
    #[test]
    fn partitioner_balance_envelope(
        hg in hg_strategy(32, 40),
        k in 2usize..5,
    ) {
        let cfg = PartitionConfig { epsilon: 0.10, ..Default::default() };
        let p = partition_kway(&hg, k, &cfg);
        let imb = imbalance(&hg, &p.parts, k, 0);
        // Granularity: with nvtx vertices of unit weight, one vertex is
        // k/nvtx of the average part weight.
        let slack = 0.10 + 1.5 * k as f64 / hg.nvtx() as f64;
        prop_assert!(imb <= slack, "imbalance {imb} > {slack}");
    }

    /// Column-net model identity: for a square matrix with a symmetric
    /// vector partition, connectivity−1 equals the expand volume of the
    /// induced rowwise partition.
    #[test]
    fn column_net_cut_equals_volume(
        coo in coo_strategy(16, 48),
        k in 2usize..4,
        seed in 0u64..100,
    ) {
        // Make it square by padding to max(m, n).
        let d = coo.nrows().max(coo.ncols());
        let mut sq = Coo::new(d, d);
        for (r, c, v) in coo.iter() {
            sq.push(r, c, v);
        }
        sq.compress();
        let a = sq.to_csr();
        let parts: Vec<u32> = (0..d)
            .map(|i| ((i as u64 * 97 + seed) % k as u64) as u32)
            .collect();
        let hg = column_net_model(&a, true);
        let cut = connectivity_minus_one(&hg, &parts, k);
        // Expand volume of the rowwise partition with x_j on part[j]:
        // for every column j, each foreign part with a nonzero needs x_j.
        let csc = a.to_csc();
        let mut volume = 0u64;
        for j in 0..d {
            let mut parts_seen: Vec<u32> = csc
                .col_rows(j)
                .iter()
                .map(|&i| parts[i as usize])
                .collect();
            parts_seen.push(parts[j]); // diagonal pin: x_j's owner
            parts_seen.sort_unstable();
            parts_seen.dedup();
            volume += parts_seen.len() as u64 - 1;
        }
        prop_assert_eq!(cut, volume);
    }

    /// Row-net model identity (the columnwise dual): connectivity−1 of a
    /// column partition equals the fold volume — for every row, each
    /// extra part holding one of its nonzeros ships one partial result.
    #[test]
    fn row_net_cut_equals_fold_volume(
        coo in coo_strategy(14, 40),
        k in 2usize..4,
        seed in 0u64..100,
    ) {
        let a = coo.to_csr();
        let parts_cols: Vec<u32> = (0..a.ncols())
            .map(|j| ((j as u64 * 31 + seed) % k as u64) as u32)
            .collect();
        let rn = row_net_model(&a, false);
        let cut = connectivity_minus_one(&rn, &parts_cols, k);
        // Fold volume of the columnwise partition with y_i placed on one
        // of the parts touching row i (λ − 1 partials per row).
        let mut volume = 0u64;
        for i in 0..a.nrows() {
            let mut touching: Vec<u32> =
                a.row_cols(i).iter().map(|&j| parts_cols[j as usize]).collect();
            touching.sort_unstable();
            touching.dedup();
            volume += (touching.len() as u64).saturating_sub(1);
        }
        prop_assert_eq!(cut, volume);
    }

    /// Fine-grain model shape: one vertex per nonzero, one net per row
    /// plus one per column (empty nets allowed), total pins = 2·nnz, and
    /// every nonzero-vertex pins exactly its row net and its column net.
    #[test]
    fn fine_grain_model_shape(coo in coo_strategy(14, 40)) {
        let a = coo.to_csr();
        let hg = fine_grain_model(&a);
        prop_assert_eq!(hg.nvtx(), a.nnz());
        prop_assert_eq!(hg.nnets(), a.nrows() + a.ncols());
        prop_assert_eq!(hg.npins(), 2 * a.nnz());
        for v in 0..hg.nvtx() {
            prop_assert_eq!(hg.degree(v), 2);
            let i = a.row_of_nnz(v);
            let j = a.colind()[v] as usize;
            let nets = hg.nets_of(v);
            prop_assert!(nets.contains(&(i as u32)), "row net of nonzero {v}");
            prop_assert!(nets.contains(&((a.nrows() + j) as u32)), "col net of nonzero {v}");
        }
    }
}
