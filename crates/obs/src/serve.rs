//! Serving-layer counters: admission, coalescing and preparation-cache
//! traffic of a long-lived `s2d-serve` server, recorded lock-free from
//! any thread and snapshotted for reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one serving layer. All methods are `&self` and
/// relaxed-atomic — workers and admission threads bump them
/// concurrently without coordination; [`ServeStats::snapshot`] reads a
/// (per-counter) consistent view for reporting.
#[derive(Debug, Default)]
pub struct ServeStats {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected_full: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    tuner_hits: AtomicU64,
    tuner_misses: AtomicU64,
}

impl ServeStats {
    /// Fresh counters, all zero.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// A request passed admission and entered a queue.
    pub fn admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request's result was delivered to its caller.
    pub fn complete(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was turned away because its session queue was full.
    pub fn reject_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    /// A request's deadline passed before execution started.
    pub fn expire(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// One batch execution covering `requests` coalesced requests
    /// (`requests = 1` means no coalescing happened for that batch).
    pub fn batch(&self, requests: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(requests, Ordering::Relaxed);
    }

    /// A registration was served from the preparation cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A registration had to run the full preparation.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A cached preparation was evicted to stay within capacity.
    pub fn cache_evict(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A registration found a measured configuration in the on-disk
    /// tuning cache (the tuner's pick overrode the static models).
    pub fn tuner_hit(&self) {
        self.tuner_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A registration consulted the tuning cache and found no entry
    /// (the static model pick was used).
    pub fn tuner_miss(&self) {
        self.tuner_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-value copy of the counters for reporting.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            tuner_hits: self.tuner_hits.load(Ordering::Relaxed),
            tuner_misses: self.tuner_misses.load(Ordering::Relaxed),
        }
    }
}

/// One point-in-time reading of [`ServeStats`], carried by
/// [`ExecutionReport`](crate::ExecutionReport) when a serving layer is
/// in play.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests whose results were delivered.
    pub completed: u64,
    /// Requests rejected with a full queue.
    pub rejected_full: u64,
    /// Requests that expired before execution.
    pub expired: u64,
    /// Batch executions run.
    pub batches: u64,
    /// Requests covered by those batches (= completed work items).
    pub coalesced: u64,
    /// Preparation-cache hits.
    pub cache_hits: u64,
    /// Preparation-cache misses.
    pub cache_misses: u64,
    /// Preparation-cache evictions.
    pub cache_evictions: u64,
    /// Registrations that found a measured entry in the tuning cache.
    pub tuner_hits: u64,
    /// Registrations that consulted the tuning cache and found none.
    pub tuner_misses: u64,
}

impl ServeSnapshot {
    /// Mean requests per executed batch (1.0 = no coalescing; 0 when
    /// nothing ran). The serving layer's headline reuse figure.
    pub fn coalescing_rate(&self) -> f64 {
        if self.batches > 0 {
            self.coalesced as f64 / self.batches as f64
        } else {
            0.0
        }
    }

    /// Cache hits / lookups (0 when the cache was never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups > 0 {
            self.cache_hits as f64 / lookups as f64
        } else {
            0.0
        }
    }

    /// One JSON object, hand-rolled like the rest of the crate.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"admitted\":{},\"completed\":{},\"rejected_full\":{},",
                "\"expired\":{},\"batches\":{},\"coalesced\":{},",
                "\"coalescing_rate\":{:.4},\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_evictions\":{},\"cache_hit_rate\":{:.4},",
                "\"tuner_hits\":{},\"tuner_misses\":{}}}"
            ),
            self.admitted,
            self.completed,
            self.rejected_full,
            self.expired,
            self.batches,
            self.coalesced,
            self.coalescing_rate(),
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate(),
            self.tuner_hits,
            self.tuner_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = ServeStats::new();
        for _ in 0..5 {
            s.admit();
        }
        s.reject_full();
        s.expire();
        s.batch(3);
        s.batch(1);
        for _ in 0..4 {
            s.complete();
        }
        s.cache_hit();
        s.cache_hit();
        s.cache_miss();
        s.cache_evict();
        s.tuner_hit();
        s.tuner_miss();
        s.tuner_miss();
        let snap = s.snapshot();
        assert_eq!(snap.admitted, 5);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.rejected_full, 1);
        assert_eq!(snap.expired, 1);
        assert_eq!((snap.batches, snap.coalesced), (2, 4));
        assert!((snap.coalescing_rate() - 2.0).abs() < 1e-12);
        assert!((snap.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(snap.cache_evictions, 1);
        assert_eq!((snap.tuner_hits, snap.tuner_misses), (1, 2));
    }

    #[test]
    fn empty_snapshot_rates_are_zero_not_nan() {
        let snap = ServeStats::new().snapshot();
        assert_eq!(snap.coalescing_rate(), 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
    }

    #[test]
    fn json_is_balanced_and_carries_rates() {
        let s = ServeStats::new();
        s.batch(8);
        s.cache_hit();
        let json = s.snapshot().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"coalescing_rate\":8.0000"));
        assert!(json.contains("\"cache_hit_rate\":1.0000"));
        assert!(json.contains("\"tuner_hits\":0"));
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        use std::sync::Arc;
        let s = Arc::new(ServeStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.admit();
                        s.complete();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!((snap.admitted, snap.completed), (4000, 4000));
    }
}
