//! # s2d-obs — per-rank phase telemetry
//!
//! The measurement substrate for the execution stack: every quantity
//! the paper's cost models *predict* (communication volume, load
//! imbalance, per-iteration time) becomes *observable* here, so the
//! α–β / LogGP predictions in `s2d-partition` can be scored against
//! reality instead of taken on faith.
//!
//! The design center is a [`TelemetrySink`]: one lock-free
//! [`PhaseRecorder`] per virtual processor, each holding monotonic-clock
//! span totals, span counts and a log₂ duration histogram per execution
//! [`Phase`] (compute / gather / scatter / barrier-wait / reduce), plus
//! work counters (rows emitted, multiply-adds, staged communication
//! words). Recorders are plain relaxed atomics padded to their own cache
//! lines — engine workers on different ranks never contend and never
//! false-share, and when no sink is attached the execution paths skip
//! every clock read, so telemetry-off runs are bitwise identical to an
//! uninstrumented build.
//!
//! Phase semantics match the engine's staged-exchange structure:
//!
//! * **compute** — kernel execution over local buffers;
//! * **gather** — collecting words *out* of local buffers: input
//!   seeding and send staging;
//! * **scatter** — applying words *into* local buffers: receive
//!   application and output assembly;
//! * **barrier-wait** — time parked at a synchronization barrier (the
//!   worker pool's phase barriers), the direct observation of load
//!   imbalance;
//! * **reduce** — global reductions (solver dot products and norms).
//!
//! [`ExecutionReport::collect`] condenses a sink into the headline
//! artifact: per-rank × per-phase breakdown, observed load imbalance,
//! and — when a model prediction is supplied — observed-vs-modeled
//! ratio columns. The report pretty-prints and exports hand-rolled
//! JSON in the same style as `PartitionQuality::to_json`.
//!
//! The [`time`] and [`best_of`] span helpers centralize the ad-hoc
//! `Instant` timing previously duplicated across the CLI and benches.

mod report;
mod serve;

pub use report::{
    ExecutionReport, ModelComparison, ModelRef, PhaseTimes, RankReport, WorkerLoadReport,
};
pub use serve::{ServeSnapshot, ServeStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One execution phase a span can be attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Kernel execution over local buffers.
    Compute,
    /// Input seeding and send staging (words leave local buffers).
    Gather,
    /// Receive application and output assembly (words enter local
    /// buffers).
    Scatter,
    /// Time parked at a synchronization barrier.
    BarrierWait,
    /// Global reductions (dot products, norms).
    Reduce,
}

impl Phase {
    /// Number of phases (array dimension of per-phase storage).
    pub const COUNT: usize = 5;

    /// Every phase, in storage order.
    pub fn all() -> [Phase; Phase::COUNT] {
        [Phase::Compute, Phase::Gather, Phase::Scatter, Phase::BarrierWait, Phase::Reduce]
    }

    /// Storage index of this phase (dense, `0..Phase::COUNT`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::Gather => 1,
            Phase::Scatter => 2,
            Phase::BarrierWait => 3,
            Phase::Reduce => 4,
        }
    }

    /// Short stable label (report columns, JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Gather => "gather",
            Phase::Scatter => "scatter",
            Phase::BarrierWait => "barrier",
            Phase::Reduce => "reduce",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Log₂ histogram buckets per phase: bucket `i` counts spans whose
/// duration in nanoseconds has bit length `i` (bucket 0 holds 0–1 ns,
/// bucket 31 saturates everything ≥ ~1 s).
pub const HIST_BUCKETS: usize = 32;

#[inline]
fn bucket_of(nanos: u64) -> usize {
    ((u64::BITS - nanos.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// One rank's lock-free telemetry slot: per-phase span totals, counts
/// and log₂ histograms, plus work counters.
///
/// All fields are relaxed atomics — a recorder is written by whichever
/// worker currently owns the rank and read only after the run (the
/// engine's barriers and thread joins provide the ordering). The
/// 128-byte alignment keeps adjacent ranks' recorders off each other's
/// cache lines, so concurrent workers never false-share.
#[repr(align(128))]
pub struct PhaseRecorder {
    nanos: [AtomicU64; Phase::COUNT],
    spans: [AtomicU64; Phase::COUNT],
    hist: [[AtomicU64; HIST_BUCKETS]; Phase::COUNT],
    rows: AtomicU64,
    madds: AtomicU64,
    comm_words: AtomicU64,
}

impl Default for PhaseRecorder {
    fn default() -> PhaseRecorder {
        PhaseRecorder {
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: std::array::from_fn(|_| AtomicU64::new(0)),
            hist: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            rows: AtomicU64::new(0),
            madds: AtomicU64::new(0),
            comm_words: AtomicU64::new(0),
        }
    }
}

impl PhaseRecorder {
    /// Records one span of `nanos` under `phase`.
    #[inline]
    pub fn record(&self, phase: Phase, nanos: u64) {
        let p = phase.index();
        self.nanos[p].fetch_add(nanos, Ordering::Relaxed);
        self.spans[p].fetch_add(1, Ordering::Relaxed);
        self.hist[p][bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates work counters (typically once per iteration with the
    /// plan's static per-iteration amounts).
    #[inline]
    pub fn add_counts(&self, rows: u64, madds: u64, comm_words: u64) {
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.madds.fetch_add(madds, Ordering::Relaxed);
        self.comm_words.fetch_add(comm_words, Ordering::Relaxed);
    }

    /// Total nanoseconds recorded under `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()].load(Ordering::Relaxed)
    }

    /// Number of spans recorded under `phase`.
    pub fn spans(&self, phase: Phase) -> u64 {
        self.spans[phase.index()].load(Ordering::Relaxed)
    }

    /// The log₂ duration histogram of `phase` (see [`HIST_BUCKETS`]).
    pub fn histogram(&self, phase: Phase) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|b| self.hist[phase.index()][b].load(Ordering::Relaxed))
    }

    /// Rows emitted (owner-assembled output rows × iterations × batch).
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Multiply-adds executed (format-invariant, padding excluded).
    pub fn madds(&self) -> u64 {
        self.madds.load(Ordering::Relaxed)
    }

    /// Words staged into communication buffers by this rank.
    pub fn comm_words(&self) -> u64 {
        self.comm_words.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        for p in 0..Phase::COUNT {
            self.nanos[p].store(0, Ordering::Relaxed);
            self.spans[p].store(0, Ordering::Relaxed);
            for b in 0..HIST_BUCKETS {
                self.hist[p][b].store(0, Ordering::Relaxed);
            }
        }
        self.rows.store(0, Ordering::Relaxed);
        self.madds.store(0, Ordering::Relaxed);
        self.comm_words.store(0, Ordering::Relaxed);
    }
}

/// The shared telemetry collection point: one [`PhaseRecorder`] per
/// rank plus run-level counters (iterations, wall time inside
/// instrumented executions, solver iterations).
///
/// Cheap to share (`Arc`) between the control thread, pool workers and
/// SPMD solver ranks; all writes are relaxed atomics.
pub struct TelemetrySink {
    ranks: Vec<PhaseRecorder>,
    iterations: AtomicU64,
    wall_nanos: AtomicU64,
    solver_iters: AtomicU64,
    solver_nanos: AtomicU64,
}

impl TelemetrySink {
    /// A sink for `k` ranks, all counters zero.
    pub fn new(k: usize) -> TelemetrySink {
        assert!(k >= 1, "telemetry sink needs at least one rank");
        TelemetrySink {
            ranks: (0..k).map(|_| PhaseRecorder::default()).collect(),
            iterations: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            solver_iters: AtomicU64::new(0),
            solver_nanos: AtomicU64::new(0),
        }
    }

    /// Number of ranks this sink records.
    pub fn k(&self) -> usize {
        self.ranks.len()
    }

    /// Rank `r`'s recorder.
    #[inline]
    pub fn rank(&self, r: usize) -> &PhaseRecorder {
        &self.ranks[r]
    }

    /// Accounts `n` engine iterations (one per pass over the phases).
    #[inline]
    pub fn add_iterations(&self, n: u64) {
        self.iterations.fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts wall time spent inside instrumented executions.
    #[inline]
    pub fn add_wall(&self, nanos: u64) {
        self.wall_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one solver iteration of `nanos`.
    #[inline]
    pub fn record_solver_iter(&self, nanos: u64) {
        self.solver_iters.fetch_add(1, Ordering::Relaxed);
        self.solver_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Engine iterations accounted so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Wall nanoseconds inside instrumented executions.
    pub fn wall_nanos(&self) -> u64 {
        self.wall_nanos.load(Ordering::Relaxed)
    }

    /// Solver iterations recorded so far.
    pub fn solver_iters(&self) -> u64 {
        self.solver_iters.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across recorded solver iterations.
    pub fn solver_nanos(&self) -> u64 {
        self.solver_nanos.load(Ordering::Relaxed)
    }

    /// Resets every recorder and counter to zero (e.g. to profile a
    /// steady-state window after warmup).
    pub fn reset(&self) {
        for r in &self.ranks {
            r.clear();
        }
        self.iterations.store(0, Ordering::Relaxed);
        self.wall_nanos.store(0, Ordering::Relaxed);
        self.solver_iters.store(0, Ordering::Relaxed);
        self.solver_nanos.store(0, Ordering::Relaxed);
    }
}

/// Times one call: returns the result and the elapsed wall time.
///
/// The span helper behind every "how long did setup take" measurement
/// in the CLI.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// Noise-robust per-call estimate: runs `f` in `reps` batches of
/// `iters` calls and returns the minimum per-call average — the
/// best-of-N idiom the benches use (the minimum of averages discards
/// scheduler noise without discarding cache-warm state).
///
/// `reps` and `iters` are clamped to at least 1.
pub fn best_of(reps: usize, iters: u32, mut f: impl FnMut()) -> Duration {
    let (reps, iters) = (reps.max(1), iters.max(1));
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed() / iters
        })
        .min()
        .expect("reps >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_stable() {
        for (i, ph) in Phase::all().into_iter().enumerate() {
            assert_eq!(ph.index(), i);
        }
        assert_eq!(Phase::all().len(), Phase::COUNT);
        assert_eq!(Phase::BarrierWait.label(), "barrier");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn recorder_accumulates_spans_and_counts() {
        let rec = PhaseRecorder::default();
        rec.record(Phase::Compute, 100);
        rec.record(Phase::Compute, 200);
        rec.record(Phase::Reduce, 7);
        rec.add_counts(3, 50, 12);
        rec.add_counts(3, 50, 12);
        assert_eq!(rec.nanos(Phase::Compute), 300);
        assert_eq!(rec.spans(Phase::Compute), 2);
        assert_eq!(rec.spans(Phase::Reduce), 1);
        assert_eq!(rec.nanos(Phase::Gather), 0);
        assert_eq!((rec.rows(), rec.madds(), rec.comm_words()), (6, 100, 24));
        let h = rec.histogram(Phase::Compute);
        assert_eq!(h.iter().sum::<u64>(), 2);
        assert_eq!(h[bucket_of(100)] + h[bucket_of(200)], 2);
    }

    #[test]
    fn sink_reset_clears_everything() {
        let sink = TelemetrySink::new(2);
        sink.rank(1).record(Phase::Gather, 42);
        sink.add_iterations(5);
        sink.add_wall(1000);
        sink.record_solver_iter(300);
        assert_eq!(sink.k(), 2);
        assert_eq!(sink.iterations(), 5);
        assert_eq!(sink.solver_iters(), 1);
        sink.reset();
        assert_eq!(sink.rank(1).nanos(Phase::Gather), 0);
        assert_eq!(sink.rank(1).spans(Phase::Gather), 0);
        assert_eq!(sink.iterations(), 0);
        assert_eq!(sink.wall_nanos(), 0);
        assert_eq!(sink.solver_iters(), 0);
        assert_eq!(sink.solver_nanos(), 0);
    }

    #[test]
    fn span_helpers_time_work() {
        let (value, d) = time(|| 2 + 2);
        assert_eq!(value, 4);
        assert!(d.as_nanos() < 1_000_000_000);
        let mut calls = 0u32;
        let per_call = best_of(2, 3, || calls += 1);
        assert_eq!(calls, 6);
        assert!(per_call.as_nanos() < 1_000_000_000);
        // Degenerate arguments clamp instead of panicking.
        let _ = best_of(0, 0, || ());
    }
}
