//! The [`ExecutionReport`]: a [`TelemetrySink`](crate::TelemetrySink)
//! condensed into the observed-side counterpart of
//! `PartitionQuality` — per-rank × per-phase times, observed load
//! imbalance, and (when a model prediction is attached)
//! observed-vs-modeled ratio columns scoring the α–β / LogGP models.

use crate::{Phase, ServeSnapshot, TelemetrySink};

/// One phase's recorded time on one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTimes {
    /// Total nanoseconds across all spans.
    pub nanos: u64,
    /// Number of spans.
    pub spans: u64,
    /// Log₂ duration histogram, trimmed after the last non-empty
    /// bucket (empty when no spans were recorded); bucket `i` counts
    /// spans whose nanosecond duration has bit length `i`.
    pub hist: Vec<u64>,
}

/// One rank's full telemetry row.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReport {
    /// The rank.
    pub rank: usize,
    /// Per-phase times, indexed like [`Phase::all`].
    pub phases: Vec<PhaseTimes>,
    /// Rows emitted (× iterations × batch width).
    pub rows: u64,
    /// Multiply-adds executed.
    pub madds: u64,
    /// Words staged into communication buffers.
    pub comm_words: u64,
}

/// The model-side prediction an [`ExecutionReport`] is scored against
/// (typically lifted from `PartitionQuality`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelRef {
    /// Predicted communication volume per iteration, in words.
    pub comm_words: u64,
    /// Predicted per-iteration time under the α–β model, seconds.
    pub alpha_beta_secs: f64,
    /// Predicted per-iteration time under the LogGP model, seconds.
    pub loggp_secs: f64,
}

/// Observed-vs-modeled scoring, the report's headline columns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelComparison {
    /// Modeled communication words per iteration.
    pub modeled_comm_words: u64,
    /// Observed / modeled comm words (≈ batch width when the staged
    /// exchange moves exactly the modeled volume per column).
    pub words_ratio: f64,
    /// Modeled α–β per-iteration seconds.
    pub alpha_beta_secs: f64,
    /// Modeled LogGP per-iteration seconds.
    pub loggp_secs: f64,
    /// Observed per-iteration seconds / α–β prediction.
    pub alpha_beta_ratio: f64,
    /// Observed per-iteration seconds / LogGP prediction.
    pub loggp_ratio: f64,
}

/// Everything one instrumented run observed, ready to print or export.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionReport {
    /// Backend label the run executed on.
    pub backend: String,
    /// Number of ranks.
    pub k: usize,
    /// Engine iterations accounted.
    pub iterations: u64,
    /// Wall nanoseconds inside instrumented executions.
    pub wall_nanos: u64,
    /// Solver iterations recorded (0 outside solver runs).
    pub solver_iters: u64,
    /// Total nanoseconds across solver iterations.
    pub solver_nanos: u64,
    /// Per-rank telemetry rows.
    pub ranks: Vec<RankReport>,
    /// Observed load imbalance: max/mean per-rank compute time over
    /// ranks that recorded compute spans (1.0 when fewer than two
    /// ranks did).
    pub load_imbalance: f64,
    /// Observed staged communication words per iteration.
    pub comm_words_per_iter: f64,
    /// Observed-vs-modeled scoring, when a prediction was attached.
    pub model: Option<ModelComparison>,
    /// Serving-layer counters, when the run went through `s2d-serve`
    /// (attach with [`ExecutionReport::with_serve`]).
    pub serve: Option<ServeSnapshot>,
    /// Per-worker loads, when the run executed on the worker pool
    /// (attach with [`ExecutionReport::with_workers`]).
    pub workers: Option<WorkerLoadReport>,
}

/// Per-worker multiply-add loads under the pool's intra-rank schedule.
///
/// The pool's chunk→worker map is fixed at build time and identical
/// every iteration, so the planned loads *are* the achieved loads — no
/// per-iteration counters needed. `madds[w]` is the stored work worker
/// `w` executes per iteration (SELL padding included: it is work the
/// core performs even though [`RankReport::madds`] never counts it).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerLoadReport {
    /// Intra-rank schedule label (`"nnz-chunked"` or `"rank-split"`).
    pub schedule: String,
    /// Multiply-adds executed by each worker per iteration.
    pub madds: Vec<u64>,
}

impl WorkerLoadReport {
    /// Wraps a schedule label and the per-worker load vector.
    pub fn new(schedule: impl Into<String>, madds: Vec<u64>) -> WorkerLoadReport {
        WorkerLoadReport { schedule: schedule.into(), madds }
    }

    /// Planned load imbalance: max/mean worker multiply-adds (1.0 for
    /// fewer than two workers or an all-zero plan).
    pub fn imbalance(&self) -> f64 {
        if self.madds.len() < 2 {
            return 1.0;
        }
        let max = *self.madds.iter().max().expect("nonempty") as f64;
        let mean = self.madds.iter().sum::<u64>() as f64 / self.madds.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// One JSON object, same hand-rolled style as the parent report.
    pub fn to_json(&self) -> String {
        let madds: Vec<String> = self.madds.iter().map(|m| m.to_string()).collect();
        format!(
            "{{\"schedule\":\"{}\",\"imbalance\":{:.4},\"madds\":[{}]}}",
            self.schedule,
            self.imbalance(),
            madds.join(",")
        )
    }
}

fn ratio(observed: f64, modeled: f64) -> f64 {
    if modeled > 0.0 {
        observed / modeled
    } else {
        0.0
    }
}

impl ExecutionReport {
    /// Condenses `sink` into a report, scoring it against `model` when
    /// a prediction is available.
    pub fn collect(
        sink: &TelemetrySink,
        backend: &str,
        model: Option<ModelRef>,
    ) -> ExecutionReport {
        let ranks: Vec<RankReport> = (0..sink.k())
            .map(|rk| {
                let rec = sink.rank(rk);
                let phases = Phase::all()
                    .into_iter()
                    .map(|ph| {
                        let mut hist: Vec<u64> = rec.histogram(ph).to_vec();
                        while hist.last() == Some(&0) {
                            hist.pop();
                        }
                        PhaseTimes { nanos: rec.nanos(ph), spans: rec.spans(ph), hist }
                    })
                    .collect();
                RankReport {
                    rank: rk,
                    phases,
                    rows: rec.rows(),
                    madds: rec.madds(),
                    comm_words: rec.comm_words(),
                }
            })
            .collect();
        let compute: Vec<u64> = ranks
            .iter()
            .filter(|r| r.phases[Phase::Compute.index()].spans > 0)
            .map(|r| r.phases[Phase::Compute.index()].nanos)
            .collect();
        let load_imbalance = if compute.len() >= 2 {
            let max = *compute.iter().max().expect("nonempty") as f64;
            let mean = compute.iter().sum::<u64>() as f64 / compute.len() as f64;
            if mean > 0.0 {
                max / mean
            } else {
                1.0
            }
        } else {
            1.0
        };
        let iterations = sink.iterations();
        let total_words: u64 = ranks.iter().map(|r| r.comm_words).sum();
        let comm_words_per_iter =
            if iterations > 0 { total_words as f64 / iterations as f64 } else { 0.0 };
        let report = ExecutionReport {
            backend: backend.to_string(),
            k: sink.k(),
            iterations,
            wall_nanos: sink.wall_nanos(),
            solver_iters: sink.solver_iters(),
            solver_nanos: sink.solver_nanos(),
            ranks,
            load_imbalance,
            comm_words_per_iter,
            model: None,
            serve: None,
            workers: None,
        };
        let model = model.map(|m| ModelComparison {
            modeled_comm_words: m.comm_words,
            words_ratio: ratio(comm_words_per_iter, m.comm_words as f64),
            alpha_beta_secs: m.alpha_beta_secs,
            loggp_secs: m.loggp_secs,
            alpha_beta_ratio: ratio(report.iter_secs(), m.alpha_beta_secs),
            loggp_ratio: ratio(report.iter_secs(), m.loggp_secs),
        });
        ExecutionReport { model, ..report }
    }

    /// Attaches a serving-layer snapshot: the serve section then shows
    /// in [`ExecutionReport::render`] and [`ExecutionReport::to_json`].
    /// Reports without one render and serialize exactly as before.
    pub fn with_serve(mut self, serve: ServeSnapshot) -> ExecutionReport {
        self.serve = Some(serve);
        self
    }

    /// Attaches the pool's per-worker load vector: the workers line
    /// then shows in [`ExecutionReport::render`] and the `workers` key
    /// in [`ExecutionReport::to_json`]. Reports without one render and
    /// serialize exactly as before.
    pub fn with_workers(mut self, workers: WorkerLoadReport) -> ExecutionReport {
        self.workers = Some(workers);
        self
    }

    /// Observed seconds per engine iteration (0 when none ran).
    pub fn iter_secs(&self) -> f64 {
        if self.iterations > 0 {
            self.wall_nanos as f64 / self.iterations as f64 / 1e9
        } else {
            0.0
        }
    }

    /// Hand-rolled JSON export (one object; stable key set — see the
    /// schema test).
    pub fn to_json(&self) -> String {
        let model = match &self.model {
            None => "null".to_string(),
            Some(m) => format!(
                concat!(
                    "{{\"modeled_comm_words\":{},\"words_ratio\":{:.4},",
                    "\"alpha_beta_s\":{:.6e},\"loggp_s\":{:.6e},",
                    "\"alpha_beta_ratio\":{:.4},\"loggp_ratio\":{:.4}}}"
                ),
                m.modeled_comm_words,
                m.words_ratio,
                m.alpha_beta_secs,
                m.loggp_secs,
                m.alpha_beta_ratio,
                m.loggp_ratio
            ),
        };
        let ranks: Vec<String> = self
            .ranks
            .iter()
            .map(|r| {
                let phases: Vec<String> = Phase::all()
                    .into_iter()
                    .map(|ph| {
                        let pt = &r.phases[ph.index()];
                        let hist: Vec<String> = pt.hist.iter().map(|c| c.to_string()).collect();
                        format!(
                            "{{\"phase\":\"{}\",\"ns\":{},\"spans\":{},\"hist\":[{}]}}",
                            ph.label(),
                            pt.nanos,
                            pt.spans,
                            hist.join(",")
                        )
                    })
                    .collect();
                format!(
                    "{{\"rank\":{},\"rows\":{},\"madds\":{},\"comm_words\":{},\"phases\":[{}]}}",
                    r.rank,
                    r.rows,
                    r.madds,
                    r.comm_words,
                    phases.join(",")
                )
            })
            .collect();
        // The serve key is additive: absent (not null) when no serving
        // layer was attached, so pre-serve consumers see byte-identical
        // output.
        let serve = match &self.serve {
            None => String::new(),
            Some(s) => format!(",\"serve\":{}", s.to_json()),
        };
        // Same additive rule for the workers key.
        let workers = match &self.workers {
            None => String::new(),
            Some(w) => format!(",\"workers\":{}", w.to_json()),
        };
        format!(
            concat!(
                "{{\"backend\":\"{}\",\"k\":{},\"iterations\":{},\"wall_ns\":{},",
                "\"solver_iters\":{},\"solver_ns\":{},\"load_imbalance\":{:.4},",
                "\"comm_words_per_iter\":{:.2},\"model\":{}{}{},\"ranks\":[{}]}}"
            ),
            self.backend,
            self.k,
            self.iterations,
            self.wall_nanos,
            self.solver_iters,
            self.solver_nanos,
            self.load_imbalance,
            self.comm_words_per_iter,
            model,
            serve,
            workers,
            ranks.join(",")
        )
    }

    /// Human-readable rendering: one row per rank, summary lines below.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "execution report — backend {}, k = {}, {} iterations, {} wall ({} /iter)\n",
            self.backend,
            self.k,
            self.iterations,
            fmt_ns(self.wall_nanos as f64),
            fmt_ns(self.iter_secs() * 1e9),
        ));
        out.push_str(&format!(
            "{:>5} {:>11} {:>11} {:>11} {:>11} {:>11} {:>9} {:>11} {:>9}\n",
            "rank", "compute", "gather", "scatter", "barrier", "reduce", "rows", "madds", "words"
        ));
        for r in &self.ranks {
            out.push_str(&format!(
                "{:>5} {:>11} {:>11} {:>11} {:>11} {:>11} {:>9} {:>11} {:>9}\n",
                r.rank,
                fmt_ns(r.phases[Phase::Compute.index()].nanos as f64),
                fmt_ns(r.phases[Phase::Gather.index()].nanos as f64),
                fmt_ns(r.phases[Phase::Scatter.index()].nanos as f64),
                fmt_ns(r.phases[Phase::BarrierWait.index()].nanos as f64),
                fmt_ns(r.phases[Phase::Reduce.index()].nanos as f64),
                r.rows,
                r.madds,
                r.comm_words
            ));
        }
        out.push_str(&format!(
            "observed load imbalance (max/mean compute): {:.3}\n",
            self.load_imbalance
        ));
        match &self.model {
            Some(m) => {
                out.push_str(&format!(
                    "comm words/iter: observed {:.1} vs modeled {} (ratio {:.2}x)\n",
                    self.comm_words_per_iter, m.modeled_comm_words, m.words_ratio
                ));
                out.push_str(&format!(
                    "iter time: observed {} | alpha-beta {} ({:.2}x) | loggp {} ({:.2}x)\n",
                    fmt_ns(self.iter_secs() * 1e9),
                    fmt_ns(m.alpha_beta_secs * 1e9),
                    m.alpha_beta_ratio,
                    fmt_ns(m.loggp_secs * 1e9),
                    m.loggp_ratio
                ));
            }
            None => {
                out.push_str(&format!(
                    "comm words/iter: observed {:.1} (no model attached)\n",
                    self.comm_words_per_iter
                ));
            }
        }
        if self.solver_iters > 0 {
            out.push_str(&format!(
                "solver iterations: {} (mean {})\n",
                self.solver_iters,
                fmt_ns(self.solver_nanos as f64 / self.solver_iters as f64)
            ));
        }
        if let Some(s) = &self.serve {
            out.push_str(&format!(
                "serve: {} admitted, {} completed, {} rejected (full), {} expired\n",
                s.admitted, s.completed, s.rejected_full, s.expired
            ));
            out.push_str(&format!(
                "serve: {} batches / {} requests (coalescing {:.2}x), cache {}/{} hits ({:.0}%), {} evicted\n",
                s.batches,
                s.coalesced,
                s.coalescing_rate(),
                s.cache_hits,
                s.cache_hits + s.cache_misses,
                s.cache_hit_rate() * 100.0,
                s.cache_evictions
            ));
        }
        if let Some(w) = &self.workers {
            out.push_str(&format!(
                "workers ({}): {} threads, planned madd imbalance (max/mean): {:.3}\n",
                w.schedule,
                w.madds.len(),
                w.imbalance()
            ));
        }
        out
    }
}

/// `1234.5` ns → `"1.23 us"`-style human duration.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HIST_BUCKETS;

    /// Scalar field extractor for the hand-rolled JSON (no parser in
    /// the workspace): value text between `"key":` and the next
    /// top-level `,`/`}`.
    fn field<'j>(json: &'j str, key: &str) -> &'j str {
        let pat = format!("\"{key}\":");
        let start = json.find(&pat).unwrap_or_else(|| panic!("missing key {key}")) + pat.len();
        let rest = &json[start..];
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' if depth == 0 => return &rest[..i],
                '}' | ']' => depth -= 1,
                ',' if depth == 0 => return &rest[..i],
                _ => {}
            }
        }
        rest
    }

    fn sample_sink() -> TelemetrySink {
        let sink = TelemetrySink::new(3);
        for rk in 0..3 {
            sink.rank(rk).record(Phase::Compute, 1000 * (rk as u64 + 1));
            sink.rank(rk).record(Phase::Gather, 10);
            sink.rank(rk).record(Phase::Scatter, 20);
            sink.rank(rk).add_counts(4, 100, 8);
        }
        sink.rank(0).record(Phase::BarrierWait, 500);
        sink.add_iterations(2);
        sink.add_wall(10_000);
        sink
    }

    #[test]
    fn collect_computes_imbalance_and_words() {
        let rep = ExecutionReport::collect(&sample_sink(), "compiled-seq", None);
        assert_eq!(rep.k, 3);
        assert_eq!(rep.iterations, 2);
        // compute times 1000/2000/3000 → max 3000, mean 2000 → LI 1.5.
        assert!((rep.load_imbalance - 1.5).abs() < 1e-12);
        // 3 ranks × 8 words over 2 iterations.
        assert!((rep.comm_words_per_iter - 12.0).abs() < 1e-12);
        assert!(rep.model.is_none());
        assert_eq!(rep.iter_secs(), 5_000.0 / 1e9);
    }

    #[test]
    fn model_scoring_produces_ratios() {
        let model = ModelRef { comm_words: 24, alpha_beta_secs: 1e-6, loggp_secs: 2e-6 };
        let rep = ExecutionReport::collect(&sample_sink(), "compiled-pool", Some(model));
        let m = rep.model.expect("model attached");
        assert!((m.words_ratio - 0.5).abs() < 1e-12);
        assert!((m.alpha_beta_ratio - 5e-6 / 1e-6).abs() < 1e-9);
        assert!((m.loggp_ratio - 5e-6 / 2e-6).abs() < 1e-9);
        // Zero-denominator guard: no NaN in ratio columns.
        let degenerate = ModelRef { comm_words: 0, alpha_beta_secs: 0.0, loggp_secs: 0.0 };
        let rep = ExecutionReport::collect(&sample_sink(), "x", Some(degenerate));
        let m = rep.model.expect("model attached");
        assert_eq!((m.words_ratio, m.alpha_beta_ratio, m.loggp_ratio), (0.0, 0.0, 0.0));
    }

    #[test]
    fn json_schema_is_stable_and_roundtrips() {
        let model = ModelRef { comm_words: 24, alpha_beta_secs: 1e-6, loggp_secs: 2e-6 };
        let rep = ExecutionReport::collect(&sample_sink(), "compiled-seq", Some(model));
        let json = rep.to_json();
        // Balanced structure.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Scalar fields round-trip through the serialized text.
        assert_eq!(field(&json, "backend"), "\"compiled-seq\"");
        assert_eq!(field(&json, "k").parse::<usize>().unwrap(), rep.k);
        assert_eq!(field(&json, "iterations").parse::<u64>().unwrap(), rep.iterations);
        assert_eq!(field(&json, "wall_ns").parse::<u64>().unwrap(), rep.wall_nanos);
        assert_eq!(field(&json, "solver_iters").parse::<u64>().unwrap(), rep.solver_iters);
        assert!(
            (field(&json, "load_imbalance").parse::<f64>().unwrap() - rep.load_imbalance).abs()
                < 1e-3
        );
        let m = rep.model.unwrap();
        assert_eq!(
            field(&json, "modeled_comm_words").parse::<u64>().unwrap(),
            m.modeled_comm_words
        );
        assert!((field(&json, "words_ratio").parse::<f64>().unwrap() - m.words_ratio).abs() < 1e-3);
        assert!(field(&json, "alpha_beta_s").parse::<f64>().unwrap() > 0.0);
        // One object per rank, one entry per phase, in stable order.
        assert_eq!(json.matches("\"rank\":").count(), rep.k);
        for ph in Phase::all() {
            assert_eq!(json.matches(&format!("\"phase\":\"{}\"", ph.label())).count(), rep.k);
        }
        // Without a model the key is an explicit null, not absent.
        let bare = ExecutionReport::collect(&sample_sink(), "mailbox", None).to_json();
        assert_eq!(field(&bare, "model"), "null");
    }

    #[test]
    fn histograms_are_trimmed() {
        let rep = ExecutionReport::collect(&sample_sink(), "x", None);
        let compute = &rep.ranks[0].phases[Phase::Compute.index()];
        assert_eq!(compute.hist.iter().sum::<u64>(), compute.spans);
        assert_ne!(compute.hist.last(), Some(&0));
        assert!(compute.hist.len() <= HIST_BUCKETS);
        // A phase with no spans serializes an empty histogram.
        let reduce = &rep.ranks[0].phases[Phase::Reduce.index()];
        assert!(reduce.hist.is_empty() && reduce.spans == 0);
    }

    #[test]
    fn serve_section_is_additive() {
        use crate::ServeStats;
        let bare = ExecutionReport::collect(&sample_sink(), "compiled-seq", None);
        let bare_json = bare.to_json();
        let bare_lines = bare.render().lines().count();
        assert!(!bare_json.contains("\"serve\""), "absent, not null, without a server");

        let stats = ServeStats::new();
        for _ in 0..6 {
            stats.admit();
            stats.complete();
        }
        stats.batch(4);
        stats.batch(2);
        stats.cache_hit();
        stats.cache_miss();
        let rep = bare.clone().with_serve(stats.snapshot());
        let json = rep.to_json();
        assert_eq!(field(&json, "backend"), field(&bare_json, "backend"));
        assert_eq!(field(&json, "admitted").parse::<u64>().unwrap(), 6);
        assert_eq!(field(&json, "batches").parse::<u64>().unwrap(), 2);
        assert!((field(&json, "coalescing_rate").parse::<f64>().unwrap() - 3.0).abs() < 1e-3);
        assert!((field(&json, "cache_hit_rate").parse::<f64>().unwrap() - 0.5).abs() < 1e-3);
        let text = rep.render();
        assert_eq!(text.lines().count(), bare_lines + 2, "serve adds exactly two lines");
        assert!(text.contains("coalescing 3.00x"));
        assert!(text.contains("cache 1/2 hits (50%)"));
    }

    #[test]
    fn workers_section_is_additive() {
        let bare = ExecutionReport::collect(&sample_sink(), "compiled-pool", None);
        let bare_json = bare.to_json();
        let bare_lines = bare.render().lines().count();
        assert!(!bare_json.contains("\"workers\""), "absent, not null, off the pool path");

        let w = WorkerLoadReport::new("nnz-chunked", vec![100, 120, 80, 100]);
        assert!((w.imbalance() - 1.2).abs() < 1e-12, "max 120 over mean 100");
        let rep = bare.clone().with_workers(w);
        let json = rep.to_json();
        assert_eq!(field(&json, "backend"), field(&bare_json, "backend"));
        assert_eq!(field(&json, "schedule"), "\"nnz-chunked\"");
        assert!(json.contains("\"madds\":[100,120,80,100]"));
        assert!((field(&json, "imbalance").parse::<f64>().unwrap() - 1.2).abs() < 1e-3);
        let text = rep.render();
        assert_eq!(text.lines().count(), bare_lines + 1, "workers adds exactly one line");
        assert!(text.contains("workers (nnz-chunked): 4 threads"));
        assert!(text.contains("imbalance (max/mean): 1.200"));

        // Degenerate shapes report 1.0, never NaN.
        assert_eq!(WorkerLoadReport::new("rank-split", vec![7]).imbalance(), 1.0);
        assert_eq!(WorkerLoadReport::new("rank-split", vec![0, 0]).imbalance(), 1.0);
    }

    #[test]
    fn render_mentions_every_rank_and_summary() {
        let model = ModelRef { comm_words: 24, alpha_beta_secs: 1e-6, loggp_secs: 2e-6 };
        let rep = ExecutionReport::collect(&sample_sink(), "compiled-pool", Some(model));
        let text = rep.render();
        assert!(text.contains("backend compiled-pool"));
        assert!(text.contains("load imbalance"));
        assert!(text.contains("ratio"));
        assert_eq!(text.lines().count(), 1 + 1 + rep.k + 3);
        assert_eq!(fmt_ns(1.5e9), "1.50 s");
        assert_eq!(fmt_ns(2.5e3), "2.50 us");
        assert_eq!(fmt_ns(999.0), "999 ns");
    }
}
