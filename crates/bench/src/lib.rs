//! Shared infrastructure for the table-regeneration bench harnesses.
//!
//! Every `benches/tableN.rs` target reproduces one table (or figure) of
//! the paper: it generates the suite doubles at the scale selected by
//! `S2D_SCALE`, runs the partitioning methods involved, and prints the
//! paper's columns next to the measured ones. `S2D_SEEDS` (default 1,
//! the paper used 3) controls how many randomized runs are averaged
//! geometrically, mirroring the paper's PaToH averaging.

use s2d_core::comm::CommStats;
use s2d_core::partition::SpmvPartition;
use s2d_sim::MachineModel;
use s2d_sparse::Csr;
use s2d_spmv::{simulate_plan, SpmvPlan};

/// Which SpMV algorithm evaluates a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alg {
    /// Fused Expand-and-Fold (s2D and 1D partitions).
    SinglePhase,
    /// Expand → compute → fold (general 2D partitions).
    TwoPhase,
    /// Mesh-routed two-phase (s2D-b).
    Mesh,
}

/// Quality metrics of one partition under one algorithm — the columns the
/// paper reports.
#[derive(Clone, Copy, Debug)]
pub struct Evaluation {
    /// Load imbalance (fraction; paper prints `LI%`).
    pub li: f64,
    /// Average messages sent per processor.
    pub avg_msgs: f64,
    /// Maximum messages sent by one processor.
    pub max_msgs: u32,
    /// Total communication volume in words (λ).
    pub volume: u64,
    /// Modelled speedup over serial (`Sp`).
    pub speedup: f64,
}

/// Builds the plan for `alg`, collects its statistics and simulates it on
/// the XE6-flavoured machine model.
pub fn evaluate(a: &Csr, p: &SpmvPartition, alg: Alg) -> Evaluation {
    let plan = match alg {
        Alg::SinglePhase => SpmvPlan::single_phase(a, p),
        Alg::TwoPhase => SpmvPlan::two_phase(a, p),
        Alg::Mesh => SpmvPlan::mesh_default(a, p),
    };
    let stats: CommStats = plan.comm_stats();
    let report = simulate_plan(&plan, &MachineModel::cray_xe6());
    Evaluation {
        li: p.load_imbalance(),
        avg_msgs: stats.avg_send_msgs(),
        max_msgs: stats.max_send_msgs(),
        volume: stats.total_volume,
        speedup: report.speedup(),
    }
}

/// Number of randomized runs to average (env `S2D_SEEDS`, default 1; the
/// paper used 3 PaToH runs).
pub fn seeds_from_env() -> u64 {
    std::env::var("S2D_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(1).max(1)
}

/// Geometric mean of positive values (values are clamped away from zero
/// so occasional exact-zero entries don't collapse the mean).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Averages evaluations geometrically, component-wise (the paper's
/// geomean rows).
pub fn geomean_eval(evals: &[Evaluation]) -> Evaluation {
    Evaluation {
        // LI is averaged as geomean(1+LI) − 1 to stay meaningful across
        // mixed magnitudes.
        li: geomean(&evals.iter().map(|e| 1.0 + e.li).collect::<Vec<_>>()) - 1.0,
        avg_msgs: geomean(&evals.iter().map(|e| e.avg_msgs).collect::<Vec<_>>()),
        max_msgs: geomean(&evals.iter().map(|e| e.max_msgs as f64).collect::<Vec<_>>()).round()
            as u32,
        volume: geomean(&evals.iter().map(|e| e.volume as f64).collect::<Vec<_>>()).round() as u64,
        speedup: geomean(&evals.iter().map(|e| e.speedup).collect::<Vec<_>>()),
    }
}

/// Formats a load imbalance the way the paper does: `12.9%`, or `1.6*`
/// meaning 160% when it exceeds 100%.
pub fn fmt_li(li: f64) -> String {
    if li >= 1.0 {
        format!("{li:.1}*")
    } else {
        format!("{:.1}%", li * 100.0)
    }
}

/// Formats a volume like the paper's `2.30e5`.
pub fn fmt_e(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    format!("{mant:.2}e{exp}")
}

/// Formats a ratio column (`λ/λ_ref`) like the paper (two decimals).
pub fn fmt_ratio(v: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "-".to_string();
    }
    format!("{:.2}", v / reference)
}

/// Prints a standard harness banner with the scale in effect.
pub fn banner(experiment: &str, what: &str) {
    let scale = s2d_gen::Scale::from_env();
    println!("================================================================");
    println!("{experiment} — {what}");
    println!(
        "scale: {scale:?} (S2D_SCALE=tiny|small|paper), seeds: {} (S2D_SEEDS)",
        seeds_from_env()
    );
    println!("Paper reference values are reprinted from the publication; the");
    println!("measured values come from the synthetic doubles (DESIGN.md §2).");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 9.0]) - 6.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn li_formatting_follows_paper_convention() {
        assert_eq!(fmt_li(0.129), "12.9%");
        assert_eq!(fmt_li(1.6), "1.6*");
        assert_eq!(fmt_li(0.0), "0.0%");
    }

    #[test]
    fn scientific_formatting() {
        assert_eq!(fmt_e(230_000.0), "2.30e5");
        assert_eq!(fmt_e(0.0), "0");
        assert_eq!(fmt_e(8_060.0), "8.06e3");
    }

    #[test]
    fn evaluate_on_figure1() {
        let a = s2d_core::fig1::fig1_matrix();
        let p = s2d_core::fig1::fig1_partition();
        let e = evaluate(&a, &p, Alg::SinglePhase);
        assert!(e.volume > 0);
        assert!(e.speedup > 0.0);
        let e2 = evaluate(&a, &p, Alg::TwoPhase);
        assert_eq!(e.volume, e2.volume);
    }
}
