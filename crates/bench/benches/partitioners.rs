//! Strategy sweep: the unified partitioner table.
//!
//! Runs every [`Strategy`] (including `auto`) over both generator
//! suites and prints the paper-style comparison — per (matrix,
//! strategy): communication volume, load imbalance, message counts and
//! the modeled per-iteration time under the α–β–γ machine model. This
//! is the cross-method table the ad-hoc `tableN` harnesses each showed
//! a slice of, driven from the single enum.
//!
//! Acceptance (asserted):
//! * on the dense-row suite (suite B), semi-2D (Algorithm 1) beats 1D
//!   rowwise in geomean modeled per-iteration time *and* in geomean
//!   volume — the paper's headline claim;
//! * `auto` is never pathological: its geomean modeled time stays
//!   within 25% of the best fixed strategy's.
//!
//! `S2D_SCALE=tiny|small|paper` sizes the doubles; `S2D_PARTITION_K`
//! overrides the processor count (default 16).

use std::collections::BTreeMap;

use s2d_bench::{banner, fmt_e, fmt_li, geomean};
use s2d_gen::{suite_a, suite_b, Scale};
use s2d_partition::{PartitionQuality, Partitioner, PartitionerConfig, Strategy};

fn main() {
    banner("Partitioner sweep", "Strategy::all() x generator suites");
    let scale = Scale::from_env();
    let k: usize = std::env::var("S2D_PARTITION_K").ok().and_then(|s| s.parse().ok()).unwrap_or(16);
    let cfg = PartitionerConfig::default();

    // strategy label -> per-suite metric streams for the geomeans.
    let mut volumes: BTreeMap<(char, String), Vec<f64>> = BTreeMap::new();
    let mut times: BTreeMap<(char, String), Vec<f64>> = BTreeMap::new();
    let mut lis: BTreeMap<(char, String), Vec<f64>> = BTreeMap::new();
    let mut best_fixed_times: BTreeMap<char, Vec<f64>> = BTreeMap::new();

    for (suite_tag, specs) in [('A', suite_a()), ('B', suite_b())] {
        println!("\n=== suite {suite_tag} (K = {k}) ===");
        for spec in &specs {
            let a = spec.generate(scale, 1);
            println!("\n{:<14} {}x{}, {} nnz", spec.name, a.nrows(), a.ncols(), a.nnz());
            println!(
                "  {:<10} {:>9} {:>7} {:>5}/{:>4} {:>10} {:>7}",
                "strategy", "volume", "LI", "avg", "max", "t/iter us", "Sp"
            );
            let mut best_fixed: f64 = f64::INFINITY;
            for s in Strategy::all() {
                if s.requires_square() && a.nrows() != a.ncols() {
                    continue;
                }
                let p = s.partition_with(&a, k, &cfg);
                let q = PartitionQuality::measure(&a, &p, s.to_string());
                println!(
                    "  {:<10} {:>9} {:>7} {:>5.1}/{:>4} {:>10.1} {:>7.1}",
                    q.strategy,
                    fmt_e(q.volume as f64),
                    fmt_li(q.load_imbalance),
                    q.avg_send_msgs,
                    q.max_send_msgs,
                    q.alpha_beta_time * 1e6,
                    q.speedup,
                );
                let key = (suite_tag, q.strategy.clone());
                volumes.entry(key.clone()).or_default().push(q.volume.max(1) as f64);
                times.entry(key.clone()).or_default().push(q.alpha_beta_time);
                lis.entry(key).or_default().push(1.0 + q.load_imbalance);
                if s != Strategy::Auto {
                    best_fixed = best_fixed.min(q.alpha_beta_time);
                }
            }
            best_fixed_times.entry(suite_tag).or_default().push(best_fixed);
        }
    }

    println!("\ngeomeans per suite (volume | LI | t/iter us):");
    for ((suite_tag, strategy), vols) in &volumes {
        let t = geomean(&times[&(*suite_tag, strategy.clone())]);
        let li = geomean(&lis[&(*suite_tag, strategy.clone())]) - 1.0;
        println!(
            "  {suite_tag} {:<10} {:>9} | {:>7} | {:>10.1}",
            strategy,
            fmt_e(geomean(vols)),
            fmt_li(li),
            t * 1e6
        );
    }

    // Acceptance: semi-2D beats 1D rowwise on the dense-row suite.
    let g = |m: &BTreeMap<(char, String), Vec<f64>>, tag: char, s: &str| {
        geomean(m.get(&(tag, s.to_string())).expect("strategy measured"))
    };
    let (v_s2d, v_1d) = (g(&volumes, 'B', "s2d"), g(&volumes, 'B', "1d"));
    let (t_s2d, t_1d) = (g(&times, 'B', "s2d"), g(&times, 'B', "1d"));
    println!("\nsuite B: s2d vs 1d — volume {:.3}x, t/iter {:.3}x", v_s2d / v_1d, t_s2d / t_1d);
    assert!(
        v_s2d < v_1d,
        "semi-2D must beat 1D rowwise volume on the dense-row suite ({v_s2d} vs {v_1d})"
    );
    assert!(
        t_s2d < t_1d,
        "semi-2D must beat 1D rowwise modeled time on the dense-row suite ({t_s2d} vs {t_1d})"
    );

    // Acceptance: auto stays within 25% of the best fixed strategy.
    for tag in ['A', 'B'] {
        let t_auto = g(&times, tag, "auto");
        let t_best = geomean(&best_fixed_times[&tag]);
        println!("suite {tag}: auto/best-fixed t/iter {:.3}x", t_auto / t_best);
        assert!(
            t_auto <= 1.25 * t_best,
            "suite {tag}: auto geomean {t_auto} exceeds best fixed {t_best} by more than 25%"
        );
    }
    println!("\npartitioner sweep acceptance: ok");
}
