//! Regenerates **Table IV**: properties of the dense-row test matrices
//! (suite B) — paper values next to the generated doubles.

use s2d_gen::{suite_b, Scale};
use s2d_sparse::MatrixStats;

fn main() {
    s2d_bench::banner("Table IV", "properties of the dense-row matrices (suite B)");
    let scale = Scale::from_env();
    println!(
        "\n{:<12} | {:>8} {:>9} {:>7} {:>7} | {:>8} {:>9} {:>7} {:>7} | {}",
        "name", "n", "nnz", "davg", "dmax", "n'", "nnz'", "davg'", "dmax'", "description"
    );
    println!("{:-<12}-+-{:-<34}-+-{:-<34}-+------------", "", "", "");
    for spec in suite_b() {
        let a = spec.generate(scale, 1);
        let s = MatrixStats::of(&a);
        println!(
            "{:<12} | {:>8} {:>9} {:>7.1} {:>7} | {:>8} {:>9} {:>7.1} {:>7} | {}",
            spec.name,
            spec.paper.n,
            spec.paper.nnz,
            spec.paper.davg,
            spec.paper.dmax,
            s.nrows,
            s.nnz,
            s.row_davg,
            s.row_dmax,
            spec.application,
        );
    }
    println!("\n(left block: paper; right block: generated double at {scale:?} scale)");
    println!("Dense rows survive scaling via the skew floor (DESIGN.md §2).");
}
