//! Ablation: the Section VII extensions against the paper's Algorithm 1.
//!
//! Four ways to build an s2D partition on the same vector partition:
//!
//! * `opt` — the per-block DM optimum (volume floor, balance ignored);
//! * `alg1` — the paper's Algorithm 1 ({A1, A2} choices);
//! * `alg2` — the generalized heuristic ({A1, A2, A4} + balance pass);
//! * `iter` — alternating vector/nonzero refinement on top of alg2.
//!
//! Reported per matrix: total volume (normalized to the optimum) and
//! load imbalance. The claim under test: alg2 dominates alg1 on balance
//! at equal-or-better volume, and iter recovers further volume where the
//! initial vector partition was the binding constraint.

use s2d_baselines::partition_1d_rowwise;
use s2d_bench::{fmt_li, fmt_ratio};
use s2d_core::comm::comm_requirements;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_core::heuristic2::{s2d_generalized, Heuristic2Config};
use s2d_core::iterate::{iterate_s2d, IterateConfig};
use s2d_core::optimal::s2d_optimal;
use s2d_gen::{suite_b, Scale};

fn main() {
    s2d_bench::banner(
        "Ablation: alternatives",
        "Algorithm 1 vs Algorithm 2 vs iterated refinement",
    );
    let scale = Scale::from_env();
    let k = 64;

    println!(
        "\n{:<12} | {:>9} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "name", "opt-vol", "v1/vo", "LI-1", "v2/vo", "LI-2", "vi/vo", "LI-i"
    );
    for spec in suite_b() {
        let a = spec.generate(scale, 1);
        if a.nrows() != a.ncols() {
            continue; // iterate requires square matrices
        }
        let oned = partition_1d_rowwise(&a, k, 0.03, 1);
        let opt = s2d_optimal(&a, &oned.row_part, &oned.col_part, k);
        let v_opt = comm_requirements(&a, &opt).total_volume().max(1);

        let alg1 = s2d_from_vector_partition(
            &a,
            &oned.row_part,
            &oned.col_part,
            &HeuristicConfig::default(),
        );
        let alg2 =
            s2d_generalized(&a, &oned.row_part, &oned.col_part, k, &Heuristic2Config::default());
        let iter = iterate_s2d(&a, &oned.row_part, k, &IterateConfig::default());

        let (v1, v2, vi) = (
            comm_requirements(&a, &alg1).total_volume(),
            comm_requirements(&a, &alg2).total_volume(),
            comm_requirements(&a, &iter.partition).total_volume(),
        );
        println!(
            "{:<12} | {:>9} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
            spec.name,
            v_opt,
            fmt_ratio(v1 as f64, v_opt as f64),
            fmt_li(alg1.load_imbalance()),
            fmt_ratio(v2 as f64, v_opt as f64),
            fmt_li(alg2.load_imbalance()),
            fmt_ratio(vi as f64, v_opt as f64),
            fmt_li(iter.partition.load_imbalance()),
        );
        assert!(v2 <= v1, "{}: Algorithm 2 must not lose volume to Algorithm 1", spec.name);
    }
    println!("\nExpected shape: v2/vo <= v1/vo with LI-2 <= LI-1 (the A4 balance");
    println!("pass is free); the iterated column trades extra partitioning time");
    println!("for volume on matrices whose initial vector partition was poor.");
}
