//! Serving-layer bench: burst throughput through `s2d_serve::Server`
//! with cross-request coalescing on vs off. Eight client threads fire
//! single-RHS requests at one registered session; the coalescing
//! worker packs up to eight pending requests into one `apply_batch`.
//! The acceptance at the end measures a full burst both ways on a
//! 2^14-row R-MAT at K = 16 and asserts the coalesced throughput is
//! >= 1.5x the uncoalesced one — the A-traversal reuse the multi-RHS
//! engine path buys, delivered across requests instead of within one.
//!
//! Run with `cargo bench -p s2d-bench --bench serve`.
//!
//! **Fast mode** (CI smoke): set `S2D_SERVE_BENCH_FAST=1` to shrink
//! the R-MAT to 2^10 rows. The burst, the coalescing-rate check and
//! the result cross-check still run; the throughput floor is relaxed
//! to "not pathologically slower" — a small matrix leaves per-request
//! queueing overhead, not kernel time, as the dominant cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_partition::Strategy;
use s2d_serve::{ServeError, Server, ServerConfig, SessionId};
use s2d_sparse::Csr;

const K: usize = 16;
const CLIENTS: usize = 8;

/// CI smoke mode: smaller matrix, relaxed throughput floor.
/// `S2D_SERVE_BENCH_FAST=0` (or empty) keeps the full run.
fn fast_mode() -> bool {
    std::env::var("S2D_SERVE_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn rmat_scale() -> u32 {
    if fast_mode() {
        10
    } else {
        14
    }
}

fn server_for(a: &Csr, max_coalesce: usize, per_client: usize) -> (Server, SessionId) {
    let config = ServerConfig {
        max_coalesce,
        queue_capacity: CLIENTS * per_client + CLIENTS,
        ..ServerConfig::default()
    };
    let server = Server::new(config);
    let sid = server.register(a, Strategy::OneDRow, K);
    (server, sid)
}

/// One burst: every client fires all its requests, then everyone waits
/// for every ticket. Returns the burst's wall time.
fn burst(server: &Server, sid: SessionId, ncols: usize, per_client: usize) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut tickets = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let x: Vec<f64> = (0..ncols)
                        .map(|j| ((j * 31 + c * 13 + i * 17) % 23) as f64 - 11.0)
                        .collect();
                    loop {
                        match server.submit(sid, x.clone()) {
                            Ok(t) => {
                                tickets.push(t);
                                break;
                            }
                            Err(ServeError::QueueFull) => std::thread::yield_now(),
                            Err(e) => panic!("submit: {e}"),
                        }
                    }
                }
                for t in tickets {
                    t.wait().expect("serve request");
                }
            });
        }
    });
    start.elapsed()
}

fn bench_serve(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let per_client = 4;
    for (label, mc) in [("uncoalesced", 1usize), ("coalesced", 8)] {
        let (server, sid) = server_for(&a, mc, per_client);
        // Warm the worker (operator buffers, first-touch pages).
        let x: Vec<f64> = (0..a.ncols()).map(|j| ((j * 37) % 19) as f64 - 9.0).collect();
        server.solve(sid, x).expect("warm solve");
        c.bench_function(&format!("serve/{label}/rmat{}/k{K}", rmat_scale()), |b| {
            b.iter(|| burst(&server, sid, a.ncols(), per_client))
        });
        server.shutdown();
    }
}

/// Direct acceptance measurement: coalesced burst throughput >= 1.5x
/// uncoalesced on rmat14 at K = 16 with 8 concurrent clients, and the
/// burst must actually coalesce (> 4 requests per batch on average).
fn serve_acceptance(_c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let per_client = if fast_mode() { 8 } else { 16 };

    // Cross-check once: throughput claims need right answers.
    let x: Vec<f64> = (0..a.ncols()).map(|j| ((j * 37) % 19) as f64 - 9.0).collect();
    let want = a.spmv_alloc(&x);
    let (server, sid) = server_for(&a, 8, per_client);
    let got = server.solve(sid, x).expect("reference solve");
    let err =
        got.iter().zip(&want).map(|(g, w)| (g - w).abs() / w.abs().max(1.0)).fold(0.0f64, f64::max);
    assert!(err < 1e-9, "served result off by {err:.2e}");
    server.shutdown();

    // Best-of sampling on both sides: min is the noise-robust
    // estimator on a shared machine.
    let measure = |mc: usize| {
        let (server, sid) = server_for(&a, mc, per_client);
        let warm: Vec<f64> = (0..a.ncols()).map(|j| ((j * 37) % 19) as f64 - 9.0).collect();
        server.solve(sid, warm).expect("warm solve");
        let best =
            (0..3).map(|_| burst(&server, sid, a.ncols(), per_client)).min().expect("3 runs");
        let snap = server.stats().snapshot();
        server.shutdown();
        (best, snap)
    };
    let (t_un, _) = measure(1);
    let (t_co, snap) = measure(8);

    let ratio = t_un.as_secs_f64() / t_co.as_secs_f64();
    println!("--------------------------------------------------------------");
    println!(
        "serve acceptance rmat{}/k{K}: {CLIENTS} clients x {per_client} requests — \
         uncoalesced {:.1} ms, coalesced {:.1} ms ({ratio:.2}x, {:.2} req/batch)",
        rmat_scale(),
        t_un.as_secs_f64() * 1e3,
        t_co.as_secs_f64() * 1e3,
        snap.coalescing_rate()
    );
    assert!(
        snap.coalescing_rate() > 4.0,
        "burst must coalesce (got {:.2} requests per batch)",
        snap.coalescing_rate()
    );
    // Fast mode's matrix is too small for kernel reuse to dominate the
    // per-request queueing cost; only guard against a pathological
    // slowdown there.
    let floor = if fast_mode() { 0.5 } else { 1.5 };
    assert!(
        ratio >= floor,
        "coalesced serving must be >= {floor}x uncoalesced throughput (got {ratio:.2}x)"
    );
    println!("--------------------------------------------------------------");
}

criterion_group!(benches, bench_serve, serve_acceptance);
criterion_main!(benches);
