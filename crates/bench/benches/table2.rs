//! Regenerates **Table II**: 1D rowwise vs 2D fine-grain vs s2D on suite
//! A, `K ∈ {16, 64, 256}` — load imbalance, message counts, communication
//! volume (normalized to 1D) and modelled speedups.
//!
//! Method mapping (as in the paper): `1D` = column-net hypergraph
//! partitioning; `2D` = fine-grain hypergraph partitioning; `s2D` =
//! Algorithm 1 run on the vector partition induced by the 1D run, so 1D
//! and s2D share communication patterns. Speedups come from the α–β–γ
//! model instead of a Cray XE6 (DESIGN.md §2).

use s2d_baselines::{partition_1d_rowwise, partition_2d_fine_grain};
use s2d_bench::{evaluate, fmt_e, fmt_li, fmt_ratio, geomean_eval, Alg, Evaluation};
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_gen::{suite_a, Scale};

/// Paper geomean rows (K, 1D LI, 1D avg, 1D max, λ1D, 1D Sp, 2D LI,
/// 2D avg, 2D max, 2D λ ratio, 2D Sp, s2D LI, s2D λ ratio, s2D Sp).
const PAPER_GEOMEAN: [(usize, &str); 3] = [
    (16, "1D: 1.9%  6/10  3.34e4 Sp 13.7 | 2D: 0.1% 13/18 0.36 Sp 16.0 | s2D: 1.5% 0.51 Sp 16.4"),
    (64, "1D: 2.6% 10/23  7.09e4 Sp 35.5 | 2D: 0.1% 20/39 0.40 Sp 41.2 | s2D: 1.8% 0.54 Sp 49.2"),
    (256, "1D: 10.6% 15/54 1.38e5 Sp 34.4 | 2D: 0.1% 25/85 0.43 Sp 37.2 | s2D: 4.8% 0.52 Sp 43.5"),
];

fn main() {
    s2d_bench::banner("Table II", "1D vs 2D fine-grain vs s2D (suite A)");
    let scale = Scale::from_env();
    let seeds = s2d_bench::seeds_from_env();
    let ks = scale.ks_suite_a();

    println!(
        "\n{:<12} {:>5} | {:>6} {:>4}/{:>4} {:>8} {:>7} | {:>6} {:>4}/{:>4} {:>6} {:>7} | {:>6} {:>6} {:>7}",
        "name", "K", "1D-LI", "avg", "max", "lam1D", "Sp", "2D-LI", "avg", "max", "lam", "Sp",
        "s2D-LI", "lam", "Sp"
    );

    let mut per_k: std::collections::BTreeMap<usize, [Vec<Evaluation>; 3]> =
        std::collections::BTreeMap::new();

    for spec in suite_a() {
        let a = spec.generate(scale, 1);
        for &k in &ks {
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let mut e3 = Vec::new();
            for seed in 0..seeds {
                let oned = partition_1d_rowwise(&a, k, 0.03, seed + 1);
                e1.push(evaluate(&a, &oned.partition, Alg::SinglePhase));
                let fg = partition_2d_fine_grain(&a, k, 0.03, seed + 1);
                e2.push(evaluate(&a, &fg, Alg::TwoPhase));
                let s2d = s2d_from_vector_partition(
                    &a,
                    &oned.row_part,
                    &oned.col_part,
                    &HeuristicConfig::default(),
                );
                e3.push(evaluate(&a, &s2d, Alg::SinglePhase));
            }
            let (g1, g2, g3) = (geomean_eval(&e1), geomean_eval(&e2), geomean_eval(&e3));
            println!(
                "{:<12} {:>5} | {:>6} {:>4.0}/{:>4} {:>8} {:>7.1} | {:>6} {:>4.0}/{:>4} {:>6} {:>7.1} | {:>6} {:>6} {:>7.1}",
                spec.name,
                k,
                fmt_li(g1.li),
                g1.avg_msgs,
                g1.max_msgs,
                fmt_e(g1.volume as f64),
                g1.speedup,
                fmt_li(g2.li),
                g2.avg_msgs,
                g2.max_msgs,
                fmt_ratio(g2.volume as f64, g1.volume as f64),
                g2.speedup,
                fmt_li(g3.li),
                fmt_ratio(g3.volume as f64, g1.volume as f64),
                g3.speedup,
            );
            let entry = per_k.entry(k).or_default();
            entry[0].push(g1);
            entry[1].push(g2);
            entry[2].push(g3);
        }
        println!();
    }

    println!("geometric means over the suite:");
    for (&k, [v1, v2, v3]) in &per_k {
        let (g1, g2, g3) = (geomean_eval(v1), geomean_eval(v2), geomean_eval(v3));
        println!(
            "{:<12} {:>5} | {:>6} {:>4.0}/{:>4} {:>8} {:>7.1} | {:>6} {:>4.0}/{:>4} {:>6} {:>7.1} | {:>6} {:>6} {:>7.1}",
            "geomean",
            k,
            fmt_li(g1.li),
            g1.avg_msgs,
            g1.max_msgs,
            fmt_e(g1.volume as f64),
            g1.speedup,
            fmt_li(g2.li),
            g2.avg_msgs,
            g2.max_msgs,
            fmt_ratio(g2.volume as f64, g1.volume as f64),
            g2.speedup,
            fmt_li(g3.li),
            fmt_ratio(g3.volume as f64, g1.volume as f64),
            g3.speedup,
        );
    }
    println!("\npaper geomean rows (for shape comparison):");
    for (k, row) in PAPER_GEOMEAN {
        println!("  K={k:<4} {row}");
    }
    println!("\nExpected shape: s2D volume well below 1D (ratio < 1), s2D load");
    println!("imbalance <= 1D, 2D best balance but highest message counts,");
    println!("s2D best average speedup.");
}
