//! Regenerates **Table V**: 1D vs s2D vs s2D-b on the dense-row suite B,
//! `K ∈ {256, 1024, 4096}` — the latency/bandwidth interplay.
//!
//! `s2D-b` reuses the s2D nonzero partition (identical loads, asserted)
//! and reroutes the fused messages over the `√K×√K` mesh, bounding the
//! per-processor message count at `Pr + Pc − 2` while inflating volume by
//! less than 2× (one extra hop, minus aggregation savings).

use s2d_baselines::partition_1d_rowwise;
use s2d_bench::{evaluate, fmt_e, fmt_li, fmt_ratio, geomean_eval, Alg, Evaluation};
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_gen::{suite_b, Scale};

/// Paper geomean rows: (K, row text).
const PAPER_GEOMEAN: [(usize, &str); 3] = [
    (256, "1D: 5.3* 26/235 6.65e5 | s2D: 52.3% 0.05 | s2D-b: 12/27 0.06"),
    (1024, "1D: 38.9* 32/924 7.65e5 | s2D: 71.7% 0.10 | s2D-b: 16/49 0.12"),
    (4096, "1D: 163.7* 30/3579 8.90e5 | s2D: 83.8% 0.20 | s2D-b: 18/90 0.24"),
];

fn main() {
    s2d_bench::banner("Table V", "1D vs s2D vs s2D-b on dense-row matrices (suite B)");
    let scale = Scale::from_env();
    let seeds = s2d_bench::seeds_from_env();
    let ks = scale.ks_suite_b();

    println!(
        "\n{:<12} {:>5} | {:>6} {:>5}/{:>5} {:>8} | {:>6} {:>6} | {:>5}/{:>5} {:>6}",
        "name", "K", "1D-LI", "avg", "max", "lam1D", "s2D-LI", "lam", "avg", "max", "lam-b"
    );

    let mut per_k: std::collections::BTreeMap<usize, [Vec<Evaluation>; 3]> =
        std::collections::BTreeMap::new();

    for spec in suite_b() {
        let a = spec.generate(scale, 1);
        for &k in &ks {
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let mut e3 = Vec::new();
            for seed in 0..seeds {
                let oned = partition_1d_rowwise(&a, k, 0.03, seed + 1);
                e1.push(evaluate(&a, &oned.partition, Alg::SinglePhase));
                let s2d = s2d_from_vector_partition(
                    &a,
                    &oned.row_part,
                    &oned.col_part,
                    &HeuristicConfig::default(),
                );
                let es = evaluate(&a, &s2d, Alg::SinglePhase);
                let eb = evaluate(&a, &s2d, Alg::Mesh);
                // Table V states: load imbalance of s2D and s2D-b are the
                // same (same nonzero partition). Assert it.
                assert!((es.li - eb.li).abs() < 1e-12);
                e2.push(es);
                e3.push(eb);
            }
            let (g1, g2, g3) = (geomean_eval(&e1), geomean_eval(&e2), geomean_eval(&e3));
            println!(
                "{:<12} {:>5} | {:>6} {:>5.0}/{:>5} {:>8} | {:>6} {:>6} | {:>5.0}/{:>5} {:>6}",
                spec.name,
                k,
                fmt_li(g1.li),
                g1.avg_msgs,
                g1.max_msgs,
                fmt_e(g1.volume as f64),
                fmt_li(g2.li),
                fmt_ratio(g2.volume as f64, g1.volume as f64),
                g3.avg_msgs,
                g3.max_msgs,
                fmt_ratio(g3.volume as f64, g1.volume as f64),
            );
            let entry = per_k.entry(k).or_default();
            entry[0].push(g1);
            entry[1].push(g2);
            entry[2].push(g3);
        }
        println!();
    }

    println!("geometric means over the suite:");
    for (&k, [v1, v2, v3]) in &per_k {
        let (g1, g2, g3) = (geomean_eval(v1), geomean_eval(v2), geomean_eval(v3));
        println!(
            "{:<12} {:>5} | {:>6} {:>5.0}/{:>5} {:>8} | {:>6} {:>6} | {:>5.0}/{:>5} {:>6}",
            "geomean",
            k,
            fmt_li(g1.li),
            g1.avg_msgs,
            g1.max_msgs,
            fmt_e(g1.volume as f64),
            fmt_li(g2.li),
            fmt_ratio(g2.volume as f64, g1.volume as f64),
            g3.avg_msgs,
            g3.max_msgs,
            fmt_ratio(g3.volume as f64, g1.volume as f64),
        );
    }
    println!("\npaper geomean rows (for shape comparison):");
    for (k, row) in PAPER_GEOMEAN {
        println!("  K={k:<4} {row}");
    }
    println!("\nExpected shape: 1D max latency ~ K and LI exploding; s2D cuts");
    println!("volume by an order of magnitude; s2D-b max latency ~ 2(sqrt(K)-1)");
    println!("with volume modestly above s2D.");
}
