//! Ablation: what does fusing expand and fold into one phase buy?
//!
//! The same s2D partition can run single-phase (fused `[x̂, ŷ]` messages,
//! Section III) or as a standard two-phase program. Volume is identical
//! by construction; the fusion saves *messages* whenever both an `x`
//! stream and a `y` stream flow between the same processor pair, and one
//! synchronization point. This harness quantifies both on suite A.

use s2d_baselines::partition_1d_rowwise;
use s2d_bench::fmt_ratio;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_gen::{suite_a, Scale};
use s2d_sim::MachineModel;
use s2d_spmv::{simulate_plan, SpmvPlan};

fn main() {
    s2d_bench::banner("Ablation: fusion", "fused single-phase vs unfused two-phase s2D");
    let scale = Scale::from_env();
    let k = 64;

    println!(
        "\n{:<12} | {:>8} {:>8} {:>7} | {:>8} {:>8} | {:>8}",
        "name", "msgs-1p", "msgs-2p", "saved", "Sp-1p", "Sp-2p", "vol-eq"
    );
    for spec in suite_a() {
        let a = spec.generate(scale, 1);
        let oned = partition_1d_rowwise(&a, k, 0.03, 1);
        let s2d = s2d_from_vector_partition(
            &a,
            &oned.row_part,
            &oned.col_part,
            &HeuristicConfig::default(),
        );
        let single = SpmvPlan::single_phase(&a, &s2d);
        let two = SpmvPlan::two_phase(&a, &s2d);
        let (s1, s2) = (single.comm_stats(), two.comm_stats());
        assert_eq!(s1.total_volume, s2.total_volume, "fusion never changes volume");
        let m = MachineModel::cray_xe6();
        let (r1, r2) = (simulate_plan(&single, &m), simulate_plan(&two, &m));
        println!(
            "{:<12} | {:>8} {:>8} {:>7} | {:>8.1} {:>8.1} | {:>8}",
            spec.name,
            s1.total_messages,
            s2.total_messages,
            fmt_ratio(
                (s2.total_messages - s1.total_messages) as f64,
                s2.total_messages.max(1) as f64
            ),
            r1.speedup(),
            r2.speedup(),
            "yes",
        );
    }
    println!("\nExpected shape: message savings grow with the fraction of processor");
    println!("pairs exchanging both x entries and y partials; the fused plan's");
    println!("modelled speedup is never below the two-phase plan's.");
}
