//! Regenerates **Table I**: properties of the suite-A test matrices
//! (n, nnz, davg, dmax) — paper values next to the generated doubles.

use s2d_gen::{suite_a, Scale};
use s2d_sparse::MatrixStats;

fn main() {
    s2d_bench::banner("Table I", "properties of the test matrices (suite A)");
    let scale = Scale::from_env();
    println!(
        "\n{:<12} | {:>8} {:>9} {:>7} {:>7} | {:>8} {:>9} {:>7} {:>7} | {}",
        "name", "n", "nnz", "davg", "dmax", "n'", "nnz'", "davg'", "dmax'", "application"
    );
    println!("{:-<12}-+-{:-<34}-+-{:-<34}-+------------", "", "", "");
    for spec in suite_a() {
        let a = spec.generate(scale, 1);
        let s = MatrixStats::of(&a);
        println!(
            "{:<12} | {:>8} {:>9} {:>7.1} {:>7} | {:>8} {:>9} {:>7.1} {:>7} | {}",
            spec.name,
            spec.paper.n,
            spec.paper.nnz,
            spec.paper.davg,
            spec.paper.dmax,
            s.nrows,
            s.nnz,
            s.row_davg,
            s.row_dmax,
            spec.application,
        );
    }
    println!("\n(left block: paper; right block: generated double at {scale:?} scale)");
}
