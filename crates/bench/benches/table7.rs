//! Regenerates **Table VII**: s2D (Algorithm 1 on a 1D vector partition)
//! vs s2D-mg (medium-grain composite hypergraph, Pelt & Bisseling adapted)
//! on suite B.
//!
//! The paper's finding: s2D-mg balances much better (the partitioner
//! controls the decoded loads directly) while s2D achieves markedly less
//! volume and latency; the gap closes as K grows.

use s2d_baselines::{partition_1d_rowwise, partition_s2d_mg};
use s2d_bench::{evaluate, fmt_e, fmt_li, fmt_ratio, geomean_eval, Alg, Evaluation};
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_gen::{suite_b, Scale};

/// Paper geomean rows.
const PAPER_GEOMEAN: [(usize, &str); 3] = [
    (256, "s2D-mg: 4.8% lat 39 6.54e4 | s2D: 52.3% lat 26 ratio 0.52"),
    (1024, "s2D-mg: 9.4% lat 50 1.24e5 | s2D: 71.7% lat 32 ratio 0.61"),
    (4096, "s2D-mg: 11.9% lat 38 2.42e5 | s2D: 83.8% lat 30 ratio 0.74"),
];

fn main() {
    s2d_bench::banner("Table VII", "s2D-mg (medium-grain) vs s2D (suite B)");
    let scale = Scale::from_env();
    let seeds = s2d_bench::seeds_from_env();
    let ks = scale.ks_suite_b();

    println!(
        "\n{:<12} {:>5} | {:>6} {:>5} {:>9} | {:>6} {:>5} {:>6}",
        "name", "K", "mg-LI", "lat", "lam-mg", "s2D-LI", "lat", "lam"
    );

    let mut per_k: std::collections::BTreeMap<usize, [Vec<Evaluation>; 2]> =
        std::collections::BTreeMap::new();

    for spec in suite_b() {
        let a = spec.generate(scale, 1);
        for &k in &ks {
            let mut emg = Vec::new();
            let mut es2 = Vec::new();
            for seed in 0..seeds {
                let mg = partition_s2d_mg(&a, k, 0.03, seed + 1);
                emg.push(evaluate(&a, &mg, Alg::SinglePhase));
                let oned = partition_1d_rowwise(&a, k, 0.03, seed + 1);
                let s2d = s2d_from_vector_partition(
                    &a,
                    &oned.row_part,
                    &oned.col_part,
                    &HeuristicConfig::default(),
                );
                es2.push(evaluate(&a, &s2d, Alg::SinglePhase));
            }
            let (gmg, gs2) = (geomean_eval(&emg), geomean_eval(&es2));
            println!(
                "{:<12} {:>5} | {:>6} {:>5.0} {:>9} | {:>6} {:>5.0} {:>6}",
                spec.name,
                k,
                fmt_li(gmg.li),
                gmg.avg_msgs,
                fmt_e(gmg.volume as f64),
                fmt_li(gs2.li),
                gs2.avg_msgs,
                fmt_ratio(gs2.volume as f64, gmg.volume as f64),
            );
            let entry = per_k.entry(k).or_default();
            entry[0].push(gmg);
            entry[1].push(gs2);
        }
        println!();
    }

    println!("geometric means over the suite:");
    for (&k, [vmg, vs2]) in &per_k {
        let (gmg, gs2) = (geomean_eval(vmg), geomean_eval(vs2));
        println!(
            "{:<12} {:>5} | {:>6} {:>5.0} {:>9} | {:>6} {:>5.0} {:>6}",
            "geomean",
            k,
            fmt_li(gmg.li),
            gmg.avg_msgs,
            fmt_e(gmg.volume as f64),
            fmt_li(gs2.li),
            gs2.avg_msgs,
            fmt_ratio(gs2.volume as f64, gmg.volume as f64),
        );
    }
    println!("\npaper geomean rows (for shape comparison):");
    for (k, row) in PAPER_GEOMEAN {
        println!("  K={k:<4} {row}");
    }
    println!("\nExpected shape: s2D-mg clearly better balanced; s2D clearly");
    println!("lower volume (ratio < 1) and fewer messages; gap narrows with K.");
}
