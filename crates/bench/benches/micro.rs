//! Criterion micro-benchmarks of the building blocks: matching, DM
//! decomposition, the optimal split, Algorithm 1, hypergraph bisection
//! and the SpMV executors.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use s2d_baselines::partition_1d_rowwise;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_core::optimal::s2d_optimal;
use s2d_dm::{dm_decompose, hopcroft_karp};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_hypergraph::models::column_net_model;
use s2d_hypergraph::{partition_kway, PartitionConfig};
use s2d_spmv::SpmvPlan;

fn bench_matching(c: &mut Criterion) {
    let m = rmat(&RmatConfig::graph500(12, 8), 1).to_csr();
    let edges: Vec<(u32, u32)> = m.iter().map(|(i, j, _)| (i as u32, j as u32)).collect();
    c.bench_function("hopcroft_karp/rmat12", |b| {
        b.iter(|| black_box(hopcroft_karp(m.nrows(), m.ncols(), &edges).size))
    });
    c.bench_function("dm_decompose/rmat12", |b| {
        b.iter(|| black_box(dm_decompose(m.nrows(), m.ncols(), &edges).min_cover()))
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(12, 8), 2).to_csr();
    let hg = column_net_model(&a, true);
    c.bench_function("partition_kway/k16/rmat12", |b| {
        b.iter(|| black_box(partition_kway(&hg, 16, &PartitionConfig::default()).parts.len()))
    });
    let oned = partition_1d_rowwise(&a, 16, 0.03, 1);
    c.bench_function("s2d_optimal/k16/rmat12", |b| {
        b.iter(|| black_box(s2d_optimal(&a, &oned.row_part, &oned.col_part, 16).nz_owner.len()))
    });
    c.bench_function("algorithm1/k16/rmat12", |b| {
        b.iter(|| {
            black_box(
                s2d_from_vector_partition(
                    &a,
                    &oned.row_part,
                    &oned.col_part,
                    &HeuristicConfig::default(),
                )
                .nz_owner
                .len(),
            )
        })
    });
}

fn bench_executors(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(11, 8), 3).to_csr();
    let oned = partition_1d_rowwise(&a, 8, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(&a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64 * 0.25).collect();
    let mut y = vec![0.0; a.nrows()];
    c.bench_function("spmv/serial/rmat11", |b| {
        b.iter(|| {
            a.spmv(&x, &mut y);
            black_box(y[0])
        })
    });
    let single = SpmvPlan::single_phase(&a, &s2d);
    c.bench_function("spmv/mailbox_single_phase/rmat11", |b| {
        b.iter_batched(
            || single.clone(),
            |plan| black_box(plan.execute_mailbox(&x)),
            BatchSize::LargeInput,
        )
    });
    let two = SpmvPlan::two_phase(&a, &s2d);
    c.bench_function("spmv/mailbox_two_phase/rmat11", |b| {
        b.iter_batched(
            || two.clone(),
            |plan| black_box(plan.execute_mailbox(&x)),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("plan_build/single_phase/rmat11", |b| {
        b.iter(|| black_box(SpmvPlan::single_phase(&a, &s2d).total_ops()))
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("gen/rmat12", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(rmat(&RmatConfig::graph500(12, 8), seed).nnz())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matching, bench_partitioners, bench_executors, bench_generators
}
criterion_main!(benches);
