//! Raw-speed bench: the explicit-SIMD kernel paths (scalar vs AVX2)
//! crossed with the intra-rank pool schedules (rank-split vs
//! NNZ-chunked) on the three matrix families the kernels were built
//! for — degree-skewed R-MAT, heavy-tailed power-law, regular FEM
//! stencil.
//!
//! Beyond the criterion trajectories, two acceptance ratios are
//! measured directly and asserted:
//!
//! * **ISA**: at r = 8 the AVX2 batch kernels must beat the scalar
//!   reference by ≥ 1.2× on at least one family (skipped with a notice
//!   when the CPU has no AVX2 — the portable path is then the only
//!   path). This holds on a single core: it is pure kernel throughput.
//! * **Schedule**: on the power-law family (the one with the skewed
//!   per-rank NNZ distribution rank-split is worst at), the NNZ-chunked
//!   pool must beat the rank-split pool by ≥ 1.3×. Needs real
//!   parallelism, so it only asserts on machines with ≥ 4 cores.
//!
//! The measured matrix is also written as a small JSON artifact
//! (`BENCH_ISA.json`, or the path in `S2D_BENCH_ISA_JSON`) for CI to
//! upload next to the criterion estimates.
//!
//! Run with `cargo bench -p s2d-bench --bench raw_speed`. Fast mode
//! (CI smoke): `S2D_BENCH_FAST=1` shrinks the matrices to 2^11 rows
//! and relaxes the ISA floor for runner jitter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use s2d_baselines::partition_1d_rowwise;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_engine::{
    Backend, CompiledPlan, KernelFormat, KernelIsa, ParallelEngine, PoolOptions, PoolSchedule,
};
use s2d_gen::fem::fem_like;
use s2d_gen::powerlaw::power_law;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_obs::best_of;
use s2d_sparse::Csr;
use s2d_spmv::SpmvPlan;

const K: usize = 16;
const R: usize = 8;

/// CI smoke mode: 2^11-row matrices, relaxed assertion floors.
fn fast_mode() -> bool {
    std::env::var("S2D_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn scale() -> u32 {
    if fast_mode() {
        11
    } else {
        14
    }
}

/// The three bench families at the mode's scale.
fn matrices() -> Vec<(&'static str, Csr)> {
    let s = scale();
    let n = 1usize << s;
    vec![
        ("rmat", rmat(&RmatConfig::graph500(s, 8), 1).to_csr()),
        ("powerlaw", power_law(n, 8 * n, 2.2, n / 4, 3)),
        ("fem", fem_like(n, 7.0, 14, 5)),
    ]
}

fn plan_for(a: &Csr) -> SpmvPlan {
    let oned = partition_1d_rowwise(a, K, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    SpmvPlan::single_phase(a, &s2d)
}

fn block(n: usize, r: usize) -> Vec<f64> {
    (0..n * r).map(|i| ((i * 37) % 19) as f64 - 9.0).collect()
}

/// The ISAs this machine can run, paired with their bench labels.
fn isas() -> Vec<KernelIsa> {
    if KernelIsa::avx2_available() {
        vec![KernelIsa::Scalar, KernelIsa::Avx2]
    } else {
        vec![KernelIsa::Scalar]
    }
}

/// Criterion trajectories: `raw/isa/<isa>/<matrix>/r<r>` — the
/// sequential compiled path, so the numbers isolate kernel throughput
/// from scheduling.
fn bench_isa(c: &mut Criterion) {
    for (name, a) in matrices() {
        let plan = plan_for(&a);
        for isa in isas() {
            let cp = CompiledPlan::compile_with_isa(&plan, KernelFormat::Auto, isa);
            for r in [1usize, R] {
                let x = block(a.ncols(), r);
                let mut ws = cp.workspace_batch(r);
                let mut y = vec![0.0; a.nrows() * r];
                c.bench_function(&format!("raw/isa/{isa}/{name}/r{r}"), |b| {
                    b.iter(|| {
                        cp.execute_batch(&mut ws, &x, &mut y, r);
                        black_box(y[0])
                    })
                });
            }
        }
    }
}

/// Criterion trajectories: `raw/schedule/<schedule>/<matrix>/r8` — the
/// persistent pool under both intra-rank schedules at the machine's
/// core count.
fn bench_schedule(c: &mut Criterion) {
    for (name, a) in matrices() {
        let plan = Arc::new(plan_for(&a));
        for schedule in [PoolSchedule::RankSplit, PoolSchedule::NnzChunked { chunk_ops: 0 }] {
            let cp = CompiledPlan::compile(&plan);
            let mut engine = ParallelEngine::with_options(
                cp,
                PoolOptions { threads: 0, width: R, schedule, ..PoolOptions::default() },
            );
            let x = block(a.ncols(), R);
            let mut y = vec![0.0; a.nrows() * R];
            engine.execute_batch(&x, &mut y, R); // spawn + warm
            c.bench_function(&format!("raw/schedule/{}/{name}/r{R}", schedule.label()), |b| {
                b.iter(|| {
                    engine.execute_batch(&x, &mut y, R);
                    black_box(y[0])
                })
            });
        }
    }
}

/// One acceptance row: best-of timings for a family at r = 8.
struct Row {
    name: &'static str,
    scalar: f64,
    avx2: Option<f64>,
    rank_split: f64,
    chunked: f64,
}

impl Row {
    fn isa_ratio(&self) -> Option<f64> {
        self.avx2.map(|v| self.scalar / v)
    }

    fn schedule_ratio(&self) -> f64 {
        self.rank_split / self.chunked
    }

    fn json(&self) -> String {
        let avx2 = match self.avx2 {
            Some(v) => format!("{v:e}"),
            None => "null".to_string(),
        };
        let ratio = match self.isa_ratio() {
            Some(r) => format!("{r:.4}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"matrix\":\"{}\",\"r\":{},\"scalar_secs\":{:e},\"avx2_secs\":{},",
                "\"isa_ratio\":{},\"rank_split_secs\":{:e},\"nnz_chunked_secs\":{:e},",
                "\"schedule_ratio\":{:.4}}}"
            ),
            self.name,
            R,
            self.scalar,
            avx2,
            ratio,
            self.rank_split,
            self.chunked,
            self.schedule_ratio(),
        )
    }
}

/// Best-of measurement of one (family, isa) sequential leg at r = 8.
fn time_isa(plan: &SpmvPlan, a: &Csr, isa: KernelIsa) -> f64 {
    let cp = CompiledPlan::compile_with_isa(plan, KernelFormat::Auto, isa);
    let x = block(a.ncols(), R);
    let mut ws = cp.workspace_batch(R);
    let mut y = vec![0.0; a.nrows() * R];
    cp.execute_batch(&mut ws, &x, &mut y, R); // warm
    best_of(3, 10, || cp.execute_batch(&mut ws, &x, &mut y, R)).as_secs_f64()
}

/// Best-of measurement of one (family, schedule) pool leg at r = 8.
fn time_schedule(plan: &Arc<SpmvPlan>, a: &Csr, schedule: PoolSchedule) -> f64 {
    let cp = CompiledPlan::compile(plan);
    let mut engine = ParallelEngine::with_options(
        cp,
        PoolOptions { threads: 0, width: R, schedule, ..PoolOptions::default() },
    );
    let x = block(a.ncols(), R);
    let mut y = vec![0.0; a.nrows() * R];
    engine.execute_batch(&x, &mut y, R); // spawn + warm
    best_of(3, 10, || engine.execute_batch(&x, &mut y, R)).as_secs_f64()
}

/// The acceptance matrix itself: ISA × schedule on every family, the
/// two asserted ratios, and the JSON artifact for CI.
fn raw_speed_acceptance(_c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let avx2 = KernelIsa::avx2_available();
    let mut rows = Vec::new();
    println!("--------------------------------------------------------------");
    for (name, a) in matrices() {
        let plan = Arc::new(plan_for(&a));
        let scalar = time_isa(&plan, &a, KernelIsa::Scalar);
        let avx2_t = avx2.then(|| time_isa(&plan, &a, KernelIsa::Avx2));
        let rank_split = time_schedule(&plan, &a, PoolSchedule::RankSplit);
        let chunked = time_schedule(&plan, &a, PoolSchedule::NnzChunked { chunk_ops: 0 });
        let row = Row { name, scalar, avx2: avx2_t, rank_split, chunked };
        match row.isa_ratio() {
            Some(r) => println!(
                "raw {name}/k{K}/r{R}: scalar {:.3} ms, avx2 {:.3} ms ({r:.2}x) | \
                 rank-split {:.3} ms, nnz-chunked {:.3} ms ({:.2}x, {cores} cores)",
                scalar * 1e3,
                row.avx2.unwrap() * 1e3,
                rank_split * 1e3,
                chunked * 1e3,
                row.schedule_ratio(),
            ),
            None => println!(
                "raw {name}/k{K}/r{R}: scalar {:.3} ms (no AVX2 on this CPU) | \
                 rank-split {:.3} ms, nnz-chunked {:.3} ms ({:.2}x, {cores} cores)",
                scalar * 1e3,
                rank_split * 1e3,
                chunked * 1e3,
                row.schedule_ratio(),
            ),
        }
        rows.push(row);
    }
    println!(
        "pool crossover: scalar plans above {:.2e} madds/iter, SIMD plans above {:.2e} \
         (the faster kernels raise the bar for spawning workers)",
        Backend::POOL_OPS_CROSSOVER as f64,
        Backend::POOL_OPS_CROSSOVER_SIMD as f64,
    );

    // JSON artifact for CI upload.
    let path = std::env::var("S2D_BENCH_ISA_JSON").unwrap_or_else(|_| "BENCH_ISA.json".into());
    let body: Vec<String> = rows.iter().map(Row::json).collect();
    let json = format!(
        "{{\"avx2_available\":{avx2},\"cores\":{cores},\"fast\":{},\"rows\":[{}]}}\n",
        fast_mode(),
        body.join(",")
    );
    if let Err(e) = std::fs::write(&path, &json) {
        println!("note: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    // (a) ISA acceptance: AVX2 must pay off at r = 8 on at least one
    // family. Pure kernel throughput — asserted even on one core.
    if avx2 {
        let best = rows.iter().filter_map(Row::isa_ratio).fold(0.0f64, f64::max);
        let floor = if fast_mode() { 1.05 } else { 1.2 };
        println!("best avx2-vs-scalar ratio: {best:.2}x (floor {floor})");
        assert!(
            best >= floor,
            "AVX2 kernels must beat scalar by >= {floor}x at r = {R} on at least one \
             family (best {best:.2}x)"
        );
    } else {
        println!("AVX2 unavailable: ISA acceptance skipped (scalar is the only path)");
    }

    // (b) Schedule acceptance: chunking must fix the power-law
    // imbalance — only meaningful with real parallelism.
    let pl = rows.iter().find(|r| r.name == "powerlaw").expect("powerlaw family present");
    if cores >= 4 {
        let floor = 1.3;
        println!(
            "powerlaw nnz-chunked-vs-rank-split ratio: {:.2}x (floor {floor})",
            pl.schedule_ratio()
        );
        assert!(
            pl.schedule_ratio() >= floor,
            "NNZ-chunked must beat rank-split by >= {floor}x on the power-law family \
             (got {:.2}x on {cores} cores)",
            pl.schedule_ratio()
        );
    } else {
        println!(
            "only {cores} core(s): schedule acceptance skipped (chunking needs parallelism \
             to pay; ratio measured at {:.2}x)",
            pl.schedule_ratio()
        );
    }
    println!("--------------------------------------------------------------");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_isa, bench_schedule, raw_speed_acceptance
}
criterion_main!(benches);
