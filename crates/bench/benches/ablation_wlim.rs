//! Ablation: Algorithm 1's load cap `W_lim = (1+ε)·nnz/K`.
//!
//! The paper fixes ε = 3% (PaToH's default). This harness sweeps ε and
//! prints the (volume, load-imbalance) frontier the bound trades along,
//! for both Algorithm 1 and the generalized Algorithm 2 — showing where
//! the balance pass buys imbalance back at zero volume cost.

use s2d_baselines::partition_1d_rowwise;
use s2d_bench::{fmt_e, fmt_li};
use s2d_core::comm::comm_requirements;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_core::heuristic2::{s2d_generalized, Heuristic2Config};
use s2d_gen::{suite_b, Scale};

fn main() {
    s2d_bench::banner("Ablation: W_lim", "volume/balance frontier of the epsilon knob");
    let scale = Scale::from_env();
    let k = 64;
    let epsilons = [0.0, 0.01, 0.03, 0.10, 0.30, 1.00, 10.0];

    println!(
        "\n{:<12} {:>6} | {:>9} {:>7} | {:>9} {:>7} | {:>8}",
        "name", "eps", "A1-vol", "A1-LI", "A2-vol", "A2-LI", "vol-1D"
    );
    for spec in suite_b().into_iter().take(4) {
        let a = spec.generate(scale, 1);
        let oned = partition_1d_rowwise(&a, k, 0.03, 1);
        let v_1d = comm_requirements(&a, &oned.partition).total_volume();
        for &eps in &epsilons {
            let alg1 = s2d_from_vector_partition(
                &a,
                &oned.row_part,
                &oned.col_part,
                &HeuristicConfig { epsilon: eps, ..Default::default() },
            );
            let alg2 = s2d_generalized(
                &a,
                &oned.row_part,
                &oned.col_part,
                k,
                &Heuristic2Config { epsilon: eps, ..Default::default() },
            );
            let (v1, v2) = (
                comm_requirements(&a, &alg1).total_volume(),
                comm_requirements(&a, &alg2).total_volume(),
            );
            println!(
                "{:<12} {:>6.2} | {:>9} {:>7} | {:>9} {:>7} | {:>8}",
                spec.name,
                eps,
                fmt_e(v1 as f64),
                fmt_li(alg1.load_imbalance()),
                fmt_e(v2 as f64),
                fmt_li(alg2.load_imbalance()),
                fmt_e(v_1d as f64),
            );
        }
        println!();
    }
    println!("Expected shape: volume falls monotonically as eps grows (more flips");
    println!("admitted); LI grows toward the cap. Algorithm 2's balance pass keeps");
    println!("LI at or below Algorithm 1's for the same eps without losing volume.");
}
