//! Regenerates **Table VI**: s2D-b vs the bounded-latency state of the
//! art — checkerboard 2D-b and Boman-style 1D-b — on suite B.
//!
//! All three bound the per-processor message count by `O(√K)`; the
//! comparison is therefore load balance and total volume (normalized to
//! 2D-b, as in the paper).

use s2d_baselines::{partition_1d_b, partition_1d_rowwise, partition_checkerboard};
use s2d_bench::{evaluate, fmt_e, fmt_li, fmt_ratio, geomean_eval, Alg, Evaluation};
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_gen::{suite_b, Scale};

/// Paper geomean rows.
const PAPER_GEOMEAN: [(usize, &str); 3] = [
    (256, "2D-b: 75.1% 1.03e6 | 1D-b: 1.3* 0.88 | s2D-b: 52.3% 0.04"),
    (1024, "2D-b: 2.0* 1.18e6 | 1D-b: 3.3* 0.88 | s2D-b: 71.7% 0.08"),
    (4096, "2D-b: 5.1* 1.35e6 | 1D-b: 8.4* 0.89 | s2D-b: 83.8% 0.16"),
];

fn main() {
    s2d_bench::banner("Table VI", "s2D-b vs 2D-b and 1D-b (suite B)");
    let scale = Scale::from_env();
    let seeds = s2d_bench::seeds_from_env();
    let ks = scale.ks_suite_b();

    println!(
        "\n{:<12} {:>5} | {:>6} {:>9} | {:>6} {:>6} | {:>6} {:>6}",
        "name", "K", "CB-LI", "lam2Db", "1Db-LI", "lam", "s2Db-LI", "lam"
    );

    let mut per_k: std::collections::BTreeMap<usize, [Vec<Evaluation>; 3]> =
        std::collections::BTreeMap::new();

    for spec in suite_b() {
        let a = spec.generate(scale, 1);
        for &k in &ks {
            let mut ecb = Vec::new();
            let mut e1b = Vec::new();
            let mut esb = Vec::new();
            for seed in 0..seeds {
                let cb = partition_checkerboard(&a, k, 0.03, seed + 1);
                ecb.push(evaluate(&a, &cb.partition, Alg::TwoPhase));
                let oned = partition_1d_rowwise(&a, k, 0.03, seed + 1);
                let onedb = partition_1d_b(&a, &oned.row_part, k);
                e1b.push(evaluate(&a, &onedb, Alg::TwoPhase));
                let s2d = s2d_from_vector_partition(
                    &a,
                    &oned.row_part,
                    &oned.col_part,
                    &HeuristicConfig::default(),
                );
                esb.push(evaluate(&a, &s2d, Alg::Mesh));
            }
            let (gcb, g1b, gsb) = (geomean_eval(&ecb), geomean_eval(&e1b), geomean_eval(&esb));
            println!(
                "{:<12} {:>5} | {:>6} {:>9} | {:>6} {:>6} | {:>6} {:>6}",
                spec.name,
                k,
                fmt_li(gcb.li),
                fmt_e(gcb.volume as f64),
                fmt_li(g1b.li),
                fmt_ratio(g1b.volume as f64, gcb.volume as f64),
                fmt_li(gsb.li),
                fmt_ratio(gsb.volume as f64, gcb.volume as f64),
            );
            let entry = per_k.entry(k).or_default();
            entry[0].push(gcb);
            entry[1].push(g1b);
            entry[2].push(gsb);
        }
        println!();
    }

    println!("geometric means over the suite:");
    for (&k, [vcb, v1b, vsb]) in &per_k {
        let (gcb, g1b, gsb) = (geomean_eval(vcb), geomean_eval(v1b), geomean_eval(vsb));
        println!(
            "{:<12} {:>5} | {:>6} {:>9} | {:>6} {:>6} | {:>6} {:>6}",
            "geomean",
            k,
            fmt_li(gcb.li),
            fmt_e(gcb.volume as f64),
            fmt_li(g1b.li),
            fmt_ratio(g1b.volume as f64, gcb.volume as f64),
            fmt_li(gsb.li),
            fmt_ratio(gsb.volume as f64, gcb.volume as f64),
        );
    }
    println!("\npaper geomean rows (for shape comparison):");
    for (k, row) in PAPER_GEOMEAN {
        println!("  K={k:<4} {row}");
    }
    println!("\nExpected shape: s2D-b beats 2D-b and 1D-b in BOTH load balance");
    println!("and volume on the real-life dense-row matrices; 1D-b volume is");
    println!("close to 2D-b (ratio ~0.9); rmat is the exception (volume > 1).");
}
