//! Regenerates **Figure 1**: the 10×13 sample matrix with a 3-way s2D
//! partition, its per-column/per-row communication requirements, and the
//! caption's worked examples (`P2` sends `[x5, ȳ2]` to `P1`; `λ_{3→2}=3`).

use s2d_core::comm::{comm_requirements, single_phase_messages, CommStats};
use s2d_core::fig1::{fig1_matrix, fig1_partition, render};

fn main() {
    s2d_bench::banner("Figure 1", "sample 3-way s2D partitioning of a 10x13 matrix");

    let a = fig1_matrix();
    let p = fig1_partition();
    p.validate_s2d(&a).expect("the example partition is s2D");

    println!("\nNonzero owners (1/2/3 = P1/P2/P3):\n");
    println!("{}", render());

    let reqs = comm_requirements(&a, &p);
    println!("x-vector entries communicated (src -> dst: x_j):");
    for &(src, dst, j) in &reqs.x_reqs {
        println!("  P{} -> P{}: x{}", src + 1, dst + 1, j + 1);
    }
    println!("partial results communicated (src -> dst: y̅_i):");
    for &(src, dst, i) in &reqs.y_reqs {
        println!("  P{} -> P{}: y̅{}", src + 1, dst + 1, i + 1);
    }

    println!("\nFused Expand-and-Fold messages:");
    let msgs = single_phase_messages(&reqs);
    for &(src, dst, words) in &msgs {
        println!("  P{} -> P{}: {} word(s)", src + 1, dst + 1, words);
    }
    let stats = CommStats::from_phases(3, &[msgs]);
    println!("\ntotal volume λ = {}", stats.total_volume);

    // The caption's checks.
    let x_32: Vec<_> = reqs.x_reqs.iter().filter(|r| r.0 == 2 && r.1 == 1).collect();
    let y_32: Vec<_> = reqs.y_reqs.iter().filter(|r| r.0 == 2 && r.1 == 1).collect();
    println!("\npaper: λ(P3->P2) = 3 with n̂ = 2, m̂ = 1");
    println!(
        "ours : λ(P3->P2) = {} with n̂ = {}, m̂ = {}",
        x_32.len() + y_32.len(),
        x_32.len(),
        y_32.len()
    );
    assert_eq!(x_32.len() + y_32.len(), 3);

    let p2_to_p1_x: Vec<_> = reqs.x_reqs.iter().filter(|r| r.0 == 1 && r.1 == 0).collect();
    let p2_to_p1_y: Vec<_> = reqs.y_reqs.iter().filter(|r| r.0 == 1 && r.1 == 0).collect();
    println!("paper: P2 sends [x5, y̅2] to P1 in one message");
    println!(
        "ours : P2 sends [x{}, y̅{}] to P1 in one message",
        p2_to_p1_x[0].2 + 1,
        p2_to_p1_y[0].2 + 1
    );
    assert_eq!(p2_to_p1_x[0].2 + 1, 5);
    assert_eq!(p2_to_p1_y[0].2 + 1, 2);
    println!("\nFigure 1 invariants verified.");
}
