//! Autotuning bench: the measured winner against the static models'
//! pick across a small suite chosen to be *imperfect* for the models —
//! a scale-free R-MAT (skewed rows), an FEM-like mesh (regular, where
//! 1D is near-optimal and the search should mostly agree with the
//! model) and a power-law matrix (the shape whose kernel-format and
//! backend crossovers the closed-form constants get wrong most often).
//! The acceptance asserts the tuner's contract on every matrix: the
//! measured pick is never meaningfully slower than the model pick
//! (<= 1.05x, noise margin — by construction the model pick is in the
//! candidate set, so the winner can only tie or beat it), and a second
//! tuned build against a warm cache is a pure replay with zero
//! re-measurement.
//!
//! Run with `cargo bench -p s2d-bench --bench tuning`.
//!
//! **Fast mode** (CI smoke): set `S2D_TUNE_FAST=1` — the tuner itself
//! drops to its 1-trial smoke budget via `TuneBudget::from_env`, and
//! this bench shrinks the matrices. Every assertion still runs.

use criterion::{criterion_group, criterion_main, Criterion};

use s2d_gen::fem::fem_like;
use s2d_gen::powerlaw::power_law;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_sparse::Csr;
use s2d_tune::{TuneBudget, Tuner, TuningCache};

const K: usize = 8;
const RHS: usize = 4;

fn fast_mode() -> bool {
    std::env::var("S2D_TUNE_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The imperfect-model suite: (label, matrix).
fn suite() -> Vec<(&'static str, Csr)> {
    let n = if fast_mode() { 1 << 8 } else { 1 << 12 };
    vec![
        ("rmat", rmat(&RmatConfig::graph500(if fast_mode() { 8 } else { 12 }, 8), 1).to_csr()),
        ("fem", fem_like(n, 6.0, 16, 2)),
        ("powerlaw", power_law(n, 8 * n, 2.1, n / 4, 3)),
    ]
}

fn bench_tuning(c: &mut Criterion) {
    let (label, a) = suite().remove(0);
    let path = std::env::temp_dir().join(format!("s2d-tune-bench-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Cold: full search (dominated by partitioning + timed trials).
    c.bench_function(&format!("tune/cold/{label}/k{K}"), |b| {
        b.iter(|| Tuner::new(&a, K).width(RHS).run())
    });
    // Warm: one verdict on disk, every run replays it.
    let _ = Tuner::new(&a, K).width(RHS).cache(&path).run();
    c.bench_function(&format!("tune/replay/{label}/k{K}"), |b| {
        b.iter(|| {
            let v = Tuner::new(&a, K).width(RHS).cache(&path).run();
            assert!(v.cache_hit);
            v
        })
    });
    let _ = std::fs::remove_file(&path);
}

/// Direct acceptance: the tuner's two contracts, on every suite matrix.
fn tuning_acceptance(_c: &mut Criterion) {
    let path = std::env::temp_dir().join(format!("s2d-tune-accept-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    println!("--------------------------------------------------------------");
    for (label, a) in suite() {
        let budget = TuneBudget::from_env();
        let verdict = Tuner::new(&a, K).width(RHS).budget(budget).cache(&path).run();
        assert!(!verdict.cache_hit, "{label}: distinct matrices must each search once");
        println!(
            "tune acceptance {label} ({}x{}, {} nnz): winner {} {:.1} µs, \
             model {} {:.1} µs (winner/model {:.3})",
            a.nrows(),
            a.ncols(),
            a.nnz(),
            verdict.winner,
            verdict.winner_secs * 1e6,
            verdict.model,
            verdict.model_secs * 1e6,
            verdict.speedup_over_model(),
        );
        // Contract 1: measurement never loses to the model (the model's
        // pick is itself measured; 5% margin covers timer noise between
        // the two measurements of an identical configuration).
        assert!(
            verdict.winner_secs <= verdict.model_secs * 1.05,
            "{label}: tuned pick {:.1} µs must be <= 1.05x the model pick {:.1} µs",
            verdict.winner_secs * 1e6,
            verdict.model_secs * 1e6,
        );

        // Contract 2: the second tuned build is a pure cache replay —
        // same winner, no measurements run.
        let replay = Tuner::new(&a, K).width(RHS).budget(budget).cache(&path).run();
        assert!(replay.cache_hit, "{label}: warm cache must hit");
        assert_eq!(replay.winner, verdict.winner, "{label}: replay must return the stored winner");
        assert!(
            replay.measurements.is_empty(),
            "{label}: a cache hit must not re-measure anything"
        );
    }
    // All three verdicts live in one cache file, independently keyed.
    assert_eq!(TuningCache::load(&path).len(), 3);
    let _ = std::fs::remove_file(&path);
    println!("--------------------------------------------------------------");
}

criterion_group!(benches, bench_tuning, tuning_acceptance);
criterion_main!(benches);
