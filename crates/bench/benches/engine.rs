//! Engine comparison bench: mailbox interpreter vs threaded executor vs
//! the compiled engine (sequential workspace and persistent pool), on
//! generator-suite matrices. Compile (inspector) time is reported
//! separately from per-iteration time, and the acceptance ratio —
//! compiled vs mailbox on a 2^14-row R-MAT at K = 16 — is printed
//! explicitly at the end.
//!
//! Run with `cargo bench -p s2d-bench --bench engine`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use s2d_baselines::partition_1d_rowwise;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_engine::{CompiledPlan, ParallelEngine};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_gen::{suite_a, Scale};
use s2d_sparse::Csr;
use s2d_spmv::SpmvPlan;

const K: usize = 16;

/// The single-phase s2D plan the paper's workload runs.
fn plan_for(a: &Csr) -> SpmvPlan {
    let oned = partition_1d_rowwise(a, K, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    SpmvPlan::single_phase(a, &s2d)
}

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|j| ((j * 37) % 19) as f64 - 9.0).collect()
}

/// All five measurements for one named matrix.
fn bench_matrix(c: &mut Criterion, name: &str, a: &Csr) {
    let plan = plan_for(a);
    let x = x_for(a.ncols());

    c.bench_function(&format!("engine/compile/{name}/k{K}"), |b| {
        b.iter(|| black_box(CompiledPlan::compile(&plan).total_ops()))
    });
    c.bench_function(&format!("engine/mailbox/{name}/k{K}"), |b| {
        b.iter(|| black_box(plan.execute_mailbox(&x)))
    });
    c.bench_function(&format!("engine/threaded/{name}/k{K}"), |b| {
        b.iter(|| black_box(plan.execute_threaded(&x)))
    });

    let cp = CompiledPlan::compile(&plan);
    let mut ws = cp.workspace();
    let mut y = vec![0.0; a.nrows()];
    c.bench_function(&format!("engine/compiled-seq/{name}/k{K}"), |b| {
        b.iter(|| {
            cp.execute(&mut ws, &x, &mut y);
            black_box(y[0])
        })
    });
    let mut pool = ParallelEngine::new(cp);
    c.bench_function(&format!("engine/compiled-pool/{name}/k{K}"), |b| {
        b.iter(|| {
            pool.execute(&x, &mut y);
            black_box(y[0])
        })
    });
}

fn bench_suite(c: &mut Criterion) {
    // Two suite-A doubles with different shapes (stencil-ish and
    // dense-row-tailed), at the generator's tiny scale.
    for name in ["crystk02", "c-big"] {
        if let Some(spec) = suite_a().into_iter().find(|s| s.name.eq_ignore_ascii_case(name)) {
            let a = spec.generate(Scale::Tiny, 1);
            bench_matrix(c, name, &a);
        }
    }
}

fn bench_rmat14(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(14, 8), 1).to_csr();
    bench_matrix(c, "rmat14", &a);
}

/// Direct acceptance measurement: ≥ 10× per-iteration speedup of the
/// compiled engine over the mailbox interpreter on rmat14 at K = 16.
fn acceptance_summary(_c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(14, 8), 1).to_csr();
    let plan = plan_for(&a);
    let x = x_for(a.ncols());

    // Best-of sampling on both sides: min is the noise-robust estimator
    // for "how fast does this run when the machine cooperates".
    let mut want = Vec::new();
    let mailbox = (0..3)
        .map(|_| {
            let t = Instant::now();
            want = plan.execute_mailbox(&x);
            t.elapsed()
        })
        .min()
        .expect("nonempty");

    let t = Instant::now();
    let cp = CompiledPlan::compile(&plan);
    let compile = t.elapsed();

    let mut ws = cp.workspace();
    let mut y = vec![0.0; a.nrows()];
    cp.execute(&mut ws, &x, &mut y); // warm the buffers
    let iters = 20;
    let seq = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                cp.execute(&mut ws, &x, &mut y);
            }
            t.elapsed() / iters
        })
        .min()
        .expect("nonempty");

    let mut pool = ParallelEngine::new(cp);
    pool.execute(&x, &mut y);
    let pooled = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                pool.execute(&x, &mut y);
            }
            t.elapsed() / iters
        })
        .min()
        .expect("nonempty");

    let err =
        y.iter().zip(&want).map(|(g, w)| (g - w).abs() / w.abs().max(1.0)).fold(0.0f64, f64::max);
    assert!(err < 1e-9, "engines disagree: max rel err {err:.2e}");

    let ratio_seq = mailbox.as_secs_f64() / seq.as_secs_f64();
    let ratio_pool = mailbox.as_secs_f64() / pooled.as_secs_f64();
    println!("--------------------------------------------------------------");
    println!(
        "acceptance rmat14/k16: mailbox {:.2} ms/iter, compile {:.2} ms (one-time),",
        mailbox.as_secs_f64() * 1e3,
        compile.as_secs_f64() * 1e3
    );
    println!(
        "  compiled-seq {:.3} ms/iter ({ratio_seq:.0}x), compiled-pool {:.3} ms/iter ({ratio_pool:.0}x)",
        seq.as_secs_f64() * 1e3,
        pooled.as_secs_f64() * 1e3
    );
    assert!(ratio_seq >= 10.0, "compiled engine must be >= 10x mailbox (got {ratio_seq:.1}x)");
    println!("--------------------------------------------------------------");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suite, bench_rmat14, acceptance_summary
}
criterion_main!(benches);
