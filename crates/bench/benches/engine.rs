//! Engine comparison bench: every `Backend::all()` operator (mailbox
//! interpreter, threaded executor, compiled sequential workspace,
//! compiled persistent pool) measured through the one `SpmvOperator`
//! interface on generator-suite matrices. Compile (inspector) time is
//! reported separately from per-iteration time, and two acceptance
//! ratios —
//! compiled vs mailbox, and batched (r = 8) vs 8 single-RHS compiled
//! executions, both on a 2^14-row R-MAT at K = 16 — are printed and
//! asserted explicitly at the end.
//!
//! Run with `cargo bench -p s2d-bench --bench engine`.
//!
//! **Fast mode** (CI smoke): set `S2D_ENGINE_BENCH_FAST=1` to shrink
//! the R-MAT to 2^11 rows and skip the suite-A matrices. The
//! correctness cross-checks and the batched-reuse assertion still run,
//! so a kernel regression fails the build in under a minute; only the
//! absolute speedup thresholds are relaxed (small matrices leave less
//! room between the interpreter and the compiled path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use s2d_baselines::partition_1d_rowwise;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_engine::{Backend, CompiledPlan, ParallelEngine};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_gen::{suite_a, Scale};
use s2d_sparse::Csr;
use s2d_spmv::SpmvOperator;
use s2d_spmv::SpmvPlan;

const K: usize = 16;

/// CI smoke mode: smaller matrix, relaxed speedup thresholds.
/// `S2D_ENGINE_BENCH_FAST=0` (or empty) keeps the full run.
fn fast_mode() -> bool {
    std::env::var("S2D_ENGINE_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// R-MAT scale for the acceptance matrix (2^14 rows, 2^11 in fast mode).
fn rmat_scale() -> u32 {
    if fast_mode() {
        11
    } else {
        14
    }
}

fn rmat_label() -> String {
    format!("rmat{}", rmat_scale())
}

/// The single-phase s2D plan the paper's workload runs.
fn plan_for(a: &Csr) -> SpmvPlan {
    let oned = partition_1d_rowwise(a, K, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    SpmvPlan::single_phase(a, &s2d)
}

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|j| ((j * 37) % 19) as f64 - 9.0).collect()
}

/// Compile cost plus one steady-state `apply` measurement per backend
/// for one named matrix — the backends come from `Backend::all()`, so
/// a new execution path is benchmarked by adding its enum variant.
fn bench_matrix(c: &mut Criterion, name: &str, a: &Csr) {
    let plan = plan_for(a);
    let x = x_for(a.ncols());

    c.bench_function(&format!("engine/compile/{name}/k{K}"), |b| {
        b.iter(|| black_box(CompiledPlan::compile(&plan).total_ops()))
    });

    let plan = Arc::new(plan);
    let mut y = vec![0.0; a.nrows()];
    for backend in Backend::all() {
        // Setup (compilation, buffers, worker spawn) is paid here, once
        // — the measured loop is the amortized steady state.
        let mut op = backend.build(&plan, 1);
        c.bench_function(&format!("engine/{backend}/{name}/k{K}"), |b| {
            b.iter(|| {
                op.apply(&x, &mut y);
                black_box(y[0])
            })
        });
    }
}

fn bench_suite(c: &mut Criterion) {
    if fast_mode() {
        return; // smoke runs cover the R-MAT benches only
    }
    // Two suite-A doubles with different shapes (stencil-ish and
    // dense-row-tailed), at the generator's tiny scale.
    for name in ["crystk02", "c-big"] {
        if let Some(spec) = suite_a().into_iter().find(|s| s.name.eq_ignore_ascii_case(name)) {
            let a = spec.generate(Scale::Tiny, 1);
            bench_matrix(c, name, &a);
        }
    }
}

fn bench_rmat14(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    bench_matrix(c, &rmat_label(), &a);
}

/// Batched comparison: one r-wide block execution vs r single-RHS
/// executions of the same compiled plan (sequential workspace path —
/// the two sides differ only in traversal sharing, not threading).
fn bench_batched(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = plan_for(&a);
    let cp = CompiledPlan::compile(&plan);
    let name = rmat_label();
    for r in [2usize, 4, 8] {
        let x: Vec<f64> = (0..a.ncols() * r).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let mut ws = cp.workspace_batch(r);
        let mut y = vec![0.0; a.nrows() * r];
        c.bench_function(&format!("engine/compiled-seq-batch{r}/{name}/k{K}"), |b| {
            b.iter(|| {
                cp.execute_batch(&mut ws, &x, &mut y, r);
                black_box(y[0])
            })
        });
        let cols: Vec<Vec<f64>> =
            (0..r).map(|q| (0..a.ncols()).map(|g| x[g * r + q]).collect()).collect();
        let mut ws1 = cp.workspace();
        let mut y1 = vec![0.0; a.nrows()];
        c.bench_function(&format!("engine/compiled-seq-{r}xsingle/{name}/k{K}"), |b| {
            b.iter(|| {
                for col in &cols {
                    cp.execute(&mut ws1, col, &mut y1);
                }
                black_box(y1[0])
            })
        });
    }
}

/// Direct acceptance measurement: ≥ 10× per-iteration speedup of the
/// compiled engine over the mailbox interpreter on rmat14 at K = 16
/// (≥ 3× on the shrunken fast-mode matrix).
fn acceptance_summary(_c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = plan_for(&a);
    let x = x_for(a.ncols());

    // Best-of sampling on both sides: min is the noise-robust estimator
    // for "how fast does this run when the machine cooperates".
    let mut want = Vec::new();
    let mailbox = (0..3)
        .map(|_| {
            let t = Instant::now();
            want = plan.execute_mailbox(&x);
            t.elapsed()
        })
        .min()
        .expect("nonempty");

    let t = Instant::now();
    let cp = CompiledPlan::compile(&plan);
    let compile = t.elapsed();

    let mut ws = cp.workspace();
    let mut y = vec![0.0; a.nrows()];
    cp.execute(&mut ws, &x, &mut y); // warm the buffers
    let iters = 20;
    let seq = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                cp.execute(&mut ws, &x, &mut y);
            }
            t.elapsed() / iters
        })
        .min()
        .expect("nonempty");

    let mut pool = ParallelEngine::new(cp);
    pool.execute(&x, &mut y);
    let pooled = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                pool.execute(&x, &mut y);
            }
            t.elapsed() / iters
        })
        .min()
        .expect("nonempty");

    let err =
        y.iter().zip(&want).map(|(g, w)| (g - w).abs() / w.abs().max(1.0)).fold(0.0f64, f64::max);
    assert!(err < 1e-9, "engines disagree: max rel err {err:.2e}");

    let ratio_seq = mailbox.as_secs_f64() / seq.as_secs_f64();
    let ratio_pool = mailbox.as_secs_f64() / pooled.as_secs_f64();
    let name = rmat_label();
    println!("--------------------------------------------------------------");
    println!(
        "acceptance {name}/k16: mailbox {:.2} ms/iter, compile {:.2} ms (one-time),",
        mailbox.as_secs_f64() * 1e3,
        compile.as_secs_f64() * 1e3
    );
    println!(
        "  compiled-seq {:.3} ms/iter ({ratio_seq:.0}x), compiled-pool {:.3} ms/iter ({ratio_pool:.0}x)",
        seq.as_secs_f64() * 1e3,
        pooled.as_secs_f64() * 1e3
    );
    let floor = if fast_mode() { 3.0 } else { 10.0 };
    assert!(
        ratio_seq >= floor,
        "compiled engine must be >= {floor}x mailbox (got {ratio_seq:.1}x)"
    );
    println!("--------------------------------------------------------------");
}

/// Batched acceptance: one r = 8 block execution must beat 8 sequential
/// single-RHS executions of the same compiled plan per iteration — the
/// whole point of the multi-RHS path is A-traversal reuse.
fn batched_acceptance_summary(_c: &mut Criterion) {
    const R: usize = 8;
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = plan_for(&a);
    let cp = CompiledPlan::compile(&plan);
    let x: Vec<f64> = (0..a.ncols() * R).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
    let cols: Vec<Vec<f64>> =
        (0..R).map(|q| (0..a.ncols()).map(|g| x[g * R + q]).collect()).collect();

    let mut ws = cp.workspace_batch(R);
    let mut y = vec![0.0; a.nrows() * R];
    cp.execute_batch(&mut ws, &x, &mut y, R); // warm the buffers
    let iters = 10;
    let batched = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                cp.execute_batch(&mut ws, &x, &mut y, R);
            }
            t.elapsed() / iters
        })
        .min()
        .expect("nonempty");

    let mut ws1 = cp.workspace();
    let mut y1 = vec![0.0; a.nrows()];
    cp.execute(&mut ws1, &cols[0], &mut y1); // warm
    let singles = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                for col in &cols {
                    cp.execute(&mut ws1, col, &mut y1);
                }
            }
            t.elapsed() / iters
        })
        .min()
        .expect("nonempty");

    // Columns of the batch must match the last single-RHS run bitwise.
    for g in 0..a.nrows() {
        assert_eq!(y[g * R + R - 1], y1[g], "batched column {} disagrees at row {g}", R - 1);
    }

    let ratio = singles.as_secs_f64() / batched.as_secs_f64();
    println!("--------------------------------------------------------------");
    println!(
        "batched acceptance {}/k16: {R}x single {:.3} ms/iter, batch{R} {:.3} ms/iter ({ratio:.2}x reuse win)",
        rmat_label(),
        singles.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3
    );
    // Fast mode runs on noisy shared CI runners with a small matrix:
    // allow timing jitter without letting a genuinely slower batch
    // path (no reuse ≈ 1.0x or below) slip through.
    let floor = if fast_mode() { 0.9 } else { 1.0 };
    assert!(
        ratio > floor,
        "batched r={R} must beat {R} sequential single-RHS executions (got {ratio:.2}x, floor {floor})"
    );
    println!("--------------------------------------------------------------");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suite, bench_rmat14, bench_batched, acceptance_summary, batched_acceptance_summary
}
criterion_main!(benches);
