//! Engine comparison bench: every `Backend::all()` operator (mailbox
//! interpreter, threaded executor, compiled sequential workspace,
//! compiled persistent pool) measured through the one `SpmvOperator`
//! interface on generator-suite matrices. Compile (inspector) time is
//! reported separately from per-iteration time, and two acceptance
//! ratios —
//! compiled vs mailbox, and batched (r = 8) vs 8 single-RHS compiled
//! executions, both on a 2^14-row R-MAT at K = 16 — are printed and
//! asserted explicitly at the end.
//!
//! Run with `cargo bench -p s2d-bench --bench engine`.
//!
//! **Fast mode** (CI smoke): set `S2D_ENGINE_BENCH_FAST=1` to shrink
//! the R-MAT to 2^11 rows and skip the suite-A matrices. The
//! correctness cross-checks and the batched-reuse assertion still run,
//! so a kernel regression fails the build in under a minute; only the
//! absolute speedup thresholds are relaxed (small matrices leave less
//! room between the interpreter and the compiled path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use s2d_baselines::partition_1d_rowwise;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_engine::{Backend, CompiledPlan, KernelFormat, ParallelEngine};
use s2d_gen::fem::fem_like;
use s2d_gen::powerlaw::power_law;
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_gen::{suite_a, Scale};
use s2d_obs::{best_of, TelemetrySink};
use s2d_sparse::Csr;
use s2d_spmv::SpmvOperator;
use s2d_spmv::SpmvPlan;

const K: usize = 16;

/// CI smoke mode: smaller matrix, relaxed speedup thresholds.
/// `S2D_ENGINE_BENCH_FAST=0` (or empty) keeps the full run.
fn fast_mode() -> bool {
    std::env::var("S2D_ENGINE_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Kernel format for the per-backend benches, from
/// `S2D_BENCH_KERNEL_FORMAT` (the CI smoke matrix sweeps it); the
/// default CSR keeps bench-id continuity with earlier runs.
fn bench_kernel_format() -> KernelFormat {
    match std::env::var("S2D_BENCH_KERNEL_FORMAT") {
        Ok(v) if !v.is_empty() => {
            v.parse().unwrap_or_else(|e| panic!("S2D_BENCH_KERNEL_FORMAT: {e}"))
        }
        _ => KernelFormat::CsrSlice,
    }
}

/// R-MAT scale for the acceptance matrix (2^14 rows, 2^11 in fast mode).
fn rmat_scale() -> u32 {
    if fast_mode() {
        11
    } else {
        14
    }
}

fn rmat_label() -> String {
    format!("rmat{}", rmat_scale())
}

/// The single-phase s2D plan the paper's workload runs.
fn plan_for(a: &Csr) -> SpmvPlan {
    let oned = partition_1d_rowwise(a, K, 0.03, 1);
    let s2d =
        s2d_from_vector_partition(a, &oned.row_part, &oned.col_part, &HeuristicConfig::default());
    SpmvPlan::single_phase(a, &s2d)
}

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|j| ((j * 37) % 19) as f64 - 9.0).collect()
}

/// Compile cost plus one steady-state `apply` measurement per backend
/// for one named matrix — the backends come from `Backend::all()`, so
/// a new execution path is benchmarked by adding its enum variant.
fn bench_matrix(c: &mut Criterion, name: &str, a: &Csr) {
    let plan = plan_for(a);
    let x = x_for(a.ncols());

    c.bench_function(&format!("engine/compile/{name}/k{K}"), |b| {
        b.iter(|| black_box(CompiledPlan::compile(&plan).total_ops()))
    });

    let plan = Arc::new(plan);
    let mut y = vec![0.0; a.nrows()];
    let format = bench_kernel_format();
    for backend in Backend::all() {
        // Setup (compilation, buffers, worker spawn) is paid here, once
        // — the measured loop is the amortized steady state. The
        // compiled backends run whatever kernel format the CI matrix
        // selected; format-suffixed ids keep the trajectories separate.
        let mut op = backend.build_with(&plan, 1, format);
        let id = match (backend, format) {
            (Backend::CompiledSeq | Backend::CompiledPool { .. }, f)
                if f != KernelFormat::CsrSlice =>
            {
                format!("engine/{backend}+{}/{name}/k{K}", f.label())
            }
            _ => format!("engine/{backend}/{name}/k{K}"),
        };
        c.bench_function(&id, |b| {
            b.iter(|| {
                op.apply(&x, &mut y);
                black_box(y[0])
            })
        });
    }
}

/// Per-format comparison on three shapes (skewed R-MAT, power-law tail,
/// FEM stencil): the sequential compiled path at r = 1 and r = 8 for
/// every `KernelFormat`. Criterion ids are
/// `engine/format/<fmt>/<matrix>/r<r>`.
fn bench_formats(c: &mut Criterion) {
    // The format *comparison* sweeps every format itself, so it runs on
    // the canonical (csr) leg of the CI matrix only — the other legs
    // would repeat identical measurements into their artifacts.
    if bench_kernel_format() != KernelFormat::CsrSlice {
        return;
    }
    let formats: Vec<KernelFormat> = KernelFormat::all()
        .into_iter()
        .chain([KernelFormat::SellCSigma { c: 8, sigma: 256 }])
        .collect();
    for (name, a) in format_matrices() {
        let plan = plan_for(&a);
        for &format in &formats {
            let cp = CompiledPlan::compile_with(&plan, format);
            for r in [1usize, 8] {
                let x: Vec<f64> =
                    (0..a.ncols() * r).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
                let mut ws = cp.workspace_batch(r);
                let mut y = vec![0.0; a.nrows() * r];
                let label = match format {
                    KernelFormat::SellCSigma { c, .. } => format!("sell{c}"),
                    other => other.label().to_string(),
                };
                c.bench_function(&format!("engine/format/{label}/{name}/r{r}"), |b| {
                    b.iter(|| {
                        cp.execute_batch(&mut ws, &x, &mut y, r);
                        black_box(y[0])
                    })
                });
            }
        }
    }
}

/// The format-comparison matrices at the mode's scale: skewed R-MAT,
/// power-law tail, FEM stencil, and an ultra-sparse power law (mean
/// degree ~2 — the many-tiny-rows shape where per-row loop overhead
/// dominates the CSR slice and sorted chunks pay off).
fn format_matrices() -> Vec<(&'static str, Csr)> {
    let scale = rmat_scale();
    let n = 1usize << scale;
    vec![
        ("rmat", rmat(&RmatConfig::graph500(scale, 8), 1).to_csr()),
        ("powerlaw", power_law(n, 8 * n, 2.2, n / 4, 3)),
        ("fem", fem_like(n, 7.0, 14, 5)),
        ("ultrasparse", power_law(n, 2 * n, 2.6, n / 8, 7)),
    ]
}

fn bench_suite(c: &mut Criterion) {
    if fast_mode() {
        return; // smoke runs cover the R-MAT benches only
    }
    // Two suite-A doubles with different shapes (stencil-ish and
    // dense-row-tailed), at the generator's tiny scale.
    for name in ["crystk02", "c-big"] {
        if let Some(spec) = suite_a().into_iter().find(|s| s.name.eq_ignore_ascii_case(name)) {
            let a = spec.generate(Scale::Tiny, 1);
            bench_matrix(c, name, &a);
        }
    }
}

fn bench_rmat14(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    bench_matrix(c, &rmat_label(), &a);
}

/// Batched comparison: one r-wide block execution vs r single-RHS
/// executions of the same compiled plan (sequential workspace path —
/// the two sides differ only in traversal sharing, not threading).
fn bench_batched(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = plan_for(&a);
    let cp = CompiledPlan::compile(&plan);
    let name = rmat_label();
    for r in [2usize, 4, 8] {
        let x: Vec<f64> = (0..a.ncols() * r).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let mut ws = cp.workspace_batch(r);
        let mut y = vec![0.0; a.nrows() * r];
        c.bench_function(&format!("engine/compiled-seq-batch{r}/{name}/k{K}"), |b| {
            b.iter(|| {
                cp.execute_batch(&mut ws, &x, &mut y, r);
                black_box(y[0])
            })
        });
        let cols: Vec<Vec<f64>> =
            (0..r).map(|q| (0..a.ncols()).map(|g| x[g * r + q]).collect()).collect();
        let mut ws1 = cp.workspace();
        let mut y1 = vec![0.0; a.nrows()];
        c.bench_function(&format!("engine/compiled-seq-{r}xsingle/{name}/k{K}"), |b| {
            b.iter(|| {
                for col in &cols {
                    cp.execute(&mut ws1, col, &mut y1);
                }
                black_box(y1[0])
            })
        });
    }
}

/// Direct acceptance measurement: ≥ 10× per-iteration speedup of the
/// compiled engine over the mailbox interpreter on rmat14 at K = 16
/// (≥ 3× on the shrunken fast-mode matrix).
fn acceptance_summary(_c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = plan_for(&a);
    let x = x_for(a.ncols());

    // Best-of sampling on both sides: min is the noise-robust estimator
    // for "how fast does this run when the machine cooperates".
    let mut want = Vec::new();
    let mailbox = best_of(3, 1, || want = plan.execute_mailbox(&x));

    let (cp, compile) = s2d_obs::time(|| CompiledPlan::compile(&plan));

    let mut ws = cp.workspace();
    let mut y = vec![0.0; a.nrows()];
    cp.execute(&mut ws, &x, &mut y); // warm the buffers
    let seq = best_of(3, 20, || cp.execute(&mut ws, &x, &mut y));

    let mut pool = ParallelEngine::new(cp);
    pool.execute(&x, &mut y);
    let pooled = best_of(3, 20, || pool.execute(&x, &mut y));

    let err =
        y.iter().zip(&want).map(|(g, w)| (g - w).abs() / w.abs().max(1.0)).fold(0.0f64, f64::max);
    assert!(err < 1e-9, "engines disagree: max rel err {err:.2e}");

    let ratio_seq = mailbox.as_secs_f64() / seq.as_secs_f64();
    let ratio_pool = mailbox.as_secs_f64() / pooled.as_secs_f64();
    let name = rmat_label();
    println!("--------------------------------------------------------------");
    println!(
        "acceptance {name}/k16: mailbox {:.2} ms/iter, compile {:.2} ms (one-time),",
        mailbox.as_secs_f64() * 1e3,
        compile.as_secs_f64() * 1e3
    );
    println!(
        "  compiled-seq {:.3} ms/iter ({ratio_seq:.0}x), compiled-pool {:.3} ms/iter ({ratio_pool:.0}x)",
        seq.as_secs_f64() * 1e3,
        pooled.as_secs_f64() * 1e3
    );
    let floor = if fast_mode() { 3.0 } else { 10.0 };
    assert!(
        ratio_seq >= floor,
        "compiled engine must be >= {floor}x mailbox (got {ratio_seq:.1}x)"
    );
    println!("--------------------------------------------------------------");
}

/// Batched acceptance: one r = 8 block execution must beat 8 sequential
/// single-RHS executions of the same compiled plan per iteration — the
/// whole point of the multi-RHS path is A-traversal reuse.
fn batched_acceptance_summary(_c: &mut Criterion) {
    const R: usize = 8;
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = plan_for(&a);
    let cp = CompiledPlan::compile(&plan);
    let x: Vec<f64> = (0..a.ncols() * R).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
    let cols: Vec<Vec<f64>> =
        (0..R).map(|q| (0..a.ncols()).map(|g| x[g * R + q]).collect()).collect();

    let mut ws = cp.workspace_batch(R);
    let mut y = vec![0.0; a.nrows() * R];
    cp.execute_batch(&mut ws, &x, &mut y, R); // warm the buffers
    let batched = best_of(3, 10, || cp.execute_batch(&mut ws, &x, &mut y, R));

    let mut ws1 = cp.workspace();
    let mut y1 = vec![0.0; a.nrows()];
    cp.execute(&mut ws1, &cols[0], &mut y1); // warm
    let singles = best_of(3, 10, || {
        for col in &cols {
            cp.execute(&mut ws1, col, &mut y1);
        }
    });

    // Columns of the batch must match the last single-RHS run bitwise.
    for g in 0..a.nrows() {
        assert_eq!(y[g * R + R - 1], y1[g], "batched column {} disagrees at row {g}", R - 1);
    }

    let ratio = singles.as_secs_f64() / batched.as_secs_f64();
    println!("--------------------------------------------------------------");
    println!(
        "batched acceptance {}/k16: {R}x single {:.3} ms/iter, batch{R} {:.3} ms/iter ({ratio:.2}x reuse win)",
        rmat_label(),
        singles.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3
    );
    // Fast mode runs on noisy shared CI runners with a small matrix:
    // allow timing jitter without letting a genuinely slower batch
    // path (no reuse ≈ 1.0x or below) slip through.
    let floor = if fast_mode() { 0.9 } else { 1.0 };
    assert!(
        ratio > floor,
        "batched r={R} must beat {R} sequential single-RHS executions (got {ratio:.2}x, floor {floor})"
    );
    println!("--------------------------------------------------------------");
}

/// Format acceptance: on the three comparison shapes at r = 8,
/// (a) SELL-C-σ must beat the CSR slice on at least one matrix, and
/// (b) `auto` must never be slower than the *worst* fixed format
/// (within a noise margin) on any matrix — the selection policy may
/// not pick pathologically.
fn format_acceptance_summary(_c: &mut Criterion) {
    const R: usize = 8;
    // Like bench_formats: one leg of the CI matrix carries the
    // cross-format acceptance; re-asserting it per leg adds wall time
    // without additional signal.
    if bench_kernel_format() != KernelFormat::CsrSlice {
        return;
    }
    println!("--------------------------------------------------------------");
    let mut best_sell_ratio = 0.0f64;
    for (name, a) in format_matrices() {
        let plan = plan_for(&a);
        let x: Vec<f64> = (0..a.ncols() * R).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let time_of = |format: KernelFormat| {
            let cp = CompiledPlan::compile_with(&plan, format);
            let mut ws = cp.workspace_batch(R);
            let mut y = vec![0.0; a.nrows() * R];
            cp.execute_batch(&mut ws, &x, &mut y, R); // warm
            best_of(3, 10, || cp.execute_batch(&mut ws, &x, &mut y, R)).as_secs_f64()
        };
        let csr = time_of(KernelFormat::CsrSlice);
        // The default chunk height (c = 2) keeps the entry-major
        // loop's accumulator block (C × R words) in registers at r = 8;
        // sell:8 is the wide-chunk comparison point (lane-major here).
        let sell = time_of(KernelFormat::DEFAULT_SELL);
        let sell8 = time_of(KernelFormat::SellCSigma { c: 8, sigma: 256 });
        let dense = time_of(KernelFormat::DenseRowSplit);
        let auto = time_of(KernelFormat::Auto);
        best_sell_ratio = best_sell_ratio.max(csr / sell).max(csr / sell8);
        let worst_fixed = csr.max(sell).max(sell8).max(dense);
        let picks = CompiledPlan::compile_with(&plan, KernelFormat::Auto)
            .format_counts()
            .iter()
            .map(|(f, n)| format!("{}x{}", n, f.label()))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "format acceptance {name}/k{K}/r{R}: csr {:.3} ms, sell {:.3} ms ({:.2}x), \
             sell:8 {:.3} ms ({:.2}x), dense-split {:.3} ms, auto {:.3} ms [{picks}]",
            csr * 1e3,
            sell * 1e3,
            csr / sell,
            sell8 * 1e3,
            csr / sell8,
            dense * 1e3,
            auto * 1e3,
        );
        // (b): auto within noise of (or better than) the worst fixed
        // format. The real bar is "never pathological", so the margin
        // only absorbs timing jitter.
        let margin = if fast_mode() { 1.30 } else { 1.15 };
        assert!(
            auto <= worst_fixed * margin,
            "{name}: auto ({auto:.6}s) slower than the worst fixed format ({worst_fixed:.6}s)"
        );
    }
    // (a): the sorted-chunk format must pay off somewhere at r = 8.
    let floor = if fast_mode() { 0.80 } else { 1.0 };
    println!("best sell-vs-csr ratio across matrices: {best_sell_ratio:.2}x (floor {floor})");
    assert!(
        best_sell_ratio > floor,
        "SELL-C-σ must beat the CSR slice on at least one matrix at r = {R} \
         (best ratio {best_sell_ratio:.2}x)"
    );
    println!("--------------------------------------------------------------");
}

/// Telemetry acceptance: instrumentation must be invisible in the
/// results (telemetry-on output bitwise equal to telemetry-off, on
/// both compiled backends) and cheap (< 5% per-iteration overhead on
/// the sequential path; relaxed on the small fast-mode matrix where a
/// handful of clock reads is a visible fraction of an iteration).
fn telemetry_acceptance_summary(_c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(rmat_scale(), 8), 1).to_csr();
    let plan = Arc::new(plan_for(&a));
    let x = x_for(a.ncols());
    let format = KernelFormat::CsrSlice;

    // Bitwise identity on both compiled backends.
    for backend in [Backend::CompiledSeq, Backend::CompiledPool { threads: 0, pin: false }] {
        let sink = Arc::new(TelemetrySink::new(K));
        let mut plain = backend.build_with(&plan, 1, format);
        let mut obs = backend.build_obs(&plan, 1, format, Some(Arc::clone(&sink)));
        let mut y_plain = vec![0.0; a.nrows()];
        let mut y_obs = vec![0.0; a.nrows()];
        plain.apply(&x, &mut y_plain);
        obs.apply(&x, &mut y_obs);
        assert_eq!(y_plain, y_obs, "telemetry must be bitwise invisible on {backend}");
        assert!(sink.wall_nanos() > 0, "{backend}: sink recorded nothing");
    }

    // Overhead on the sequential path, best-of-3 batches of 20.
    let sink = Arc::new(TelemetrySink::new(K));
    let mut plain = Backend::CompiledSeq.build_with(&plan, 1, format);
    let mut obs = Backend::CompiledSeq.build_obs(&plan, 1, format, Some(Arc::clone(&sink)));
    let mut y = vec![0.0; a.nrows()];
    plain.apply(&x, &mut y); // warm
    obs.apply(&x, &mut y);
    let off = best_of(3, 20, || plain.apply(&x, &mut y));
    let on = best_of(3, 20, || obs.apply(&x, &mut y));
    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!("--------------------------------------------------------------");
    println!(
        "telemetry acceptance {}/k{K}: off {:.3} ms/iter, on {:.3} ms/iter, overhead {:+.2}%",
        rmat_label(),
        off.as_secs_f64() * 1e3,
        on.as_secs_f64() * 1e3,
        overhead * 100.0
    );
    let cap = if fast_mode() { 0.25 } else { 0.05 };
    assert!(
        overhead < cap,
        "telemetry overhead must stay under {:.0}%/iter (got {:+.2}%)",
        cap * 100.0,
        overhead * 100.0
    );
    println!("--------------------------------------------------------------");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suite, bench_rmat14, bench_batched, bench_formats, acceptance_summary,
        batched_acceptance_summary, format_acceptance_summary, telemetry_acceptance_summary
}
criterion_main!(benches);
