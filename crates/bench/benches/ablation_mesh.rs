//! Ablation: s2D-b's intermediate aggregation.
//!
//! Two-hop mesh routing doubles raw volume; the design recovers much of
//! it by (a) sending an `x_j` needed by several processors in one mesh
//! row across phase 1 once, and (b) summing partial `ȳ_i` words meeting
//! at an intermediate into one word. This harness compares the routed
//! volume with aggregation (the shipped `MeshRouting`) against a naive
//! router forwarding every requirement independently.

use s2d_baselines::partition_1d_rowwise;
use s2d_bench::{fmt_e, fmt_ratio};
use s2d_core::comm::comm_requirements;
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_core::mesh::{mesh_dims, MeshRouting};
use s2d_gen::{suite_b, Scale};

fn main() {
    s2d_bench::banner(
        "Ablation: mesh aggregation",
        "s2D-b with and without intermediate aggregation",
    );
    let scale = Scale::from_env();
    let k = 256;
    let (pr, pc) = mesh_dims(k);

    println!(
        "\n{:<12} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
        "name", "direct", "agg", "naive", "agg/dir", "nai/dir"
    );
    for spec in suite_b() {
        let a = spec.generate(scale, 1);
        let oned = partition_1d_rowwise(&a, k, 0.03, 1);
        let s2d = s2d_from_vector_partition(
            &a,
            &oned.row_part,
            &oned.col_part,
            &HeuristicConfig::default(),
        );
        let reqs = comm_requirements(&a, &s2d);
        let direct = reqs.total_volume();

        let routed = MeshRouting::build(k, pr, pc, &reqs);
        let agg = routed.stats(k).total_volume;

        // Naive two-hop router: every requirement travels 1 word per hop,
        // no dedup, no aggregation.
        let row = |p: u32| p / pc as u32;
        let col = |p: u32| p % pc as u32;
        let naive: u64 = reqs
            .x_reqs
            .iter()
            .chain(&reqs.y_reqs)
            .map(|&(src, dst, _)| {
                let mid = row(dst) * pc as u32 + col(src);
                1 + u64::from(mid != src && mid != dst)
            })
            .sum();

        println!(
            "{:<12} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
            spec.name,
            fmt_e(direct as f64),
            fmt_e(agg as f64),
            fmt_e(naive as f64),
            fmt_ratio(agg as f64, direct as f64),
            fmt_ratio(naive as f64, direct as f64),
        );
        assert!(agg <= naive, "aggregation can only reduce routed volume");
    }
    println!("\nExpected shape: naive routing costs close to 2x the direct volume;");
    println!("aggregation pulls the routed volume well below that, and on matrices");
    println!("with popular x entries / hot y rows it approaches 1x.");
}
