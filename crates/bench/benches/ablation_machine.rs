//! Ablation: does the Table II method ranking survive the machine model?
//!
//! The headline speedups come from the flat α–β–γ model. Here the same
//! three plans (1D, 2D fine-grain, s2D) are priced under three machines —
//! flat α–β–γ, a Gemini-like 3D torus with per-hop latency, and a
//! simplified LogGP charging overhead on both endpoints — and the winner
//! per matrix is reported for each. If the s2D advantage were a modelling
//! artifact, it would flip somewhere in this table.

use s2d_baselines::{partition_1d_rowwise, partition_2d_fine_grain};
use s2d_core::heuristic::{s2d_from_vector_partition, HeuristicConfig};
use s2d_gen::{suite_a, Scale};
use s2d_sim::{simulate_loggp, simulate_on_torus, LogGpModel, MachineModel, TorusModel};
use s2d_spmv::{simulate_plan, to_phase_specs, SpmvPlan};

fn main() {
    s2d_bench::banner("Ablation: machine model", "alpha-beta vs torus vs LogGP rankings");
    let scale = Scale::from_env();
    let k = 64;

    println!(
        "\n{:<12} | {:>6} {:>6} {:>6} w | {:>6} {:>6} {:>6} w | {:>6} {:>6} {:>6} w",
        "name", "ab-1D", "ab-2D", "ab-s2D", "to-1D", "to-2D", "to-s2D", "lg-1D", "lg-2D", "lg-s2D"
    );
    let mut wins = [[0u32; 3]; 3]; // [model][method]
    for spec in suite_a() {
        let a = spec.generate(scale, 1);
        let oned = partition_1d_rowwise(&a, k, 0.03, 1);
        let two_d = partition_2d_fine_grain(&a, k, 0.03, 1);
        let s2d = s2d_from_vector_partition(
            &a,
            &oned.row_part,
            &oned.col_part,
            &HeuristicConfig::default(),
        );
        let plans = [
            SpmvPlan::single_phase(&a, &oned.partition),
            SpmvPlan::two_phase(&a, &two_d),
            SpmvPlan::single_phase(&a, &s2d),
        ];

        let flat = MachineModel::cray_xe6();
        let torus = TorusModel::xe6_for(k);
        let lg = LogGpModel::cray_xe6();
        let mut row = String::new();
        for (mi, speeds) in [
            plans.iter().map(|p| simulate_plan(p, &flat).speedup()).collect::<Vec<_>>(),
            plans
                .iter()
                .map(|p| simulate_on_torus(k, &to_phase_specs(p), p.total_ops(), &torus).speedup())
                .collect::<Vec<_>>(),
            plans
                .iter()
                .map(|p| simulate_loggp(k, &to_phase_specs(p), p.total_ops(), &lg).speedup())
                .collect::<Vec<_>>(),
        ]
        .into_iter()
        .enumerate()
        {
            let best = (0..3).max_by(|&x, &y| speeds[x].total_cmp(&speeds[y])).expect("3 methods");
            wins[mi][best] += 1;
            row.push_str(&format!(
                "| {:>6.1} {:>6.1} {:>6.1} {} ",
                speeds[0],
                speeds[1],
                speeds[2],
                ["1", "2", "s"][best]
            ));
        }
        println!("{:<12} {row}", spec.name);
    }
    println!("\nwins per model (1D / 2D / s2D):");
    for (mi, name) in ["alpha-beta", "torus", "LogGP"].iter().enumerate() {
        println!("  {name:<10} {} / {} / {}", wins[mi][0], wins[mi][1], wins[mi][2]);
    }
    println!("\nExpected shape: s2D wins the majority column under every model;");
    println!("the torus and LogGP columns shift absolute speedups but not the");
    println!("ordering the paper reports.");
}
