//! Chaos smoke test: the delivery-delay fault hooks
//! (`Cluster::with_chaos` + `ChaosConfig`) driven through the public
//! collectives. Injected delays reorder deliveries between senders but
//! must never change any computed value — the runtime's matching
//! (per-sender FIFO + tag matching) carries all the determinism.

use s2d_runtime::collectives::{allreduce_scalar, alltoall, barrier, broadcast, gather};
use s2d_runtime::{spmd, ChaosConfig, Cluster, SUM};

const K: usize = 5;

/// Runs one mixed collective workload (the shapes the solver stack
/// leans on) and returns each rank's observable result.
fn workload(chaos: ChaosConfig) -> Vec<(Vec<u64>, u64)> {
    spmd(Cluster::<Vec<u64>>::with_chaos(K, chaos), |ep| {
        let me = u64::from(ep.rank());
        // All-to-all: rank r sends [r*10 + dst] to each dst.
        let parts: Vec<Vec<u64>> = (0..K as u64).map(|dst| vec![me * 10 + dst]).collect();
        let got = alltoall(ep, 1, parts);
        let flat: Vec<u64> = got.into_iter().flatten().collect();
        barrier(ep, 2);
        // Gather to rank 0, then broadcast the sum back out.
        let at_root = gather(ep, 0, 3, vec![me * me]);
        let total = at_root.map(|rows| rows.into_iter().flatten().sum::<u64>());
        let total = broadcast(ep, 0, 4, total.map(|t| vec![t]))[0];
        (flat, total)
    })
}

#[test]
fn chaotic_collectives_match_the_quiet_run() {
    let quiet = workload(ChaosConfig::off());
    // Two chaotic seeds: different interleavings, same observables.
    for seed in [3, 11] {
        let noisy = workload(ChaosConfig::with_delays(120, seed));
        assert_eq!(noisy, quiet, "seed {seed} changed a collective result");
    }
    // Spot-check the quiet run itself.
    let want_total: u64 = (0..K as u64).map(|r| r * r).sum();
    for (rk, (flat, total)) in quiet.iter().enumerate() {
        assert_eq!(*total, want_total, "rank {rk}");
        let want: Vec<u64> = (0..K as u64).map(|src| src * 10 + rk as u64).collect();
        assert_eq!(flat, &want, "rank {rk} alltoall row");
    }
}

#[test]
fn chaotic_allreduce_is_bitwise_deterministic() {
    // The solver's reductions must be reproducible run to run even
    // when message arrival order is scrambled: allreduce combines in
    // rank order by construction, so floating-point sums are bitwise
    // stable. Run the same chaotic config twice and an undelayed one.
    let run = |chaos: ChaosConfig| {
        spmd(Cluster::<Vec<f64>>::with_chaos(K, chaos), |ep| {
            let mine = 0.1 * (f64::from(ep.rank()) + 1.0);
            let s1 = allreduce_scalar(ep, 7, mine, SUM);
            // A second round seeded by the first catches cross-round
            // tag confusion under delay.
            allreduce_scalar(ep, 9, s1 * mine, SUM)
        })
    };
    let a = run(ChaosConfig::with_delays(90, 42));
    let b = run(ChaosConfig::with_delays(90, 42));
    let quiet = run(ChaosConfig::off());
    assert_eq!(a, b, "same chaos seed must reproduce bitwise");
    assert_eq!(a, quiet, "delays must not change reduction values");
    assert!(a.windows(2).all(|w| w[0] == w[1]), "ranks disagree on the allreduce");
}
