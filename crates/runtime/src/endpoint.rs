//! The per-rank communication handle.
//!
//! An [`Endpoint`] is one rank's view of the interconnect: senders to
//! every peer and a single inbox. Receives match on `(source, tag)` like
//! MPI envelopes; messages that arrive before they are asked for are
//! parked in a pending buffer, so programs may post receives in any order
//! relative to actual arrival.

use std::collections::VecDeque;

use crossbeam::channel::{Receiver, Sender};

use crate::chaos::ChaosConfig;

/// Message tag, used to separate logical streams (phases, iterations).
pub type Tag = u32;

/// Wildcard source for [`Endpoint::recv_match`]: accept any sender.
pub const ANY_SOURCE: u32 = u32::MAX;

/// A delivered message with its envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<T> {
    /// Sending rank.
    pub src: u32,
    /// Logical stream tag.
    pub tag: Tag,
    /// The payload.
    pub payload: T,
}

/// Traffic counters of one endpoint — inspected after an SPMD run to
/// cross-check analytic communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Messages sent by this rank.
    pub sent_msgs: u64,
    /// Payload words sent (as reported by the payload's [`Words`] impl).
    pub sent_words: u64,
    /// Messages received by this rank.
    pub recv_msgs: u64,
    /// Payload words received.
    pub recv_words: u64,
}

/// Payloads that know their size in machine words, for traffic
/// accounting. A "word" is one 8-byte value, matching the paper's
/// communication-volume unit (one vector entry).
pub trait Words {
    /// Size of the payload in 8-byte words.
    fn words(&self) -> u64;
}

/// One word per entry — the paper's convention: a communicated vector
/// entry costs a single word, and the index accompanying it is folded
/// into that unit rather than billed separately.
impl Words for Vec<f64> {
    fn words(&self) -> u64 {
        self.len() as u64
    }
}

impl Words for Vec<u64> {
    fn words(&self) -> u64 {
        self.len() as u64
    }
}

impl Words for f64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Words for u64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Words for () {
    fn words(&self) -> u64 {
        0
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words()
    }
}

/// Indexed payloads: one word for each `u32` index plus whatever the
/// payload itself reports. (`Vec<(u32, f64)>` thus counts 2 words per
/// element — explicit index streams are billed, unlike the implicit
/// index of the plain `Vec<f64>` convention above.)
impl<T: Words> Words for Vec<(u32, T)> {
    fn words(&self) -> u64 {
        self.len() as u64 + self.iter().map(|(_, p)| p.words()).sum::<u64>()
    }
}

/// One rank's communication handle. `T` is the payload type; all ranks
/// of a cluster share it.
pub struct Endpoint<T> {
    rank: u32,
    size: usize,
    peers: Vec<Sender<Envelope<T>>>,
    inbox: Receiver<Envelope<T>>,
    pending: VecDeque<Envelope<T>>,
    stats: EndpointStats,
    chaos: ChaosConfig,
}

impl<T: Words> Endpoint<T> {
    /// Assembles an endpoint from its parts (used by [`crate::cluster`]).
    pub(crate) fn new(
        rank: u32,
        peers: Vec<Sender<Envelope<T>>>,
        inbox: Receiver<Envelope<T>>,
        chaos: ChaosConfig,
    ) -> Self {
        let size = peers.len();
        Endpoint {
            rank,
            size,
            peers,
            inbox,
            pending: VecDeque::new(),
            stats: EndpointStats::default(),
            chaos,
        }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// Sends `payload` to `dst` under `tag`. Sends are buffered and never
    /// block. Self-sends are legal and delivered through the same inbox.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped mid-run (an SPMD harness bug, not a recoverable error).
    pub fn send(&mut self, dst: u32, tag: Tag, payload: T) {
        assert!((dst as usize) < self.size, "destination rank {dst} out of range");
        self.chaos.maybe_delay(self.rank, dst, tag);
        self.stats.sent_msgs += 1;
        self.stats.sent_words += payload.words();
        self.peers[dst as usize]
            .send(Envelope { src: self.rank, tag, payload })
            .expect("peer endpoint alive for the whole SPMD region");
    }

    /// Receives the next message regardless of source or tag, in arrival
    /// order (pending buffer first).
    pub fn recv_any(&mut self) -> Envelope<T> {
        let env = if let Some(env) = self.pending.pop_front() {
            env
        } else {
            self.inbox.recv().expect("senders alive for the whole SPMD region")
        };
        self.stats.recv_msgs += 1;
        self.stats.recv_words += env.payload.words();
        env
    }

    /// Receives the next message matching `(src, tag)`; `src` may be
    /// [`ANY_SOURCE`]. Non-matching arrivals are parked and later receives
    /// see them, so matching is insensitive to delivery interleaving.
    pub fn recv_match(&mut self, src: u32, tag: Tag) -> Envelope<T> {
        let matches = |env: &Envelope<T>| (src == ANY_SOURCE || env.src == src) && env.tag == tag;
        if let Some(pos) = self.pending.iter().position(matches) {
            let env = self.pending.remove(pos).expect("position valid");
            self.stats.recv_msgs += 1;
            self.stats.recv_words += env.payload.words();
            return env;
        }
        loop {
            let env = self.inbox.recv().expect("senders alive for the whole SPMD region");
            if matches(&env) {
                self.stats.recv_msgs += 1;
                self.stats.recv_words += env.payload.words();
                return env;
            }
            self.pending.push_back(env);
        }
    }

    /// Receives a message with `tag` from any source.
    pub fn recv_tag(&mut self, tag: Tag) -> Envelope<T> {
        self.recv_match(ANY_SOURCE, tag)
    }

    /// True if no unconsumed message is parked in the pending buffer.
    /// SPMD programs should end drained; tests assert this.
    pub fn drained(&self) -> bool {
        self.pending.is_empty() && self.inbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{spmd, Cluster};

    #[test]
    fn envelope_matching_survives_reordering() {
        // Rank 0 sends tags 7 then 3; rank 1 receives tag 3 first.
        let out = spmd(Cluster::<Vec<f64>>::new(2), |ep| {
            if ep.rank() == 0 {
                ep.send(1, 7, vec![7.0]);
                ep.send(1, 3, vec![3.0]);
                Vec::new()
            } else {
                let a = ep.recv_match(0, 3).payload;
                let b = ep.recv_match(0, 7).payload;
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![3.0, 7.0]);
        assert!(out[0].is_empty());
    }

    #[test]
    fn self_send_is_delivered() {
        let out = spmd(Cluster::<f64>::new(1), |ep| {
            ep.send(0, 0, 42.0);
            ep.recv_tag(0).payload
        });
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    fn any_source_accepts_first_arrival() {
        let out = spmd(Cluster::<u64>::new(3), |ep| {
            if ep.rank() != 2 {
                ep.send(2, 1, ep.rank() as u64);
                0
            } else {
                let a = ep.recv_tag(1);
                let b = ep.recv_tag(1);
                assert_ne!(a.src, b.src);
                a.payload + b.payload
            }
        });
        assert_eq!(out[2], 1);
    }

    #[test]
    fn stats_count_messages_and_words() {
        let out = spmd(Cluster::<Vec<f64>>::new(2), |ep| {
            if ep.rank() == 0 {
                ep.send(1, 0, vec![1.0, 2.0, 3.0]);
            } else {
                let _ = ep.recv_tag(0);
            }
            ep.stats()
        });
        assert_eq!(out[0].sent_msgs, 1);
        assert_eq!(out[0].sent_words, 3);
        assert_eq!(out[1].recv_msgs, 1);
        assert_eq!(out[1].recv_words, 3);
    }

    #[test]
    fn indexed_payloads_count_index_and_payload_words() {
        use super::Words;
        // (index, scalar): 1 index word + 1 payload word per element.
        assert_eq!(vec![(3u32, 1.5f64), (7, 2.5)].words(), 4);
        // (index, vector): 1 index word + len payload words per element.
        assert_eq!(vec![(0u32, vec![1.0f64, 2.0, 3.0])].words(), 4);
        let out = spmd(Cluster::<Vec<(u32, f64)>>::new(2), |ep| {
            if ep.rank() == 0 {
                ep.send(1, 0, vec![(4, 1.0), (9, 2.0), (2, 3.0)]);
            } else {
                let _ = ep.recv_tag(0);
            }
            ep.stats()
        });
        assert_eq!(out[0].sent_words, 6);
        assert_eq!(out[1].recv_words, 6);
    }

    #[test]
    fn endpoints_end_drained() {
        let out = spmd(Cluster::<u64>::new(2), |ep| {
            let peer = 1 - ep.rank();
            ep.send(peer, 0, 5);
            let _ = ep.recv_tag(0);
            ep.drained()
        });
        assert_eq!(out, vec![true, true]);
    }
}
