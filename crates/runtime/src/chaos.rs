//! Delivery-delay injection.
//!
//! The channels of this runtime are reliable and order-preserving per
//! sender — like MPI. What MPI does *not* promise is inter-sender
//! ordering or timely delivery, and programs that accidentally depend on
//! either pass on a quiet laptop and deadlock at scale. [`ChaosConfig`]
//! makes sends stall for a pseudorandom few microseconds so tests can
//! shake out such assumptions deterministically (the delays derive from a
//! seed, the rank pair and the tag, not from wall-clock state).

/// Configuration of delivery-delay injection.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Maximum injected delay in microseconds; 0 disables injection.
    pub max_delay_us: u32,
    /// Seed feeding the per-message delay hash.
    pub seed: u64,
    /// Rank this config was specialized for (set by the cluster).
    rank_salt: u64,
}

impl ChaosConfig {
    /// No injection (the default for production clusters).
    pub fn off() -> Self {
        ChaosConfig { max_delay_us: 0, seed: 0, rank_salt: 0 }
    }

    /// Injection with delays uniform in `0..=max_delay_us` µs.
    pub fn with_delays(max_delay_us: u32, seed: u64) -> Self {
        ChaosConfig { max_delay_us, seed, rank_salt: 0 }
    }

    /// Specializes the config for one rank (salts the hash so ranks
    /// do not delay in lockstep).
    pub(crate) fn for_rank(mut self, rank: u32) -> Self {
        self.rank_salt = 0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(rank) + 1);
        self
    }

    /// True if injection is active.
    pub fn enabled(&self) -> bool {
        self.max_delay_us > 0
    }

    /// The injected delay, in microseconds, for a send of
    /// `(src, dst, tag)` — a pure function of the config (seed + rank
    /// salt) and the message envelope, never of wall-clock state, so
    /// identical configs delay identically.
    pub(crate) fn delay_us(&self, src: u32, dst: u32, tag: u32) -> u64 {
        if self.max_delay_us == 0 {
            return 0;
        }
        let mut h = self.seed ^ self.rank_salt;
        for v in [u64::from(src), u64::from(dst), u64::from(tag)] {
            h ^= v.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(h << 6).wrapping_add(h >> 2);
        }
        h % (u64::from(self.max_delay_us) + 1)
    }

    /// Possibly sleeps before a send of `(src, dst, tag)`.
    pub(crate) fn maybe_delay(&self, src: u32, dst: u32, tag: u32) {
        let us = self.delay_us(src, dst, tag);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{spmd, Cluster};

    #[test]
    fn off_config_is_disabled() {
        assert!(!ChaosConfig::off().enabled());
        assert!(ChaosConfig::with_delays(5, 1).enabled());
    }

    #[test]
    fn chaotic_delivery_preserves_matching() {
        // An all-to-all under chaos: every rank receives exactly one
        // message per peer per tag, whatever the delivery interleaving.
        let k = 4;
        let out = spmd(Cluster::<u64>::with_chaos(k, ChaosConfig::with_delays(50, 7)), |ep| {
            let me = ep.rank();
            for t in 0..3u32 {
                for dst in 0..k as u32 {
                    if dst != me {
                        ep.send(dst, t, u64::from(me * 100 + t));
                    }
                }
            }
            let mut sum = 0u64;
            // Receive in the *reverse* tag order to force buffering.
            for t in (0..3u32).rev() {
                for src in 0..k as u32 {
                    if src != me {
                        let env = ep.recv_match(src, t);
                        assert_eq!(env.payload, u64::from(src * 100 + t));
                        sum += env.payload;
                    }
                }
            }
            sum
        });
        // Each rank's sum is the total over all (src, tag) payloads
        // minus its own contributions (it receives from every peer but
        // never from itself) — the actual matching property, which a
        // dropped or duplicated delivery would break.
        let total: u64 =
            (0..k as u64).map(|src| (0..3u64).map(|t| src * 100 + t).sum::<u64>()).sum();
        for (me, &sum) in out.iter().enumerate() {
            let own: u64 = (0..3u64).map(|t| me as u64 * 100 + t).sum();
            assert_eq!(sum, total - own, "rank {me} received a wrong payload multiset");
        }
    }

    #[test]
    fn delays_are_deterministic_in_seed() {
        let a = ChaosConfig::with_delays(100, 3).for_rank(1);
        let b = ChaosConfig::with_delays(100, 3).for_rank(1);
        // Same seed and rank → the *computed delays* agree for every
        // envelope, which is what makes chaotic runs reproducible.
        let mut nonzero = 0u32;
        for src in 0..4u32 {
            for dst in 0..4u32 {
                for tag in 0..8u32 {
                    let d = a.delay_us(src, dst, tag);
                    assert_eq!(d, b.delay_us(src, dst, tag), "({src},{dst},{tag})");
                    assert!(d <= 100, "delay exceeds max_delay_us");
                    nonzero += u32::from(d > 0);
                }
            }
        }
        assert!(nonzero > 0, "a 100us-max config must inject some delays");
        // A different seed or a different rank salt produces a
        // different delay schedule somewhere.
        let other_seed = ChaosConfig::with_delays(100, 4).for_rank(1);
        let other_rank = ChaosConfig::with_delays(100, 3).for_rank(2);
        let differs = |c: &ChaosConfig| {
            (0..4u32).any(|src| {
                (0..4u32).any(|dst| {
                    (0..8u32).any(|tag| c.delay_us(src, dst, tag) != a.delay_us(src, dst, tag))
                })
            })
        };
        assert!(differs(&other_seed), "seed must enter the delay hash");
        assert!(differs(&other_rank), "rank salt must enter the delay hash");
    }
}
