//! Process topologies: 2D meshes for the bounded-latency partitionings
//! and a 3D torus modelling the Cray XE6 Gemini interconnect.
//!
//! The s2D-b / 2D-b / 1D-b methods (paper §VI-B) place the `K` processors
//! on a `Pr × Pc` mesh and confine traffic to mesh rows and columns;
//! [`Mesh2d`] provides the rank ↔ coordinate maps they share. The
//! [`Torus3d`] hop metric feeds the topology-aware variant of the
//! `s2d-sim` cost model (an XE6 ablation, not used by the headline
//! tables).

/// A `Pr × Pc` process mesh with row-major rank numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh2d {
    /// Number of mesh rows.
    pub pr: usize,
    /// Number of mesh columns.
    pub pc: usize,
}

impl Mesh2d {
    /// Builds a mesh; `pr·pc` is the processor count.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0, "mesh dimensions must be positive");
        Mesh2d { pr, pc }
    }

    /// The most-square mesh for `k` processors: `pr` is the largest
    /// divisor of `k` with `pr ≤ √k`, so `pr·pc = k` exactly.
    pub fn squarest(k: usize) -> Self {
        assert!(k > 0, "mesh needs at least one processor");
        // `sqrt` on a large u64 can round either way; correct the float
        // estimate by integer search so `pr` starts at the true ⌊√k⌋.
        let sq = |v: usize| v as u128 * v as u128;
        let mut pr = ((k as f64).sqrt().floor() as usize).max(1);
        while pr > 1 && sq(pr) > k as u128 {
            pr -= 1;
        }
        while sq(pr + 1) <= k as u128 {
            pr += 1;
        }
        while k % pr != 0 {
            pr -= 1;
        }
        Mesh2d { pr, pc: k / pr }
    }

    /// Total processors on the mesh.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Mesh row of `rank`.
    pub fn row(&self, rank: u32) -> u32 {
        debug_assert!((rank as usize) < self.size());
        rank / self.pc as u32
    }

    /// Mesh column of `rank`.
    pub fn col(&self, rank: u32) -> u32 {
        debug_assert!((rank as usize) < self.size());
        rank % self.pc as u32
    }

    /// Rank at mesh coordinates `(r, c)`.
    pub fn rank(&self, r: u32, c: u32) -> u32 {
        debug_assert!((r as usize) < self.pr && (c as usize) < self.pc);
        r * self.pc as u32 + c
    }

    /// The intermediate rank that routes traffic `src → dst` in the
    /// two-hop row/column scheme of Boman et al. \[2\]: the processor on
    /// `dst`'s mesh row and `src`'s mesh column.
    pub fn via(&self, src: u32, dst: u32) -> u32 {
        self.rank(self.row(dst), self.col(src))
    }

    /// Ranks sharing `rank`'s mesh row (including itself).
    pub fn row_members(&self, rank: u32) -> impl Iterator<Item = u32> + '_ {
        let r = self.row(rank);
        (0..self.pc as u32).map(move |c| self.rank(r, c))
    }

    /// Ranks sharing `rank`'s mesh column (including itself).
    pub fn col_members(&self, rank: u32) -> impl Iterator<Item = u32> + '_ {
        let c = self.col(rank);
        (0..self.pr as u32).map(move |r| self.rank(r, c))
    }
}

/// A 3D torus of dimensions `dx × dy × dz` — the shape of the Cray
/// Gemini network the paper's timings were taken on. Ranks map to torus
/// coordinates in row-major order; the hop count between two ranks is
/// the L1 distance with wraparound per axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus3d {
    /// Extent along x.
    pub dx: usize,
    /// Extent along y.
    pub dy: usize,
    /// Extent along z.
    pub dz: usize,
}

impl Torus3d {
    /// Builds a torus.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(dx: usize, dy: usize, dz: usize) -> Self {
        assert!(dx > 0 && dy > 0 && dz > 0, "torus dimensions must be positive");
        Torus3d { dx, dy, dz }
    }

    /// A roughly-cubic torus holding at least `k` nodes.
    pub fn cubic_for(k: usize) -> Self {
        assert!(k > 0, "torus needs at least one node");
        // `cbrt` can round below the true value on large k (making the
        // cube too small) or a full step above; integer-correct the
        // estimate to the smallest side with side³ ≥ k.
        let cube = |v: usize| v as u128 * v as u128 * v as u128;
        let mut side = ((k as f64).cbrt().ceil() as usize).max(1);
        while cube(side) < k as u128 {
            side += 1;
        }
        while side > 1 && cube(side - 1) >= k as u128 {
            side -= 1;
        }
        let mut t = Torus3d { dx: side, dy: side, dz: side };
        // Trim excess planes while capacity stays ≥ k.
        while t.dx > 1 && (t.dx - 1) * t.dy * t.dz >= k {
            t.dx -= 1;
        }
        while t.dy > 1 && t.dx * (t.dy - 1) * t.dz >= k {
            t.dy -= 1;
        }
        while t.dz > 1 && t.dx * t.dy * (t.dz - 1) >= k {
            t.dz -= 1;
        }
        t
    }

    /// Node count.
    pub fn size(&self) -> usize {
        self.dx * self.dy * self.dz
    }

    /// Torus coordinates of `rank`.
    pub fn coords(&self, rank: u32) -> (u32, u32, u32) {
        debug_assert!((rank as usize) < self.size());
        let r = rank as usize;
        let x = r / (self.dy * self.dz);
        let y = (r / self.dz) % self.dy;
        let z = r % self.dz;
        (x as u32, y as u32, z as u32)
    }

    /// Minimal hop count between `a` and `b` (wraparound L1 distance).
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let (ax, ay, az) = self.coords(a);
        let (bx, by, bz) = self.coords(b);
        let axis = |u: u32, v: u32, d: usize| -> u32 {
            let diff = u.abs_diff(v);
            diff.min(d as u32 - diff)
        };
        axis(ax, bx, self.dx) + axis(ay, by, self.dy) + axis(az, bz, self.dz)
    }

    /// The largest hop count between any two nodes (network diameter).
    pub fn diameter(&self) -> u32 {
        (self.dx as u32 / 2) + (self.dy as u32 / 2) + (self.dz as u32 / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_roundtrips_rank_coords() {
        let m = Mesh2d::new(3, 5);
        for rank in 0..m.size() as u32 {
            assert_eq!(m.rank(m.row(rank), m.col(rank)), rank);
        }
    }

    #[test]
    fn squarest_mesh_divides_evenly() {
        for k in [1usize, 2, 4, 6, 12, 16, 36, 256, 1024, 4096, 30] {
            let m = Mesh2d::squarest(k);
            assert_eq!(m.size(), k, "k={k}");
            assert!(m.pr <= m.pc);
        }
        // Primes degenerate to 1×k.
        assert_eq!(Mesh2d::squarest(13), Mesh2d::new(1, 13));
    }

    #[test]
    fn squarest_survives_float_rounding_at_large_k() {
        // Perfect squares large enough that `sqrt` can land a ULP off
        // the true root; the integer correction must recover it.
        for root in [94906265usize, 94906266, 1 << 31, (1 << 31) + 1] {
            let k = root * root;
            let m = Mesh2d::squarest(k);
            assert_eq!((m.pr, m.pc), (root, root), "k={k}");
        }
        // root² − 1 must not pick pr above ⌊√k⌋ and must still divide.
        let k = (1usize << 31) * (1 << 31) - 1;
        let m = Mesh2d::squarest(k);
        assert_eq!(m.pr * m.pc, k);
        assert!(m.pr <= m.pc);
    }

    #[test]
    fn via_lies_on_dst_row_and_src_col() {
        let m = Mesh2d::new(4, 4);
        for src in 0..16u32 {
            for dst in 0..16u32 {
                let via = m.via(src, dst);
                assert_eq!(m.row(via), m.row(dst));
                assert_eq!(m.col(via), m.col(src));
            }
        }
    }

    #[test]
    fn row_and_col_members_cover_the_mesh() {
        let m = Mesh2d::new(3, 4);
        let rank = m.rank(1, 2);
        let row: Vec<u32> = m.row_members(rank).collect();
        let col: Vec<u32> = m.col_members(rank).collect();
        assert_eq!(row.len(), 4);
        assert_eq!(col.len(), 3);
        assert!(row.contains(&rank) && col.contains(&rank));
        // A row and a column intersect exactly once.
        let common: Vec<&u32> = row.iter().filter(|r| col.contains(r)).collect();
        assert_eq!(common, vec![&rank]);
    }

    #[test]
    fn torus_hops_wrap_around() {
        let t = Torus3d::new(4, 4, 4);
        // (0,0,0) to (3,0,0): wraparound makes it 1 hop, not 3.
        let a = 0u32;
        let b = t.coords_to_rank(3, 0, 0);
        assert_eq!(t.hops(a, b), 1);
        assert_eq!(t.hops(a, a), 0);
        // Symmetry.
        for x in 0..t.size() as u32 {
            assert_eq!(t.hops(a, x), t.hops(x, a));
        }
    }

    #[test]
    fn torus_diameter_bounds_hops() {
        let t = Torus3d::new(3, 4, 5);
        let d = t.diameter();
        for a in 0..t.size() as u32 {
            for b in 0..t.size() as u32 {
                assert!(t.hops(a, b) <= d);
            }
        }
    }

    #[test]
    fn cubic_for_covers_k() {
        for k in [1usize, 7, 16, 64, 100, 256, 1000] {
            let t = Torus3d::cubic_for(k);
            assert!(t.size() >= k, "k={k} got {}", t.size());
        }
    }

    #[test]
    fn cubic_for_survives_float_rounding_at_large_k() {
        // Perfect cubes where `cbrt` may round a ULP under the true
        // root (ceil then yields a side one too small) — the integer
        // correction must restore coverage and exactness.
        for side in [1_442_249usize, 2_097_152, 2_642_245] {
            let k = side * side * side;
            let t = Torus3d::cubic_for(k);
            assert!(t.size() >= k, "side={side}: {} < {k}", t.size());
            assert_eq!((t.dx, t.dy, t.dz), (side, side, side), "side={side}");
        }
        // side³ + 1 needs the next side up on at least one axis.
        let k = 1000usize * 1000 * 1000 + 1;
        let t = Torus3d::cubic_for(k);
        assert!(t.size() >= k);
        assert!(t.dx <= 1001 && t.dy <= 1001 && t.dz <= 1001);
    }
}

#[cfg(test)]
impl Torus3d {
    /// Test helper: rank at coordinates.
    fn coords_to_rank(&self, x: u32, y: u32, z: u32) -> u32 {
        (x as usize * self.dy * self.dz + y as usize * self.dz + z as usize) as u32
    }
}
