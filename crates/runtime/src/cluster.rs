//! Cluster construction and the scoped SPMD driver.
//!
//! A [`Cluster`] wires `K` [`Endpoint`]s into a fully-connected group.
//! [`spmd`] runs one closure per rank on its own OS thread — the shape
//! of an MPI program (`mpirun -np K`) without the process boundary.

use crate::chaos::ChaosConfig;
use crate::endpoint::{Endpoint, Envelope, Words};

/// A fully-connected group of `K` endpoints, ready to be claimed by
/// worker threads.
pub struct Cluster<T> {
    endpoints: Vec<Endpoint<T>>,
}

impl<T: Words> Cluster<T> {
    /// Builds a cluster of `k` ranks with default (no-chaos) delivery.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self::with_chaos(k, ChaosConfig::off())
    }

    /// Builds a cluster whose sends pass through `chaos` (delivery-delay
    /// injection; see [`crate::chaos`]).
    pub fn with_chaos(k: usize, chaos: ChaosConfig) -> Self {
        assert!(k > 0, "a cluster needs at least one rank");
        let mut txs = Vec::with_capacity(k);
        let mut rxs = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = crossbeam::channel::unbounded::<Envelope<T>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                Endpoint::new(rank as u32, txs.clone(), inbox, chaos.for_rank(rank as u32))
            })
            .collect();
        Cluster { endpoints }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.endpoints.len()
    }

    /// Consumes the cluster into its endpoints (rank order).
    pub fn into_endpoints(self) -> Vec<Endpoint<T>> {
        self.endpoints
    }
}

/// Runs `body` once per rank, each on its own thread, and returns the
/// per-rank results in rank order. Panics in any rank propagate.
///
/// This is the SPMD entry point every parallel algorithm in this
/// workspace is written against; porting to MPI means replacing this
/// driver with `MPI_Init` and the endpoint with the real communicator.
pub fn spmd<T, R, F>(cluster: Cluster<T>, body: F) -> Vec<R>
where
    T: Words + Send,
    R: Send,
    F: Fn(&mut Endpoint<T>) -> R + Sync,
{
    let mut results: Vec<Option<R>> = Vec::new();
    for _ in 0..cluster.size() {
        results.push(None);
    }
    std::thread::scope(|scope| {
        let body = &body;
        let mut handles = Vec::with_capacity(cluster.size());
        for mut ep in cluster.into_endpoints() {
            handles.push(scope.spawn(move || {
                let r = body(&mut ep);
                // Endpoints must survive until every rank stops sending;
                // returning (r, ep) keeps the senders alive through join.
                (r, ep)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            let (r, _ep) = h.join().expect("SPMD rank panicked");
            results[rank] = Some(r);
        }
    });
    results.into_iter().map(|r| r.expect("every rank returns")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_dense_and_ordered() {
        let out = spmd(Cluster::<()>::new(5), |ep| (ep.rank(), ep.size()));
        assert_eq!(out, (0..5).map(|r| (r, 5)).collect::<Vec<_>>());
    }

    #[test]
    fn ring_pass_accumulates() {
        // Each rank adds its id and forwards around the ring.
        let k = 6u64;
        let out = spmd(Cluster::<u64>::new(k as usize), |ep| {
            let rank = ep.rank() as u64;
            let next = ((rank + 1) % k) as u32;
            if rank == 0 {
                // Head of the line: inject the token and return.
                ep.send(next, 0, 0);
                return 0;
            }
            let v = ep.recv_tag(0).payload + rank;
            if rank != k - 1 {
                ep.send(next, 0, v);
            }
            v
        });
        assert_eq!(out[k as usize - 1], (0..k).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_cluster_is_rejected() {
        let _ = Cluster::<()>::new(0);
    }

    #[test]
    fn single_rank_cluster_runs() {
        let out = spmd(Cluster::<()>::new(1), |ep| ep.size());
        assert_eq!(out, vec![1]);
    }
}
