//! Collectives built from point-to-point messages.
//!
//! The SpMV kernels only need sends and receives, but the iterative
//! solvers on top of them (`s2d-solver`) need global reductions for dot
//! products and norms, and the harnesses need barriers and gathers. All
//! collectives here are **bulk-synchronous**: every rank of the cluster
//! must call the same collective with the same `tag`; per-sender FIFO
//! delivery then makes repeated calls with the same tag unambiguous.
//!
//! Algorithms: reductions and broadcasts run on binomial trees
//! (`⌈log₂K⌉` rounds, the textbook MPI implementation); the barrier uses
//! the dissemination algorithm; gather and all-to-all are direct.

use crate::endpoint::{Endpoint, Tag, Words};

/// A binary reduction operator over element type `E`.
pub trait ReduceOp<E>: Copy {
    /// Combines two elements.
    fn combine(&self, a: E, b: E) -> E;
}

/// Elementwise sum.
#[derive(Clone, Copy, Debug)]
pub struct Sum;
/// Elementwise maximum.
#[derive(Clone, Copy, Debug)]
pub struct Max;
/// Elementwise minimum.
#[derive(Clone, Copy, Debug)]
pub struct Min;

/// The sum operator.
pub const SUM: Sum = Sum;
/// The max operator.
pub const MAX: Max = Max;
/// The min operator.
pub const MIN: Min = Min;

impl ReduceOp<f64> for Sum {
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

impl ReduceOp<f64> for Max {
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

impl ReduceOp<f64> for Min {
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

impl ReduceOp<u64> for Sum {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

impl ReduceOp<u64> for Max {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

impl ReduceOp<u64> for Min {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Applies `op` elementwise to equal-length vectors.
pub fn combine_vec<E, O: ReduceOp<E>>(op: O, a: Vec<E>, b: Vec<E>) -> Vec<E> {
    assert_eq!(a.len(), b.len(), "reduction vectors must have equal length");
    a.into_iter().zip(b).map(|(x, y)| op.combine(x, y)).collect()
}

/// Dissemination barrier: returns only after every rank has entered.
///
/// `⌈log₂K⌉` rounds; in round `r` each rank signals `rank + 2^r (mod K)`
/// and waits for `rank − 2^r (mod K)`.
pub fn barrier<T: Words + Default>(ep: &mut Endpoint<T>, tag: Tag) {
    let k = ep.size() as u32;
    let me = ep.rank();
    let mut step = 1u32;
    while step < k {
        let to = (me + step) % k;
        let from = (me + k - step) % k;
        ep.send(to, tag, T::default());
        let _ = ep.recv_match(from, tag);
        step <<= 1;
    }
}

/// Binomial-tree reduction of `value` onto `root`. Returns `Some(total)`
/// on `root`, `None` elsewhere. `combine` must be associative (the tree
/// fixes the association order; commutativity is not required because
/// children combine in rank order).
pub fn reduce<T, F>(ep: &mut Endpoint<T>, root: u32, tag: Tag, value: T, combine: F) -> Option<T>
where
    T: Words,
    F: Fn(T, T) -> T,
{
    let k = ep.size() as u32;
    assert!(root < k, "root rank out of range");
    // Rotate so the tree is rooted at 0.
    let vrank = (ep.rank() + k - root) % k;
    let mut acc = value;
    let mut step = 1u32;
    while step < k {
        if vrank & step != 0 {
            // Send to the parent and leave the tree.
            let parent = ((vrank - step) + root) % k;
            ep.send(parent, tag, acc);
            return None;
        }
        let child_v = vrank + step;
        if child_v < k {
            let child = (child_v + root) % k;
            let env = ep.recv_match(child, tag);
            acc = combine(acc, env.payload);
        }
        step <<= 1;
    }
    Some(acc)
}

/// Binomial-tree broadcast from `root`. On `root`, `value` must be
/// `Some`; every rank returns the broadcast value.
pub fn broadcast<T>(ep: &mut Endpoint<T>, root: u32, tag: Tag, value: Option<T>) -> T
where
    T: Words + Clone,
{
    let k = ep.size() as u32;
    assert!(root < k, "root rank out of range");
    let vrank = (ep.rank() + k - root) % k;
    // Receive phase: a non-root rank is reached by its parent
    // `vrank − lowbit(vrank)`; the root skips straight to sending.
    let mut mask = 1u32;
    let val: T = if vrank == 0 {
        while mask < k {
            mask <<= 1;
        }
        value.expect("broadcast root must supply the value")
    } else {
        while vrank & mask == 0 {
            mask <<= 1;
        }
        let parent = ((vrank - mask) + root) % k;
        ep.recv_match(parent, tag).payload
    };
    // Send phase: forward to `vrank + m` for every m below our receive
    // mask, largest subtree first.
    let mut m = mask >> 1;
    while m >= 1 {
        let child_v = vrank + m;
        if child_v < k {
            let child = (child_v + root) % k;
            ep.send(child, tag, val.clone());
        }
        if m == 1 {
            break;
        }
        m >>= 1;
    }
    val
}

/// Reduce-then-broadcast allreduce: every rank returns the combined
/// value.
pub fn allreduce<T, F>(ep: &mut Endpoint<T>, tag: Tag, value: T, combine: F) -> T
where
    T: Words + Clone,
    F: Fn(T, T) -> T,
{
    let total = reduce(ep, 0, tag, value, combine);
    broadcast(ep, 0, tag.wrapping_add(1), total)
}

/// Allreduce of a scalar `f64` under `op` — the solver's dot-product
/// primitive.
pub fn allreduce_scalar<O: ReduceOp<f64>>(
    ep: &mut Endpoint<Vec<f64>>,
    tag: Tag,
    v: f64,
    op: O,
) -> f64 {
    let out = allreduce(ep, tag, vec![v], |a, b| combine_vec(op, a, b));
    out[0]
}

/// Direct gather: every rank's `value` arrives at `root`, which returns
/// them in rank order; other ranks return `None`.
pub fn gather<T: Words>(ep: &mut Endpoint<T>, root: u32, tag: Tag, value: T) -> Option<Vec<T>> {
    let k = ep.size() as u32;
    assert!(root < k, "root rank out of range");
    if ep.rank() != root {
        ep.send(root, tag, value);
        return None;
    }
    let mut slots: Vec<Option<T>> = (0..k).map(|_| None).collect();
    slots[root as usize] = Some(value);
    for _ in 0..k - 1 {
        let env = ep.recv_tag(tag);
        assert!(slots[env.src as usize].is_none(), "duplicate gather contribution");
        slots[env.src as usize] = Some(env.payload);
    }
    Some(slots.into_iter().map(|s| s.expect("all ranks contribute")).collect())
}

/// Direct personalized all-to-all: `parts[d]` goes to rank `d`; returns
/// the received parts in rank order (own part passed through untouched).
pub fn alltoall<T: Words>(ep: &mut Endpoint<T>, tag: Tag, parts: Vec<T>) -> Vec<T> {
    let k = ep.size() as u32;
    assert_eq!(parts.len(), k as usize, "one part per destination rank");
    let me = ep.rank();
    let mut slots: Vec<Option<T>> = (0..k).map(|_| None).collect();
    for (d, part) in parts.into_iter().enumerate() {
        if d as u32 == me {
            slots[d] = Some(part);
        } else {
            ep.send(d as u32, tag, part);
        }
    }
    for _ in 0..k - 1 {
        let env = ep.recv_tag(tag);
        assert!(slots[env.src as usize].is_none(), "duplicate all-to-all part");
        slots[env.src as usize] = Some(env.payload);
    }
    slots.into_iter().map(|s| s.expect("all ranks contribute")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{spmd, Cluster};

    /// Collectives must work for every K, not just powers of two.
    const SIZES: [usize; 6] = [1, 2, 3, 4, 5, 8];

    #[test]
    fn reduce_sums_to_every_root() {
        for &k in &SIZES {
            for root in 0..k as u32 {
                let out = spmd(Cluster::<u64>::new(k), |ep| {
                    reduce(ep, root, 9, u64::from(ep.rank()) + 1, |a, b| a + b)
                });
                let expect: u64 = (1..=k as u64).sum();
                for (r, v) in out.iter().enumerate() {
                    if r as u32 == root {
                        assert_eq!(*v, Some(expect), "k={k} root={root}");
                    } else {
                        assert_eq!(*v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_rank_from_every_root() {
        for &k in &SIZES {
            for root in 0..k as u32 {
                let out = spmd(Cluster::<u64>::new(k), |ep| {
                    let v = if ep.rank() == root { Some(u64::from(root) + 100) } else { None };
                    broadcast(ep, root, 4, v)
                });
                assert!(out.iter().all(|&v| v == u64::from(root) + 100), "k={k} root={root}");
            }
        }
    }

    #[test]
    fn allreduce_agrees_on_all_ranks() {
        for &k in &SIZES {
            let out = spmd(Cluster::<Vec<f64>>::new(k), |ep| {
                allreduce(ep, 2, vec![f64::from(ep.rank()) + 0.5], |a, b| combine_vec(SUM, a, b))
            });
            let expect: f64 = (0..k).map(|r| r as f64 + 0.5).sum();
            assert!(out.iter().all(|v| (v[0] - expect).abs() < 1e-12), "k={k}");
        }
    }

    #[test]
    fn allreduce_scalar_max() {
        let out = spmd(Cluster::<Vec<f64>>::new(5), |ep| {
            allreduce_scalar(ep, 0, f64::from(ep.rank() % 3), MAX)
        });
        assert!(out.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn barrier_orders_phases() {
        // Without the barrier the tag-7 receive could match a phase-2
        // send; the barrier guarantees all phase-1 traffic has landed.
        for &k in &SIZES {
            if k == 1 {
                continue;
            }
            let out = spmd(Cluster::<u64>::new(k), |ep| {
                let me = ep.rank();
                let next = (me + 1) % ep.size() as u32;
                ep.send(next, 7, u64::from(me));
                let got = ep.recv_tag(7).payload;
                barrier(ep, 1000);
                got
            });
            for (r, &got) in out.iter().enumerate() {
                assert_eq!(got, ((r + k - 1) % k) as u64);
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = spmd(Cluster::<u64>::new(4), |ep| gather(ep, 2, 0, u64::from(ep.rank()) * 11));
        assert_eq!(out[2], Some(vec![0, 11, 22, 33]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn alltoall_transposes() {
        let k = 4usize;
        let out = spmd(Cluster::<u64>::new(k), |ep| {
            let me = u64::from(ep.rank());
            let parts: Vec<u64> = (0..k as u64).map(|d| me * 10 + d).collect();
            alltoall(ep, 3, parts)
        });
        // Rank d receives src*10 + d from every src.
        for (d, row) in out.iter().enumerate() {
            let expect: Vec<u64> = (0..k as u64).map(|s| s * 10 + d as u64).collect();
            assert_eq!(row, &expect);
        }
    }

    #[test]
    fn reduce_is_deterministic_for_noncommutative_combine() {
        // String-like concat via digit packing: combine(a,b) = a*10 + b.
        // The binomial tree always combines children in ascending rank
        // order, so the result is reproducible.
        let runs: Vec<Option<u64>> = (0..3)
            .map(|_| {
                spmd(Cluster::<u64>::new(5), |ep| {
                    reduce(ep, 0, 0, u64::from(ep.rank()) + 1, |a, b| a * 10 + b)
                })
                .remove(0)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }
}
