//! MPI-like message-passing runtime substrate.
//!
//! The paper's parallel SpMV runs over MPI on a Cray XE6. Offline we
//! substitute this runtime: `K` *ranks* running as OS threads, connected
//! by reliable, order-preserving point-to-point channels, with the small
//! set of collectives the SpMV algorithms and the iterative solvers on
//! top of them need (barrier, reductions, broadcast, all-to-all).
//!
//! Design goals, in order:
//!
//! 1. **Faithful semantics** — message matching by `(source, tag)` with
//!    out-of-order buffering, exactly like MPI's envelope matching, so
//!    programs written against this runtime port to MPI mechanically.
//! 2. **Observability** — every endpoint counts messages and words sent
//!    and received ([`EndpointStats`]), so tests can cross-validate the
//!    analytic communication statistics (`s2d-core::comm`) against what a
//!    real execution actually shipped.
//! 3. **Hostility on demand** — [`chaos`] injects random delivery delays
//!    to shake out programs that accidentally rely on timing instead of
//!    matching.
//!
//! Modules:
//!
//! * [`endpoint`] — the per-rank communication handle;
//! * [`cluster`] — construction of fully-connected endpoint groups and
//!   the scoped SPMD driver [`cluster::spmd`];
//! * [`collectives`] — barrier, reduce/allreduce, broadcast, gather,
//!   all-to-all built from point-to-point messages;
//! * [`topology`] — process meshes and torus hop metrics;
//! * [`chaos`] — delivery-delay injection for robustness tests.

pub mod chaos;
pub mod cluster;
pub mod collectives;
pub mod endpoint;
pub mod topology;

pub use chaos::ChaosConfig;
pub use cluster::{spmd, Cluster};
pub use collectives::{ReduceOp, MAX, MIN, SUM};
pub use endpoint::{Endpoint, EndpointStats, Envelope, Tag};
pub use topology::{Mesh2d, Torus3d};
