//! Baseline partitioning methods the paper compares against.
//!
//! * [`oned`] — 1D rowwise/columnwise via the column-net/row-net
//!   hypergraph model [Catalyurek & Aykanat 1999] (the paper's `1D`);
//! * [`fine_grain`] — 2D nonzero-based fine-grain partitioning
//!   [Catalyurek & Aykanat 2001] (the paper's `2D`);
//! * [`checkerboard`] — Cartesian (checkerboard) partitioning with
//!   multi-constraint column balance [Catalyurek & Aykanat 2001]
//!   (the paper's `2D-b`);
//! * [`boman`] — the post-processing of Boman, Devine & Rajamanickam
//!   2013 mapping a 1D partition onto a `√K×√K` mesh (the paper's `1D-b`);
//! * [`medium_grain`] — the medium-grain method of Pelt & Bisseling 2014
//!   adapted to emit an s2D partition (the paper's `s2D-mg`).

pub mod boman;
pub mod checkerboard;
pub mod fine_grain;
pub mod medium_grain;
pub mod oned;

pub use boman::partition_1d_b;
pub use checkerboard::{partition_checkerboard, CheckerboardPartition};
pub use fine_grain::partition_2d_fine_grain;
pub use medium_grain::partition_s2d_mg;
pub use oned::{partition_1d_colwise, partition_1d_rowwise, OnedPartition};
