//! 1D rowwise and columnwise partitioning via hypergraph models.

use s2d_core::partition::SpmvPartition;
use s2d_hypergraph::models::{column_net_model, row_net_model};
use s2d_hypergraph::{partition_kway, PartitionConfig};
use s2d_sparse::Csr;

/// A 1D partition: the vector partitions plus the full data partition.
#[derive(Clone, Debug)]
pub struct OnedPartition {
    /// Owner of `y_i` (and of row `i`'s nonzeros for rowwise).
    pub row_part: Vec<u32>,
    /// Owner of `x_j`.
    pub col_part: Vec<u32>,
    /// The complete partition (rowwise or columnwise).
    pub partition: SpmvPartition,
}

/// 1D rowwise partitioning with the column-net model: rows are hypergraph
/// vertices weighted by their nonzero count; connectivity−1 of the K-way
/// partition equals the expand volume. Square matrices get a symmetric
/// vector partition (`x_j` with row `j`, the diagonal-pin variant);
/// rectangular ones assign each `x_j` to the majority owner of column `j`.
pub fn partition_1d_rowwise(a: &Csr, k: usize, epsilon: f64, seed: u64) -> OnedPartition {
    let square = a.nrows() == a.ncols();
    let hg = column_net_model(a, square);
    let cfg = PartitionConfig { epsilon, seed, ..Default::default() };
    let kp = partition_kway(&hg, k, &cfg);
    let row_part = kp.parts;
    let col_part = if square { row_part.clone() } else { majority_col_owner(a, &row_part, k) };
    let partition = SpmvPartition::rowwise(a, row_part.clone(), col_part.clone(), k);
    OnedPartition { row_part, col_part, partition }
}

/// 1D columnwise partitioning with the row-net model (dual of rowwise).
pub fn partition_1d_colwise(a: &Csr, k: usize, epsilon: f64, seed: u64) -> OnedPartition {
    let square = a.nrows() == a.ncols();
    let hg = row_net_model(a, square);
    let cfg = PartitionConfig { epsilon, seed, ..Default::default() };
    let kp = partition_kway(&hg, k, &cfg);
    let col_part = kp.parts;
    let row_part = if square { col_part.clone() } else { majority_row_owner(a, &col_part, k) };
    let partition = SpmvPartition::columnwise(a, row_part.clone(), col_part.clone(), k);
    OnedPartition { row_part, col_part, partition }
}

/// Assigns each column to the most frequent owner among its nonzeros'
/// rows (ties to the smaller part id; empty columns round-robin).
pub fn majority_col_owner(a: &Csr, row_part: &[u32], k: usize) -> Vec<u32> {
    let csc = a.to_csc();
    let mut count = vec![0u32; k];
    let mut out = Vec::with_capacity(a.ncols());
    for j in 0..a.ncols() {
        let rows = csc.col_rows(j);
        if rows.is_empty() {
            out.push((j % k) as u32);
            continue;
        }
        for &i in rows {
            count[row_part[i as usize] as usize] += 1;
        }
        let best = (0..k).max_by_key(|&p| count[p]).expect("k >= 1") as u32;
        for &i in rows {
            count[row_part[i as usize] as usize] = 0;
        }
        out.push(best);
    }
    out
}

/// Assigns each row to the most frequent owner among its nonzeros'
/// columns (dual of [`majority_col_owner`]).
pub fn majority_row_owner(a: &Csr, col_part: &[u32], k: usize) -> Vec<u32> {
    let mut count = vec![0u32; k];
    let mut out = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        let cols = a.row_cols(i);
        if cols.is_empty() {
            out.push((i % k) as u32);
            continue;
        }
        for &j in cols {
            count[col_part[j as usize] as usize] += 1;
        }
        let best = (0..k).max_by_key(|&p| count[p]).expect("k >= 1") as u32;
        for &j in cols {
            count[col_part[j as usize] as usize] = 0;
        }
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::comm::{comm_requirements, two_phase_comm_stats};
    use s2d_hypergraph::connectivity_minus_one;
    use s2d_hypergraph::models::column_net_model;
    use s2d_sparse::Coo;

    fn banded(n: usize, half_bw: usize) -> Csr {
        let mut m = Coo::new(n, n);
        for i in 0..n {
            for d in 0..=half_bw {
                if i + d < n {
                    m.push(i, i + d, 1.0);
                    if d > 0 {
                        m.push(i + d, i, 1.0);
                    }
                }
            }
        }
        m.compress();
        m.to_csr()
    }

    #[test]
    fn rowwise_is_valid_and_balanced() {
        let a = banded(256, 2);
        let p = partition_1d_rowwise(&a, 4, 0.05, 1);
        assert!(p.partition.is_s2d(&a));
        assert!(p.partition.is_1d_rowwise(&a));
        assert!(p.partition.load_imbalance() < 0.20, "LI {}", p.partition.load_imbalance());
    }

    #[test]
    fn cut_equals_comm_volume_on_square_symmetric_partition() {
        // The defining property of the column-net model with diagonal
        // pins: connectivity-1 == total expand volume.
        let a = banded(128, 3);
        let p = partition_1d_rowwise(&a, 4, 0.10, 3);
        let hg = column_net_model(&a, true);
        let cut = connectivity_minus_one(&hg, &p.row_part, 4);
        let vol = comm_requirements(&a, &p.partition).total_volume();
        assert_eq!(cut, vol);
    }

    #[test]
    fn banded_matrix_has_small_cut() {
        let a = banded(512, 1);
        let p = partition_1d_rowwise(&a, 4, 0.05, 2);
        let stats = two_phase_comm_stats(&a, &p.partition);
        // A tridiagonal matrix splits with O(1) volume per boundary.
        assert!(stats.total_volume <= 24, "volume {}", stats.total_volume);
    }

    #[test]
    fn colwise_mirrors_rowwise_on_symmetric_matrix() {
        let a = banded(128, 2);
        let p = partition_1d_colwise(&a, 4, 0.05, 1);
        assert!(p.partition.is_s2d(&a));
        assert!(!p.partition.loads().iter().any(|&w| w == 0));
    }

    #[test]
    fn majority_owner_picks_dominant_part() {
        let a = Coo::from_pattern(4, 2, &[(0, 0), (1, 0), (2, 0), (3, 1)]).to_csr();
        let owners = majority_col_owner(&a, &[0, 0, 1, 1], 2);
        assert_eq!(owners[0], 0); // two part-0 rows vs one part-1 row
        assert_eq!(owners[1], 1);
    }
}
