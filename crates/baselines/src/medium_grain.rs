//! s2D-mg: the medium-grain method of Pelt & Bisseling (2014) adapted to
//! produce s2D partitions (Section V of the paper).
//!
//! The matrix is split `A = Ar + Ac` by the shorter-dimension rule; the
//! composite hypergraph amalgamates row `i` of `Ar`, column `i` of `Ac`
//! and the vector entries `x_i, y_i` into one vertex, so any K-way
//! partition decodes to an s2D partition with a symmetric vector
//! partition, and the connectivity−1 cutsize equals its fused-phase
//! communication volume.

use s2d_core::partition::SpmvPartition;
use s2d_hypergraph::models::medium_grain_model;
use s2d_hypergraph::{partition_kway, PartitionConfig};
use s2d_sparse::Csr;

/// Runs the adapted medium-grain partitioner on a square matrix.
///
/// # Panics
/// Panics if `a` is not square.
pub fn partition_s2d_mg(a: &Csr, k: usize, epsilon: f64, seed: u64) -> SpmvPartition {
    let mg = medium_grain_model(a);
    let cfg = PartitionConfig { epsilon, seed, ..Default::default() };
    let kp = partition_kway(&mg.hg, k, &cfg);
    let parts = kp.parts;

    let mut nz_owner = vec![0u32; a.nnz()];
    for i in 0..a.nrows() {
        for e in a.row_range(i) {
            let j = a.colind()[e] as usize;
            nz_owner[e] = if mg.in_ar[e] { parts[i] } else { parts[j] };
        }
    }
    SpmvPartition { k, x_part: parts.clone(), y_part: parts, nz_owner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use s2d_core::comm::{comm_requirements, s2d_comm_stats};
    use s2d_hypergraph::connectivity_minus_one;
    use s2d_hypergraph::models::medium_grain_model;
    use s2d_sparse::Coo;

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0);
            for _ in 0..per_row {
                m.push(i, rng.random_range(0..n), 1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    #[test]
    fn output_is_s2d_with_symmetric_vectors() {
        let a = random_sparse(200, 5, 1);
        let p = partition_s2d_mg(&a, 4, 0.03, 1);
        assert!(p.is_s2d(&a));
        assert_eq!(p.x_part, p.y_part);
    }

    #[test]
    fn cutsize_equals_fused_volume() {
        // The defining property of the composite model.
        let a = random_sparse(150, 4, 2);
        let mg = medium_grain_model(&a);
        let cfg = PartitionConfig { epsilon: 0.03, seed: 2, ..Default::default() };
        let kp = partition_kway(&mg.hg, 4, &cfg);
        let p = partition_s2d_mg(&a, 4, 0.03, 2);
        let cut = connectivity_minus_one(&mg.hg, &kp.parts, 4);
        let vol = comm_requirements(&a, &p).total_volume();
        assert_eq!(cut, vol);
    }

    #[test]
    fn balance_counts_assigned_nonzeros() {
        let a = random_sparse(400, 6, 3);
        let p = partition_s2d_mg(&a, 8, 0.03, 3);
        // The model's vertex weights are exactly the decoded loads, so
        // the partitioner's epsilon applies to them (small tolerance
        // violations possible on coarse instances).
        assert!(p.load_imbalance() < 0.25, "LI {}", p.load_imbalance());
    }

    #[test]
    fn single_phase_execution_is_correct() {
        let a = random_sparse(120, 4, 4);
        let p = partition_s2d_mg(&a, 4, 0.03, 4);
        let plan = s2d_spmv::SpmvPlan::single_phase(&a, &p);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.25 - 8.0).collect();
        let y = plan.execute_mailbox(&x);
        let y_ref = a.spmv_alloc(&x);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0));
        }
        let stats = s2d_comm_stats(&a, &p);
        assert_eq!(stats.total_volume, plan.comm_stats().total_volume);
    }
}
