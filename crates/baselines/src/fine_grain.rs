//! 2D fine-grain (nonzero-based) partitioning — the paper's `2D`.
//!
//! Every nonzero is a unit-weight hypergraph vertex; each row and each
//! column is a net. A K-way partition of this model distributes nonzeros
//! with no structural restriction (maximal flexibility, near-perfect
//! balance) at the price of the two-phase SpMV and its higher message
//! counts — exactly the trade-off Table II demonstrates.

use s2d_core::partition::SpmvPartition;
use s2d_hypergraph::models::fine_grain_model;
use s2d_hypergraph::{partition_kway, PartitionConfig};
use s2d_sparse::Csr;

/// Partitions the nonzeros of `a` with the fine-grain model and decodes
/// consistent vector partitions: each `y_i` goes to the majority owner of
/// row `i`'s nonzeros and each `x_j` to the majority owner of column
/// `j`'s (ties to the smaller part, empty rows/columns round-robin) —
/// the "consistent vector distribution" convention of the fine-grain
/// literature.
pub fn partition_2d_fine_grain(a: &Csr, k: usize, epsilon: f64, seed: u64) -> SpmvPartition {
    let hg = fine_grain_model(a);
    let cfg = PartitionConfig { epsilon, seed, ..Default::default() };
    let kp = partition_kway(&hg, k, &cfg);
    let nz_owner = kp.parts;

    let mut count = vec![0u32; k];
    // y_i: majority over row i's nonzeros.
    let mut y_part = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        let range = a.row_range(i);
        if range.is_empty() {
            y_part.push((i % k) as u32);
            continue;
        }
        for e in range.clone() {
            count[nz_owner[e] as usize] += 1;
        }
        let best = (0..k).max_by_key(|&p| count[p]).expect("k >= 1") as u32;
        for e in range {
            count[nz_owner[e] as usize] = 0;
        }
        y_part.push(best);
    }
    // x_j: majority over column j's nonzeros.
    let csc = a.to_csc();
    // Map CSR nonzero ids: rebuild a row-major owner lookup per column by
    // walking the CSC and finding each (i, j) nonzero's CSR id. Cheaper:
    // construct a per-column list of CSR ids directly.
    let mut col_csr_ids: Vec<Vec<u32>> = vec![Vec::new(); a.ncols()];
    for i in 0..a.nrows() {
        for e in a.row_range(i) {
            col_csr_ids[a.colind()[e] as usize].push(e as u32);
        }
    }
    let mut x_part = Vec::with_capacity(a.ncols());
    for j in 0..a.ncols() {
        let ids = &col_csr_ids[j];
        if ids.is_empty() {
            x_part.push((j % k) as u32);
            continue;
        }
        for &e in ids {
            count[nz_owner[e as usize] as usize] += 1;
        }
        let best = (0..k).max_by_key(|&p| count[p]).expect("k >= 1") as u32;
        for &e in ids {
            count[nz_owner[e as usize] as usize] = 0;
        }
        x_part.push(best);
    }
    let _ = csc;
    SpmvPartition { k, x_part, y_part, nz_owner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use s2d_core::comm::two_phase_comm_stats;
    use s2d_sparse::Coo;

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0);
            for _ in 0..per_row {
                m.push(i, rng.random_range(0..n), 1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    #[test]
    fn balance_is_tight() {
        let a = random_sparse(512, 7, 1);
        let p = partition_2d_fine_grain(&a, 8, 0.03, 1);
        // Unit vertex weights: fine-grain balance is the best of all
        // methods (the paper reports ~0.1%).
        assert!(p.load_imbalance() < 0.05, "LI {}", p.load_imbalance());
    }

    #[test]
    fn vector_parts_are_consistent() {
        let a = random_sparse(128, 3, 2);
        let p = partition_2d_fine_grain(&a, 4, 0.03, 2);
        // Each y_i owner must hold at least one nonzero of row i (it is
        // the majority owner), so the fold volume for that row is < k.
        for i in 0..a.nrows() {
            if a.row_nnz(i) > 0 {
                let holders: Vec<u32> = a.row_range(i).map(|e| p.nz_owner[e]).collect();
                assert!(holders.contains(&p.y_part[i]), "row {i}");
            }
        }
    }

    #[test]
    fn executes_correctly_via_two_phase_plan() {
        let a = random_sparse(96, 4, 3);
        let p = partition_2d_fine_grain(&a, 4, 0.03, 3);
        let plan = s2d_spmv::SpmvPlan::two_phase(&a, &p);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j % 13) as f64 - 6.0).collect();
        let y = plan.execute_mailbox(&x);
        let y_ref = a.spmv_alloc(&x);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0));
        }
    }

    #[test]
    fn stats_are_finite_and_nonzero_for_cross_part_matrix() {
        let a = random_sparse(256, 6, 4);
        let p = partition_2d_fine_grain(&a, 8, 0.03, 4);
        let stats = two_phase_comm_stats(&a, &p);
        assert!(stats.total_volume > 0);
        assert!(stats.max_send_msgs() >= 1);
    }
}
