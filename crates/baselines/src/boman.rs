//! 1D-b: the mesh post-processing of Boman, Devine & Rajamanickam (2013)
//! — the paper's `1D-b` baseline.
//!
//! Given a 1D rowwise K-way partition, processors are laid on a
//! `Pr × Pc` mesh and the off-diagonal block `A_ℓk` is reassigned to the
//! processor at `(row(ℓ), col(k))`. Expand traffic then stays inside mesh
//! columns and fold traffic inside mesh rows (≤ `Pr + Pc − 2` messages
//! per processor), but the nonzero loads are disturbed with no mechanism
//! to control the damage — the paper's Table VI shows the imbalance
//! blowing up, and so does ours.

use s2d_core::mesh::mesh_dims;
use s2d_core::partition::SpmvPartition;
use s2d_sparse::Csr;

/// Applies the 1D-b post-processing to a 1D rowwise partition given by
/// `row_part` (vector partition symmetric: `x` follows `row_part` too).
///
/// # Panics
/// Panics if `a` is not square or `row_part` is the wrong length.
pub fn partition_1d_b(a: &Csr, row_part: &[u32], k: usize) -> SpmvPartition {
    assert_eq!(a.nrows(), a.ncols(), "1D-b assumes a square matrix");
    assert_eq!(row_part.len(), a.nrows());
    let (pr, pc) = mesh_dims(k);
    let _ = pr;
    let mesh_row = |p: u32| p / pc as u32;
    let mesh_col = |p: u32| p % pc as u32;

    let mut nz_owner = vec![0u32; a.nnz()];
    for i in 0..a.nrows() {
        let l = row_part[i];
        for e in a.row_range(i) {
            let kp = row_part[a.colind()[e] as usize];
            nz_owner[e] = if l == kp {
                l // diagonal block stays
            } else {
                mesh_row(l) * pc as u32 + mesh_col(kp)
            };
        }
    }
    SpmvPartition { k, x_part: row_part.to_vec(), y_part: row_part.to_vec(), nz_owner }
}

/// Checks the 1D-b latency bound (per-processor expand sends ≤ `Pr − 1`,
/// fold sends ≤ `Pc − 1`).
pub fn latency_bound_ok(a: &Csr, p: &SpmvPartition) -> bool {
    let (pr, pc) = mesh_dims(p.k);
    let reqs = s2d_core::comm::comm_requirements(a, p);
    let mut e_pairs = std::collections::BTreeSet::new();
    for &(src, dst, _) in &reqs.x_reqs {
        e_pairs.insert((src, dst));
    }
    let mut f_pairs = std::collections::BTreeSet::new();
    for &(src, dst, _) in &reqs.y_reqs {
        f_pairs.insert((src, dst));
    }
    let mut e_cnt = vec![0usize; p.k];
    for &(s, _) in &e_pairs {
        e_cnt[s as usize] += 1;
    }
    let mut f_cnt = vec![0usize; p.k];
    for &(s, _) in &f_pairs {
        f_cnt[s as usize] += 1;
    }
    e_cnt.iter().all(|&c| c < pr.max(1)) && f_cnt.iter().all(|&c| c < pc.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use s2d_sparse::Coo;

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0);
            for _ in 0..per_row {
                m.push(i, rng.random_range(0..n), 1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    fn block_row_part(n: usize, k: usize) -> Vec<u32> {
        (0..n).map(|i| (i * k / n) as u32).collect()
    }

    #[test]
    fn diagonal_blocks_untouched() {
        let a = random_sparse(64, 3, 1);
        let rp = block_row_part(64, 4);
        let p = partition_1d_b(&a, &rp, 4);
        for i in 0..a.nrows() {
            for e in a.row_range(i) {
                let j = a.colind()[e] as usize;
                if rp[i] == rp[j] {
                    assert_eq!(p.nz_owner[e], rp[i]);
                }
            }
        }
    }

    #[test]
    fn latency_bound_holds() {
        let a = random_sparse(256, 6, 2);
        let rp = block_row_part(256, 16);
        let p = partition_1d_b(&a, &rp, 16);
        assert!(latency_bound_ok(&a, &p));
    }

    #[test]
    fn execution_is_correct_two_phase() {
        let a = random_sparse(80, 4, 3);
        let rp = block_row_part(80, 4);
        let p = partition_1d_b(&a, &rp, 4);
        let plan = s2d_spmv::SpmvPlan::two_phase(&a, &p);
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 + (j % 7) as f64).collect();
        let y = plan.execute_mailbox(&x);
        let y_ref = a.spmv_alloc(&x);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0));
        }
    }

    #[test]
    fn off_diagonal_lands_on_mesh_intersection() {
        let a = random_sparse(64, 4, 4);
        let rp = block_row_part(64, 4); // 2x2 mesh
        let p = partition_1d_b(&a, &rp, 4);
        for i in 0..a.nrows() {
            let l = rp[i];
            for e in a.row_range(i) {
                let j = a.colind()[e] as usize;
                let kp = rp[j];
                if l != kp {
                    let expect = (l / 2) * 2 + (kp % 2);
                    assert_eq!(p.nz_owner[e], expect, "nnz ({i},{j})");
                }
            }
        }
    }
}
