//! Checkerboard (Cartesian) partitioning — the paper's `2D-b`.
//!
//! Two hypergraph passes: rows are split into `Pr` stripes with the
//! column-net model, then columns into `Pc` stripes with a
//! **multi-constraint** row-net model (one balance constraint per row
//! stripe, so every `(r, c)` block is balanced). Processor `(r, c)` owns
//! block `(r, c)`; expand traffic stays inside mesh columns, fold traffic
//! inside mesh rows, bounding the per-processor message count by
//! `Pr + Pc − 2`.

use s2d_core::mesh::mesh_dims;
use s2d_core::partition::SpmvPartition;
use s2d_hypergraph::models::column_net_model;
use s2d_hypergraph::{partition_kway, Hypergraph, PartitionConfig};
use s2d_sparse::Csr;

/// A checkerboard partition: mesh shape, stripe assignments and the full
/// data partition.
#[derive(Clone, Debug)]
pub struct CheckerboardPartition {
    /// Mesh rows.
    pub pr: usize,
    /// Mesh columns.
    pub pc: usize,
    /// Row stripe of each matrix row.
    pub row_stripe: Vec<u32>,
    /// Column stripe of each matrix column.
    pub col_stripe: Vec<u32>,
    /// The complete partition (`owner(i,j) = stripe(i)·Pc + stripe(j)`).
    pub partition: SpmvPartition,
}

/// Builds the checkerboard partition of a square matrix on the default
/// nearly-square mesh.
///
/// # Panics
/// Panics if `a` is not square (the paper's instances all are).
pub fn partition_checkerboard(a: &Csr, k: usize, epsilon: f64, seed: u64) -> CheckerboardPartition {
    assert_eq!(a.nrows(), a.ncols(), "checkerboard assumes a square matrix");
    let (pr, pc) = mesh_dims(k);

    // Pass 1: rows -> Pr stripes (column-net model, symmetric vectors).
    let cfg1 = PartitionConfig { epsilon, seed, ..Default::default() };
    let row_stripe = if pr == 1 {
        vec![0u32; a.nrows()]
    } else {
        partition_kway(&column_net_model(a, true), pr, &cfg1).parts
    };

    // Pass 2: columns -> Pc stripes under Pr balance constraints: vertex
    // j (column) has weight vector w[r] = nnz of column j inside row
    // stripe r; nets are rows (pins = columns of the row).
    let col_stripe = if pc == 1 {
        vec![0u32; a.ncols()]
    } else {
        let n = a.ncols();
        let mut vwgt = vec![0u64; n * pr];
        for i in 0..a.nrows() {
            let r = row_stripe[i] as usize;
            for &j in a.row_cols(i) {
                vwgt[j as usize * pr + r] += 1;
            }
        }
        let nets: Vec<Vec<u32>> = (0..a.nrows()).map(|i| a.row_cols(i).to_vec()).collect();
        let ncost = vec![1u64; nets.len()];
        let hg = Hypergraph::new(n, pr, vwgt, &nets, ncost);
        let cfg2 = PartitionConfig { epsilon, seed: seed ^ 0xc13, ..Default::default() };
        partition_kway(&hg, pc, &cfg2).parts
    };

    // Assemble: nonzero (i,j) -> processor (row_stripe(i), col_stripe(j)).
    let mut nz_owner = vec![0u32; a.nnz()];
    for i in 0..a.nrows() {
        let r = row_stripe[i] * pc as u32;
        for e in a.row_range(i) {
            nz_owner[e] = r + col_stripe[a.colind()[e] as usize];
        }
    }
    // Vector entries at the "diagonal" processor of their index.
    let x_part: Vec<u32> =
        (0..a.ncols()).map(|j| row_stripe[j] * pc as u32 + col_stripe[j]).collect();
    let y_part = x_part.clone();
    let partition = SpmvPartition { k, x_part, y_part, nz_owner };
    CheckerboardPartition { pr, pc, row_stripe, col_stripe, partition }
}

/// Verifies the checkerboard latency bound on the two-phase statistics:
/// every processor sends at most `Pr − 1` expand and `Pc − 1` fold
/// messages (used by tests and the table harnesses).
pub fn latency_bound_ok(a: &Csr, cb: &CheckerboardPartition) -> bool {
    let reqs = s2d_core::comm::comm_requirements(a, &cb.partition);
    let mut expand_sends = std::collections::BTreeSet::new();
    for &(src, dst, _) in &reqs.x_reqs {
        expand_sends.insert((src, dst));
    }
    let mut fold_sends = std::collections::BTreeSet::new();
    for &(src, dst, _) in &reqs.y_reqs {
        fold_sends.insert((src, dst));
    }
    let mut e_cnt = vec![0usize; cb.partition.k];
    for &(s, _) in &expand_sends {
        e_cnt[s as usize] += 1;
    }
    let mut f_cnt = vec![0usize; cb.partition.k];
    for &(s, _) in &fold_sends {
        f_cnt[s as usize] += 1;
    }
    e_cnt.iter().all(|&c| c <= cb.pr - 1) && f_cnt.iter().all(|&c| c <= cb.pc - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use s2d_sparse::Coo;

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0);
            for _ in 0..per_row {
                m.push(i, rng.random_range(0..n), 1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    #[test]
    fn mesh_block_ownership() {
        let a = random_sparse(128, 4, 1);
        let cb = partition_checkerboard(&a, 4, 0.10, 1);
        assert_eq!((cb.pr, cb.pc), (2, 2));
        for i in 0..a.nrows() {
            for e in a.row_range(i) {
                let j = a.colind()[e] as usize;
                let expect = cb.row_stripe[i] * 2 + cb.col_stripe[j];
                assert_eq!(cb.partition.nz_owner[e], expect);
            }
        }
    }

    #[test]
    fn latency_bound_holds() {
        let a = random_sparse(256, 6, 2);
        let cb = partition_checkerboard(&a, 16, 0.20, 2);
        assert!(latency_bound_ok(&a, &cb));
    }

    #[test]
    fn two_phase_execution_is_correct() {
        let a = random_sparse(96, 3, 3);
        let cb = partition_checkerboard(&a, 4, 0.10, 3);
        let plan = s2d_spmv::SpmvPlan::two_phase(&a, &cb.partition);
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin()).collect();
        let y = plan.execute_mailbox(&x);
        let y_ref = a.spmv_alloc(&x);
        for (u, v) in y.iter().zip(&y_ref) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0));
        }
    }

    #[test]
    fn multiconstraint_balances_blocks_roughly() {
        let a = random_sparse(512, 7, 4);
        let cb = partition_checkerboard(&a, 4, 0.10, 4);
        let loads = cb.partition.loads();
        let avg = loads.iter().sum::<u64>() as f64 / 4.0;
        let max = *loads.iter().max().unwrap() as f64;
        // The paper reports a few percent for uniform matrices; allow a
        // loose envelope for the small instance.
        assert!(max / avg < 1.6, "block imbalance {max}/{avg}");
    }

    #[test]
    fn k_one_is_trivial() {
        let a = random_sparse(32, 2, 5);
        let cb = partition_checkerboard(&a, 1, 0.05, 5);
        assert!(cb.partition.nz_owner.iter().all(|&o| o == 0));
    }
}
