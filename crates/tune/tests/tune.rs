//! Tuning acceptance tests: cache round-trip and degradation, verdict
//! determinism, and the bitwise contract between a tuned session and a
//! hand-configured one.

use std::path::PathBuf;

use s2d::{Session, Strategy};
use s2d_gen::rmat::{rmat, RmatConfig};
use s2d_sparse::Csr;
use s2d_tune::{TuneBudget, Tuned, Tuner, TuningCache, TUNER_VERSION};

fn test_matrix(scale: u32) -> Csr {
    rmat(&RmatConfig::graph500(scale, 8), 42).to_csr()
}

/// A per-process scratch file (the workspace has no tempfile crate);
/// tests clean up after themselves.
fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("s2d-tune-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.json", std::process::id()))
}

#[test]
fn cache_round_trips_write_reload_hit() {
    let a = test_matrix(7);
    let path = temp_path("round-trip");
    let _ = std::fs::remove_file(&path);

    let first = Tuner::new(&a, 4).width(4).budget(TuneBudget::fast()).cache(&path).run();
    assert!(!first.cache_hit, "cold cache must search");
    assert!(!first.measurements.is_empty(), "a search measures candidates");
    assert!(path.exists(), "the verdict must be persisted");

    let second = Tuner::new(&a, 4).width(4).budget(TuneBudget::fast()).cache(&path).run();
    assert!(second.cache_hit, "same (matrix, k, width) must replay");
    assert_eq!(second.winner, first.winner);
    assert_eq!(second.winner_secs, first.winner_secs);
    assert!(second.measurements.is_empty(), "a hit skips measurement entirely");

    // A different k is a different workload: miss, search, and the file
    // now carries both verdicts.
    let other = Tuner::new(&a, 2).width(4).budget(TuneBudget::fast()).cache(&path).run();
    assert!(!other.cache_hit);
    assert_eq!(TuningCache::load(&path).len(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_cache_falls_back_and_heals() {
    let a = test_matrix(7);
    let path = temp_path("corrupt");
    std::fs::write(&path, "{{{ definitely not the cache you wrote").expect("plant garbage");

    let tuned = Tuner::new(&a, 2).budget(TuneBudget::fast()).cache(&path).run();
    assert!(!tuned.cache_hit, "garbage must read as empty, not panic or hit");
    // The search's verdict overwrote the garbage with a valid file.
    let healed = TuningCache::load(&path);
    assert_eq!(healed.len(), 1);
    assert_eq!(healed.lookup(tuned.key).expect("stored verdict").choice, tuned.winner);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn version_mismatch_discards_stale_verdicts() {
    let a = test_matrix(7);
    let path = temp_path("version");
    let _ = std::fs::remove_file(&path);
    let first = Tuner::new(&a, 2).budget(TuneBudget::fast()).cache(&path).run();
    assert!(!first.cache_hit);

    // Doctor the file to a future format version: every entry in it is
    // now unreadable and the cache must act empty.
    let body = std::fs::read_to_string(&path).expect("stored cache");
    let stale = body.replace(&format!("\"version\":{TUNER_VERSION}"), "\"version\":9999");
    assert_ne!(body, stale, "the version field must be present to doctor");
    std::fs::write(&path, stale).expect("plant stale version");
    assert!(TuningCache::load(&path).is_empty());

    let again = Tuner::new(&a, 2).budget(TuneBudget::fast()).cache(&path).run();
    assert!(!again.cache_hit, "stale version must re-measure, not replay");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tuned_sessions_match_hand_configured_builds_bitwise() {
    let a = test_matrix(7);
    let (mut tuned, verdict) = Session::builder(&a)
        .partitioner(Strategy::Auto, 4)
        .batch_width(2)
        .tuned(TuneBudget::fast())
        .build();
    let w = verdict.winner;
    assert_eq!(tuned.strategy(), Some(w.strategy));
    assert_eq!(tuned.kernel_format(), w.format);
    assert_eq!(tuned.backend(), w.backend);

    let mut direct = Session::builder(&a)
        .partitioner(w.strategy, 4)
        .plan_kind(w.plan_kind)
        .kernel_format(w.format)
        .backend(w.backend)
        .batch_width(2)
        .build();
    let x: Vec<f64> = (0..a.ncols() * 2).map(|i| ((i * 29) % 17) as f64 - 8.0).collect();
    let mut y_tuned = vec![0.0; a.nrows() * 2];
    let mut y_direct = vec![0.0; a.nrows() * 2];
    tuned.apply_batch(&x, &mut y_tuned, 2);
    direct.apply_batch(&x, &mut y_direct, 2);
    assert_eq!(y_tuned, y_direct, "tuning must be a pure configuration choice");

    // And the answers are right, not just consistent with each other.
    let xs: Vec<f64> = (0..a.ncols()).map(|j| x[j * 2]).collect();
    let want = a.spmv_alloc(&xs);
    let mut y = vec![0.0; a.nrows()];
    tuned.apply(&xs, &mut y);
    for (g, r) in y.iter().zip(&want) {
        assert!((g - r).abs() <= 1e-9 * r.abs().max(1.0), "{g} vs {r}");
    }
}

#[test]
fn candidate_shortlist_is_deterministic_and_spans_every_axis() {
    let a = test_matrix(8);
    let cands = Tuner::new(&a, 4).width(4).candidates();
    assert_eq!(cands, Tuner::new(&a, 4).width(4).candidates(), "same matrix, same shortlist");
    assert!(!cands.is_empty());
    // Every strategy the cost model considers is in the search space.
    for s in Strategy::auto_candidates(&a, 4) {
        assert!(cands.iter().any(|c| c.strategy == s), "missing strategy {s}");
    }
    // Both service widths (one width-4 batch vs. 4 single applies) and
    // both backends are represented.
    assert!(cands.iter().any(|c| c.width == 4) && cands.iter().any(|c| c.width == 1));
    assert!(
        cands.iter().any(|c| c.backend == s2d::Backend::CompiledSeq)
            && cands.iter().any(|c| c.backend != s2d::Backend::CompiledSeq)
    );
}

#[test]
fn verdicts_render_and_serialize() {
    let a = test_matrix(7);
    let verdict = Tuner::new(&a, 2).budget(TuneBudget::fast()).run();
    assert!(
        verdict.winner_secs <= verdict.model_secs,
        "the model pick is in the candidate set, so the winner can never lose to it"
    );
    let table = verdict.render();
    assert!(table.contains("winner"));
    assert!(table.contains("model"));
    let json = verdict.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"cache_hit\":false"));
    assert!(json.contains("\"measurements\":["));
    assert!(json.contains(&format!("\"k\":{}", 2)));
}
