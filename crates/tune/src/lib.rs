//! # s2d-tune — measurement-based autotuning
//!
//! The workspace's three `Auto` axes ([`Strategy::Auto`](s2d::Strategy),
//! [`KernelFormat::Auto`](s2d::KernelFormat),
//! [`Backend::auto`](s2d::Backend::auto)) pick configurations from
//! *static models*. This crate closes the loop empirically: the
//! [`Tuner`] builds a model-driven shortlist of (strategy ×
//! kernel-format × kernel-ISA × backend/thread-count × batch-width)
//! candidates, micro-benchmarks
//! each one through the real [`Session`] stack, and
//! returns the measured winner as a [`TunedConfig`]. Verdicts persist
//! in a versioned on-disk [`TuningCache`], so a matrix is tuned once
//! per (fingerprint, k, width) — every later run, including in other
//! processes, replays the verdict in microseconds.
//!
//! ## Using the tuner directly
//!
//! ```no_run
//! use s2d_tune::{TuneBudget, Tuner};
//! # let a = s2d::gen::rmat::rmat(&s2d::gen::rmat::RmatConfig::graph500(8, 8), 42).to_csr();
//!
//! let tuned = Tuner::new(&a, 4)
//!     .width(8)
//!     .budget(TuneBudget::standard())
//!     .cache("tuning-cache.json")
//!     .run();
//! println!("{}", tuned.render());
//! ```
//!
//! ## Through the session builder
//!
//! The [`Tuned`] extension trait hangs the same search off
//! [`SessionBuilder`]: `.tuned(budget)` replaces the builder's static
//! `Auto` choices with measured ones and builds the winning session.
//!
//! ```no_run
//! use s2d::Session;
//! use s2d_tune::{TuneBudget, Tuned};
//! # let a = s2d::gen::rmat::rmat(&s2d::gen::rmat::RmatConfig::graph500(8, 8), 42).to_csr();
//!
//! let (session, verdict) = Session::builder(&a)
//!     .partitioner(s2d::Strategy::Auto, 4)
//!     .batch_width(8)
//!     .tuned(TuneBudget::from_env())
//!     .tuning_cache("tuning-cache.json")
//!     .build();
//! assert_eq!(session.strategy(), Some(verdict.winner.strategy));
//! ```

use std::path::PathBuf;

use s2d::{Session, SessionBuilder};

pub mod cache;
pub mod tuner;

pub use cache::{CacheEntry, TuningCache, TUNER_VERSION};
pub use tuner::{Measurement, TuneBudget, TunedChoice, TunedConfig, Tuner};

/// Extension trait putting the tuner on [`SessionBuilder`] — it lives
/// here (not in the facade) because `s2d-tune` sits *above* `s2d` in
/// the dependency order. `use s2d_tune::Tuned;` and every builder
/// grows a `.tuned(budget)` step.
pub trait Tuned<'a> {
    /// Switches the build from model-driven to measurement-driven
    /// configuration: instead of honoring the builder's strategy,
    /// format and backend settings, run (or replay from the cache) the
    /// empirical search for this builder's matrix, `k` and batch width,
    /// and build the measured winner.
    fn tuned(self, budget: TuneBudget) -> TunedBuilder<'a>;
}

impl<'a> Tuned<'a> for SessionBuilder<'a> {
    fn tuned(self, budget: TuneBudget) -> TunedBuilder<'a> {
        TunedBuilder { builder: self, budget, cache: None }
    }
}

/// A [`SessionBuilder`] whose configuration axes will be settled by
/// measurement. Produced by [`Tuned::tuned`]; optionally pointed at a
/// persistent cache with [`TunedBuilder::tuning_cache`]; finished with
/// [`TunedBuilder::build`].
pub struct TunedBuilder<'a> {
    builder: SessionBuilder<'a>,
    budget: TuneBudget,
    cache: Option<PathBuf>,
}

impl<'a> TunedBuilder<'a> {
    /// Persist and replay verdicts through the [`TuningCache`] at
    /// `path`. With a warm cache, [`TunedBuilder::build`] costs one
    /// file read plus the winner's ordinary build — no search, no
    /// timed trials.
    pub fn tuning_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache = Some(path.into());
        self
    }

    /// Runs the search (or replays the cached verdict), builds the
    /// winning configuration, and returns the ready session together
    /// with the verdict it came from.
    ///
    /// The session is built through the ordinary
    /// [`SessionBuilder::build`] path with the winner's settings — a
    /// tuned session is bitwise identical to one configured by hand
    /// with the same choices. Its buffers are sized for the builder's
    /// batch width even when the winner's advisory width is 1 ("serve
    /// requests one at a time"), so callers can always apply at the
    /// width they declared.
    ///
    /// # Panics
    /// Panics if the builder was configured with an explicit
    /// [`partition`](SessionBuilder::partition) instead of a
    /// [`partitioner`](SessionBuilder::partitioner) — the strategy axis
    /// is part of the search space, so the tuner needs the (strategy,
    /// k) form.
    pub fn build(self) -> (Session, TunedConfig) {
        let a = self.builder.matrix();
        let (_, k) = self
            .builder
            .chosen_partitioner()
            .expect("tuned builds need .partitioner(strategy, k), not an explicit partition");
        let width = self.builder.chosen_batch_width();
        let cfg = self.builder.chosen_partitioner_config();
        let mut tuner = Tuner::new(a, k).width(width).budget(self.budget).partitioner_config(cfg);
        if let Some(path) = &self.cache {
            tuner = tuner.cache(path.clone());
        }
        let verdict = tuner.run();
        let w = verdict.winner;
        let session = Session::builder(a)
            .partitioner(w.strategy, k)
            .partitioner_config(cfg)
            .plan_kind(w.plan_kind)
            .kernel_format(w.format)
            .kernel_isa(w.isa)
            .backend(w.backend)
            .batch_width(width)
            .build();
        (session, verdict)
    }
}
