//! The empirical search itself: model-driven shortlist, timed trials,
//! measured verdict.
//!
//! The workspace already owns three *static* selection models — the α–β
//! cost model behind [`Strategy::Auto`], the row-statistics policy
//! behind [`KernelFormat::Auto`] and the madds crossover behind
//! [`Backend::auto`]. They are cheap and usually right, but they are
//! models: they embed constants (machine balance, thread-spawn cost,
//! cache behaviour) that no closed form gets right on every matrix. The
//! [`Tuner`] uses them for what they are good at — pruning the
//! configuration space to a shortlist — and then settles the shortlist
//! the only authoritative way: by running each candidate through the
//! real [`Session`] stack and timing it with the same best-of-N
//! discipline the benches use. Because the model's own pick is always
//! in the candidate set, the measured winner can never be slower than
//! the model's choice (up to timer noise) — measurement only ever
//! recovers performance the models left on the table.
//!
//! Preparation cost is kept proportional to the *strategy* axis, not
//! the candidate count: one [`prepare`](s2d::SessionBuilder::prepare)
//! per strategy (the expensive leg: partitioning + plan construction),
//! then
//! [`Prepared::with_format`] re-lowers kernels per format (cheap) and
//! [`Prepared::session`] stamps per-backend/width operators (cheaper
//! still).

use std::path::PathBuf;

use s2d::{
    Backend, ConfigKey, KernelFormat, KernelIsa, PartitionerConfig, PlanKind, Prepared, Session,
    Strategy,
};
use s2d_engine::CompiledPlan;
use s2d_obs::best_of;
use s2d_sparse::Csr;

use crate::cache::{CacheEntry, TuningCache};

/// How much clock time the search may spend: timing repetitions per
/// candidate, SpMV iterations per repetition, and a cap on how many
/// candidates get measured at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneBudget {
    /// Timing repetitions per candidate ([`s2d_obs::best_of`]'s
    /// min-of-averages discards scheduler noise across these).
    pub trials: usize,
    /// SpMV workload applications per repetition.
    pub iters: u32,
    /// Most candidates measured (the model's own pick is exempt from
    /// the cap — it is always measured, so the winner-vs-model
    /// comparison always exists).
    pub max_candidates: usize,
}

impl TuneBudget {
    /// The default search effort: enough repetitions for stable
    /// verdicts on micro-second kernels.
    pub fn standard() -> TuneBudget {
        TuneBudget { trials: 3, iters: 10, max_candidates: 16 }
    }

    /// A smoke-test budget: one trial, two iterations, few candidates —
    /// exercises every code path in CI without measurement quality.
    pub fn fast() -> TuneBudget {
        TuneBudget { trials: 1, iters: 2, max_candidates: 6 }
    }

    /// [`TuneBudget::standard`], degraded to [`TuneBudget::fast`] when
    /// the `S2D_TUNE_FAST` environment variable is set (the CI smoke
    /// hook, same idiom as the bench suites' `*_BENCH_FAST`).
    pub fn from_env() -> TuneBudget {
        if std::env::var_os("S2D_TUNE_FAST").is_some() {
            TuneBudget::fast()
        } else {
            TuneBudget::standard()
        }
    }
}

/// One point in the configuration space: everything the tuner may vary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedChoice {
    /// Partitioning method.
    pub strategy: Strategy,
    /// Plan construction (recorded from the preparation, so a replayed
    /// choice rebuilds the identical plan instead of re-deriving it).
    pub plan_kind: PlanKind,
    /// Kernel format the plan compiles to.
    pub format: KernelFormat,
    /// Kernel ISA the batch paths select with. Bitwise-neutral (the
    /// SIMD lanes map to the batch dimension), so it is a pure speed
    /// axis; `scalar` is only shortlisted where AVX2 exists to compare
    /// against.
    pub isa: KernelIsa,
    /// Execution backend. The pool's thread count is part of this axis:
    /// the shortlist tries the default worker count, half the machine,
    /// and one-per-rank where those differ.
    pub backend: Backend,
    /// Batch width the candidate serves the workload at. Usually the
    /// workload width; a `1` here means "r separate single-RHS applies
    /// beat one width-r batch" (real on cache-thrashing widths).
    pub width: usize,
}

impl std::fmt::Display for TunedChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}/{}/w{}",
            self.strategy, self.plan_kind, self.format, self.isa, self.backend, self.width
        )
    }
}

impl TunedChoice {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"strategy\":\"{}\",\"plan_kind\":\"{}\",\"format\":\"{}\",",
                "\"isa\":\"{}\",\"backend\":\"{}\",\"width\":{}}}"
            ),
            self.strategy, self.plan_kind, self.format, self.isa, self.backend, self.width
        )
    }
}

/// One candidate's timing: seconds per workload application (one
/// width-r batch, or r single applies for width-1 candidates — the
/// denominators match, so the numbers compare directly).
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// The configuration measured.
    pub choice: TunedChoice,
    /// Best-of-N seconds per workload application.
    pub secs: f64,
}

/// The tuner's verdict: the measured winner, the static models' pick
/// for the same workload, and every measurement behind the comparison.
#[derive(Clone, Debug)]
pub struct TunedConfig {
    /// What was tuned: (matrix fingerprint, k, workload width).
    pub key: ConfigKey,
    /// The fastest measured configuration.
    pub winner: TunedChoice,
    /// The winner's seconds per workload application.
    pub winner_secs: f64,
    /// What the static models would have chosen (always measured too).
    /// On a cache hit this equals the winner — the search, including
    /// the model evaluation, was skipped.
    pub model: TunedChoice,
    /// The model pick's measured seconds per workload application.
    pub model_secs: f64,
    /// Every candidate measured, in search order (empty on a cache
    /// hit).
    pub measurements: Vec<Measurement>,
    /// True when the verdict was replayed from the on-disk cache
    /// without any measurement.
    pub cache_hit: bool,
}

impl TunedConfig {
    /// Measured winner time / measured model-pick time (1.0 = the
    /// models were already optimal; < 1.0 = measurement recovered
    /// something).
    pub fn speedup_over_model(&self) -> f64 {
        if self.model_secs > 0.0 {
            self.winner_secs / self.model_secs
        } else {
            1.0
        }
    }

    /// Human-readable candidate table, fastest first, with the model's
    /// pick and the winner flagged.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tuned {} — winner {} ({:.3} µs/apply{})\n",
            self.key,
            self.winner,
            self.winner_secs * 1e6,
            if self.cache_hit { ", cache hit" } else { "" },
        ));
        if self.cache_hit {
            return out;
        }
        out.push_str(&format!(
            "model pick {} ({:.3} µs/apply, winner/model = {:.3})\n",
            self.model,
            self.model_secs * 1e6,
            self.speedup_over_model(),
        ));
        let mut by_time: Vec<&Measurement> = self.measurements.iter().collect();
        by_time.sort_by(|x, y| x.secs.total_cmp(&y.secs));
        out.push_str(&format!(
            "{:<50} {:>12} {:>10}\n",
            "candidate (strategy/plan/format/isa/backend/width)", "µs/apply", "vs winner"
        ));
        for m in by_time {
            let mark = if m.choice == self.winner {
                " <- winner"
            } else if m.choice == self.model {
                " <- model"
            } else {
                ""
            };
            let ratio = if self.winner_secs > 0.0 { m.secs / self.winner_secs } else { 1.0 };
            out.push_str(&format!(
                "{:<50} {:>12.3} {:>9.2}x{}\n",
                m.choice.to_string(),
                m.secs * 1e6,
                ratio,
                mark
            ));
        }
        out
    }

    /// One JSON object, hand-rolled like every report in the workspace.
    pub fn to_json(&self) -> String {
        let measurements: Vec<String> = self
            .measurements
            .iter()
            .map(|m| format!("{{\"choice\":{},\"secs\":{:e}}}", m.choice.json(), m.secs))
            .collect();
        format!(
            concat!(
                "{{\"key\":{{{}}},\"cache_hit\":{},\"winner\":{},\"winner_secs\":{:e},",
                "\"model\":{},\"model_secs\":{:e},\"speedup_over_model\":{:.4},",
                "\"measurements\":[{}]}}"
            ),
            self.key.json_fields(),
            self.cache_hit,
            self.winner.json(),
            self.winner_secs,
            self.model.json(),
            self.model_secs,
            self.speedup_over_model(),
            measurements.join(","),
        )
    }
}

/// The search driver. Configure with the builder methods, then
/// [`Tuner::run`].
pub struct Tuner<'a> {
    a: &'a Csr,
    k: usize,
    width: usize,
    budget: TuneBudget,
    cfg: PartitionerConfig,
    cache_path: Option<PathBuf>,
}

impl<'a> Tuner<'a> {
    /// A tuner for `a` over `k` processors, workload width 1, the
    /// environment-aware default budget, no cache.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(a: &'a Csr, k: usize) -> Tuner<'a> {
        assert!(k >= 1, "tuning needs at least one processor");
        Tuner {
            a,
            k,
            width: 1,
            budget: TuneBudget::from_env(),
            cfg: PartitionerConfig::default(),
            cache_path: None,
        }
    }

    /// The workload batch width to tune for (default 1).
    pub fn width(mut self, width: usize) -> Self {
        assert!(width >= 1, "batch width must be at least 1");
        self.width = width;
        self
    }

    /// The measurement budget (default [`TuneBudget::from_env`]).
    pub fn budget(mut self, budget: TuneBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Partitioner knobs for every candidate partition (default
    /// [`PartitionerConfig::default`]). The cache assumes these: a
    /// replayed verdict re-partitions with the replaying caller's
    /// config, so tune and replay with the same one.
    pub fn partitioner_config(mut self, cfg: PartitionerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Persist and replay verdicts through the [`TuningCache`] at
    /// `path` (default: no persistence, every run searches).
    pub fn cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// The deterministic candidate shortlist the search will measure
    /// (before the budget's cap): every strategy the cost model would
    /// consider × the formats the compile-time row statistics shortlist
    /// × the kernel ISAs worth comparing (auto vs. forced-scalar, on
    /// AVX2 machines only) × sequential/pooled execution (the pool at
    /// the deduplicated thread-count shortlist) × batched/unbatched
    /// service.
    /// Exposed for inspection and tests; [`Tuner::run`] measures
    /// exactly these.
    pub fn candidates(&self) -> Vec<TunedChoice> {
        self.expand().1.into_iter().map(|(c, _)| c).collect()
    }

    /// Runs the search (or replays a cached verdict — a cache hit skips
    /// preparation and measurement entirely) and returns the verdict.
    pub fn run(self) -> TunedConfig {
        let key = ConfigKey::of(self.a, self.k, self.width);
        let mut cache = self.cache_path.as_ref().map(TuningCache::load);
        if let Some(c) = &cache {
            if let Some(e) = c.lookup(key) {
                return TunedConfig {
                    key,
                    winner: e.choice,
                    winner_secs: e.secs,
                    model: e.choice,
                    model_secs: e.secs,
                    measurements: Vec::new(),
                    cache_hit: true,
                };
            }
        }
        let tuned = self.search(key);
        if let Some(c) = &mut cache {
            c.insert(CacheEntry { key, choice: tuned.winner, secs: tuned.winner_secs });
            // Best-effort: an unwritable cache degrades to re-measuring
            // next run, it does not fail this one.
            let _ = c.store();
        }
        tuned
    }

    /// The model-driven candidate set: the shared [`Prepared`]
    /// artifacts plus each choice paired with the index of the one it
    /// runs on. Deterministic: the strategy shortlist is a pure
    /// function of matrix structure, the format shortlist of
    /// compile-time statistics, and the iteration order is fixed.
    fn expand(&self) -> (Vec<Prepared>, Vec<(TunedChoice, usize)>) {
        let mut preps: Vec<Prepared> = Vec::new();
        let mut cands: Vec<(TunedChoice, usize)> = Vec::new();
        let widths: Vec<usize> = if self.width > 1 { vec![self.width, 1] } else { vec![1] };
        // The ISA axis only exists where there are two ISAs to compare:
        // off-AVX2 machines Auto *is* scalar, so measuring both would
        // time the same code twice.
        let isas: Vec<KernelIsa> = if KernelIsa::avx2_available() {
            vec![KernelIsa::Auto, KernelIsa::Scalar]
        } else {
            vec![KernelIsa::Auto]
        };
        for s in Strategy::auto_candidates(self.a, self.k) {
            let base = self.prepare(s, KernelFormat::Auto);
            let kind = base.plan_kind();
            let backends = backend_shortlist(base.compiled(), self.k);
            let formats = format_shortlist(base.compiled());
            let base_idx = preps.len();
            preps.push(base);
            for f in formats {
                let fmt_idx = if f == KernelFormat::Auto {
                    base_idx
                } else {
                    let lowered = preps[base_idx].with_format(f);
                    preps.push(lowered);
                    preps.len() - 1
                };
                for &isa in &isas {
                    let idx = if isa == KernelIsa::Auto {
                        fmt_idx
                    } else {
                        // Re-lowering under another ISA is the cheap
                        // leg, like `with_format`.
                        let relowered = preps[fmt_idx].with_isa(isa);
                        preps.push(relowered);
                        preps.len() - 1
                    };
                    for &backend in &backends {
                        for &width in &widths {
                            cands.push((
                                TunedChoice {
                                    strategy: s,
                                    plan_kind: kind,
                                    format: f,
                                    isa,
                                    backend,
                                    width,
                                },
                                idx,
                            ));
                        }
                    }
                }
            }
        }
        (preps, cands)
    }

    fn prepare(&self, strategy: Strategy, format: KernelFormat) -> Prepared {
        Session::builder(self.a)
            .partitioner(strategy, self.k)
            .partitioner_config(self.cfg)
            .kernel_format(format)
            .prepare()
    }

    fn search(&self, key: ConfigKey) -> TunedConfig {
        let r = self.width;
        let (preps, mut cands) = self.expand();

        // The static models' combined pick for this workload — always
        // kept in the measured set, whatever the candidate cap says.
        // Its strategy is in the shortlist by construction (`auto_pick`
        // minimizes over `auto_candidates`), Auto format and the full
        // workload width are always expanded, and `Backend::auto`'s
        // pick is in the backend shortlist — so this scan always finds
        // it.
        let model_strategy = Strategy::auto_pick(self.a, self.k, &self.cfg).strategy;
        let model_pos = cands
            .iter()
            .position(|(c, idx)| {
                c.strategy == model_strategy
                    && c.format == KernelFormat::Auto
                    && c.isa == KernelIsa::Auto
                    && c.width == r
                    && c.backend == Backend::auto(preps[*idx].compiled())
            })
            .expect("the model pick is always a candidate");
        let model_cand = cands[model_pos];
        cands.truncate(self.budget.max_candidates.max(1));
        if !cands.contains(&model_cand) {
            cands.push(model_cand);
        }
        let model = model_cand.0;

        // Deterministic workload block: width-r row-major input, plus
        // its columns pre-extracted for width-1 candidates.
        let (nrows, ncols) = (self.a.nrows(), self.a.ncols());
        let x: Vec<f64> = (0..ncols * r).map(|i| 0.25 * ((i % 23) as f64) - 2.0).collect();
        let cols: Vec<Vec<f64>> =
            (0..r).map(|q| (0..ncols).map(|j| x[j * r + q]).collect()).collect();

        let mut measurements = Vec::with_capacity(cands.len());
        for (choice, idx) in &cands {
            let mut session = preps[*idx].session(choice.backend, choice.width);
            let secs = if choice.width == r {
                let mut y = vec![0.0; nrows * r];
                best_of(self.budget.trials, self.budget.iters, || {
                    session.apply_batch(&x, &mut y, r)
                })
            } else {
                let mut y = vec![0.0; nrows];
                best_of(self.budget.trials, self.budget.iters, || {
                    for xq in &cols {
                        session.apply(xq, &mut y);
                    }
                })
            };
            measurements.push(Measurement { choice: *choice, secs: secs.as_secs_f64() });
        }

        let winner = measurements
            .iter()
            .min_by(|x, y| x.secs.total_cmp(&y.secs))
            .expect("candidate set is never empty");
        let model_secs = measurements
            .iter()
            .find(|m| m.choice == model)
            .expect("the model pick is always measured")
            .secs;
        TunedConfig {
            key,
            winner: winner.choice,
            winner_secs: winner.secs,
            model,
            model_secs,
            measurements: measurements.clone(),
            cache_hit: false,
        }
    }
}

/// Kernel formats worth measuring, from the Auto compile's row
/// statistics: the two unconditional baselines (per-kernel Auto and
/// plain CSR), SELL when the padding overhead is plausible, dense
/// row-split when enough entries sit in dense runs.
fn format_shortlist(cp: &CompiledPlan) -> Vec<KernelFormat> {
    let mut formats = vec![KernelFormat::Auto, KernelFormat::CsrSlice];
    let stats = cp.kernel_stats();
    let ops: f64 = stats.iter().map(|s| s.ops as f64).sum();
    if ops > 0.0 {
        let sell_fill = stats.iter().map(|s| s.sell_fill * s.ops as f64).sum::<f64>() / ops;
        let dense_frac = stats.iter().map(|s| s.dense_frac * s.ops as f64).sum::<f64>() / ops;
        let rows = stats.iter().map(|s| s.rows).max().unwrap_or(0);
        if sell_fill <= 1.5 && rows >= 32 {
            formats.push(KernelFormat::DEFAULT_SELL);
        }
        if dense_frac >= 0.25 {
            formats.push(KernelFormat::DenseRowSplit);
        }
    }
    formats
}

/// Backends worth measuring: sequential always; the worker pool once
/// there is parallelism to exploit (`k > 1` — with one rank the pool is
/// pure overhead and [`Backend::auto`] can never pick it either). The
/// pool carries the thread-count axis: the default worker count (one
/// per rank capped at cores), half the machine, and exactly one per
/// rank — deduplicated by the worker count each would actually spawn,
/// so a small machine contributes one pool candidate, not three
/// identical ones.
fn backend_shortlist(_cp: &CompiledPlan, k: usize) -> Vec<Backend> {
    let mut backends = vec![Backend::CompiledSeq];
    if k > 1 {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut spawned: Vec<usize> = Vec::new();
        // 0 is the default (one per rank capped at cores); `cores / 2`
        // leaves the machine half free; `k` is one worker per rank
        // uncapped (distinct from the default only when k > cores —
        // oversubscription sometimes pays on SMT machines).
        for t in [0, cores / 2, k] {
            // Mirror `ParallelEngine::with_options`: 0 means "one per
            // rank, capped at cores".
            let eff = if t == 0 { k.min(cores).max(1) } else { t };
            if !spawned.contains(&eff) {
                spawned.push(eff);
                backends.push(Backend::CompiledPool { threads: t, pin: false });
            }
        }
    }
    backends
}
