//! The persistent tuning cache: measured winners on disk, keyed by the
//! shared [`ConfigKey`], surviving process restarts.
//!
//! The whole point of measuring is to not measure twice: a tuning run
//! costs real wall time (dozens of timed SpMV executions), so its
//! verdict is written to a small versioned JSON file and the next
//! [`Tuner::run`](crate::Tuner::run) over the same (matrix, k, width)
//! returns it without touching a clock. The file is hand-rolled JSON in
//! the same style as the quality and profile reports — and because this
//! is the one artifact the workspace reads *back*, a matching
//! hand-rolled parser lives here too. Robustness beats fidelity on the
//! read path: a missing file, a corrupted file, a version-mismatched
//! file or an unparseable entry all degrade to "no cached verdict"
//! (the tuner falls back to searching, or its caller to the model
//! pick) — never to a panic.

use std::path::{Path, PathBuf};

use s2d::ConfigKey;

use crate::tuner::TunedChoice;

/// Format version stamped into every cache file. Bump it whenever the
/// entry layout, the measurement protocol or the candidate space
/// changes meaning — files carrying any other version are ignored
/// wholesale, so stale measurements can never override a fresher
/// model.
///
/// History: 1 = the original (strategy, plan, format, backend, width)
/// space; 2 added the kernel-ISA axis and the pool thread-count
/// shortlist.
pub const TUNER_VERSION: u32 = 2;

/// One measured verdict: for this (matrix, k, width), this
/// configuration won at this per-application cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheEntry {
    /// The (matrix fingerprint, processor count, workload batch width)
    /// the measurement was taken for.
    pub key: ConfigKey,
    /// The measured winner.
    pub choice: TunedChoice,
    /// The winner's measured seconds per workload application.
    pub secs: f64,
}

/// An on-disk collection of [`CacheEntry`] verdicts bound to one file
/// path. Load, look up / insert, store — the tuner drives all three;
/// the serving layer only loads and looks up.
#[derive(Debug)]
pub struct TuningCache {
    path: PathBuf,
    entries: Vec<CacheEntry>,
}

impl TuningCache {
    /// Loads the cache at `path`. A missing file is an empty cache; a
    /// corrupted or version-mismatched file is *also* an empty cache —
    /// the bad file is simply overwritten by the next
    /// [`TuningCache::store`]. This method never panics and never
    /// returns an error: on the read path, every failure mode means
    /// "measure again".
    pub fn load(path: impl Into<PathBuf>) -> TuningCache {
        let path = path.into();
        let entries =
            std::fs::read_to_string(&path).ok().and_then(|s| parse_file(&s)).unwrap_or_default();
        TuningCache { path, entries }
    }

    /// The file this cache loads from and stores to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cached verdict for `key`, if one survived loading.
    pub fn lookup(&self, key: ConfigKey) -> Option<&CacheEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Inserts `entry`, replacing any previous verdict for its key.
    pub fn insert(&mut self, entry: CacheEntry) {
        match self.entries.iter_mut().find(|e| e.key == entry.key) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Writes the cache back to its path (creating parent directories
    /// as needed). Unlike the read path this *does* surface I/O errors
    /// — a caller that asked to persist should know when it didn't —
    /// but the tuner treats a failed store as best-effort and carries
    /// on with its in-memory verdict.
    pub fn store(&self) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&self.path, self.to_json())
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The serialized file content: one versioned JSON object.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self.entries.iter().map(entry_json).collect();
        format!("{{\"version\":{},\"entries\":[{}]}}", TUNER_VERSION, entries.join(","))
    }
}

/// One entry as JSON. The enum axes serialize through their canonical
/// `Display` labels and come back through `FromStr` — the same
/// round-trip the CLI flags use, so the cache can never invent a
/// spelling the rest of the workspace doesn't parse. The winner's own
/// batch width is `choice_width` (it may legitimately differ from the
/// workload width in the key: "serve r requests one at a time" is a
/// measurable candidate).
fn entry_json(e: &CacheEntry) -> String {
    format!(
        concat!(
            "{{{},\"strategy\":\"{}\",\"plan_kind\":\"{}\",\"format\":\"{}\",",
            "\"isa\":\"{}\",\"backend\":\"{}\",\"choice_width\":{},\"secs\":{:e}}}"
        ),
        e.key.json_fields(),
        e.choice.strategy,
        e.choice.plan_kind,
        e.choice.format,
        e.choice.isa,
        e.choice.backend,
        e.choice.width,
        e.secs,
    )
}

/// Parses a whole cache file. `None` means "treat as empty": not JSON
/// we wrote, or a version we don't speak.
fn parse_file(s: &str) -> Option<Vec<CacheEntry>> {
    let version: u32 = field(s, "version")?.parse().ok()?;
    if version != TUNER_VERSION {
        return None;
    }
    let list = entries_block(s)?;
    // Individually unparseable entries are dropped, not fatal — one
    // truncated line must not discard every other matrix's verdict.
    Some(objects(list).into_iter().filter_map(parse_entry).collect())
}

fn parse_entry(obj: &str) -> Option<CacheEntry> {
    Some(CacheEntry {
        key: ConfigKey {
            fingerprint: field(obj, "fingerprint")?.parse().ok()?,
            k: field(obj, "k")?.parse().ok()?,
            width: field(obj, "width")?.parse().ok()?,
        },
        choice: TunedChoice {
            strategy: str_field(obj, "strategy")?.parse().ok()?,
            plan_kind: str_field(obj, "plan_kind")?.parse().ok()?,
            format: str_field(obj, "format")?.parse().ok()?,
            isa: str_field(obj, "isa")?.parse().ok()?,
            backend: str_field(obj, "backend")?.parse().ok()?,
            width: field(obj, "choice_width")?.parse().ok()?,
        },
        secs: field(obj, "secs")?.parse().ok()?,
    })
}

/// The raw text of `"key":<value>` up to the next delimiter. Enough of
/// a JSON scanner for the flat objects this crate writes — no nested
/// containers inside values, no escaped strings.
fn field<'s>(obj: &'s str, key: &str) -> Option<&'s str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// [`field`] for string values: the content between the quotes.
fn str_field<'s>(obj: &'s str, key: &str) -> Option<&'s str> {
    field(obj, key)?.strip_prefix('"')?.strip_suffix('"')
}

/// The text inside `"entries":[ ... ]` (entry objects hold no arrays,
/// so the first `]` closes the list).
fn entries_block(s: &str) -> Option<&str> {
    let start = s.find("\"entries\":[")? + "\"entries\":[".len();
    let rest = &s[start..];
    Some(&rest[..rest.find(']')?])
}

/// Splits a list body into its top-level `{...}` chunks by brace depth.
fn objects(list: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in list.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(&list[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d::{Backend, KernelFormat, KernelIsa, PlanKind, Strategy};

    fn entry(fp: u64, secs: f64) -> CacheEntry {
        CacheEntry {
            key: ConfigKey { fingerprint: fp, k: 4, width: 8 },
            choice: TunedChoice {
                strategy: Strategy::OneDRow,
                plan_kind: PlanKind::TwoPhase,
                format: KernelFormat::DEFAULT_SELL,
                isa: KernelIsa::Scalar,
                backend: Backend::CompiledPool { threads: 0, pin: false },
                width: 1,
            },
            secs,
        }
    }

    #[test]
    fn json_round_trips_every_axis() {
        let e = entry(0xdead_beef, 1.25e-4);
        let json = format!("{{\"version\":{TUNER_VERSION},\"entries\":[{}]}}", entry_json(&e));
        let back = parse_file(&json).expect("own output parses");
        assert_eq!(back, vec![e]);
    }

    #[test]
    fn insert_replaces_same_key_and_lookup_misses_other_keys() {
        let mut c = TuningCache { path: PathBuf::from("unused.json"), entries: Vec::new() };
        c.insert(entry(1, 0.5));
        c.insert(entry(1, 0.25)); // re-tune: replace, don't duplicate
        c.insert(entry(2, 0.75));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(entry(1, 0.0).key).unwrap().secs, 0.25);
        assert!(c.lookup(ConfigKey { fingerprint: 1, k: 4, width: 4 }).is_none(), "width differs");
    }

    #[test]
    fn garbage_and_version_mismatch_degrade_to_empty() {
        assert!(parse_file("not json at all").is_none());
        assert!(parse_file("{\"version\":999,\"entries\":[]}").is_none(), "future version");
        // A file with one broken entry keeps the good one.
        let good = entry_json(&entry(7, 0.125));
        let json =
            format!("{{\"version\":{TUNER_VERSION},\"entries\":[{{\"fingerprint\":}},{good}]}}");
        let back = parse_file(&json).expect("file itself is well-formed");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].key.fingerprint, 7);
    }
}
