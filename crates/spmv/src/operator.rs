//! The unified operator abstraction over every SpMV execution backend.
//!
//! A [`SpmvOperator`] is a *stateful, reusable* `y = A·x` (and
//! `Y = A·X`) kernel: whatever setup a backend needs — plan
//! interpretation state, compiled flat buffers, a worker pool — is paid
//! once when the operator is built and reused across every call.
//! `apply` and `apply_batch` write into **caller-owned output buffers**,
//! so the steady-state iteration loop of a solver performs no
//! per-iteration allocation on backends that support it.
//!
//! Two interpreting operators live here ([`MailboxOperator`],
//! [`ThreadedOperator`]); the compiled operators and the `Backend`
//! selector live in `s2d-engine` (`s2d_engine::Backend`), which builds
//! any backend's operator from the same [`SpmvPlan`]. Solvers in
//! `s2d-solver` are generic over this trait, so every solver runs on
//! every backend.

use crate::exec::MailboxState;
use crate::plan::SpmvPlan;

/// A reusable SpMV kernel bound to one `(matrix, partition, plan)`
/// triple.
///
/// # Contract
///
/// * `apply(x, y)` computes `y = A·x`; `x.len() == ncols()`,
///   `y.len() == nrows()`. `y` is fully overwritten.
/// * `apply_batch(x, y, r)` computes `Y = A·X` for `r` right-hand
///   sides in **row-major block layout**: global index `g`, column `q`
///   at `x[g*r + q]` (`x.len() == ncols()*r`, `y.len() == nrows()*r`).
///   Per column the result must agree with `apply` on that column —
///   bitwise when [`SpmvOperator::deterministic`] returns `true`.
/// * Repeated `apply` calls with the same input yield the same output —
///   bitwise for deterministic backends, within floating-point
///   tolerance otherwise (e.g. a backend whose message arrival order
///   varies between runs).
///
/// Implementations may grow internal buffers on the first call at a new
/// batch width; steady-state calls at an already-seen width must not
/// allocate per iteration (interpreting oracles are exempt — they are
/// correctness references, not fast paths).
pub trait SpmvOperator {
    /// Output dimension (rows of `A`).
    fn nrows(&self) -> usize;

    /// Input dimension (columns of `A`).
    fn ncols(&self) -> usize;

    /// `y = A·x` into the caller's buffer.
    fn apply(&mut self, x: &[f64], y: &mut [f64]);

    /// `Y = A·X` over `r` right-hand sides, row-major blocks.
    ///
    /// The default runs the batch column by column through [`apply`]
    /// using one scratch column pair allocated per call (not per
    /// column); backends with a native batched path override this.
    ///
    /// [`apply`]: SpmvOperator::apply
    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        apply_batch_columnwise(self, x, y, r);
    }

    /// `Y = A^iters · X`: `iters` chained batched applications in one
    /// call (power-iteration shape, no normalization). Requires a
    /// square operator for `iters > 1`.
    ///
    /// The default ping-pongs through one internally allocated carrier
    /// block; backends with a native chained path (e.g. the compiled
    /// worker pool, whose workers stay hot across iterations) override
    /// it to keep the whole chain inside one dispatch.
    fn apply_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        assert!(iters >= 1, "at least one iteration");
        if iters > 1 {
            assert_eq!(self.nrows(), self.ncols(), "chained SpMV needs a square operator");
        }
        self.apply_batch(x, y, r);
        if iters > 1 {
            let mut carrier = vec![0.0; y.len()];
            for _ in 1..iters {
                carrier.copy_from_slice(y);
                self.apply_batch(&carrier, y, r);
            }
        }
    }

    /// Whether repeated applications are bitwise reproducible (true for
    /// every fixed-schedule backend; false when accumulation order
    /// depends on thread scheduling).
    fn deterministic(&self) -> bool {
        true
    }

    /// Planned compute multiply-adds per internal worker per iteration,
    /// for backends with a fixed worker schedule (the compiled pool);
    /// `None` for backends without one. `max/mean` of the returned
    /// vector is the schedule's compute imbalance.
    fn worker_loads(&self) -> Option<Vec<u64>> {
        None
    }
}

/// Forwarding impl so `&mut O` is itself an operator — lets callers
/// inject a borrowed operator into generic consumers (solvers, the
/// `Session` facade) without giving up ownership.
impl<O: SpmvOperator + ?Sized> SpmvOperator for &mut O {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }

    fn ncols(&self) -> usize {
        (**self).ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        (**self).apply_batch(x, y, r)
    }

    fn apply_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        (**self).apply_batch_iters(x, y, r, iters)
    }

    fn deterministic(&self) -> bool {
        (**self).deterministic()
    }

    fn worker_loads(&self) -> Option<Vec<u64>> {
        (**self).worker_loads()
    }
}

impl<O: SpmvOperator + ?Sized> SpmvOperator for Box<O> {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }

    fn ncols(&self) -> usize {
        (**self).ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        (**self).apply_batch(x, y, r)
    }

    fn apply_batch_iters(&mut self, x: &[f64], y: &mut [f64], r: usize, iters: usize) {
        (**self).apply_batch_iters(x, y, r, iters)
    }

    fn deterministic(&self) -> bool {
        (**self).deterministic()
    }

    fn worker_loads(&self) -> Option<Vec<u64>> {
        (**self).worker_loads()
    }
}

/// Shared column-by-column batch fallback: one scratch column pair for
/// all `r` passes (no per-column allocation).
pub fn apply_batch_columnwise<O: SpmvOperator + ?Sized>(
    op: &mut O,
    x: &[f64],
    y: &mut [f64],
    r: usize,
) {
    assert!(r >= 1, "batch width must be at least 1");
    let (n_in, n_out) = (op.ncols(), op.nrows());
    assert_eq!(x.len(), n_in * r, "input block length mismatch");
    assert_eq!(y.len(), n_out * r, "output block length mismatch");
    let mut xcol = vec![0.0f64; n_in];
    let mut ycol = vec![0.0f64; n_out];
    for q in 0..r {
        for g in 0..n_in {
            xcol[g] = x[g * r + q];
        }
        op.apply(&xcol, &mut ycol);
        for g in 0..n_out {
            y[g * r + q] = ycol[g];
        }
    }
}

/// Checks one operator call's vector shapes against a plan.
fn check_shapes(plan: &SpmvPlan, x: &[f64], y: &[f64], r: usize) {
    assert!(r >= 1, "batch width must be at least 1");
    assert_eq!(x.len(), plan.ncols * r, "input length mismatch");
    assert_eq!(y.len(), plan.nrows * r, "output length mismatch");
}

/// The deterministic mailbox interpreter as an operator.
///
/// Holds the per-processor interpretation state ([`MailboxState`])
/// across calls, so repeated applications reuse the hash maps and the
/// flat capture buffer instead of reallocating them — the convenience
/// [`SpmvPlan::execute_mailbox`] method pays that setup on every call.
pub struct MailboxOperator {
    plan: std::sync::Arc<SpmvPlan>,
    state: MailboxState,
}

impl MailboxOperator {
    /// Builds the operator over a shared plan.
    pub fn new(plan: std::sync::Arc<SpmvPlan>) -> MailboxOperator {
        let state = MailboxState::for_plan(&plan);
        MailboxOperator { plan, state }
    }

    /// The plan this operator interprets.
    pub fn plan(&self) -> &SpmvPlan {
        &self.plan
    }
}

impl SpmvOperator for MailboxOperator {
    fn nrows(&self) -> usize {
        self.plan.nrows
    }

    fn ncols(&self) -> usize {
        self.plan.ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        check_shapes(&self.plan, x, y, 1);
        crate::exec::execute_mailbox_into(&self.plan, x, y, &mut self.state);
    }
}

/// The threaded executor (one OS thread per virtual processor over the
/// message-passing runtime) as an operator.
///
/// Thread spawn is inherent to each call — this is the concurrent
/// *validation* path, not a fast path — and message arrival order makes
/// accumulation order run-dependent, so
/// [`deterministic`](SpmvOperator::deterministic) is `false`: repeated
/// applications agree within floating-point tolerance, not bitwise.
pub struct ThreadedOperator {
    plan: std::sync::Arc<SpmvPlan>,
}

impl ThreadedOperator {
    /// Builds the operator over a shared plan.
    pub fn new(plan: std::sync::Arc<SpmvPlan>) -> ThreadedOperator {
        ThreadedOperator { plan }
    }

    /// The plan this operator executes.
    pub fn plan(&self) -> &SpmvPlan {
        &self.plan
    }
}

impl SpmvOperator for ThreadedOperator {
    fn nrows(&self) -> usize {
        self.plan.nrows
    }

    fn ncols(&self) -> usize {
        self.plan.ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        check_shapes(&self.plan, x, y, 1);
        crate::threaded::execute_threaded_into(&self.plan, x, y);
    }

    fn deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};
    use std::sync::Arc;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    #[test]
    fn mailbox_operator_matches_serial_and_is_bitwise_stable() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::single_phase(&a, &p));
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.5 - 3.0).collect();
        let mut op = MailboxOperator::new(plan);
        let mut y = vec![0.0; a.nrows()];
        op.apply(&x, &mut y);
        assert_close(&y, &a.spmv_alloc(&x));
        let mut y2 = vec![9.0; a.nrows()];
        op.apply(&x, &mut y2);
        assert_eq!(y, y2, "deterministic operator must be bitwise stable");
    }

    #[test]
    fn threaded_operator_matches_serial() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::two_phase(&a, &p));
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 / (j + 1) as f64).collect();
        let mut op = ThreadedOperator::new(plan);
        assert!(!op.deterministic());
        let mut y = vec![0.0; a.nrows()];
        op.apply(&x, &mut y);
        assert_close(&y, &a.spmv_alloc(&x));
    }

    #[test]
    fn columnwise_batch_matches_apply_per_column() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = Arc::new(SpmvPlan::single_phase(&a, &p));
        let mut op = MailboxOperator::new(plan);
        let (n, r) = (a.ncols(), 3);
        let x: Vec<f64> = (0..n * r).map(|i| ((i * 31) % 17) as f64 / 5.0 - 1.5).collect();
        let mut y = vec![0.0; a.nrows() * r];
        op.apply_batch(&x, &mut y, r);
        for q in 0..r {
            let xq: Vec<f64> = (0..n).map(|g| x[g * r + q]).collect();
            let mut yq = vec![0.0; a.nrows()];
            op.apply(&xq, &mut yq);
            let got: Vec<f64> = (0..a.nrows()).map(|g| y[g * r + q]).collect();
            assert_eq!(got, yq, "column {q} must match single-RHS apply bitwise");
        }
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn shape_mismatch_is_rejected() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let mut op = MailboxOperator::new(Arc::new(SpmvPlan::single_phase(&a, &p)));
        let mut y = vec![0.0; a.nrows()];
        op.apply(&[1.0], &mut y);
    }
}
