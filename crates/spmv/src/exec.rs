//! Deterministic mailbox executor.
//!
//! Interprets a plan phase by phase on `K` virtual processor memories.
//! Communication phases are simultaneous: every send captures the
//! pre-phase state, then all deliveries land. Partial-`y` words are
//! *moved* (drained at the sender, accumulated at the receiver), which is
//! what makes intermediate aggregation in s2D-b work for free.

use std::collections::HashMap;

use crate::plan::{PlanPhase, SpmvPlan};

/// Reusable interpretation state for the mailbox executor: per-processor
/// `x`/`y` hash maps and the flat communication capture buffer.
///
/// Building the state once (see
/// [`MailboxOperator`](crate::operator::MailboxOperator)) and reusing it
/// across calls keeps the per-call cost to clearing the maps instead of
/// reallocating them.
#[derive(Clone, Debug)]
pub struct MailboxState {
    xbuf: Vec<HashMap<u32, f64>>,
    ybuf: Vec<HashMap<u32, f64>>,
    captured: Vec<f64>,
}

impl MailboxState {
    /// Allocates state sized for `plan` (capture buffer sized for the
    /// largest communication phase up front).
    pub fn for_plan(plan: &SpmvPlan) -> MailboxState {
        let max_words = plan
            .phases
            .iter()
            .map(|ph| match ph {
                PlanPhase::Comm(msgs) => msgs.iter().map(|m| m.x_cols.len() + m.y_rows.len()).sum(),
                PlanPhase::Compute(_) => 0,
            })
            .max()
            .unwrap_or(0);
        MailboxState {
            xbuf: vec![HashMap::new(); plan.k],
            ybuf: vec![HashMap::new(); plan.k],
            captured: Vec::with_capacity(max_words),
        }
    }
}

/// Executes `plan` on input `x`, writing the assembled result into the
/// caller's `y` buffer (`y.len() == plan.nrows`, fully overwritten).
/// `state` is cleared and reused — no per-call map allocation.
///
/// # Panics
/// Panics if a multiply-add needs an `x` value its processor does not
/// hold — that is a plan construction bug, not a data error.
pub fn execute_mailbox_into(plan: &SpmvPlan, x: &[f64], y: &mut [f64], state: &mut MailboxState) {
    assert_eq!(x.len(), plan.ncols, "input length mismatch");
    assert_eq!(y.len(), plan.nrows, "output length mismatch");
    assert_eq!(state.xbuf.len(), plan.k, "state belongs to a different plan");
    let MailboxState { xbuf, ybuf, captured } = state;
    for buf in xbuf.iter_mut().chain(ybuf.iter_mut()) {
        buf.clear();
    }
    for (j, &xj) in x.iter().enumerate() {
        xbuf[plan.x_part[j] as usize].insert(j as u32, xj);
    }

    for (phase_idx, phase) in plan.phases.iter().enumerate() {
        match phase {
            PlanPhase::Compute(tasks) => {
                for (p, list) in tasks.iter().enumerate() {
                    for t in list {
                        let xv = *xbuf[p].get(&t.col).unwrap_or_else(|| {
                            panic!(
                                "processor {p} lacks x[{}] in phase {phase_idx}: plan bug",
                                t.col
                            )
                        });
                        *ybuf[p].entry(t.row).or_insert(0.0) += t.val * xv;
                    }
                }
            }
            PlanPhase::Comm(msgs) => {
                // Simultaneous exchange: capture the whole phase once
                // into the flat buffer (draining moved partials), then
                // deliver. The message specs themselves carry the ids,
                // so the capture holds values only — no per-message
                // allocation.
                captured.clear();
                for m in msgs {
                    let src = m.src as usize;
                    for &j in &m.x_cols {
                        captured.push(*xbuf[src].get(&j).unwrap_or_else(|| {
                            panic!("processor {src} lacks x[{j}] to send in phase {phase_idx}")
                        }));
                    }
                    for &i in &m.y_rows {
                        captured.push(ybuf[src].remove(&i).unwrap_or_else(|| {
                            panic!(
                                "processor {src} lacks partial y[{i}] to send in phase {phase_idx}"
                            )
                        }));
                    }
                }
                let mut w = 0;
                for m in msgs {
                    let dst = m.dst as usize;
                    for &j in &m.x_cols {
                        xbuf[dst].insert(j, captured[w]);
                        w += 1;
                    }
                    for &i in &m.y_rows {
                        *ybuf[dst].entry(i).or_insert(0.0) += captured[w];
                        w += 1;
                    }
                }
            }
        }
    }

    for (i, yi) in y.iter_mut().enumerate() {
        *yi = *ybuf[plan.y_part[i] as usize].get(&(i as u32)).unwrap_or(&0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SpmvPlan;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};
    use s2d_core::partition::SpmvPartition;
    use s2d_sparse::{Coo, Csr};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    fn x_for(n: usize) -> Vec<f64> {
        (0..n).map(|j| (j as f64) * 0.5 - 3.0).collect()
    }

    /// Out-param execution with throwaway state (test convenience).
    fn mailbox(plan: &SpmvPlan, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; plan.nrows];
        execute_mailbox_into(plan, x, &mut y, &mut MailboxState::for_plan(plan));
        y
    }

    #[test]
    fn fig1_single_phase_matches_serial() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x = x_for(a.ncols());
        let y = mailbox(&SpmvPlan::single_phase(&a, &p), &x);
        assert_close(&y, &a.spmv_alloc(&x));
    }

    #[test]
    fn fig1_two_phase_matches_serial() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x = x_for(a.ncols());
        let y = mailbox(&SpmvPlan::two_phase(&a, &p), &x);
        assert_close(&y, &a.spmv_alloc(&x));
    }

    #[test]
    fn fig1_mesh_matches_serial() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x = x_for(a.ncols());
        for (pr, pc) in [(1, 3), (3, 1)] {
            let y = mailbox(&SpmvPlan::mesh(&a, &p, pr, pc), &x);
            assert_close(&y, &a.spmv_alloc(&x));
        }
    }

    #[test]
    fn empty_rows_yield_zero() {
        let a = Coo::from_pattern(3, 3, &[(0, 0)]).to_csr();
        let p = SpmvPartition::rowwise(&a, vec![0, 1, 1], vec![0, 0, 1], 2);
        let x = vec![2.0, 3.0, 4.0];
        let y = mailbox(&SpmvPlan::single_phase(&a, &p), &x);
        assert_eq!(y, vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_under_scattered_partition() {
        let a = Csr::identity(8);
        let y_part: Vec<u32> = (0..8).map(|i| (i % 4) as u32).collect();
        let x_part: Vec<u32> = (0..8).map(|i| ((i + 1) % 4) as u32).collect();
        // Identity nonzero (i,i): owner must be y_part[i] or x_part[i].
        let p = SpmvPartition::rowwise(&a, y_part, x_part, 4);
        let x = x_for(8);
        let y = mailbox(&SpmvPlan::single_phase(&a, &p), &x);
        assert_close(&y, &x);
    }

    #[test]
    #[should_panic(expected = "plan bug")]
    fn missing_x_value_is_a_plan_bug() {
        use crate::plan::{MultTask, PlanPhase};
        // Hand-build a broken plan: proc 0 multiplies with x[1] it never
        // receives.
        let plan = SpmvPlan {
            k: 2,
            nrows: 2,
            ncols: 2,
            x_part: vec![0, 1],
            y_part: vec![0, 1],
            phases: vec![PlanPhase::Compute(vec![
                vec![MultTask { row: 0, col: 1, val: 1.0 }],
                vec![],
            ])],
        };
        let _ = mailbox(&plan, &[1.0, 2.0]);
    }

    #[test]
    fn reused_state_matches_fresh_state() {
        // One MailboxState across calls (the MailboxOperator pattern)
        // must give the same answer as a throwaway state per call.
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        let mut state = MailboxState::for_plan(&plan);
        for seed in 0..3 {
            let x: Vec<f64> = (0..a.ncols()).map(|j| ((j + seed) % 5) as f64 - 2.0).collect();
            let mut y = vec![0.0; plan.nrows];
            execute_mailbox_into(&plan, &x, &mut y, &mut state);
            assert_eq!(y, mailbox(&plan, &x));
        }
    }
}
