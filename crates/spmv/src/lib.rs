//! Parallel SpMV plans and executors.
//!
//! A [`plan::SpmvPlan`] is a bulk-synchronous program: an alternating
//! sequence of per-processor compute phases (multiply-add task lists) and
//! communication phases (messages carrying `x` values and partial-`y`
//! values). One plan language expresses every algorithm in the paper:
//!
//! * **row-parallel 1D** — expand `x`, compute (a degenerate s2D plan);
//! * **two-phase 2D** — expand `x`, compute, fold `ȳ` (Section I);
//! * **single-phase s2D** — precompute, fused Expand-and-Fold, compute
//!   (Section III);
//! * **mesh-routed s2D-b** — precompute, two mesh hops with partial-sum
//!   aggregation at intermediates, compute (Section VI-B).
//!
//! Executors: [`exec::execute_mailbox_into`] (deterministic, sequential
//! interpretation — works for any `K`) and
//! [`threaded::execute_threaded_into`] (one OS thread per virtual
//! processor, crossbeam channels — the concurrent validation path).
//!
//! The [`operator::SpmvOperator`] trait unifies these interpreting
//! executors with the compiled backends in `s2d-engine` behind one
//! stateful `apply`/`apply_batch` interface writing into caller-owned
//! buffers; `s2d_engine::Backend` selects among all of them, and the
//! `s2d` facade crate's `Session` builder wires matrix + partition +
//! plan kind + backend together fluently.

pub mod bridge;
pub mod exec;
pub mod operator;
pub mod plan;
pub mod threaded;

pub use bridge::{simulate_plan, to_phase_specs};
pub use operator::{apply_batch_columnwise, MailboxOperator, SpmvOperator, ThreadedOperator};
pub use plan::{MsgSpec, MultTask, PlanKind, PlanPhase, RowProfile, SpmvPlan};
