//! Bridge from executable plans to the machine model.

use s2d_sim::{simulate, MachineModel, PhaseSpec, SimReport};

use crate::plan::{PlanPhase, SpmvPlan};

/// Converts a plan into machine-model phase specifications: compute
/// phases become per-processor multiply-add counts, communication phases
/// become `(src, dst, words)` message lists.
pub fn to_phase_specs(plan: &SpmvPlan) -> Vec<PhaseSpec> {
    plan.phases
        .iter()
        .map(|phase| match phase {
            PlanPhase::Compute(tasks) => {
                PhaseSpec::compute_only(tasks.iter().map(|t| t.len() as u64).collect())
            }
            PlanPhase::Comm(msgs) => PhaseSpec::comm_only(
                plan.k,
                msgs.iter().map(|m| (m.src, m.dst, m.words())).collect(),
            ),
        })
        .collect()
}

/// Simulates the plan on `model`; the serial reference is one multiply-add
/// per nonzero.
pub fn simulate_plan(plan: &SpmvPlan, model: &MachineModel) -> SimReport {
    simulate(plan.k, &to_phase_specs(plan), plan.total_ops(), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SpmvPlan;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};

    #[test]
    fn phase_specs_mirror_plan_shape() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        let specs = to_phase_specs(&plan);
        assert_eq!(specs.len(), 3);
        let total: u64 = specs.iter().flat_map(|s| s.compute.iter()).sum();
        assert_eq!(total, a.nnz() as u64);
    }

    #[test]
    fn fused_plan_is_never_slower_than_two_phase_in_latency() {
        // With a latency-only machine the single-phase plan cannot lose:
        // it sends the same words in at most as many messages.
        let a = fig1_matrix();
        let p = fig1_partition();
        let m = MachineModel { alpha: 1.0, beta: 0.0, gamma: 0.0 };
        let single = simulate_plan(&SpmvPlan::single_phase(&a, &p), &m);
        let two = simulate_plan(&SpmvPlan::two_phase(&a, &p), &m);
        assert!(single.parallel_time <= two.parallel_time + 1e-12);
    }

    #[test]
    fn speedup_is_finite_and_positive() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let r = simulate_plan(&SpmvPlan::single_phase(&a, &p), &MachineModel::cray_xe6());
        assert!(r.speedup() > 0.0);
        assert!(r.speedup().is_finite());
    }
}
