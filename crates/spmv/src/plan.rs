//! The SpMV plan language and the four plan builders.

use s2d_core::comm::{comm_requirements, single_phase_messages, CommRequirements, CommStats};
use s2d_core::mesh::MeshRouting;
use s2d_core::partition::SpmvPartition;
use s2d_sparse::Csr;

/// One multiply-add: `ȳ[row] += val · x[col]`, executed by the processor
/// that owns the task.
#[derive(Clone, Copy, Debug)]
pub struct MultTask {
    /// Output row.
    pub row: u32,
    /// Input column.
    pub col: u32,
    /// Matrix value.
    pub val: f64,
}

/// A message: `src` ships the listed `x` values and drains the listed
/// partial-`y` accumulators to `dst` (which adds them into its own).
#[derive(Clone, Debug)]
pub struct MsgSpec {
    /// Sender.
    pub src: u32,
    /// Receiver.
    pub dst: u32,
    /// Columns whose `x` value travels.
    pub x_cols: Vec<u32>,
    /// Rows whose partial `ȳ` travels (moved, not copied).
    pub y_rows: Vec<u32>,
}

impl MsgSpec {
    /// Message size in words.
    pub fn words(&self) -> u64 {
        (self.x_cols.len() + self.y_rows.len()) as u64
    }
}

/// A bulk-synchronous phase of the plan.
#[derive(Clone, Debug)]
pub enum PlanPhase {
    /// Per-processor multiply-add lists (indexed by processor).
    Compute(Vec<Vec<MultTask>>),
    /// Simultaneous message exchange.
    Comm(Vec<MsgSpec>),
}

/// A complete bulk-synchronous SpMV program for `K` virtual processors.
#[derive(Clone, Debug)]
pub struct SpmvPlan {
    /// Number of processors.
    pub k: usize,
    /// Output size.
    pub nrows: usize,
    /// Input size.
    pub ncols: usize,
    /// Owner of each `x_j` (initial placement of the input).
    pub x_part: Vec<u32>,
    /// Owner of each `y_i` (final placement of the output).
    pub y_part: Vec<u32>,
    /// The program.
    pub phases: Vec<PlanPhase>,
}

/// Splits the owned nonzeros into (precompute, rest) per processor:
/// precompute = `x` local and `y` non-local (computed before the fused
/// communication), rest = `y` local.
fn split_tasks(a: &Csr, p: &SpmvPartition) -> (Vec<Vec<MultTask>>, Vec<Vec<MultTask>>) {
    let mut pre: Vec<Vec<MultTask>> = vec![Vec::new(); p.k];
    let mut rest: Vec<Vec<MultTask>> = vec![Vec::new(); p.k];
    for i in 0..a.nrows() {
        let yi = p.y_part[i];
        for e in a.row_range(i) {
            let j = a.colind()[e];
            let owner = p.nz_owner[e] as usize;
            let task = MultTask { row: i as u32, col: j, val: a.values()[e] };
            if p.y_part[i] == p.nz_owner[e] {
                rest[owner].push(task);
            } else {
                debug_assert_eq!(
                    p.x_part[j as usize], p.nz_owner[e],
                    "nonzero ({i},{j}) violates the s2D constraint"
                );
                pre[owner].push(task);
            }
            let _ = yi;
        }
    }
    (pre, rest)
}

/// Builds combined `[x̂, ŷ]` messages from requirement lists.
fn combined_messages(reqs: &CommRequirements) -> Vec<MsgSpec> {
    use std::collections::BTreeMap;
    let mut by_pair: BTreeMap<(u32, u32), (Vec<u32>, Vec<u32>)> = BTreeMap::new();
    for &(src, dst, j) in &reqs.x_reqs {
        by_pair.entry((src, dst)).or_default().0.push(j);
    }
    for &(src, dst, i) in &reqs.y_reqs {
        by_pair.entry((src, dst)).or_default().1.push(i);
    }
    by_pair
        .into_iter()
        .map(|((src, dst), (x_cols, y_rows))| MsgSpec { src, dst, x_cols, y_rows })
        .collect()
}

impl SpmvPlan {
    /// The single-phase s2D algorithm (Section III): Precompute →
    /// Expand-and-Fold → Compute.
    ///
    /// # Panics
    /// Panics if `p` is not a valid s2D partition of `a`.
    pub fn single_phase(a: &Csr, p: &SpmvPartition) -> Self {
        p.validate_s2d(a).expect("single-phase SpMV requires an s2D partition");
        let (pre, rest) = split_tasks(a, p);
        let reqs = comm_requirements(a, p);
        let phases = vec![
            PlanPhase::Compute(pre),
            PlanPhase::Comm(combined_messages(&reqs)),
            PlanPhase::Compute(rest),
        ];
        SpmvPlan {
            k: p.k,
            nrows: a.nrows(),
            ncols: a.ncols(),
            x_part: p.x_part.clone(),
            y_part: p.y_part.clone(),
            phases,
        }
    }

    /// The standard two-phase algorithm for arbitrary 2D partitions
    /// (Section I): Expand → Compute → Fold.
    pub fn two_phase(a: &Csr, p: &SpmvPartition) -> Self {
        p.assert_shape(a);
        let reqs = comm_requirements(a, p);
        let mut all: Vec<Vec<MultTask>> = vec![Vec::new(); p.k];
        for i in 0..a.nrows() {
            for e in a.row_range(i) {
                all[p.nz_owner[e] as usize].push(MultTask {
                    row: i as u32,
                    col: a.colind()[e],
                    val: a.values()[e],
                });
            }
        }
        let expand: Vec<MsgSpec> = group_pairwise(&reqs.x_reqs)
            .into_iter()
            .map(|((src, dst), cols)| MsgSpec { src, dst, x_cols: cols, y_rows: Vec::new() })
            .collect();
        let fold: Vec<MsgSpec> = group_pairwise(&reqs.y_reqs)
            .into_iter()
            .map(|((src, dst), rows)| MsgSpec { src, dst, x_cols: Vec::new(), y_rows: rows })
            .collect();
        let phases = vec![PlanPhase::Comm(expand), PlanPhase::Compute(all), PlanPhase::Comm(fold)];
        SpmvPlan {
            k: p.k,
            nrows: a.nrows(),
            ncols: a.ncols(),
            x_part: p.x_part.clone(),
            y_part: p.y_part.clone(),
            phases,
        }
    }

    /// The mesh-routed s2D-b algorithm (Section VI-B): Precompute →
    /// mesh-column hop → mesh-row hop (with aggregation) → Compute.
    ///
    /// # Panics
    /// Panics if `p` is not s2D or `pr·pc != k`.
    pub fn mesh(a: &Csr, p: &SpmvPartition, pr: usize, pc: usize) -> Self {
        p.validate_s2d(a).expect("s2D-b requires an s2D partition");
        let (pre, rest) = split_tasks(a, p);
        let reqs = comm_requirements(a, p);
        let routing = MeshRouting::build(p.k, pr, pc, &reqs);
        let phase1: Vec<MsgSpec> = routing
            .phase1
            .iter()
            .map(|m| MsgSpec {
                src: m.src,
                dst: m.mid,
                x_cols: m.x_items.iter().map(|&(j, _)| j).collect(),
                y_rows: m.y_items.iter().map(|&(i, _)| i).collect(),
            })
            .collect();
        let phase2: Vec<MsgSpec> = routing
            .phase2
            .iter()
            .map(|m| MsgSpec {
                src: m.src,
                dst: m.dst,
                x_cols: m.x_items.clone(),
                y_rows: m.y_items.clone(),
            })
            .collect();
        let phases = vec![
            PlanPhase::Compute(pre),
            PlanPhase::Comm(phase1),
            PlanPhase::Comm(phase2),
            PlanPhase::Compute(rest),
        ];
        SpmvPlan {
            k: p.k,
            nrows: a.nrows(),
            ncols: a.ncols(),
            x_part: p.x_part.clone(),
            y_part: p.y_part.clone(),
            phases,
        }
    }

    /// [`SpmvPlan::mesh`] with the default nearly-square mesh.
    pub fn mesh_default(a: &Csr, p: &SpmvPartition) -> Self {
        let (pr, pc) = s2d_core::mesh::mesh_dims(p.k);
        Self::mesh(a, p, pr, pc)
    }

    /// Communication statistics of the plan's comm phases.
    pub fn comm_stats(&self) -> CommStats {
        let phases: Vec<Vec<(u32, u32, u64)>> = self
            .phases
            .iter()
            .filter_map(|ph| match ph {
                PlanPhase::Comm(msgs) => {
                    Some(msgs.iter().map(|m| (m.src, m.dst, m.words())).collect())
                }
                PlanPhase::Compute(_) => None,
            })
            .collect();
        CommStats::from_phases(self.k, &phases)
    }

    /// Total multiply-adds across compute phases (must equal `nnz`).
    pub fn total_ops(&self) -> u64 {
        self.phases
            .iter()
            .map(|ph| match ph {
                PlanPhase::Compute(tasks) => tasks.iter().map(|t| t.len() as u64).sum(),
                PlanPhase::Comm(_) => 0,
            })
            .sum()
    }

    /// Per-processor multiply-add counts (the computational loads, eq. 7).
    pub fn loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.k];
        for ph in &self.phases {
            if let PlanPhase::Compute(tasks) = ph {
                for (p, t) in tasks.iter().enumerate() {
                    loads[p] += t.len() as u64;
                }
            }
        }
        loads
    }

    /// Per-processor row-length profiles over all compute phases — the
    /// shape evidence behind kernel-format selection: semi-2D
    /// partitions deliberately give some ranks split dense rows (few
    /// rows, huge `max_row`) and others regular sparse slices (many
    /// rows near `mean_row`), and the compiled engine's
    /// `KernelFormat::Auto` policy keys on exactly this skew.
    ///
    /// A "row" here is one `(phase, output row)` run of tasks on the
    /// rank — the same granularity the engine's kernels segment by.
    pub fn row_profiles(&self) -> Vec<RowProfile> {
        let mut profiles: Vec<RowProfile> =
            (0..self.k).map(|rank| RowProfile { rank, ..RowProfile::default() }).collect();
        for ph in &self.phases {
            if let PlanPhase::Compute(tasks) = ph {
                for (p, list) in tasks.iter().enumerate() {
                    let prof = &mut profiles[p];
                    let mut current: Option<u32> = None;
                    let mut len = 0usize;
                    for t in list {
                        if current == Some(t.row) {
                            len += 1;
                        } else {
                            if current.is_some() {
                                prof.rows += 1;
                                prof.max_row = prof.max_row.max(len);
                            }
                            current = Some(t.row);
                            len = 1;
                        }
                    }
                    if current.is_some() {
                        prof.rows += 1;
                        prof.max_row = prof.max_row.max(len);
                    }
                    prof.ops += list.len() as u64;
                }
            }
        }
        for prof in &mut profiles {
            prof.mean_row = if prof.rows > 0 { prof.ops as f64 / prof.rows as f64 } else { 0.0 };
        }
        profiles
    }

    /// Executes the plan with the deterministic mailbox executor.
    ///
    /// Convenience wrapper over
    /// [`execute_mailbox_into`](crate::exec::execute_mailbox_into); for
    /// repeated applications build a
    /// [`MailboxOperator`](crate::operator::MailboxOperator) instead (it
    /// reuses the interpretation state across calls).
    pub fn execute_mailbox(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0f64; self.nrows];
        crate::exec::execute_mailbox_into(
            self,
            x,
            &mut y,
            &mut crate::exec::MailboxState::for_plan(self),
        );
        y
    }

    /// Executes the plan with one thread per virtual processor.
    ///
    /// Convenience wrapper over
    /// [`execute_threaded_into`](crate::threaded::execute_threaded_into).
    pub fn execute_threaded(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0f64; self.nrows];
        crate::threaded::execute_threaded_into(self, x, &mut y);
        y
    }
}

/// Row-length profile of one processor's compute work — see
/// [`SpmvPlan::row_profiles`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RowProfile {
    /// The processor.
    pub rank: usize,
    /// Row segments (`(phase, row)` task runs) on this rank.
    pub rows: usize,
    /// Multiply-adds on this rank (equals its entry in
    /// [`SpmvPlan::loads`]).
    pub ops: u64,
    /// Longest row segment.
    pub max_row: usize,
    /// Mean row segment length (0 when the rank has no work).
    pub mean_row: f64,
}

/// Which plan construction a [`Session`-style] consumer wants — the
/// paper's three algorithm families behind one selector, mirroring the
/// [`SpmvPlan`] constructors.
///
/// [`Session`-style]: SpmvPlan
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// Fused single-phase s2D (Section III) — requires an s2D partition.
    SinglePhase,
    /// Two-phase Expand / Fold (works for any partition).
    TwoPhase,
    /// Mesh-routed s2D-b with an explicit `pr × pc` processor mesh.
    Mesh {
        /// Mesh rows.
        pr: usize,
        /// Mesh columns.
        pc: usize,
    },
    /// Mesh-routed s2D-b on the default nearly-square mesh.
    MeshAuto,
}

impl PlanKind {
    /// Builds the plan of this kind for `(a, p)`.
    ///
    /// # Panics
    /// Panics if the partition does not satisfy the kind's
    /// prerequisites (e.g. [`PlanKind::SinglePhase`] on a non-s2D
    /// partition) — same contract as the underlying constructors.
    pub fn build(&self, a: &Csr, p: &SpmvPartition) -> SpmvPlan {
        match *self {
            PlanKind::SinglePhase => SpmvPlan::single_phase(a, p),
            PlanKind::TwoPhase => SpmvPlan::two_phase(a, p),
            PlanKind::Mesh { pr, pc } => SpmvPlan::mesh(a, p, pr, pc),
            PlanKind::MeshAuto => SpmvPlan::mesh_default(a, p),
        }
    }

    /// The three parameter-free kinds, for conformance/differential
    /// sweeps (explicit meshes are covered by [`PlanKind::MeshAuto`]'s
    /// default dimensions).
    pub fn all() -> [PlanKind; 3] {
        [PlanKind::SinglePhase, PlanKind::TwoPhase, PlanKind::MeshAuto]
    }

    /// The best legal kind for `(a, p)`: fused single-phase when the
    /// partition satisfies the s2D property, two-phase otherwise. The
    /// one rule behind the CLI's `--alg auto` and the `Session`
    /// builder's default.
    pub fn auto(a: &Csr, p: &SpmvPartition) -> PlanKind {
        if p.is_s2d(a) {
            PlanKind::SinglePhase
        } else {
            PlanKind::TwoPhase
        }
    }

    /// Short stable label (used in bench ids and test diagnostics).
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::SinglePhase => "single_phase",
            PlanKind::TwoPhase => "two_phase",
            PlanKind::Mesh { .. } | PlanKind::MeshAuto => "mesh",
        }
    }
}

impl std::str::FromStr for PlanKind {
    type Err = String;

    /// Parses the CLI `--alg` names: `single`, `two`, `mesh` (also
    /// accepts the long labels `single_phase` / `two_phase`).
    fn from_str(s: &str) -> Result<PlanKind, String> {
        match s {
            "single" | "single_phase" | "single-phase" => Ok(PlanKind::SinglePhase),
            "two" | "two_phase" | "two-phase" => Ok(PlanKind::TwoPhase),
            "mesh" => Ok(PlanKind::MeshAuto),
            other => Err(format!("unknown plan kind {other:?} (single|two|mesh)")),
        }
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanKind::Mesh { pr, pc } => write!(f, "mesh({pr}x{pc})"),
            other => f.write_str(other.label()),
        }
    }
}

fn group_pairwise(reqs: &[(u32, u32, u32)]) -> std::collections::BTreeMap<(u32, u32), Vec<u32>> {
    let mut map: std::collections::BTreeMap<(u32, u32), Vec<u32>> =
        std::collections::BTreeMap::new();
    for &(src, dst, item) in reqs {
        map.entry((src, dst)).or_default().push(item);
    }
    map
}

/// Consistency check used by tests: the plan's single-phase volume must
/// match equation (3) computed from the requirement sets directly.
pub fn volume_matches_eq3(a: &Csr, p: &SpmvPartition, plan: &SpmvPlan) -> bool {
    let reqs = comm_requirements(a, p);
    let merged = single_phase_messages(&reqs);
    let direct: u64 = merged.iter().map(|&(_, _, w)| w).sum();
    plan.comm_stats().total_volume == direct
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};

    #[test]
    fn fig1_single_phase_structure() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::single_phase(&a, &p);
        assert_eq!(plan.phases.len(), 3);
        assert_eq!(plan.total_ops(), a.nnz() as u64);
        assert!(volume_matches_eq3(&a, &p, &plan));
        // Messages: P2->P1 carries [x5, y2] (2 words).
        if let PlanPhase::Comm(msgs) = &plan.phases[1] {
            let m = msgs.iter().find(|m| m.src == 1 && m.dst == 0).expect("P2->P1");
            assert_eq!(m.x_cols, vec![4]);
            assert_eq!(m.y_rows, vec![1]);
        } else {
            panic!("phase 1 must be the fused communication");
        }
    }

    #[test]
    fn two_phase_conserves_ops() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::two_phase(&a, &p);
        assert_eq!(plan.total_ops(), a.nnz() as u64);
        assert_eq!(plan.loads(), p.loads());
    }

    #[test]
    fn single_and_two_phase_volumes_agree_on_s2d() {
        // For an s2D partition the fused plan moves exactly the same words
        // as the two-phase plan; only message counts differ.
        let a = fig1_matrix();
        let p = fig1_partition();
        let single = SpmvPlan::single_phase(&a, &p).comm_stats();
        let two = SpmvPlan::two_phase(&a, &p).comm_stats();
        assert_eq!(single.total_volume, two.total_volume);
        assert!(single.total_messages <= two.total_messages);
    }

    #[test]
    fn mesh_plan_conserves_ops_and_routes_all() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let plan = SpmvPlan::mesh(&a, &p, 1, 3);
        assert_eq!(plan.total_ops(), a.nnz() as u64);
        // On a 1x3 mesh every processor shares the single row: all traffic
        // is direct phase-2.
        if let PlanPhase::Comm(msgs) = &plan.phases[1] {
            assert!(msgs.is_empty());
        }
    }

    #[test]
    fn row_profiles_match_loads() {
        let a = fig1_matrix();
        let p = fig1_partition();
        for plan in [SpmvPlan::single_phase(&a, &p), SpmvPlan::two_phase(&a, &p)] {
            let profiles = plan.row_profiles();
            assert_eq!(profiles.len(), plan.k);
            let loads = plan.loads();
            for prof in &profiles {
                assert_eq!(prof.ops, loads[prof.rank], "rank {}", prof.rank);
                if prof.rows > 0 {
                    assert!(prof.max_row >= 1);
                    assert!((prof.mean_row * prof.rows as f64 - prof.ops as f64).abs() < 1e-9);
                    assert!(prof.max_row as f64 >= prof.mean_row);
                }
            }
            let total: u64 = profiles.iter().map(|pr| pr.ops).sum();
            assert_eq!(total, a.nnz() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "s2D")]
    fn single_phase_rejects_non_s2d() {
        let a = fig1_matrix();
        let mut p = fig1_partition();
        // Break the property: nonzero of row 0 (P1) col 0 (P1) moved to P3.
        p.nz_owner[0] = 2;
        let _ = SpmvPlan::single_phase(&a, &p);
    }
}
