//! Multi-threaded executor: one rank per virtual processor on the
//! `s2d-runtime` message-passing substrate.
//!
//! This is the concurrent validation path: the same plans the mailbox
//! executor interprets sequentially run here with real message passing.
//! Every message is tagged with its **phase index** and receives match on
//! `(source ANY, tag = phase)` — without the tag, a fast rank's phase-2
//! message can reach a peer still waiting in phase 1, which (for mesh
//! plans that forward data between consecutive communication phases)
//! makes the peer ship an incomplete partial sum and panic, deadlocking
//! the remaining ranks. The runtime's envelope matching parks early
//! arrivals until their phase starts, which is exactly MPI's cure for
//! the same disease.

use std::collections::HashMap;

use s2d_runtime::{spmd, ChaosConfig, Cluster, Endpoint};

use crate::plan::{MsgSpec, MultTask, PlanPhase, SpmvPlan};

/// Payload of one message: `x` values and partial-`y` values.
type Payload = (Vec<(u32, f64)>, Vec<(u32, f64)>);

/// Per-rank view of one phase.
enum RankPhase<'a> {
    Compute(&'a [MultTask]),
    /// `tag` is the phase index; `expected` the number of incoming
    /// messages of this phase.
    Comm {
        tag: u32,
        outgoing: Vec<&'a MsgSpec>,
        expected: usize,
    },
}

/// Compiles the per-rank scripts of `plan` (phase tags = phase indices).
fn rank_scripts(plan: &SpmvPlan) -> Vec<Vec<RankPhase<'_>>> {
    let k = plan.k;
    let mut scripts: Vec<Vec<RankPhase<'_>>> = (0..k).map(|_| Vec::new()).collect();
    for (idx, phase) in plan.phases.iter().enumerate() {
        match phase {
            PlanPhase::Compute(tasks) => {
                for (p, list) in tasks.iter().enumerate() {
                    scripts[p].push(RankPhase::Compute(list));
                }
            }
            PlanPhase::Comm(msgs) => {
                let mut outgoing: Vec<Vec<&MsgSpec>> = vec![Vec::new(); k];
                let mut expected = vec![0usize; k];
                for m in msgs {
                    outgoing[m.src as usize].push(m);
                    expected[m.dst as usize] += 1;
                }
                for (p, out) in outgoing.into_iter().enumerate() {
                    scripts[p].push(RankPhase::Comm {
                        tag: idx as u32,
                        outgoing: out,
                        expected: expected[p],
                    });
                }
            }
        }
    }
    scripts
}

/// Executes `plan` on input `x` with `plan.k` ranks (OS threads),
/// writing the assembled result into the caller's `y` buffer
/// (`y.len() == plan.nrows`, fully overwritten).
pub fn execute_threaded_into(plan: &SpmvPlan, x: &[f64], y: &mut [f64]) {
    execute_on_cluster(plan, x, y, ChaosConfig::off())
}

/// Threaded execution with delivery-delay injection — used by tests to
/// shake out ordering assumptions.
pub fn execute_chaotic(plan: &SpmvPlan, x: &[f64], chaos: ChaosConfig) -> Vec<f64> {
    let mut y = vec![0.0f64; plan.nrows];
    execute_on_cluster(plan, x, &mut y, chaos);
    y
}

fn execute_on_cluster(plan: &SpmvPlan, x: &[f64], y: &mut [f64], chaos: ChaosConfig) {
    assert_eq!(x.len(), plan.ncols, "input length mismatch");
    assert_eq!(y.len(), plan.nrows, "output length mismatch");
    let k = plan.k;
    let scripts = rank_scripts(plan);

    // Initial x placement per rank.
    let mut init_x: Vec<Vec<(u32, f64)>> = vec![Vec::new(); k];
    for (j, &xj) in x.iter().enumerate() {
        init_x[plan.x_part[j] as usize].push((j as u32, xj));
    }
    let init_x = parking_lot::Mutex::new(init_x);

    let results = spmd(Cluster::<Payload>::with_chaos(k, chaos), |ep| {
        let p = ep.rank() as usize;
        let my_x = std::mem::take(&mut init_x.lock()[p]);
        let final_y = run_rank(ep, &scripts[p], my_x);
        debug_assert!(ep.drained(), "rank {p} exits with unconsumed messages");
        final_y
    });

    // Assemble y from each owner's final accumulator.
    let mut owner_y: Vec<HashMap<u32, f64>> =
        results.into_iter().map(|pairs| pairs.into_iter().collect()).collect();
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = owner_y[plan.y_part[i] as usize].remove(&(i as u32)).unwrap_or(0.0);
    }
}

/// One rank's SPMD body: walk the phase script, multiply-accumulate,
/// exchange phase-tagged messages. Returns the rank's final partial-`y`
/// accumulators.
fn run_rank(
    ep: &mut Endpoint<Payload>,
    script: &[RankPhase<'_>],
    my_x: Vec<(u32, f64)>,
) -> Vec<(u32, f64)> {
    let p = ep.rank();
    let mut xbuf: HashMap<u32, f64> = my_x.into_iter().collect();
    let mut ybuf: HashMap<u32, f64> = HashMap::new();
    for phase in script {
        match phase {
            RankPhase::Compute(tasks) => {
                for t in *tasks {
                    let xv = *xbuf
                        .get(&t.col)
                        .unwrap_or_else(|| panic!("rank {p} lacks x[{}]: plan bug", t.col));
                    *ybuf.entry(t.row).or_insert(0.0) += t.val * xv;
                }
            }
            RankPhase::Comm { tag, outgoing, expected } => {
                for m in outgoing {
                    let xs: Vec<(u32, f64)> = m
                        .x_cols
                        .iter()
                        .map(|&j| {
                            (
                                j,
                                *xbuf.get(&j).unwrap_or_else(|| {
                                    panic!("rank {p} lacks x[{j}] to send: plan bug")
                                }),
                            )
                        })
                        .collect();
                    let ys: Vec<(u32, f64)> = m
                        .y_rows
                        .iter()
                        .map(|&i| {
                            (
                                i,
                                ybuf.remove(&i).unwrap_or_else(|| {
                                    panic!("rank {p} lacks partial y[{i}] to send: plan bug")
                                }),
                            )
                        })
                        .collect();
                    ep.send(m.dst, *tag, (xs, ys));
                }
                for _ in 0..*expected {
                    let (xs, ys) = ep.recv_tag(*tag).payload;
                    for (j, v) in xs {
                        xbuf.insert(j, v);
                    }
                    for (i, v) in ys {
                        *ybuf.entry(i).or_insert(0.0) += v;
                    }
                }
            }
        }
    }
    ybuf.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::fig1::{fig1_matrix, fig1_partition};

    fn assert_close(a: &[f64], b: &[f64]) {
        for (idx, (u, v)) in a.iter().zip(b).enumerate() {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "y[{idx}]: {u} vs {v}");
        }
    }

    /// Out-param execution into a fresh buffer (test convenience).
    fn threaded(plan: &SpmvPlan, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; plan.nrows];
        execute_threaded_into(plan, x, &mut y);
        y
    }

    #[test]
    fn threaded_matches_mailbox_on_all_plan_kinds() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64 - 6.0).collect();
        let reference = a.spmv_alloc(&x);
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh(&a, &p, 3, 1),
        ] {
            let y_threaded = threaded(&plan, &x);
            let y_mailbox = plan.execute_mailbox(&x);
            assert_close(&y_threaded, &reference);
            assert_close(&y_mailbox, &reference);
        }
    }

    #[test]
    fn repeated_runs_are_consistent() {
        // Accumulation order may differ between runs; results must agree
        // within floating-point tolerance.
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 / (j + 1) as f64).collect();
        let plan = SpmvPlan::single_phase(&a, &p);
        let y1 = threaded(&plan, &x);
        for _ in 0..4 {
            let y2 = threaded(&plan, &x);
            assert_close(&y1, &y2);
        }
    }

    #[test]
    fn mesh_plan_survives_chaotic_delivery() {
        // Regression: the pre-runtime executor matched messages by
        // arrival order only; a rank racing ahead into the second mesh
        // hop could starve a slower peer of a phase-1 contribution, which
        // then shipped an incomplete partial sum (or panicked, wedging
        // the remaining ranks). Phase tags make every interleaving —
        // here aggressively randomized — deliver the exact result.
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin() + 2.0).collect();
        let reference = a.spmv_alloc(&x);
        let plan = SpmvPlan::mesh(&a, &p, 3, 1);
        for seed in 0..8 {
            let y = execute_chaotic(&plan, &x, ChaosConfig::with_delays(200, seed));
            assert_close(&y, &reference);
        }
    }

    #[test]
    fn two_phase_plan_survives_chaotic_delivery() {
        let a = fig1_matrix();
        let p = fig1_partition();
        let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64 * 0.25 - 1.0).collect();
        let reference = a.spmv_alloc(&x);
        let plan = SpmvPlan::two_phase(&a, &p);
        for seed in 0..4 {
            let y = execute_chaotic(&plan, &x, ChaosConfig::with_delays(150, seed));
            assert_close(&y, &reference);
        }
    }
}
