//! Property tests for the SpMV plans and executors: every plan kind on
//! random matrices and partitions must reproduce the serial product, in
//! both the mailbox and the threaded (message-passing) executor, fused
//! plans must conserve volume, and plans must conserve multiply-adds.

use proptest::prelude::*;
use s2d_core::comm::comm_requirements;
use s2d_core::optimal::s2d_optimal;
use s2d_core::partition::SpmvPartition;
use s2d_sparse::{Coo, Csr};
use s2d_spmv::SpmvPlan;

/// Random square matrix with values, plus a symmetric vector partition.
fn instance_strategy(
    max_n: usize,
    max_nnz: usize,
    max_k: usize,
) -> impl Strategy<Value = (Csr, Vec<u32>, usize)> {
    (2..=max_n, 1..=max_k).prop_flat_map(move |(n, k)| {
        let entry = (0..n, 0..n, -4i32..=4);
        let parts = proptest::collection::vec(0..k as u32, n);
        (proptest::collection::vec(entry, 1..=max_nnz), parts).prop_map(move |(es, parts)| {
            let mut coo = Coo::new(n, n);
            for (r, c, v) in es {
                coo.push(r, c, f64::from(v) * 0.5 + 0.25);
            }
            coo.compress();
            (coo.to_csr(), parts, k)
        })
    })
}

fn x_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|j| ((j as u64).wrapping_mul(2654435761).wrapping_add(seed) % 101) as f64 / 13.0 - 3.0)
        .collect()
}

fn assert_close(got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        prop_assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-phase, two-phase and mesh plans on the optimal s2D
    /// partition all reproduce the serial SpMV under both executors.
    #[test]
    fn all_plans_match_serial((a, parts, k) in instance_strategy(14, 40, 4), seed in 0u64..50) {
        let p = s2d_optimal(&a, &parts, &parts, k);
        let x = x_for(a.ncols(), seed);
        let want = a.spmv_alloc(&x);
        for plan in [
            SpmvPlan::single_phase(&a, &p),
            SpmvPlan::two_phase(&a, &p),
            SpmvPlan::mesh_default(&a, &p),
        ] {
            assert_close(&plan.execute_mailbox(&x), &want)?;
            assert_close(&plan.execute_threaded(&x), &want)?;
            prop_assert_eq!(plan.total_ops(), a.nnz() as u64);
        }
    }

    /// Rowwise (1D) partitions degenerate to expand-only single-phase
    /// plans: no precompute work, volume = x requirements only.
    #[test]
    fn rowwise_plan_has_no_precompute((a, parts, k) in instance_strategy(14, 40, 4)) {
        let p = SpmvPartition::rowwise(&a, parts.clone(), parts.clone(), k);
        let plan = SpmvPlan::single_phase(&a, &p);
        if let s2d_spmv::PlanPhase::Compute(pre) = &plan.phases[0] {
            prop_assert!(pre.iter().all(|t| t.is_empty()), "1D has nothing to precompute");
        } else {
            prop_assert!(false, "phase 0 must be the precompute phase");
        }
        let reqs = comm_requirements(&a, &p);
        prop_assert!(reqs.y_reqs.is_empty(), "1D rowwise folds nothing");
    }

    /// Plan loads match partition loads for every plan kind.
    #[test]
    fn plan_loads_match_partition((a, parts, k) in instance_strategy(14, 40, 4)) {
        let p = s2d_optimal(&a, &parts, &parts, k);
        for plan in [SpmvPlan::single_phase(&a, &p), SpmvPlan::two_phase(&a, &p)] {
            prop_assert_eq!(plan.loads(), p.loads());
        }
    }

    /// Mesh plans never break the `O(√K)` per-processor send bound and
    /// never more than double the direct fused volume.
    #[test]
    fn mesh_plan_latency_and_volume_bounds((a, parts, k) in instance_strategy(14, 40, 6)) {
        let p = s2d_optimal(&a, &parts, &parts, k);
        let single = SpmvPlan::single_phase(&a, &p).comm_stats();
        let mesh = SpmvPlan::mesh_default(&a, &p).comm_stats();
        let (pr, pc) = s2d_core::mesh::mesh_dims(k);
        prop_assert!(mesh.max_send_msgs() as usize <= (pr - 1) + (pc - 1));
        prop_assert!(mesh.total_volume <= 2 * single.total_volume);
    }

    /// Executing a plan twice gives identical results (stateless plans);
    /// mailbox and threaded agree within floating-point tolerance.
    #[test]
    fn execution_is_stateless((a, parts, k) in instance_strategy(12, 30, 3), seed in 0u64..20) {
        let p = s2d_optimal(&a, &parts, &parts, k);
        let plan = SpmvPlan::single_phase(&a, &p);
        let x = x_for(a.ncols(), seed);
        let y1 = plan.execute_mailbox(&x);
        let y2 = plan.execute_mailbox(&x);
        prop_assert_eq!(y1.clone(), y2);
        assert_close(&plan.execute_threaded(&x), &y1)?;
    }
}
