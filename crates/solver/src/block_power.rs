//! Distributed block power iteration (subspace / orthogonal iteration).
//!
//! Classic power iteration tracks one dominant eigenvector; block power
//! iteration tracks an `r`-dimensional dominant invariant subspace by
//! repeatedly applying `A` to an orthonormal block `V ∈ ℝ^{n×r}` and
//! re-orthonormalizing. It is the canonical consumer of **batched**
//! SpMV ([`RankCtx::spmv_batch`]): every iteration multiplies the same
//! matrix against `r` vectors at once, so each fetched matrix entry is
//! reused `r` times and every communication phase ships one `len × r`
//! block instead of `r` separate messages.
//!
//! Vectors are stored rank-locally as row-major `local_len × r` blocks
//! (owned entry `i`, column `q` at `v[i*r + q]`), matching the batched
//! engine layout end to end — no transposes anywhere in the loop.

use s2d_core::partition::SpmvPartition;
use s2d_sparse::Csr;
use s2d_spmv::{SpmvOperator, SpmvPlan};

use crate::engine::{spmd_compute, RankCtx};
use crate::operator::{Reduce, Solo};

/// Options for [`block_power_iteration`].
#[derive(Clone, Copy, Debug)]
pub struct BlockPowerOptions {
    /// Stop when every Ritz-value estimate moves less than `tol`
    /// (relative to its magnitude).
    pub tol: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
}

impl Default for BlockPowerOptions {
    fn default() -> Self {
        BlockPowerOptions { tol: 1e-10, max_iters: 1000 }
    }
}

/// Result of a block power iteration.
#[derive(Clone, Debug)]
pub struct BlockPowerResult {
    /// Ritz-value estimates `⟨v_q, A v_q⟩`, ordered by dominance
    /// (column 0 converges to the dominant eigenvalue).
    pub eigenvalues: Vec<f64>,
    /// The corresponding orthonormal basis, one global vector per
    /// column.
    pub eigenvectors: Vec<Vec<f64>>,
    /// Iterations performed.
    pub iterations: usize,
    /// True if every Ritz value stabilized within `tol`.
    pub converged: bool,
}

/// Local dot of two columns of row-major `m × r` blocks.
fn col_dot(u: &[f64], v: &[f64], r: usize, cu: usize, cv: usize) -> f64 {
    let m = u.len() / r;
    (0..m).map(|i| u[i * r + cu] * v[i * r + cv]).sum()
}

/// Runs distributed block power iteration for the `r` most dominant
/// eigenpairs, starting from a deterministic full-rank block.
///
/// Each iteration: one batched SpMV (`W = A·V`), one fused `r`-wide
/// reduction for the Ritz values, then a distributed classical
/// Gram-Schmidt re-orthonormalization of `W` (per column: one fused
/// reduction for all projections, one for the norm).
///
/// # Panics
/// Panics if the matrix is not square, the vector partition is not
/// symmetric, or `r` is 0 or exceeds the matrix dimension.
pub fn block_power_iteration(
    a: &Csr,
    p: &SpmvPartition,
    plan: &SpmvPlan,
    r: usize,
    opts: &BlockPowerOptions,
) -> BlockPowerResult {
    let n = a.nrows();
    assert!(r >= 1 && r <= n, "block width must be in 1..=n");
    let opts = *opts;
    let out = spmd_compute(a, p, plan, |ctx: &mut RankCtx| {
        let owned = ctx.owned.clone();
        let v0 = start_block(&owned, r);
        let (v, lambda, iterations, converged) = block_power_core(ctx, v0, r, &opts);
        (owned, v, lambda, iterations, converged)
    });

    let (_, _, lambda, iterations, converged) = &out[0];
    let eigenvectors = (0..r)
        .map(|q| {
            let mut global = vec![0.0; n];
            for (idx, block, ..) in &out {
                for (i, &g) in idx.iter().enumerate() {
                    global[g as usize] = block[i * r + q];
                }
            }
            global
        })
        .collect();
    BlockPowerResult {
        eigenvalues: lambda.clone(),
        eigenvectors,
        iterations: *iterations,
        converged: *converged,
    }
}

/// [`block_power_iteration`] by **operator injection**: runs the same
/// core on any square [`SpmvOperator`] (the batched `apply_batch` path
/// carries the block).
///
/// # Panics
/// Panics if the operator is not square or `r` is 0 or exceeds the
/// dimension.
pub fn block_power_iteration_with(
    op: impl SpmvOperator,
    r: usize,
    opts: &BlockPowerOptions,
) -> BlockPowerResult {
    let mut c = Solo(op);
    assert_eq!(c.nrows(), c.ncols(), "block power iteration needs a square operator");
    let n = c.nrows();
    assert!(r >= 1 && r <= n, "block width must be in 1..=n");
    let all: Vec<u32> = (0..n as u32).collect();
    let v0 = start_block(&all, r);
    let (v, lambda, iterations, converged) = block_power_core(&mut c, v0, r, opts);
    let eigenvectors = (0..r).map(|q| (0..n).map(|i| v[i * r + q]).collect()).collect();
    BlockPowerResult { eigenvalues: lambda, eigenvectors, iterations, converged }
}

/// Deterministic, globally consistent, full-rank start block over the
/// listed global indices: column `q` mixes a shifted hash of the global
/// index, so every participant builds the same global block regardless
/// of how rows are distributed.
fn start_block(owned: &[u32], r: usize) -> Vec<f64> {
    let mut v = vec![0.0f64; owned.len() * r];
    for (i, &g) in owned.iter().enumerate() {
        for q in 0..r {
            let h = (g as u64).wrapping_mul(2654435761).wrapping_add(q as u64 * 40503);
            v[i * r + q] = (h % 1009) as f64 / 1009.0 + 0.1;
        }
    }
    v
}

/// The subspace-iteration body, written once against operator
/// injection: one batched multiply, one fused Ritz reduction and one
/// Gram-Schmidt pass per iteration, ping-ponging `V`/`W = A·V` through
/// two preallocated blocks.
fn block_power_core<C: SpmvOperator + Reduce>(
    c: &mut C,
    mut v: Vec<f64>,
    r: usize,
    opts: &BlockPowerOptions,
) -> (Vec<f64>, Vec<f64>, usize, bool) {
    orthonormalize(c, &mut v, r);
    let mut w = vec![0.0f64; v.len()];
    let mut lambda = vec![0.0f64; r];
    let mut iterations = 0usize;
    let mut converged = false;
    while iterations < opts.max_iters {
        c.apply_batch(&v, &mut w, r);
        // Ritz values: diag(Vᵀ A V) in one fused reduction.
        let locals: Vec<f64> = (0..r).map(|q| col_dot(&v, &w, r, q, q)).collect();
        let ritz = c.reduce_sum_vec(locals);
        let degenerate = !orthonormalize(c, &mut w, r);
        std::mem::swap(&mut v, &mut w);
        iterations += 1;
        let settled = ritz
            .iter()
            .zip(&lambda)
            .all(|(new, old)| (new - old).abs() <= opts.tol * new.abs().max(1.0));
        lambda = ritz;
        if degenerate {
            // A annihilated part of the block: the reachable
            // subspace has lower dimension; stop.
            break;
        }
        if settled {
            converged = true;
            break;
        }
    }
    (v, lambda, iterations, converged)
}

/// Distributed classical Gram-Schmidt over the columns of a row-major
/// `local_len × r` block: after the call the columns are orthonormal
/// (across all ranks). Returns `false` if a column's norm collapsed —
/// that column is left zero and the basis is rank-deficient.
fn orthonormalize<C: Reduce + ?Sized>(c: &mut C, v: &mut [f64], r: usize) -> bool {
    let m = v.len() / r;
    let mut full_rank = true;
    for q in 0..r {
        if q > 0 {
            // All projections ⟨v_q, v_j⟩ for j < q in one reduction.
            let locals: Vec<f64> = (0..q).map(|j| col_dot(v, v, r, q, j)).collect();
            let projs = c.reduce_sum_vec(locals);
            for i in 0..m {
                let mut acc = v[i * r + q];
                for (j, proj) in projs.iter().enumerate() {
                    acc -= proj * v[i * r + j];
                }
                v[i * r + q] = acc;
            }
        }
        let norm2 = c.reduce_sum(col_dot(v, v, r, q, q));
        let norm = norm2.sqrt();
        if norm <= 1e-300 {
            for i in 0..m {
                v[i * r + q] = 0.0;
            }
            full_rank = false;
            continue;
        }
        let inv = 1.0 / norm;
        for i in 0..m {
            v[i * r + q] *= inv;
        }
    }
    full_rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{power_iteration, PowerOptions};
    use s2d_sparse::Coo;

    fn block_rowwise(a: &Csr, k: usize) -> SpmvPartition {
        let n = a.nrows();
        let per = n.div_ceil(k);
        let part: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
        SpmvPartition::rowwise(a, part.clone(), part, k)
    }

    #[test]
    fn finds_top_r_eigenvalues_of_a_diagonal_matrix() {
        let n = 12;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0 + i as f64);
        }
        m.compress();
        let a = m.to_csr();
        let p = block_rowwise(&a, 3);
        let plan = SpmvPlan::single_phase(&a, &p);
        let r = 3;
        let res = block_power_iteration(&a, &p, &plan, r, &BlockPowerOptions::default());
        assert!(res.converged, "diagonal matrix must converge");
        for (q, want) in [(0usize, 12.0f64), (1, 11.0), (2, 10.0)] {
            assert!(
                (res.eigenvalues[q] - want).abs() < 1e-6,
                "lambda[{q}] = {} want {want}",
                res.eigenvalues[q]
            );
            // Eigenvector q concentrates on coordinate n-1-q (sign-free).
            let v = &res.eigenvectors[q];
            assert!(v[n - 1 - q].abs() > 0.99, "|v[{q}]| peak {}", v[n - 1 - q].abs());
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 16;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, (1 + i % 7) as f64);
            if i + 1 < n {
                m.push(i, i + 1, 0.3);
                m.push(i + 1, i, 0.3);
            }
        }
        m.compress();
        let a = m.to_csr();
        let p = block_rowwise(&a, 4);
        let plan = SpmvPlan::single_phase(&a, &p);
        let res = block_power_iteration(
            &a,
            &p,
            &plan,
            4,
            &BlockPowerOptions { tol: 1e-12, max_iters: 500 },
        );
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 =
                    res.eigenvectors[i].iter().zip(&res.eigenvectors[j]).map(|(x, y)| x * y).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-8, "⟨v{i}, v{j}⟩ = {dot}");
            }
        }
    }

    #[test]
    fn width_one_block_matches_classic_power_iteration() {
        let n = 12;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0 + i as f64);
        }
        m.compress();
        let a = m.to_csr();
        let p = block_rowwise(&a, 3);
        let plan = SpmvPlan::single_phase(&a, &p);
        let block = block_power_iteration(&a, &p, &plan, 1, &BlockPowerOptions::default());
        let single = power_iteration(&a, &p, &plan, &PowerOptions::default());
        assert!(block.converged && single.converged);
        assert!(
            (block.eigenvalues[0] - single.eigenvalue).abs() < 1e-6,
            "{} vs {}",
            block.eigenvalues[0],
            single.eigenvalue
        );
    }
}
