//! Distributed iterative solvers on partitioned SpMV.
//!
//! The reason partition quality matters at all is that real applications
//! perform **many** multiplications with the same matrix: Krylov solvers,
//! stationary iterations, eigensolvers, PageRank. This crate provides
//! those downstream workloads, running SPMD on the `s2d-runtime`
//! substrate with the SpMV plans of `s2d-spmv`:
//!
//! * [`engine`] — the per-rank SpMV engine (compile a plan once, execute
//!   it every iteration with fresh tags) and the rank-local vector/
//!   reduction toolkit;
//! * [`cg`] — conjugate gradients for symmetric positive definite
//!   systems;
//! * [`jacobi`] — the Jacobi stationary iteration;
//! * [`power`] — power iteration for the dominant eigenpair, and
//!   PageRank on column-stochastic link matrices;
//! * [`block_power`] — block power (subspace) iteration for the top-`r`
//!   eigenpairs, riding the batched multi-RHS SpMV path
//!   ([`RankCtx::spmv_batch`]): one `n × r` block per multiply, one
//!   `len × r` message per communication phase.
//!
//! All solvers require a **symmetric vector partition** (`x_part ==
//! y_part`), which every square-matrix partitioning method in this
//! workspace produces: iterates live where the matrix expects its input,
//! so vector updates (`axpy`, scaling) are purely local and only dot
//! products and the SpMV itself communicate.
//!
//! # Operator injection
//!
//! Every solver's math is written once, generic over
//! `s2d_spmv::SpmvOperator` (the multiply) plus [`operator::Reduce`]
//! (the global reductions), and is reachable two ways:
//!
//! * **distributed** — the classic `cg_solve`/`jacobi_solve`/… entry
//!   points run the core SPMD on [`RankCtx`] (which implements both
//!   traits over its local slices);
//! * **injected** — the `*_with` entry points (`cg_solve_with`,
//!   `jacobi_solve_with`, `power_iteration_with`, `pagerank_with`,
//!   `block_power_iteration_with`) take any whole-plan operator, so
//!   every solver runs on every `s2d_engine::Backend` — or on an
//!   `s2d::Session` built fluently in the facade crate.

pub mod block_power;
pub mod cg;
pub mod engine;
pub mod jacobi;
pub mod operator;
pub mod power;

pub use block_power::{
    block_power_iteration, block_power_iteration_with, BlockPowerOptions, BlockPowerResult,
};
pub use cg::{
    cg_solve, cg_solve_obs, cg_solve_on, cg_solve_with, cg_solve_with_obs, CgOptions, CgResult,
};
pub use engine::{spmd_compute, spmd_compute_obs, spmd_compute_on, EnginePath, RankCtx};
pub use jacobi::{
    diagonal_of, jacobi_solve, jacobi_solve_with, jacobi_solve_with_obs, JacobiOptions,
    JacobiResult,
};
pub use operator::{Reduce, Solo};
pub use power::{
    pagerank, pagerank_with, power_iteration, power_iteration_with, power_iteration_with_obs,
    to_column_stochastic, PagerankOptions, PagerankResult, PowerOptions, PowerResult,
};
