//! The per-rank distributed compute engine.
//!
//! [`spmd_compute`] spawns one rank per processor of a partition, hands
//! each a [`RankCtx`], and runs a user closure SPMD-style. The context
//! owns the rank's compiled slice of the SpMV plan and its share of every
//! distributed vector, and provides:
//!
//! * `spmv` — execute the plan's phases for this rank (tags are drawn
//!   from a per-context allocator, so repeated calls never cross-talk);
//! * `dot`, `norm2`, `sum`, `max` — global reductions over the runtime's
//!   binomial-tree collectives;
//! * local vector helpers (`axpy`, `scale`) that need no communication.
//!
//! Distributed vectors are plain `Vec<f64>` aligned with the rank's
//! sorted list of owned global indices ([`RankCtx::owned`]).

use std::collections::HashMap;

use s2d_core::partition::SpmvPartition;
use s2d_runtime::collectives::allreduce;
use s2d_runtime::{spmd, Cluster, Endpoint};
use s2d_sparse::Csr;
use s2d_spmv::{MsgSpec, MultTask, PlanPhase, SpmvPlan};

/// Message payload: `x` values and partial-`y` values keyed by global
/// index.
pub type Payload = (Vec<(u32, f64)>, Vec<(u32, f64)>);

/// One rank's owned slice of a compiled communication phase.
struct CommPhase {
    outgoing: Vec<MsgSpec>,
    expected: usize,
}

/// One rank's compiled plan phase.
enum EnginePhase {
    Compute(Vec<MultTask>),
    Comm(CommPhase),
}

/// Hands out unique message tags; every rank draws the same sequence
/// because SPMD ranks execute the same call sites in the same order.
struct TagAlloc {
    next: u32,
}

impl TagAlloc {
    fn take(&mut self, n: u32) -> u32 {
        let t = self.next;
        self.next = self.next.checked_add(n).expect("tag space exhausted");
        t
    }
}

/// The per-rank compute context passed to [`spmd_compute`] closures.
pub struct RankCtx {
    ep: Endpoint<Payload>,
    phases: Vec<EnginePhase>,
    comm_phases: u32,
    tags: TagAlloc,
    /// Sorted global indices owned by this rank (`x` and `y` coincide —
    /// symmetric vector partition).
    pub owned: Vec<u32>,
    /// Reusable buffers for the plan walk.
    xbuf: HashMap<u32, f64>,
    ybuf: HashMap<u32, f64>,
}

impl RankCtx {
    fn compile(plan: &SpmvPlan, rank: u32, owned: Vec<u32>, ep: Endpoint<Payload>) -> Self {
        let k = plan.k;
        let mut phases = Vec::with_capacity(plan.phases.len());
        let mut comm_phases = 0u32;
        for phase in &plan.phases {
            match phase {
                PlanPhase::Compute(tasks) => {
                    phases.push(EnginePhase::Compute(tasks[rank as usize].clone()));
                }
                PlanPhase::Comm(msgs) => {
                    let mut outgoing = Vec::new();
                    let mut expected = 0usize;
                    for m in msgs {
                        if m.src == rank {
                            outgoing.push(m.clone());
                        }
                        if m.dst == rank {
                            expected += 1;
                        }
                    }
                    let _ = k;
                    phases.push(EnginePhase::Comm(CommPhase { outgoing, expected }));
                    comm_phases += 1;
                }
            }
        }
        RankCtx {
            ep,
            phases,
            comm_phases,
            tags: TagAlloc { next: 0 },
            owned,
            xbuf: HashMap::new(),
            ybuf: HashMap::new(),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> u32 {
        self.ep.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ep.size()
    }

    /// Number of vector entries owned by this rank.
    pub fn local_len(&self) -> usize {
        self.owned.len()
    }

    /// Executes one distributed SpMV: `v` holds the values of the owned
    /// `x` entries (aligned with [`RankCtx::owned`]); the result holds
    /// the owned `y` entries in the same alignment.
    pub fn spmv(&mut self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.owned.len(), "local vector length mismatch");
        let tag0 = self.tags.take(self.comm_phases.max(1));
        self.xbuf.clear();
        self.ybuf.clear();
        for (&g, &val) in self.owned.iter().zip(v) {
            self.xbuf.insert(g, val);
        }
        let mut comm_idx = 0u32;
        for phase in &self.phases {
            match phase {
                EnginePhase::Compute(tasks) => {
                    for t in tasks {
                        let xv = *self.xbuf.get(&t.col).unwrap_or_else(|| {
                            panic!("rank {} lacks x[{}]: plan bug", self.ep.rank(), t.col)
                        });
                        *self.ybuf.entry(t.row).or_insert(0.0) += t.val * xv;
                    }
                }
                EnginePhase::Comm(cp) => {
                    let tag = tag0 + comm_idx;
                    comm_idx += 1;
                    for m in &cp.outgoing {
                        let xs: Vec<(u32, f64)> = m
                            .x_cols
                            .iter()
                            .map(|&j| {
                                (j, *self.xbuf.get(&j).unwrap_or_else(|| {
                                    panic!("rank {} lacks x[{j}] to send", self.ep.rank())
                                }))
                            })
                            .collect();
                        let ys: Vec<(u32, f64)> = m
                            .y_rows
                            .iter()
                            .map(|&i| {
                                (i, self.ybuf.remove(&i).unwrap_or_else(|| {
                                    panic!("rank {} lacks partial y[{i}]", self.ep.rank())
                                }))
                            })
                            .collect();
                        self.ep.send(m.dst, tag, (xs, ys));
                    }
                    for _ in 0..cp.expected {
                        let (xs, ys) = self.ep.recv_tag(tag).payload;
                        for (j, val) in xs {
                            self.xbuf.insert(j, val);
                        }
                        for (i, val) in ys {
                            *self.ybuf.entry(i).or_insert(0.0) += val;
                        }
                    }
                }
            }
        }
        self.owned.iter().map(|g| self.ybuf.get(g).copied().unwrap_or(0.0)).collect()
    }

    /// Global dot product `⟨u, v⟩` over all ranks' owned entries.
    pub fn dot(&mut self, u: &[f64], v: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), v.len());
        let local: f64 = u.iter().zip(v).map(|(a, b)| a * b).sum();
        self.sum(local)
    }

    /// Global Euclidean norm of `v`.
    pub fn norm2(&mut self, v: &[f64]) -> f64 {
        self.dot_self(v).sqrt()
    }

    /// Global `⟨v, v⟩`.
    pub fn dot_self(&mut self, v: &[f64]) -> f64 {
        let local: f64 = v.iter().map(|a| a * a).sum();
        self.sum(local)
    }

    /// Global sum of a per-rank scalar.
    pub fn sum(&mut self, local: f64) -> f64 {
        let tag = self.tags.take(2);
        let out = allreduce(&mut self.ep, tag, (vec![(0u32, local)], Vec::new()), |a, b| {
            (vec![(0, a.0[0].1 + b.0[0].1)], Vec::new())
        });
        out.0[0].1
    }

    /// Global max of a per-rank scalar.
    pub fn max(&mut self, local: f64) -> f64 {
        let tag = self.tags.take(2);
        let out = allreduce(&mut self.ep, tag, (vec![(0u32, local)], Vec::new()), |a, b| {
            (vec![(0, a.0[0].1.max(b.0[0].1))], Vec::new())
        });
        out.0[0].1
    }

    /// Global elementwise-sum allreduce of a small dense vector (every
    /// rank contributes and receives `vals.len()` entries). Used for
    /// fused multi-scalar reductions (e.g. CG's `(r·r, p·Ap)` pair).
    pub fn sum_vec(&mut self, vals: Vec<f64>) -> Vec<f64> {
        let tag = self.tags.take(2);
        let wrapped: Vec<(u32, f64)> =
            vals.into_iter().enumerate().map(|(i, v)| (i as u32, v)).collect();
        let out = allreduce(&mut self.ep, tag, (wrapped, Vec::new()), |mut a, b| {
            for ((_, av), (_, bv)) in a.0.iter_mut().zip(&b.0) {
                *av += *bv;
            }
            a
        });
        out.0.into_iter().map(|(_, v)| v).collect()
    }

    /// `y += alpha · x`, purely local.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// `v *= alpha`, purely local.
    pub fn scale(alpha: f64, v: &mut [f64]) {
        for vi in v.iter_mut() {
            *vi *= alpha;
        }
    }
}

/// Validates the solver preconditions and derives per-rank owned-index
/// lists from the (symmetric) vector partition.
fn owned_indices(plan: &SpmvPlan, p: &SpmvPartition) -> Vec<Vec<u32>> {
    assert_eq!(
        plan.nrows, plan.ncols,
        "iterative solvers need a square matrix (got {}x{})",
        plan.nrows, plan.ncols
    );
    assert_eq!(
        p.x_part, p.y_part,
        "iterative solvers need a symmetric vector partition (x_part == y_part)"
    );
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); plan.k];
    for (j, &o) in p.x_part.iter().enumerate() {
        owned[o as usize].push(j as u32);
    }
    owned
}

/// Runs `body` SPMD on `plan.k` ranks, each with a [`RankCtx`] compiled
/// from `plan`; returns the per-rank results in rank order.
///
/// `a` is used only for shape checks; `plan` must have been built from
/// `(a, p)`.
///
/// # Panics
/// Panics if the matrix is not square or the vector partition is not
/// symmetric (`x_part != y_part`).
pub fn spmd_compute<R, F>(a: &Csr, p: &SpmvPartition, plan: &SpmvPlan, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    assert_eq!(a.nrows(), plan.nrows);
    assert_eq!(a.ncols(), plan.ncols);
    let owned = owned_indices(plan, p);
    let owned_ref = parking_lot::Mutex::new(owned);
    spmd(Cluster::<Payload>::new(plan.k), |ep| {
        let rank = ep.rank();
        let my_owned = std::mem::take(&mut owned_ref.lock()[rank as usize]);
        // Endpoint moves into the context; the context lives for the
        // whole body.
        let ep = std::mem::replace(ep, dummy_endpoint());
        let mut ctx = RankCtx::compile(plan, rank, my_owned, ep);
        body(&mut ctx)
    })
}

/// A placeholder endpoint used to move the real one into [`RankCtx`]
/// (rank 0 of a private single-rank cluster; never communicated on).
fn dummy_endpoint() -> Endpoint<Payload> {
    Cluster::new(1).into_endpoints().remove(0)
}

/// Scatters a global vector into per-rank local slices (aligned with the
/// sorted owned indices that [`spmd_compute`] hands each rank).
pub fn scatter(global: &[f64], p: &SpmvPartition) -> Vec<Vec<f64>> {
    let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p.k];
    for (j, &v) in global.iter().enumerate() {
        parts[p.x_part[j] as usize].push(v);
    }
    parts
}

/// Gathers per-rank local slices back into a global vector.
pub fn gather_global(locals: &[(Vec<u32>, Vec<f64>)], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for (idx, vals) in locals {
        for (&g, &v) in idx.iter().zip(vals) {
            out[g as usize] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::partition::SpmvPartition;
    use s2d_sparse::Coo;

    /// 1D Laplacian (SPD, diagonally dominant).
    fn laplacian(n: usize) -> Csr {
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.0);
            if i + 1 < n {
                m.push(i, i + 1, -1.0);
                m.push(i + 1, i, -1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    fn block_partition(n: usize, k: usize) -> SpmvPartition {
        let per = n.div_ceil(k);
        let part: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
        SpmvPartition {
            k,
            x_part: part.clone(),
            y_part: part.clone(),
            nz_owner: Vec::new(), // filled by rowwise below
        }
    }

    fn setup(n: usize, k: usize) -> (Csr, SpmvPartition, SpmvPlan) {
        let a = laplacian(n);
        let base = block_partition(n, k);
        let p = SpmvPartition::rowwise(&a, base.y_part.clone(), base.x_part.clone(), k);
        let plan = SpmvPlan::single_phase(&a, &p);
        (a, p, plan)
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let (a, p, plan) = setup(40, 4);
        let x: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let want = a.spmv_alloc(&x);
        let locals = scatter(&x, &p);
        let locals = parking_lot::Mutex::new(locals);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            let y = ctx.spmv(&v);
            (ctx.owned.clone(), y)
        });
        let got = gather_global(&out, 40);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn repeated_spmv_calls_are_independent() {
        let (a, p, plan) = setup(24, 3);
        let x: Vec<f64> = (0..24).map(|i| i as f64 * 0.1).collect();
        let want = a.spmv_alloc(&x);
        let locals = scatter(&x, &p);
        let locals = parking_lot::Mutex::new(locals);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            let y1 = ctx.spmv(&v);
            let y2 = ctx.spmv(&v);
            assert_eq!(y1, y2, "same input, same output");
            // And chaining: y3 = A(Ax) must differ from Ax in general.
            let y3 = ctx.spmv(&y1);
            (ctx.owned.clone(), y1, y3)
        });
        let got = gather_global(
            &out.iter().map(|(o, y1, _)| (o.clone(), y1.clone())).collect::<Vec<_>>(),
            24,
        );
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
        let got3 = gather_global(
            &out.into_iter().map(|(o, _, y3)| (o, y3)).collect::<Vec<_>>(),
            24,
        );
        let want3 = a.spmv_alloc(&want);
        for (g, w) in got3.iter().zip(&want3) {
            assert!((g - w).abs() < 1e-12, "A²x: {g} vs {w}");
        }
    }

    #[test]
    fn dot_and_norm_reduce_globally() {
        let (a, p, plan) = setup(30, 5);
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let serial_dot: f64 = x.iter().map(|v| v * v).sum();
        let locals = scatter(&x, &p);
        let locals = parking_lot::Mutex::new(locals);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            (ctx.dot(&v, &v), ctx.norm2(&v), ctx.max(v.iter().copied().fold(0.0, f64::max)))
        });
        for (dot, norm, max) in out {
            assert!((dot - serial_dot).abs() < 1e-9);
            assert!((norm - serial_dot.sqrt()).abs() < 1e-9);
            assert!((max - 29.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_vec_fuses_multiple_reductions() {
        let (a, p, plan) = setup(16, 4);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let r = ctx.rank() as f64;
            ctx.sum_vec(vec![r, 2.0 * r, 1.0])
        });
        for v in out {
            assert_eq!(v, vec![6.0, 12.0, 4.0]); // Σr, 2Σr, K
        }
    }

    #[test]
    #[should_panic(expected = "symmetric vector partition")]
    fn asymmetric_partition_is_rejected() {
        let a = laplacian(8);
        let y_part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let x_part = vec![1, 1, 1, 1, 0, 0, 0, 0];
        let p = SpmvPartition::rowwise(&a, y_part, x_part, 2);
        let plan = SpmvPlan::single_phase(&a, &p);
        let _ = spmd_compute(&a, &p, &plan, |_| ());
    }

    #[test]
    fn local_axpy_and_scale() {
        let mut y = vec![1.0, 2.0];
        RankCtx::axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
        RankCtx::scale(0.5, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }
}
