//! The per-rank distributed compute engine.
//!
//! [`spmd_compute`] spawns one rank per processor of a partition, hands
//! each a [`RankCtx`], and runs a user closure SPMD-style. The context
//! owns the rank's compiled slice of the SpMV plan and its share of every
//! distributed vector, and provides:
//!
//! * `spmv` — execute the plan's phases for this rank (tags are drawn
//!   from a per-context allocator, so repeated calls never cross-talk);
//! * `dot`, `norm2`, `sum`, `max` — global reductions over the runtime's
//!   binomial-tree collectives;
//! * local vector helpers (`axpy`, `scale`) that need no communication.
//!
//! Distributed vectors are plain `Vec<f64>` aligned with the rank's
//! sorted list of owned global indices ([`RankCtx::owned`]).
//!
//! # Execution paths
//!
//! `spmv` runs on one of two engines ([`EnginePath`]):
//!
//! * **Compiled** (default) — the rank's [`s2d_engine::RankProgram`]:
//!   dense local renumbering, format-lowered kernels (CSR slices by
//!   default; whatever `s2d_engine::KernelFormat` the plan was compiled
//!   with runs unchanged here, since the per-rank walk executes kernels
//!   through the same `Kernel::run_batch` entry point), message
//!   payloads built by precomputed gather lists and applied by
//!   precomputed scatter lists. No hashing anywhere in the iteration
//!   path.
//! * **Interpreted** — the original `HashMap`-keyed walk of the plan's
//!   phases, kept as the semantic cross-check oracle.
//!
//! Both paths exchange *positional* payloads (plain value vectors whose
//! layout the plan itself defines), so they interoperate with the same
//! runtime collectives and can be compared bit for bit.
//!
//! [`EnginePath`] selects only the *per-rank kernel implementation*
//! inside the SPMD world. Solver math no longer branches on it: the
//! cores in `cg`/`jacobi`/`power`/`block_power` are generic over
//! `SpmvOperator + Reduce` (see [`crate::operator`]), which [`RankCtx`]
//! implements — the same cores also run solo on any whole-plan
//! `s2d_engine::Backend` operator.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use s2d_core::partition::SpmvPartition;
use s2d_engine::{CompiledPlan, RankProgram, RankStep, NO_SLOT};
use s2d_obs::{Phase, PhaseRecorder, TelemetrySink};
use s2d_runtime::collectives::allreduce;
use s2d_runtime::{spmd, Cluster, Endpoint};
use s2d_sparse::Csr;
use s2d_spmv::{MsgSpec, MultTask, PlanPhase, SpmvPlan};

/// Message payload: `x` values and partial-`y` values, positional (the
/// plan's message specs define which global index each slot carries).
pub type Payload = (Vec<f64>, Vec<f64>);

/// Which engine executes [`RankCtx::spmv`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnginePath {
    /// Flat compiled kernels (the production path).
    #[default]
    Compiled,
    /// `HashMap`-keyed plan interpretation (the cross-check oracle).
    Interpreted,
}

/// One rank's owned slice of an interpreted communication phase.
struct CommPhase {
    outgoing: Vec<MsgSpec>,
    incoming: Vec<MsgSpec>,
}

/// One rank's interpreted plan phase.
enum EnginePhase {
    Compute(Vec<MultTask>),
    Comm(CommPhase),
}

/// Hands out unique message tags; every rank draws the same sequence
/// because SPMD ranks execute the same call sites in the same order.
struct TagAlloc {
    next: u32,
}

impl TagAlloc {
    fn take(&mut self, n: u32) -> u32 {
        let t = self.next;
        self.next = self.next.checked_add(n).expect("tag space exhausted");
        t
    }
}

/// The per-rank state of whichever engine was selected — only that
/// engine's buffers are built (the other path costs nothing).
enum RankEngine {
    Compiled {
        /// The whole compiled plan, shared across ranks (each rank
        /// reads only its own `RankProgram` — no per-rank deep copy).
        compiled: Arc<CompiledPlan>,
        rank: usize,
        /// Flat local vectors sized to the rank's compiled footprint.
        xloc: Vec<f64>,
        yloc: Vec<f64>,
        /// `(position in owned, local x slot)` seeding pairs.
        seed_slots: Vec<(u32, u32)>,
        /// Local y slot per owned position ([`NO_SLOT`] → result is 0).
        result_slots: Vec<u32>,
    },
    Interpreted {
        phases: Vec<EnginePhase>,
        xbuf: HashMap<u32, f64>,
        ybuf: HashMap<u32, f64>,
        /// Scratch column reused across the `r` per-column passes of a
        /// batched call (and across calls).
        col: Vec<f64>,
    },
}

/// The per-rank compute context passed to [`spmd_compute`] closures.
pub struct RankCtx {
    ep: Endpoint<Payload>,
    comm_phases: u32,
    tags: TagAlloc,
    /// Sorted global indices owned by this rank (`x` and `y` coincide —
    /// symmetric vector partition).
    pub owned: Vec<u32>,
    engine: RankEngine,
    /// Shared telemetry sink; this rank records under its own recorder.
    obs: Option<Arc<TelemetrySink>>,
}

impl RankCtx {
    /// Builds the selected engine's per-rank state. `compiled` must be
    /// `Some` exactly when `path` is [`EnginePath::Compiled`].
    fn compile(
        plan: &SpmvPlan,
        compiled: Option<&Arc<CompiledPlan>>,
        path: EnginePath,
        rank: u32,
        owned: Vec<u32>,
        ep: Endpoint<Payload>,
    ) -> Self {
        let comm_phases =
            plan.phases.iter().filter(|p| matches!(p, PlanPhase::Comm(_))).count() as u32;
        let engine = match path {
            EnginePath::Compiled => {
                let compiled =
                    Arc::clone(compiled.expect("compiled plan required for the compiled path"));
                let prog = &compiled.ranks[rank as usize];
                let seed_slots = prog
                    .x_seed
                    .iter()
                    .map(|&(g, slot)| {
                        let pos = owned.binary_search(&g).expect("seeded entry must be owned");
                        (pos as u32, slot)
                    })
                    .collect();
                let result_slots = owned.iter().map(|&g| compiled.y_slot[g as usize]).collect();
                let (nx, ny) = (prog.nx, prog.ny);
                RankEngine::Compiled {
                    xloc: vec![0.0; nx],
                    yloc: vec![0.0; ny],
                    seed_slots,
                    result_slots,
                    rank: rank as usize,
                    compiled,
                }
            }
            EnginePath::Interpreted => {
                // This rank's task lists and message specs, cloned out
                // of the plan.
                let phases = plan
                    .phases
                    .iter()
                    .map(|phase| match phase {
                        PlanPhase::Compute(tasks) => {
                            EnginePhase::Compute(tasks[rank as usize].clone())
                        }
                        PlanPhase::Comm(msgs) => EnginePhase::Comm(CommPhase {
                            outgoing: msgs.iter().filter(|m| m.src == rank).cloned().collect(),
                            incoming: msgs.iter().filter(|m| m.dst == rank).cloned().collect(),
                        }),
                    })
                    .collect();
                RankEngine::Interpreted {
                    phases,
                    xbuf: HashMap::new(),
                    ybuf: HashMap::new(),
                    col: Vec::new(),
                }
            }
        };
        RankCtx { ep, comm_phases, tags: TagAlloc { next: 0 }, owned, engine, obs: None }
    }

    /// Attaches a shared telemetry sink: subsequent SpMVs record
    /// gather / compute / scatter phase spans and work counters under
    /// this rank's recorder (compiled path only — the interpreted
    /// oracle stays uninstrumented), and reductions record
    /// [`Phase::Reduce`] spans. Purely observational: instrumented
    /// runs are bitwise identical to uninstrumented ones.
    ///
    /// # Panics
    /// Panics if the sink was sized for a different rank count.
    pub fn set_telemetry(&mut self, sink: Arc<TelemetrySink>) {
        assert_eq!(sink.k(), self.size(), "telemetry sink sized for a different rank count");
        self.obs = Some(sink);
    }

    /// This rank's recorder, when telemetry is attached.
    fn rec(&self) -> Option<&PhaseRecorder> {
        self.obs.as_ref().map(|s| s.rank(self.ep.rank() as usize))
    }

    /// This rank's id.
    pub fn rank(&self) -> u32 {
        self.ep.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ep.size()
    }

    /// Number of vector entries owned by this rank.
    pub fn local_len(&self) -> usize {
        self.owned.len()
    }

    /// The engine executing [`RankCtx::spmv`].
    pub fn path(&self) -> EnginePath {
        match self.engine {
            RankEngine::Compiled { .. } => EnginePath::Compiled,
            RankEngine::Interpreted { .. } => EnginePath::Interpreted,
        }
    }

    /// Executes one distributed SpMV: `v` holds the values of the owned
    /// `x` entries (aligned with [`RankCtx::owned`]); the result holds
    /// the owned `y` entries in the same alignment.
    ///
    /// Allocating convenience over [`RankCtx::spmv_batch_into`] — the
    /// solver cores use the out-param form (via the `SpmvOperator`
    /// impl) to keep iteration loops allocation-free.
    pub fn spmv(&mut self, v: &[f64]) -> Vec<f64> {
        self.spmv_batch(v, 1)
    }

    /// Executes one distributed **batched** SpMV over `r` right-hand
    /// sides, allocating the output block. See
    /// [`RankCtx::spmv_batch_into`].
    pub fn spmv_batch(&mut self, v: &[f64], r: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.owned.len() * r];
        self.spmv_batch_into(v, &mut out, r);
        out
    }

    /// Executes one distributed batched SpMV over `r` right-hand sides
    /// into the caller's buffer. `v` is a row-major `local_len × r`
    /// block (owned entry `i` occupies `v[i*r .. (i+1)*r]`); `out` has
    /// the same layout for the owned `y` entries and is fully
    /// overwritten.
    ///
    /// On the compiled path every message carries `len × r` words — one
    /// exchange round per communication phase regardless of `r` — and
    /// the kernels run the fixed-width batched inner loops. The
    /// interpreted oracle executes the batch column by column through
    /// one reused scratch column buffer, so the two paths stay
    /// comparable bit for bit with no per-column allocation.
    pub fn spmv_batch_into(&mut self, v: &[f64], out: &mut [f64], r: usize) {
        assert!(r >= 1, "batch width must be at least 1");
        assert_eq!(v.len(), self.owned.len() * r, "local block length mismatch");
        assert_eq!(out.len(), self.owned.len() * r, "output block length mismatch");
        let rk = self.ep.rank() as usize;
        let obs_rec = self.obs.as_ref().map(|s| s.rank(rk));
        match &mut self.engine {
            RankEngine::Compiled { compiled, rank, xloc, yloc, seed_slots, result_slots } => {
                let tag0 = self.tags.take(self.comm_phases.max(1));
                let prog = &compiled.ranks[*rank];
                // Grow the cached local blocks on first use of a wider
                // batch; stride-r addressing ignores any excess tail.
                if xloc.len() < prog.nx * r {
                    xloc.resize(prog.nx * r, 0.0);
                }
                if yloc.len() < prog.ny * r {
                    yloc.resize(prog.ny * r, 0.0);
                }
                spmv_compiled(
                    &mut self.ep,
                    prog,
                    xloc,
                    yloc,
                    seed_slots,
                    result_slots,
                    v,
                    out,
                    r,
                    tag0,
                    obs_rec,
                );
            }
            RankEngine::Interpreted { phases, xbuf, ybuf, col } => {
                // Column-by-column oracle: r independent single-RHS
                // walks, re-interleaved, all through the single scratch
                // column buffer. Tags are drawn per column — the same
                // sequence on every rank (SPMD call sites).
                let m = self.owned.len();
                col.resize(m, 0.0);
                for q in 0..r {
                    for i in 0..m {
                        col[i] = v[i * r + q];
                    }
                    let tag0 = self.tags.take(self.comm_phases.max(1));
                    spmv_interpreted(
                        &mut self.ep,
                        phases,
                        xbuf,
                        ybuf,
                        &self.owned,
                        col,
                        out,
                        r,
                        q,
                        tag0,
                    );
                }
            }
        }
    }

    /// Global dot product `⟨u, v⟩` over all ranks' owned entries.
    pub fn dot(&mut self, u: &[f64], v: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), v.len());
        let local: f64 = u.iter().zip(v).map(|(a, b)| a * b).sum();
        self.sum(local)
    }

    /// Global Euclidean norm of `v`.
    pub fn norm2(&mut self, v: &[f64]) -> f64 {
        self.dot_self(v).sqrt()
    }

    /// Global `⟨v, v⟩`.
    pub fn dot_self(&mut self, v: &[f64]) -> f64 {
        let local: f64 = v.iter().map(|a| a * a).sum();
        self.sum(local)
    }

    /// Global sum of a per-rank scalar.
    pub fn sum(&mut self, local: f64) -> f64 {
        let tag = self.tags.take(2);
        let t = self.obs.as_ref().map(|_| Instant::now());
        let out = allreduce(&mut self.ep, tag, (vec![local], Vec::new()), |a, b| {
            (vec![a.0[0] + b.0[0]], Vec::new())
        });
        self.record_reduce(t);
        out.0[0]
    }

    /// Global max of a per-rank scalar.
    pub fn max(&mut self, local: f64) -> f64 {
        let tag = self.tags.take(2);
        let t = self.obs.as_ref().map(|_| Instant::now());
        let out = allreduce(&mut self.ep, tag, (vec![local], Vec::new()), |a, b| {
            (vec![a.0[0].max(b.0[0])], Vec::new())
        });
        self.record_reduce(t);
        out.0[0]
    }

    /// Global elementwise-sum allreduce of a small dense vector (every
    /// rank contributes and receives `vals.len()` entries). Used for
    /// fused multi-scalar reductions (e.g. CG's `(r·r, p·Ap)` pair).
    pub fn sum_vec(&mut self, vals: Vec<f64>) -> Vec<f64> {
        let tag = self.tags.take(2);
        let t = self.obs.as_ref().map(|_| Instant::now());
        let out = allreduce(&mut self.ep, tag, (vals, Vec::new()), |mut a, b| {
            for (av, bv) in a.0.iter_mut().zip(&b.0) {
                *av += *bv;
            }
            a
        });
        self.record_reduce(t);
        out.0
    }

    /// Closes a [`Phase::Reduce`] span opened before an allreduce.
    fn record_reduce(&self, t: Option<Instant>) {
        if let Some(t) = t {
            if let Some(rec) = self.rec() {
                rec.record(Phase::Reduce, t.elapsed().as_nanos() as u64);
            }
        }
    }

    /// `y += alpha · x`, purely local.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        crate::operator::axpy(alpha, x, y)
    }

    /// `v *= alpha`, purely local.
    pub fn scale(alpha: f64, v: &mut [f64]) {
        crate::operator::scale(alpha, v)
    }
}

/// The per-rank context *is* an SpMV operator over the rank's local
/// vectors: `apply` executes this rank's slice of the distributed plan
/// (communicating with its peers — every rank must call it at the same
/// program point). This is what lets the solver cores be written once,
/// generic over `SpmvOperator + Reduce`, and run both SPMD-distributed
/// and solo on any whole-plan backend.
impl s2d_spmv::SpmvOperator for RankCtx {
    /// Local output dimension (= the rank's owned-entry count; the
    /// vector partition is symmetric).
    fn nrows(&self) -> usize {
        self.owned.len()
    }

    fn ncols(&self) -> usize {
        self.owned.len()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.spmv_batch_into(x, y, 1);
    }

    fn apply_batch(&mut self, x: &[f64], y: &mut [f64], r: usize) {
        self.spmv_batch_into(x, y, r);
    }
}

/// Reductions ride the runtime's binomial-tree collectives.
impl crate::operator::Reduce for RankCtx {
    fn reduce_sum(&mut self, local: f64) -> f64 {
        self.sum(local)
    }

    fn reduce_sum_vec(&mut self, locals: Vec<f64>) -> Vec<f64> {
        self.sum_vec(locals)
    }

    fn reduce_max(&mut self, local: f64) -> f64 {
        self.max(local)
    }
}

/// Opens a span iff a recorder is attached (the off path reads no
/// clock at all).
#[inline]
fn span_start(obs: Option<&PhaseRecorder>) -> Option<Instant> {
    obs.map(|_| Instant::now())
}

/// Closes a span opened by [`span_start`].
#[inline]
fn span_end(obs: Option<&PhaseRecorder>, ph: Phase, t: Option<Instant>) {
    if let (Some(rec), Some(t)) = (obs, t) {
        rec.record(ph, t.elapsed().as_nanos() as u64);
    }
}

/// The compiled path: flat buffers, precomputed index lists, zero
/// hashing, batch width `r` (message payloads are `len × r` word
/// blocks, `r` consecutive words per listed slot). Writes the owned
/// result block into `out`; payload vectors are the only per-call
/// allocations (they move into the runtime's channels).
///
/// When `obs` carries this rank's recorder, phase spans and work
/// counters are recorded around (never inside) the numeric steps:
/// seeding and send staging as gather, kernels as compute, receive
/// application and result copy-out as scatter. The instrumented walk
/// performs the identical operations in the identical order.
#[allow(clippy::too_many_arguments)]
fn spmv_compiled(
    ep: &mut Endpoint<Payload>,
    prog: &RankProgram,
    xloc: &mut [f64],
    yloc: &mut [f64],
    seed_slots: &[(u32, u32)],
    result_slots: &[u32],
    v: &[f64],
    out: &mut [f64],
    r: usize,
    tag0: u32,
    obs: Option<&PhaseRecorder>,
) {
    let (mut madds, mut words) = (0u64, 0u64);
    let t = span_start(obs);
    for &(pos, slot) in seed_slots {
        let (src, dst) = (pos as usize * r, slot as usize * r);
        xloc[dst..dst + r].copy_from_slice(&v[src..src + r]);
    }
    yloc[..prog.ny * r].fill(0.0);
    span_end(obs, Phase::Gather, t);
    let mut comm_idx = 0u32;
    for step in &prog.steps {
        match step {
            RankStep::Compute(kernel) => {
                let t = span_start(obs);
                kernel.run_batch(xloc, yloc, r);
                span_end(obs, Phase::Compute, t);
                if obs.is_some() {
                    madds += kernel.ops() as u64;
                }
            }
            RankStep::Comm { sends, recvs, .. } => {
                let tag = tag0 + comm_idx;
                comm_idx += 1;
                let t = span_start(obs);
                for m in sends {
                    let mut xs = Vec::with_capacity(m.x_idx.len() * r);
                    for &s in &m.x_idx {
                        xs.extend_from_slice(&xloc[s as usize * r..s as usize * r + r]);
                    }
                    let mut ys = Vec::with_capacity(m.y_idx.len() * r);
                    for &s in &m.y_idx {
                        let at = s as usize * r;
                        ys.extend_from_slice(&yloc[at..at + r]);
                        yloc[at..at + r].fill(0.0); // moved, not copied
                    }
                    if obs.is_some() {
                        words += m.words() as u64;
                    }
                    ep.send(m.peer, tag, (xs, ys));
                }
                span_end(obs, Phase::Gather, t);
                // All sends are posted; targeted receives can land in
                // spec order without deadlock.
                let t = span_start(obs);
                for m in recvs {
                    let (xs, ys) = ep.recv_match(m.peer, tag).payload;
                    debug_assert_eq!(xs.len(), m.x_idx.len() * r);
                    debug_assert_eq!(ys.len(), m.y_idx.len() * r);
                    for (i, &slot) in m.x_idx.iter().enumerate() {
                        let at = slot as usize * r;
                        xloc[at..at + r].copy_from_slice(&xs[i * r..(i + 1) * r]);
                    }
                    for (i, &slot) in m.y_idx.iter().enumerate() {
                        let at = slot as usize * r;
                        for q in 0..r {
                            yloc[at + q] += ys[i * r + q];
                        }
                    }
                }
                span_end(obs, Phase::Scatter, t);
            }
        }
    }
    let t = span_start(obs);
    for (i, &s) in result_slots.iter().enumerate() {
        if s == NO_SLOT {
            out[i * r..(i + 1) * r].fill(0.0);
        } else {
            out[i * r..(i + 1) * r].copy_from_slice(&yloc[s as usize * r..s as usize * r + r]);
        }
    }
    span_end(obs, Phase::Scatter, t);
    if let Some(rec) = obs {
        let rows = result_slots.iter().filter(|&&s| s != NO_SLOT).count() as u64;
        let r = r as u64;
        rec.add_counts(rows * r, madds * r, words * r);
    }
}

/// The interpreted oracle: the original `HashMap`-keyed phase walk over
/// one column `v`, writing the result into column `q` of the row-major
/// `len × r` block `out`.
#[allow(clippy::too_many_arguments)]
fn spmv_interpreted(
    ep: &mut Endpoint<Payload>,
    phases: &[EnginePhase],
    xbuf: &mut HashMap<u32, f64>,
    ybuf: &mut HashMap<u32, f64>,
    owned: &[u32],
    v: &[f64],
    out: &mut [f64],
    r: usize,
    q: usize,
    tag0: u32,
) {
    xbuf.clear();
    ybuf.clear();
    for (&g, &val) in owned.iter().zip(v) {
        xbuf.insert(g, val);
    }
    let mut comm_idx = 0u32;
    for phase in phases {
        match phase {
            EnginePhase::Compute(tasks) => {
                for t in tasks {
                    let xv = *xbuf.get(&t.col).unwrap_or_else(|| {
                        panic!("rank {} lacks x[{}]: plan bug", ep.rank(), t.col)
                    });
                    *ybuf.entry(t.row).or_insert(0.0) += t.val * xv;
                }
            }
            EnginePhase::Comm(cp) => {
                let tag = tag0 + comm_idx;
                comm_idx += 1;
                for m in &cp.outgoing {
                    let xs: Vec<f64> = m
                        .x_cols
                        .iter()
                        .map(|&j| {
                            *xbuf.get(&j).unwrap_or_else(|| {
                                panic!("rank {} lacks x[{j}] to send", ep.rank())
                            })
                        })
                        .collect();
                    let ys: Vec<f64> = m
                        .y_rows
                        .iter()
                        .map(|&i| {
                            ybuf.remove(&i).unwrap_or_else(|| {
                                panic!("rank {} lacks partial y[{i}]", ep.rank())
                            })
                        })
                        .collect();
                    ep.send(m.dst, tag, (xs, ys));
                }
                for m in &cp.incoming {
                    let (xs, ys) = ep.recv_match(m.src, tag).payload;
                    for (&j, val) in m.x_cols.iter().zip(xs) {
                        xbuf.insert(j, val);
                    }
                    for (&i, val) in m.y_rows.iter().zip(ys) {
                        *ybuf.entry(i).or_insert(0.0) += val;
                    }
                }
            }
        }
    }
    for (i, g) in owned.iter().enumerate() {
        out[i * r + q] = ybuf.get(g).copied().unwrap_or(0.0);
    }
}

/// Validates the solver preconditions and derives per-rank owned-index
/// lists from the (symmetric) vector partition.
fn owned_indices(plan: &SpmvPlan, p: &SpmvPartition) -> Vec<Vec<u32>> {
    assert_eq!(
        plan.nrows, plan.ncols,
        "iterative solvers need a square matrix (got {}x{})",
        plan.nrows, plan.ncols
    );
    assert_eq!(
        p.x_part, p.y_part,
        "iterative solvers need a symmetric vector partition (x_part == y_part)"
    );
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); plan.k];
    for (j, &o) in p.x_part.iter().enumerate() {
        owned[o as usize].push(j as u32);
    }
    owned
}

/// Runs `body` SPMD on `plan.k` ranks, each with a [`RankCtx`] compiled
/// from `plan` running on the default (compiled) engine; returns the
/// per-rank results in rank order.
///
/// `a` is used only for shape checks; `plan` must have been built from
/// `(a, p)`.
///
/// # Panics
/// Panics if the matrix is not square or the vector partition is not
/// symmetric (`x_part != y_part`).
pub fn spmd_compute<R, F>(a: &Csr, p: &SpmvPartition, plan: &SpmvPlan, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    spmd_compute_on(EnginePath::Compiled, a, p, plan, body)
}

/// [`spmd_compute`] with an explicit [`EnginePath`].
pub fn spmd_compute_on<R, F>(
    path: EnginePath,
    a: &Csr,
    p: &SpmvPartition,
    plan: &SpmvPlan,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    spmd_compute_inner(path, a, p, plan, None, body)
}

/// [`spmd_compute`] with a telemetry sink attached to every rank's
/// context ([`RankCtx::set_telemetry`]): each rank records its SpMV
/// phase spans, work counters and reduction spans under its own
/// recorder. The sink must be sized for `plan.k` ranks.
pub fn spmd_compute_obs<R, F>(
    a: &Csr,
    p: &SpmvPartition,
    plan: &SpmvPlan,
    sink: &Arc<TelemetrySink>,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    spmd_compute_inner(EnginePath::Compiled, a, p, plan, Some(sink), body)
}

fn spmd_compute_inner<R, F>(
    path: EnginePath,
    a: &Csr,
    p: &SpmvPartition,
    plan: &SpmvPlan,
    obs: Option<&Arc<TelemetrySink>>,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    assert_eq!(a.nrows(), plan.nrows);
    assert_eq!(a.ncols(), plan.ncols);
    let owned = owned_indices(plan, p);
    // Only the selected engine's state is built: the one-time compile
    // runs solely on the compiled path, and the interpreted path's
    // per-rank task-list clones happen solely on the interpreted path.
    let compiled = match path {
        EnginePath::Compiled => Some(Arc::new(CompiledPlan::compile(plan))),
        EnginePath::Interpreted => None,
    };
    let owned_ref = parking_lot::Mutex::new(owned);
    spmd(Cluster::<Payload>::new(plan.k), |ep| {
        let rank = ep.rank();
        let my_owned = std::mem::take(&mut owned_ref.lock()[rank as usize]);
        // Endpoint moves into the context; the context lives for the
        // whole body.
        let ep = std::mem::replace(ep, dummy_endpoint());
        let mut ctx = RankCtx::compile(plan, compiled.as_ref(), path, rank, my_owned, ep);
        if let Some(sink) = obs {
            ctx.set_telemetry(Arc::clone(sink));
        }
        body(&mut ctx)
    })
}

/// A placeholder endpoint used to move the real one into [`RankCtx`]
/// (rank 0 of a private single-rank cluster; never communicated on).
fn dummy_endpoint() -> Endpoint<Payload> {
    Cluster::new(1).into_endpoints().remove(0)
}

/// Scatters a global vector into per-rank local slices (aligned with the
/// sorted owned indices that [`spmd_compute`] hands each rank).
pub fn scatter(global: &[f64], p: &SpmvPartition) -> Vec<Vec<f64>> {
    let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p.k];
    for (j, &v) in global.iter().enumerate() {
        parts[p.x_part[j] as usize].push(v);
    }
    parts
}

/// Gathers per-rank local slices back into a global vector.
pub fn gather_global(locals: &[(Vec<u32>, Vec<f64>)], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for (idx, vals) in locals {
        for (&g, &v) in idx.iter().zip(vals) {
            out[g as usize] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2d_core::partition::SpmvPartition;
    use s2d_sparse::Coo;

    /// 1D Laplacian (SPD, diagonally dominant).
    fn laplacian(n: usize) -> Csr {
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.0);
            if i + 1 < n {
                m.push(i, i + 1, -1.0);
                m.push(i + 1, i, -1.0);
            }
        }
        m.compress();
        m.to_csr()
    }

    fn block_partition(n: usize, k: usize) -> SpmvPartition {
        let per = n.div_ceil(k);
        let part: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
        SpmvPartition {
            k,
            x_part: part.clone(),
            y_part: part.clone(),
            nz_owner: Vec::new(), // filled by rowwise below
        }
    }

    fn setup(n: usize, k: usize) -> (Csr, SpmvPartition, SpmvPlan) {
        let a = laplacian(n);
        let base = block_partition(n, k);
        let p = SpmvPartition::rowwise(&a, base.y_part.clone(), base.x_part.clone(), k);
        let plan = SpmvPlan::single_phase(&a, &p);
        (a, p, plan)
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let (a, p, plan) = setup(40, 4);
        let x: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let want = a.spmv_alloc(&x);
        let locals = scatter(&x, &p);
        let locals = parking_lot::Mutex::new(locals);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            let y = ctx.spmv(&v);
            (ctx.owned.clone(), y)
        });
        let got = gather_global(&out, 40);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn compiled_and_interpreted_paths_agree_bitwise() {
        let (a, p, plan) = setup(36, 5);
        let x: Vec<f64> = (0..36).map(|i| ((i * 13) % 11) as f64 / 7.0 - 0.6).collect();
        let mut results = Vec::new();
        for path in [EnginePath::Compiled, EnginePath::Interpreted] {
            let locals = parking_lot::Mutex::new(scatter(&x, &p));
            let out = spmd_compute_on(path, &a, &p, &plan, |ctx| {
                assert_eq!(ctx.path(), path);
                let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
                let y1 = ctx.spmv(&v);
                let y2 = ctx.spmv(&y1); // chained: A(Ax)
                (ctx.owned.clone(), y2)
            });
            results.push(gather_global(&out, 36));
        }
        // Same plan, same per-rank accumulation order → identical floats.
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn repeated_spmv_calls_are_independent() {
        let (a, p, plan) = setup(24, 3);
        let x: Vec<f64> = (0..24).map(|i| i as f64 * 0.1).collect();
        let want = a.spmv_alloc(&x);
        let locals = scatter(&x, &p);
        let locals = parking_lot::Mutex::new(locals);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            let y1 = ctx.spmv(&v);
            let y2 = ctx.spmv(&v);
            assert_eq!(y1, y2, "same input, same output");
            // And chaining: y3 = A(Ax) must differ from Ax in general.
            let y3 = ctx.spmv(&y1);
            (ctx.owned.clone(), y1, y3)
        });
        let got = gather_global(
            &out.iter().map(|(o, y1, _)| (o.clone(), y1.clone())).collect::<Vec<_>>(),
            24,
        );
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
        let got3 =
            gather_global(&out.into_iter().map(|(o, _, y3)| (o, y3)).collect::<Vec<_>>(), 24);
        let want3 = a.spmv_alloc(&want);
        for (g, w) in got3.iter().zip(&want3) {
            assert!((g - w).abs() < 1e-12, "A²x: {g} vs {w}");
        }
    }

    #[test]
    fn batched_spmv_matches_per_column_serial() {
        let (a, p, plan) = setup(40, 4);
        let r = 3;
        let n = a.nrows();
        // Row-major n×r block, deterministic per (index, column).
        let xblock: Vec<f64> = (0..n * r).map(|i| ((i * 131) % 17) as f64 / 5.0 - 1.4).collect();
        let locals = parking_lot::Mutex::new({
            // Scatter the block: rank gets owned rows' r-word groups.
            let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p.k];
            for g in 0..n {
                parts[p.x_part[g] as usize].extend_from_slice(&xblock[g * r..(g + 1) * r]);
            }
            parts
        });
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            let y = ctx.spmv_batch(&v, r);
            (ctx.owned.clone(), y)
        });
        // Reassemble the global block and check each column.
        let mut got = vec![0.0; n * r];
        for (idx, vals) in &out {
            for (i, &g) in idx.iter().enumerate() {
                got[g as usize * r..(g as usize + 1) * r]
                    .copy_from_slice(&vals[i * r..(i + 1) * r]);
            }
        }
        for q in 0..r {
            let xq: Vec<f64> = (0..n).map(|g| xblock[g * r + q]).collect();
            let want = a.spmv_alloc(&xq);
            for g in 0..n {
                let v = got[g * r + q];
                assert!((v - want[g]).abs() < 1e-12, "col {q} row {g}: {v} vs {}", want[g]);
            }
        }
    }

    #[test]
    fn batched_compiled_and_interpreted_paths_agree_bitwise() {
        let (a, p, plan) = setup(36, 5);
        let r = 4;
        let n = a.nrows();
        let xblock: Vec<f64> = (0..n * r).map(|i| ((i * 37) % 23) as f64 / 7.0 - 1.5).collect();
        let mut results = Vec::new();
        for path in [EnginePath::Compiled, EnginePath::Interpreted] {
            let locals = parking_lot::Mutex::new({
                let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p.k];
                for g in 0..n {
                    parts[p.x_part[g] as usize].extend_from_slice(&xblock[g * r..(g + 1) * r]);
                }
                parts
            });
            let out = spmd_compute_on(path, &a, &p, &plan, |ctx| {
                let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
                let y1 = ctx.spmv_batch(&v, r);
                let y2 = ctx.spmv_batch(&y1, r); // chained: A(AX)
                (ctx.owned.clone(), y2)
            });
            let mut got = vec![0.0; n * r];
            for (idx, vals) in &out {
                for (i, &g) in idx.iter().enumerate() {
                    got[g as usize * r..(g as usize + 1) * r]
                        .copy_from_slice(&vals[i * r..(i + 1) * r]);
                }
            }
            results.push(got);
        }
        // Same per-rank accumulation order per column → identical floats.
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn dot_and_norm_reduce_globally() {
        let (a, p, plan) = setup(30, 5);
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let serial_dot: f64 = x.iter().map(|v| v * v).sum();
        let locals = scatter(&x, &p);
        let locals = parking_lot::Mutex::new(locals);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let v = std::mem::take(&mut locals.lock()[ctx.rank() as usize]);
            (ctx.dot(&v, &v), ctx.norm2(&v), ctx.max(v.iter().copied().fold(0.0, f64::max)))
        });
        for (dot, norm, max) in out {
            assert!((dot - serial_dot).abs() < 1e-9);
            assert!((norm - serial_dot.sqrt()).abs() < 1e-9);
            assert!((max - 29.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_vec_fuses_multiple_reductions() {
        let (a, p, plan) = setup(16, 4);
        let out = spmd_compute(&a, &p, &plan, |ctx| {
            let r = ctx.rank() as f64;
            ctx.sum_vec(vec![r, 2.0 * r, 1.0])
        });
        for v in out {
            assert_eq!(v, vec![6.0, 12.0, 4.0]); // Σr, 2Σr, K
        }
    }

    #[test]
    #[should_panic(expected = "symmetric vector partition")]
    fn asymmetric_partition_is_rejected() {
        let a = laplacian(8);
        let y_part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let x_part = vec![1, 1, 1, 1, 0, 0, 0, 0];
        let p = SpmvPartition::rowwise(&a, y_part, x_part, 2);
        let plan = SpmvPlan::single_phase(&a, &p);
        let _ = spmd_compute(&a, &p, &plan, |_| ());
    }

    #[test]
    fn local_axpy_and_scale() {
        let mut y = vec![1.0, 2.0];
        RankCtx::axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
        RankCtx::scale(0.5, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }
}
